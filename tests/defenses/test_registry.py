"""Defense protocol + registry: registration, lookup, capability checks.

The engine-capability contract is the load-bearing part: an unsupported
(defense, engine) combination must raise a typed ConfigError naming the
fallback — mirroring the fast engine's tree-plru rejection — never
silently degrade.
"""

import pytest

from repro.common import scaled_experiment_config
from repro.common.errors import ConfigError
from repro.core import TimeCacheSystem
from repro.core.context import SwitchCost
from repro.defenses import (
    Defense,
    defense_names,
    get_defense,
    is_control_defense,
    merge_switch_costs,
    register_defense,
    unregister_defense,
)


# ----------------------------------------------------------------------
# registry basics
# ----------------------------------------------------------------------
def test_shipped_zoo_registered_in_presentation_order():
    names = defense_names()
    # timecache and the control anchor the pre-protocol matrix prefix
    assert names[:2] == ["timecache", "baseline"]
    assert "selective_flush" in names
    assert "copy_on_access" in names


def test_get_defense_unknown_raises_typed_error():
    with pytest.raises(ConfigError, match="unknown defense"):
        get_defense("nocache")


def test_is_control_defense():
    assert is_control_defense("baseline")
    assert not is_control_defense("timecache")
    assert not is_control_defense("never_registered")


def test_register_rejects_duplicates_unless_replace():
    class Dup(Defense):
        name = "timecache"

    with pytest.raises(ConfigError, match="already registered"):
        register_defense(Dup())
    # replace=True is the escape hatch; restore the real one afterwards
    original = get_defense("timecache")
    try:
        register_defense(Dup(), replace=True)
        assert isinstance(get_defense("timecache"), Dup)
    finally:
        register_defense(original, replace=True)


def test_register_rejects_empty_name_and_bad_capability():
    with pytest.raises(ConfigError, match="non-empty name"):
        register_defense(Defense())

    class Bad(Defense):
        name = "bad_capability"
        fast_engine = "warp-speed"

    with pytest.raises(ConfigError, match="fast_engine"):
        register_defense(Bad())


def test_late_registration_slots_into_tournament_axis():
    """The satellite fix: the tournament's defense axis is the registry,
    so a defense registered after import shows up without code changes."""
    from repro.analysis import tournament as tm

    class Throwaway(Defense):
        name = "throwaway_defense"

    register_defense(Throwaway())
    try:
        assert "throwaway_defense" in tm.DEFENSES
        jobs = tm.tournament_jobs(attacks=["flush_reload"], engines=("object",))
        labels = [job.label for job in jobs]
        assert "flush_reload|throwaway_defense|object" in labels
    finally:
        unregister_defense("throwaway_defense")
    assert "throwaway_defense" not in tm.DEFENSES


# ----------------------------------------------------------------------
# config transform
# ----------------------------------------------------------------------
def test_configure_stamps_defense_name():
    config = get_defense("timecache").configure(scaled_experiment_config())
    assert config.defense == "timecache"
    assert config.timecache.enabled
    control = get_defense("baseline").configure(scaled_experiment_config())
    assert control.defense == "baseline"
    assert not control.timecache.enabled


def test_with_defense_shortcut():
    config = scaled_experiment_config().with_defense("selective_flush")
    assert config.defense == "selective_flush"
    assert not config.timecache.enabled


def test_legacy_empty_defense_attaches_nothing():
    system = TimeCacheSystem(scaled_experiment_config())
    assert system.defense is None
    assert system.defense_state is None
    assert system._addr_offset is None


# ----------------------------------------------------------------------
# engine capability: typed, never silent
# ----------------------------------------------------------------------
def test_fast_engine_none_raises_naming_fallback():
    class ObjectOnly(Defense):
        name = "object_only"
        fast_engine = "none"

    register_defense(ObjectOnly())
    try:
        config = scaled_experiment_config(engine="fast").with_defense(
            "object_only"
        )
        with pytest.raises(ConfigError, match="engine='object'"):
            TimeCacheSystem(config)
        # the same defense on the reference engine constructs fine
        TimeCacheSystem(
            scaled_experiment_config(engine="object").with_defense(
                "object_only"
            )
        )
    finally:
        unregister_defense("object_only")


def test_kernel_claim_with_listeners_raises_on_fast():
    """A defense declaring fast_engine='kernel' while attaching
    per-access hooks would silently push the fast engine onto its scalar
    loop — the system must reject the mislabeled claim instead."""

    class Mislabeled(Defense):
        name = "mislabeled_kernel"
        fast_engine = "kernel"

        def attach(self, system):
            system.hierarchy.post_access_listeners.append(
                lambda ctx, line, kind, now, result: None
            )
            return None

    register_defense(Mislabeled())
    try:
        config = scaled_experiment_config(engine="fast").with_defense(
            "mislabeled_kernel"
        )
        with pytest.raises(ConfigError, match="scalar"):
            TimeCacheSystem(config)
        # the object engine has no batched kernels to mislead — fine
        TimeCacheSystem(
            scaled_experiment_config(engine="object").with_defense(
                "mislabeled_kernel"
            )
        )
    finally:
        unregister_defense("mislabeled_kernel")


def test_scalar_declaration_is_the_announced_fallback():
    # selective_flush declares scalar: constructing on fast must succeed
    # (its listeners route batches through the scalar reference loop).
    system = TimeCacheSystem(
        scaled_experiment_config(engine="fast").with_defense(
            "selective_flush"
        )
    )
    assert system.defense.fast_engine == "scalar"


# ----------------------------------------------------------------------
# switch-cost merging
# ----------------------------------------------------------------------
def test_merge_switch_costs_sums_and_ors():
    merged = merge_switch_costs(
        SwitchCost(dma_cycles=100, comparator_cycles=35, rollover_reset=False),
        SwitchCost(dma_cycles=40, comparator_cycles=0, rollover_reset=True),
    )
    assert merged.dma_cycles == 140
    assert merged.comparator_cycles == 35
    assert merged.rollover_reset is True
