"""Behavioral semantics of the shipped defense zoo.

Each defense is driven directly through the TimeCacheSystem facade (the
same surface the attacks use) and checked for the property it claims:
selective flushing evicts exactly the switching context's lines;
copy-on-access isolates tenants' copies while preserving set collisions.
"""

import pytest

from repro.common import scaled_experiment_config
from repro.core import TimeCacheSystem
from repro.memsys import AccessKind


def _system(defense, engine="object", **kw):
    config = scaled_experiment_config(engine=engine, **kw).with_defense(
        defense
    )
    return TimeCacheSystem(config)


ENGINES = ("object", "fast")


# ----------------------------------------------------------------------
# selective flushing (FASE)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", ENGINES)
def test_selective_flush_evicts_touched_lines_at_switch(engine):
    system = _system("selective_flush", engine)
    system.access(0, 0x1000, AccessKind.LOAD, now=0)
    warm = system.access(0, 0x1000, AccessKind.LOAD, now=300)
    assert warm.level == "L1"
    cost = system.context_switch(0, 1, ctx=0, now=1_000)
    # one flushed line, charged at the clflush-cached latency
    assert cost.dma_cycles == system.hierarchy.latency.flush_cached
    after = system.access(0, 0x1000, AccessKind.LOAD, now=2_000)
    assert after.level == "DRAM"
    snap = system.hierarchy.stats.snapshot()
    assert snap["hierarchy.selective_flushes"] == 1


@pytest.mark.parametrize("engine", ENGINES)
def test_selective_flush_leaves_other_contexts_lines(engine):
    system = _system("selective_flush", engine, num_cores=2)
    system.access(0, 0x1000, AccessKind.LOAD, now=0)
    system.access(1, 0x8000, AccessKind.LOAD, now=10)
    system.context_switch(0, 2, ctx=0, now=1_000)
    # ctx 1's working set was not part of the reschedule: still warm
    other = system.access(1, 0x8000, AccessKind.LOAD, now=2_000)
    assert other.level == "L1"


@pytest.mark.parametrize("engine", ENGINES)
def test_selective_flush_idle_switch_costs_nothing(engine):
    system = _system("selective_flush", engine)
    cost = system.context_switch(0, 1, ctx=0, now=100)
    assert cost.dma_cycles == 0
    # and a second switch after the first drained the set is also free
    system.access(0, 0x1000, AccessKind.LOAD, now=200)
    system.context_switch(1, 2, ctx=0, now=1_000)
    cost = system.context_switch(2, 3, ctx=0, now=2_000)
    assert cost.dma_cycles == 0


# ----------------------------------------------------------------------
# copy-on-access (CACHEBAR)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", ENGINES)
def test_copy_on_access_blocks_cross_tenant_reload(engine):
    """The flush+reload kill: the victim's access warms the *victim's*
    copy, so the attacker's reload of the same shared address misses."""
    system = _system("copy_on_access", engine, num_cores=2)
    system.access(1, 0x1000, AccessKind.LOAD, now=0)  # victim touches
    probe = system.access(0, 0x1000, AccessKind.LOAD, now=1_000)
    assert probe.level == "DRAM"  # attacker's copy was never filled
    # while same-tenant reuse is unaffected
    again = system.access(1, 0x1000, AccessKind.LOAD, now=2_000)
    assert again.level == "L1"


@pytest.mark.parametrize("engine", ENGINES)
def test_copy_on_access_flush_targets_own_copy(engine):
    """The flush+flush / evict+reload kill: no tenant can flush
    another's copy out of the cache."""
    system = _system("copy_on_access", engine, num_cores=2)
    system.access(1, 0x1000, AccessKind.LOAD, now=0)
    system.flush(0, 0x1000, now=500)  # attacker flushes *its* copy
    still_warm = system.access(1, 0x1000, AccessKind.LOAD, now=1_000)
    assert still_warm.level == "L1"


@pytest.mark.parametrize("engine", ENGINES)
def test_copy_on_access_preserves_set_collisions(engine):
    """Copies keep their set-index bits, so conflict channels
    (prime+probe) honestly survive: both tenants' copies of one line
    land in the same LLC set."""
    system = _system("copy_on_access", engine, num_cores=2)
    llc = system.hierarchy.llc
    line = 0x1000 >> 6
    offset_line = lambda ctx: (system._addr_offset(ctx) >> 6) + line
    assert llc.set_index(offset_line(0)) == llc.set_index(offset_line(1))
    assert offset_line(0) != offset_line(1)


@pytest.mark.parametrize("engine", ENGINES)
def test_copy_on_access_tenant_follows_task_at_switch(engine):
    """After a context switch the hardware context carries the incoming
    task's tenancy: the new task gets its own cold copies, and the old
    task's copies are waiting when it returns."""
    system = _system("copy_on_access", engine)
    system.access(0, 0x1000, AccessKind.LOAD, now=0)
    system.context_switch(0, 7, ctx=0, now=1_000)
    cold = system.access(0, 0x1000, AccessKind.LOAD, now=2_000)
    assert cold.level == "DRAM"  # task 7's copy, never filled
    system.context_switch(7, 0, ctx=0, now=3_000)
    back = system.access(0, 0x1000, AccessKind.LOAD, now=4_000)
    assert back.level in ("L1", "LLC")  # task 0's copy survived


# ----------------------------------------------------------------------
# the pure transforms
# ----------------------------------------------------------------------
def test_timecache_plugin_is_pure_transform():
    system = _system("timecache")
    assert system.defense is not None
    assert system.defense_state is None
    assert system._addr_offset is None
    assert not system.hierarchy.pre_access_listeners
    assert not system.hierarchy.post_access_listeners
    assert system.config.timecache.enabled


def test_baseline_plugin_is_pure_transform():
    system = _system("baseline")
    assert system.defense_state is None
    assert system._addr_offset is None
    assert not system.config.timecache.enabled
