"""Limited-pointer s-bit tracking (the Section VI-C scaling option).

A limited-pointer directory keeps O(k log n) bits per line instead of n.
Overflow must *remove* a sharer's visibility (costing it an extra first
access later) — it must never grant visibility, so the security argument
is untouched.
"""

import pytest

from repro.common.config import CacheConfig
from repro.core.timecache import TimeCacheSystem
from repro.memsys.cache import Cache
from repro.memsys.line import LineState

from tests.conftest import tiny_config


class TestCacheLevel:
    def make(self, max_sharers):
        return Cache(
            CacheConfig("T", 4 * 2 * 64, ways=2),
            [0, 1, 2, 3],
            hit_latency=2,
            max_sharers=max_sharers,
        )

    def test_unlimited_by_default(self):
        cache = self.make(0)
        cache.fill(0x10, ctx=0, tc_now=1, state=LineState.SHARED)
        s, w = cache.lookup(0x10)
        for ctx in (1, 2, 3):
            cache.set_sbit(s, w, ctx)
        assert all(cache.sbit_is_set(s, w, c) for c in range(4))

    def test_overflow_evicts_oldest_sharer(self):
        cache = self.make(2)
        cache.fill(0x10, ctx=0, tc_now=1, state=LineState.SHARED)
        s, w = cache.lookup(0x10)
        cache.set_sbit(s, w, 1)  # sharers: {0, 1} == cap
        cache.set_sbit(s, w, 2)  # overflow: ctx 0 loses visibility
        assert not cache.sbit_is_set(s, w, 0)
        assert cache.sbit_is_set(s, w, 1)
        assert cache.sbit_is_set(s, w, 2)
        assert cache.stats.get("sharer_evictions") == 1

    def test_resetting_existing_sharer_never_overflows(self):
        cache = self.make(2)
        cache.fill(0x10, ctx=0, tc_now=1, state=LineState.SHARED)
        s, w = cache.lookup(0x10)
        cache.set_sbit(s, w, 1)
        cache.set_sbit(s, w, 1)  # idempotent
        assert cache.sbit_is_set(s, w, 0)
        assert cache.stats.get("sharer_evictions") == 0

    def test_cap_one_means_single_owner(self):
        cache = self.make(1)
        cache.fill(0x10, ctx=0, tc_now=1, state=LineState.SHARED)
        s, w = cache.lookup(0x10)
        cache.set_sbit(s, w, 3)
        assert not cache.sbit_is_set(s, w, 0)
        assert cache.sbit_is_set(s, w, 3)

    def test_negative_cap_rejected(self):
        from repro.common.errors import SimulationError

        with pytest.raises(SimulationError):
            self.make(-1)


def smt_limited_config(max_sharers):
    """Two hyperthreads sharing one L1, with the sharer cap applied."""
    from repro.common.config import (
        CacheConfig,
        HierarchyConfig,
        SimConfig,
        TimeCacheConfig,
    )
    from repro.common.units import KIB

    cfg = SimConfig(
        hierarchy=HierarchyConfig(
            num_cores=1,
            threads_per_core=2,
            l1i=CacheConfig("L1I", 1 * KIB, ways=4),
            l1d=CacheConfig("L1D", 1 * KIB, ways=4),
            llc=CacheConfig("LLC", 16 * KIB, ways=8),
        ),
        timecache=TimeCacheConfig(max_sharers=max_sharers, sbit_dma_cycles=20),
    )
    cfg.validate()
    return cfg


class TestSystemLevel:
    def test_evicted_sharer_pays_first_access_again(self):
        # Hyperthreads share the L1, so a single-pointer cap ping-pongs
        # visibility between them on every alternation.
        system = TimeCacheSystem(smt_limited_config(max_sharers=1))
        system.load(0, 0x1000, now=0)  # ctx0 fills: sole sharer
        r = system.load(1, 0x1000, now=300)  # ctx1 first access...
        assert r.first_access  # ...and takes over the single pointer
        r = system.load(0, 0x1000, now=600)
        # ctx0's visibility was evicted by the overflow: pays again.
        assert r.first_access

    def test_never_grants_unpaid_hits(self):
        """The cap only ever clears bits: cross-context accesses still
        always pay at least once."""
        system = TimeCacheSystem(tiny_config(num_cores=2, max_sharers=1))
        system.load(0, 0x1000, now=0)
        r = system.load(1, 0x1000, now=300)
        assert r.first_access
        assert r.latency >= system.config.hierarchy.latency.dram

    def test_full_bitmap_config_unaffected(self):
        system = TimeCacheSystem(tiny_config(num_cores=2, max_sharers=0))
        system.load(0, 0x1000, now=0)
        system.load(1, 0x1000, now=300)
        r = system.load(0, 0x1000, now=600)
        assert not r.first_access  # both sharers coexist
