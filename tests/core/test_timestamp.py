"""Unit and property tests for the finite-width timestamp domain."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import ConfigError
from repro.core.timestamp import TimestampDomain


def test_modulus_and_mask():
    d = TimestampDomain(8)
    assert d.modulus == 256
    assert d.mask == 255


def test_width_bounds():
    with pytest.raises(ConfigError):
        TimestampDomain(1)
    with pytest.raises(ConfigError):
        TimestampDomain(65)
    TimestampDomain(2)
    TimestampDomain(64)


def test_truncate():
    d = TimestampDomain(8)
    assert d.truncate(0) == 0
    assert d.truncate(255) == 255
    assert d.truncate(256) == 0
    assert d.truncate(511) == 255


def test_truncate_rejects_negative():
    with pytest.raises(ValueError):
        TimestampDomain(8).truncate(-1)


def test_epoch():
    d = TimestampDomain(8)
    assert d.epoch(0) == 0
    assert d.epoch(255) == 0
    assert d.epoch(256) == 1
    assert d.epoch(1000) == 3


def test_rolled_over_between():
    d = TimestampDomain(8)
    assert not d.rolled_over_between(10, 200)
    assert d.rolled_over_between(200, 300)
    assert d.rolled_over_between(10, 1000)  # multiple wraps


def test_rolled_over_rejects_backwards_time():
    with pytest.raises(ValueError):
        TimestampDomain(8).rolled_over_between(100, 50)


def test_paper_decimal_illustration():
    """Section VI-C illustrates with 2 decimal digits: Ts=98, resume at
    105 -> rollover detected; Ts=102 (i.e. wrapped 02), resume 105 without
    rollover -> stale big Tc like 78 may cause unnecessary resets."""
    d = TimestampDomain(8)  # binary analogue: epoch boundary at 256
    # preempt at 250, resume at 260: epochs 0 and 1 differ -> rollover
    assert d.rolled_over_between(250, 260)
    # preempt at 258, resume at 261: same epoch -> hardware compares
    # truncated values; an old line with Tc=200 (from epoch 0) shows
    # Tc > Ts_trunc=2 -> unnecessary but safe reset
    assert not d.rolled_over_between(258, 261)
    assert d.compare_truncated(200, d.truncate(258))


def test_compare_truncated_bounds():
    d = TimestampDomain(4)
    with pytest.raises(ValueError):
        d.compare_truncated(16, 0)
    with pytest.raises(ValueError):
        d.compare_truncated(0, -1)


def test_to_bits_msb_first():
    d = TimestampDomain(4)
    assert d.to_bits_msb_first(0b1010) == [1, 0, 1, 0]
    assert d.to_bits_msb_first(0) == [0, 0, 0, 0]
    with pytest.raises(ValueError):
        d.to_bits_msb_first(16)


class TestEdgeWidths:
    """The domain contract at its extreme widths, 2 and 64 bits."""

    def test_minimum_width_rollover(self):
        d = TimestampDomain(2)
        assert d.modulus == 4 and d.mask == 3
        assert d.truncate(3) == 3
        assert d.truncate(4) == 0
        assert d.epoch(3) == 0 and d.epoch(4) == 1
        # Nearly every preemption spans an epoch at 2 bits.
        assert d.rolled_over_between(3, 4)
        assert not d.rolled_over_between(4, 7)
        assert d.rolled_over_between(0, 4_000_000)  # many wraps at once

    def test_maximum_width_never_rolls_over_in_practice(self):
        d = TimestampDomain(64)
        assert d.modulus == 1 << 64
        century_of_cycles = 10**19  # ~100 years at 3 GHz
        assert d.truncate(century_of_cycles) == century_of_cycles
        assert d.epoch(century_of_cycles) == 0
        assert not d.rolled_over_between(0, century_of_cycles)
        assert d.rolled_over_between(d.modulus - 1, d.modulus)

    def test_contains_at_edge_widths(self):
        narrow, wide = TimestampDomain(2), TimestampDomain(64)
        for d in (narrow, wide):
            assert d.contains(0) and d.contains(d.mask)
            assert not d.contains(-1)
            assert not d.contains(d.mask + 1)

    def test_next_epoch_start_at_edge_widths(self):
        narrow = TimestampDomain(2)
        assert narrow.next_epoch_start(0) == 4
        assert narrow.next_epoch_start(3) == 4
        assert narrow.next_epoch_start(4) == 8
        wide = TimestampDomain(64)
        assert wide.next_epoch_start(123) == 1 << 64
        # The boundary is the first time whose epoch differs.
        for d, t in ((narrow, 2), (wide, 5)):
            boundary = d.next_epoch_start(t)
            assert d.epoch(boundary) == d.epoch(t) + 1
            assert d.epoch(boundary - 1) == d.epoch(t)


def test_contains_matches_truncate_fixpoint():
    d = TimestampDomain(8)
    for value in (0, 1, 255):
        assert d.contains(value) and d.truncate(value) == value
    for value in (256, 1000):
        assert not d.contains(value)


@given(st.integers(2, 16), st.integers(0, 10**9), st.integers(0, 10**9))
def test_rollover_iff_epoch_differs(bits, a, b):
    lo, hi = min(a, b), max(a, b)
    d = TimestampDomain(bits)
    assert d.rolled_over_between(lo, hi) == (
        (lo >> bits) != (hi >> bits)
    )


@given(st.integers(2, 16), st.integers(0, 10**9))
def test_truncate_roundtrip_bits(bits, value):
    d = TimestampDomain(bits)
    t = d.truncate(value)
    bits_list = d.to_bits_msb_first(t)
    reconstructed = 0
    for b in bits_list:
        reconstructed = (reconstructed << 1) | b
    assert reconstructed == t
