"""Unit and property tests for the finite-width timestamp domain."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import ConfigError
from repro.core.timestamp import TimestampDomain


def test_modulus_and_mask():
    d = TimestampDomain(8)
    assert d.modulus == 256
    assert d.mask == 255


def test_width_bounds():
    with pytest.raises(ConfigError):
        TimestampDomain(1)
    with pytest.raises(ConfigError):
        TimestampDomain(65)
    TimestampDomain(2)
    TimestampDomain(64)


def test_truncate():
    d = TimestampDomain(8)
    assert d.truncate(0) == 0
    assert d.truncate(255) == 255
    assert d.truncate(256) == 0
    assert d.truncate(511) == 255


def test_truncate_rejects_negative():
    with pytest.raises(ValueError):
        TimestampDomain(8).truncate(-1)


def test_epoch():
    d = TimestampDomain(8)
    assert d.epoch(0) == 0
    assert d.epoch(255) == 0
    assert d.epoch(256) == 1
    assert d.epoch(1000) == 3


def test_rolled_over_between():
    d = TimestampDomain(8)
    assert not d.rolled_over_between(10, 200)
    assert d.rolled_over_between(200, 300)
    assert d.rolled_over_between(10, 1000)  # multiple wraps


def test_rolled_over_rejects_backwards_time():
    with pytest.raises(ValueError):
        TimestampDomain(8).rolled_over_between(100, 50)


def test_paper_decimal_illustration():
    """Section VI-C illustrates with 2 decimal digits: Ts=98, resume at
    105 -> rollover detected; Ts=102 (i.e. wrapped 02), resume 105 without
    rollover -> stale big Tc like 78 may cause unnecessary resets."""
    d = TimestampDomain(8)  # binary analogue: epoch boundary at 256
    # preempt at 250, resume at 260: epochs 0 and 1 differ -> rollover
    assert d.rolled_over_between(250, 260)
    # preempt at 258, resume at 261: same epoch -> hardware compares
    # truncated values; an old line with Tc=200 (from epoch 0) shows
    # Tc > Ts_trunc=2 -> unnecessary but safe reset
    assert not d.rolled_over_between(258, 261)
    assert d.compare_truncated(200, d.truncate(258))


def test_compare_truncated_bounds():
    d = TimestampDomain(4)
    with pytest.raises(ValueError):
        d.compare_truncated(16, 0)
    with pytest.raises(ValueError):
        d.compare_truncated(0, -1)


def test_to_bits_msb_first():
    d = TimestampDomain(4)
    assert d.to_bits_msb_first(0b1010) == [1, 0, 1, 0]
    assert d.to_bits_msb_first(0) == [0, 0, 0, 0]
    with pytest.raises(ValueError):
        d.to_bits_msb_first(16)


@given(st.integers(2, 16), st.integers(0, 10**9), st.integers(0, 10**9))
def test_rollover_iff_epoch_differs(bits, a, b):
    lo, hi = min(a, b), max(a, b)
    d = TimestampDomain(bits)
    assert d.rolled_over_between(lo, hi) == (
        (lo >> bits) != (hi >> bits)
    )


@given(st.integers(2, 16), st.integers(0, 10**9))
def test_truncate_roundtrip_bits(bits, value):
    d = TimestampDomain(bits)
    t = d.truncate(value)
    bits_list = d.to_bits_msb_first(t)
    reconstructed = 0
    for b in bits_list:
        reconstructed = (reconstructed << 1) | b
    assert reconstructed == t
