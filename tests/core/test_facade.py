"""Tests for the TimeCacheSystem facade and run summaries."""

from repro.core.timecache import TimeCacheSystem
from repro.os.kernel import RunSummary

from tests.conftest import tiny_config


class TestFacade:
    def test_task_state_is_cached_per_id(self):
        system = TimeCacheSystem(tiny_config())
        assert system.task_state(1) is system.task_state(1)
        assert system.task_state(1) is not system.task_state(2)

    def test_timecache_enabled_property(self):
        assert TimeCacheSystem(tiny_config()).timecache_enabled
        assert not TimeCacheSystem(tiny_config(enabled=False)).timecache_enabled

    def test_access_defaults_to_clock_now(self):
        system = TimeCacheSystem(tiny_config())
        system.clock.advance_to(5_000)
        system.load(0, 0x1000)  # no explicit now
        hier = system.hierarchy
        pos = hier.llc.lookup(hier.line_addr(0x1000))
        assert hier.llc.tc[pos] == 5_000

    def test_stats_snapshot_merges_all_components(self):
        system = TimeCacheSystem(tiny_config())
        system.load(0, 0x1000, now=0)
        system.context_switch(None, 1, ctx=0, now=100)
        snap = system.stats_snapshot()
        assert any(key.startswith("L1D0.") for key in snap)
        assert any(key.startswith("LLC.") for key in snap)
        assert any(key.startswith("DRAM.") for key in snap)
        assert any(key.startswith("context_switch.") for key in snap)

    def test_clock_monotone_across_out_of_order_nows(self):
        system = TimeCacheSystem(tiny_config())
        system.load(0, 0x1000, now=1_000)
        system.load(0, 0x2000, now=500)  # stale core time
        assert system.clock.now == 1_000  # frontier never regresses


class TestRunSummary:
    def test_totals_and_makespan(self):
        summary = RunSummary(
            steps=10,
            context_switches=2,
            per_task_instructions={"a": 100, "b": 50},
            per_task_cycles={"a": 400, "b": 200},
            per_ctx_local_time={0: 700, 1: 300},
        )
        assert summary.total_instructions == 150
        assert summary.makespan == 700

    def test_empty_summary(self):
        summary = RunSummary(steps=0, context_switches=0)
        assert summary.total_instructions == 0
        assert summary.makespan == 0
