"""Unit and property tests for the transpose SRAM model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import SimulationError
from repro.core.transpose import TransposeSram


def test_word_write_read_roundtrip():
    sram = TransposeSram(words=4, bits=8)
    sram.write_word(2, 0xA5)
    assert sram.read_word(2) == 0xA5
    assert sram.read_word(0) == 0


def test_word_value_must_fit():
    sram = TransposeSram(words=2, bits=4)
    with pytest.raises(SimulationError):
        sram.write_word(0, 16)


def test_bit_slice_read_msb_first():
    sram = TransposeSram(words=3, bits=4)
    sram.write_word(0, 0b1000)
    sram.write_word(1, 0b0001)
    sram.write_word(2, 0b1001)
    msb = sram.read_bit_slice(0)
    lsb = sram.read_bit_slice(3)
    assert list(msb) == [True, False, True]
    assert list(lsb) == [False, True, True]


def test_bit_slice_write():
    sram = TransposeSram(words=3, bits=4)
    sram.write_bit_slice(0, np.array([True, True, False]))
    assert sram.read_word(0) == 0b1000
    assert sram.read_word(1) == 0b1000
    assert sram.read_word(2) == 0


def test_bounds_checked():
    sram = TransposeSram(words=2, bits=4)
    with pytest.raises(SimulationError):
        sram.read_word(2)
    with pytest.raises(SimulationError):
        sram.read_bit_slice(4)
    with pytest.raises(SimulationError):
        sram.write_bit_slice(0, np.zeros(3, dtype=bool))


def test_access_counters_track_interfaces():
    sram = TransposeSram(words=4, bits=8)
    sram.write_word(0, 1)
    sram.read_word(0)
    sram.read_bit_slice(0)
    assert sram.stats.get("word_writes") == 1
    assert sram.stats.get("word_reads") == 1
    assert sram.stats.get("bit_slice_reads") == 1


def test_load_dump_words():
    sram = TransposeSram(words=5, bits=6)
    values = np.array([0, 1, 31, 63, 32], dtype=np.int64)
    sram.load_words(values)
    assert np.array_equal(sram.dump_words(), values)


def test_load_words_validates():
    sram = TransposeSram(words=2, bits=4)
    with pytest.raises(SimulationError):
        sram.load_words(np.array([1, 16]))
    with pytest.raises(SimulationError):
        sram.load_words(np.array([1, 2, 3]))


@settings(max_examples=50)
@given(
    st.integers(2, 12).flatmap(
        lambda bits: st.tuples(
            st.just(bits),
            st.lists(
                st.integers(0, (1 << bits) - 1), min_size=1, max_size=32
            ),
        )
    )
)
def test_roundtrip_property(bits_and_values):
    bits, values = bits_and_values
    sram = TransposeSram(words=len(values), bits=bits)
    arr = np.array(values, dtype=np.int64)
    sram.load_words(arr)
    assert np.array_equal(sram.dump_words(), arr)
    # word interface agrees with bulk dump
    for i, v in enumerate(values):
        assert sram.read_word(i) == v
