"""The key hardware-fidelity property: the gate-level bit-serial
comparator computes exactly unsigned ``Tc > Ts``, for every width, in
time linear in the timestamp width and independent of the word count."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.comparator import BitSerialComparator
from repro.core.timestamp import TimestampDomain
from repro.core.transpose import TransposeSram


def make(bits):
    return BitSerialComparator(TimestampDomain(bits))


def test_paper_example():
    """'The greater of 1100 and 0101 can be determined ... by looking at
    the MSB' — Section V-C."""
    comp = make(4)
    result = comp.compare_values(np.array([0b1100]), ts=0b0101)
    assert list(result.reset_mask) == [True]


def test_equal_values_do_not_reset():
    comp = make(8)
    result = comp.compare_values(np.array([42, 41, 43]), ts=42)
    assert list(result.reset_mask) == [False, False, True]


def test_zero_ts_resets_everything_nonzero():
    comp = make(8)
    result = comp.compare_values(np.array([0, 1, 255]), ts=0)
    assert list(result.reset_mask) == [False, True, True]


def test_cycle_count_is_width_plus_two_and_word_independent():
    comp = make(16)
    small = comp.compare_values(np.arange(4), ts=2)
    large = comp.compare_values(np.arange(4096), ts=2)
    assert small.cycles == large.cycles == 16 + 2


def test_bit_slice_reads_equal_width():
    """The scan must touch each bit position exactly once — one cycle per
    timestamp bit through the regular bit-line interface."""
    comp = make(12)
    sram = TransposeSram(words=64, bits=12)
    sram.load_words(np.arange(64))
    comp.compare_sram(sram, ts=10)
    assert sram.stats.get("bit_slice_reads") == 12


def test_width_mismatch_rejected():
    comp = make(8)
    sram = TransposeSram(words=4, bits=6)
    with pytest.raises(ValueError):
        comp.compare_sram(sram, ts=0)


@settings(max_examples=200)
@given(
    st.integers(2, 16).flatmap(
        lambda bits: st.tuples(
            st.just(bits),
            st.lists(st.integers(0, (1 << bits) - 1), min_size=1, max_size=64),
            st.integers(0, (1 << bits) - 1),
        )
    )
)
def test_gate_level_equals_unsigned_greater(args):
    bits, tc_values, ts = args
    comp = make(bits)
    arr = np.array(tc_values, dtype=np.int64)
    gate = comp.compare_values(arr, ts)
    expected = [tc > ts for tc in tc_values]
    assert list(gate.reset_mask) == expected


@settings(max_examples=100)
@given(
    st.integers(2, 16).flatmap(
        lambda bits: st.tuples(
            st.just(bits),
            st.lists(st.integers(0, (1 << bits) - 1), min_size=1, max_size=64),
            st.integers(0, (1 << bits) - 1),
        )
    )
)
def test_fast_path_equals_gate_level(args):
    """The vectorized comparator the experiments use must agree bit-for-
    bit with the simulated hardware."""
    bits, tc_values, ts = args
    comp = make(bits)
    arr = np.array(tc_values, dtype=np.int64)
    gate = comp.compare_values(arr, ts)
    fast = comp.fast_compare(arr, ts)
    assert np.array_equal(gate.reset_mask, fast.reset_mask)
    assert gate.cycles == fast.cycles


def test_exhaustive_small_width():
    """Every (tc, ts) pair at 4 bits — no sampling gaps."""
    comp = make(4)
    all_values = np.arange(16, dtype=np.int64)
    for ts in range(16):
        result = comp.compare_values(all_values, ts)
        assert list(result.reset_mask) == [tc > ts for tc in range(16)]


class TestSingleTruncationPoint:
    """The comparator's interface is the *full* preemption time: it owns
    the one truncation into the Tc domain.  Regression tests for the
    rollover boundary ``Ts = 2**bits - 1``."""

    def test_ts_at_epoch_maximum_clears_nothing(self):
        """At ``Ts = 2**bits - 1`` no truncated Tc can exceed Ts — the
        scan must keep every s-bit, on both paths."""
        comp = make(8)
        all_values = np.arange(256, dtype=np.int64)
        for result in (
            comp.compare_values(all_values, ts=255),
            comp.fast_compare(all_values, ts=255),
        ):
            assert not result.reset_mask.any()

    def test_full_ts_one_past_the_boundary_truncates_to_zero(self):
        """``Ts = 2**bits`` (a full, untruncated time) lands at the start
        of the next epoch: truncation maps it to 0, so every nonzero Tc
        compares greater.  Passing the full value must behave exactly
        like passing the pre-truncated one."""
        comp = make(8)
        values = np.array([0, 1, 200, 255], dtype=np.int64)
        for method in (comp.compare_values, comp.fast_compare):
            wrapped = method(values, ts=256)
            pre_truncated = method(values, ts=0)
            assert np.array_equal(wrapped.reset_mask, pre_truncated.reset_mask)
            assert list(wrapped.reset_mask) == [False, True, True, True]

    @settings(max_examples=100)
    @given(
        st.integers(2, 12).flatmap(
            lambda bits: st.tuples(
                st.just(bits),
                st.lists(
                    st.integers(0, (1 << bits) - 1), min_size=1, max_size=32
                ),
                st.integers(0, (1 << (bits + 4)) - 1),  # full, multi-epoch
            )
        )
    )
    def test_full_times_equal_pretruncated_times(self, args):
        """For any full ``ts``, both paths give the same mask as the
        explicitly pre-truncated ``ts`` — one truncation point, applied
        exactly once."""
        bits, tc_values, ts_full = args
        comp = make(bits)
        arr = np.array(tc_values, dtype=np.int64)
        ts_trunc = ts_full & ((1 << bits) - 1)
        gate = comp.compare_values(arr, ts_full)
        fast = comp.fast_compare(arr, ts_full)
        expected = [tc > ts_trunc for tc in tc_values]
        assert list(gate.reset_mask) == expected
        assert list(fast.reset_mask) == expected


class TestEqualityKeepsSbit:
    """``Tc == Ts`` must keep the s-bit: the paper clears only strictly
    greater fill times, so a line filled in the same cycle as the
    preemption stays visible."""

    @settings(max_examples=100)
    @given(
        st.integers(2, 16).flatmap(
            lambda bits: st.tuples(
                st.just(bits),
                st.integers(0, (1 << bits) - 1),
                st.lists(
                    st.integers(0, (1 << bits) - 1), min_size=0, max_size=16
                ),
            )
        )
    )
    def test_tc_equal_ts_never_resets(self, args):
        """Plant Tc == Ts among arbitrary neighbors: the equal word's
        mask bit is False on the gate-level scan, the value wrapper, and
        the vectorized path alike."""
        bits, ts, others = args
        comp = make(bits)
        arr = np.array([ts] + others, dtype=np.int64)
        sram = TransposeSram(words=len(arr), bits=bits)
        sram.load_words(arr)
        for result in (
            comp.compare_sram(sram, ts),
            comp.compare_values(arr, ts),
            comp.fast_compare(arr, ts),
        ):
            assert not result.reset_mask[0]
