"""FTM (First Time Miss) — the related-work comparison (§II-C, §VIII-B2).

FTM detects first accesses with per-core directory presence bits at the
LLC only, with no context-switch handling.  The paper's threat-model
argument: FTM blocks the cross-core reuse channel but "assumes that the
victim and attacker … must otherwise run on isolated hardware" — it
cannot separate processes time-sliced on one core, nor SMT siblings.
These tests reproduce that comparison point for point.
"""

import dataclasses

import pytest

from repro.attacks.flush_reload import run_microbenchmark_attack
from repro.common.config import (
    CacheConfig,
    HierarchyConfig,
    SimConfig,
    TimeCacheConfig,
)
from repro.common.errors import ConfigError
from repro.common.units import KIB
from repro.core.timecache import TimeCacheSystem

from tests.conftest import tiny_config


def ftm_config(num_cores=2, threads_per_core=1):
    cfg = SimConfig(
        hierarchy=HierarchyConfig(
            num_cores=num_cores,
            threads_per_core=threads_per_core,
            l1i=CacheConfig("L1I", 1 * KIB, ways=4),
            l1d=CacheConfig("L1D", 1 * KIB, ways=4),
            llc=CacheConfig("LLC", 16 * KIB, ways=8),
        ),
        timecache=TimeCacheConfig(enabled=False, ftm_mode=True),
        quantum_cycles=5_000,
        context_switch_cycles=50,
    )
    cfg.validate()
    return cfg


def test_ftm_and_timecache_mutually_exclusive():
    with pytest.raises(ConfigError):
        dataclasses.replace(
            tiny_config(),
            timecache=TimeCacheConfig(enabled=True, ftm_mode=True),
        ).validate()


class TestFtmBlocksCrossCore:
    def test_cross_core_first_access_delayed(self):
        system = TimeCacheSystem(ftm_config(num_cores=2))
        system.load(0, 0x1000, now=0)  # core 0 fills
        r = system.load(1, 0x1000, now=300)  # core 1: first time miss
        assert r.first_access
        assert r.latency >= system.config.hierarchy.latency.dram

    def test_second_cross_core_access_hits(self):
        system = TimeCacheSystem(ftm_config(num_cores=2))
        system.load(0, 0x1000, now=0)
        system.load(1, 0x1000, now=300)
        r = system.load(1, 0x1000, now=900)
        assert not r.first_access


class TestFtmGaps:
    """The paper's criticism, reproduced: FTM's presence bits are per
    core and survive context switches, so same-core attacks go through."""

    def test_same_core_time_sliced_attack_succeeds_under_ftm(self):
        outcome = run_microbenchmark_attack(
            ftm_config(num_cores=1), shared_lines=32, sleep_cycles=50_000
        )
        assert outcome.probe_hits == outcome.probe_total  # FTM leaks

    def test_same_attack_blocked_by_timecache(self):
        outcome = run_microbenchmark_attack(
            tiny_config(num_cores=1), shared_lines=32, sleep_cycles=50_000
        )
        assert outcome.probe_hits == 0

    def test_smt_sibling_leaks_under_ftm(self):
        """Hyperthreads share the core, hence the presence bit: the
        sibling's reload reads as already-present."""
        system = TimeCacheSystem(ftm_config(num_cores=1, threads_per_core=2))
        system.flush(0, 0x1000, now=0)
        system.load(1, 0x1000, now=100)  # victim sibling refills
        r = system.load(0, 0x1000, now=400)  # attacker sibling reloads
        # L1 is shared and FTM does not guard it: fast hit -> leak
        assert r.level == "L1"
        assert not r.first_access

    def test_smt_sibling_blocked_by_timecache(self):
        cfg = dataclasses.replace(
            ftm_config(num_cores=1, threads_per_core=2),
            timecache=TimeCacheConfig(enabled=True, sbit_dma_cycles=20),
        )
        system = TimeCacheSystem(cfg)
        system.flush(0, 0x1000, now=0)
        system.load(1, 0x1000, now=100)
        r = system.load(0, 0x1000, now=400)
        assert r.first_access

    def test_ftm_ignores_context_switches(self):
        """Presence bits persist across switches: a new process inherits
        the previous one's visibility on the same core — the reuse hole."""
        system = TimeCacheSystem(ftm_config(num_cores=1))
        system.context_switch(None, 1, ctx=0, now=0)
        system.load(0, 0x1000, now=100)  # process 1 loads
        cost = system.context_switch(1, 2, ctx=0, now=1000)
        assert cost.total == 0  # FTM has no switch bookkeeping
        # evict from L1 so the access is answered at the LLC, where the
        # FTM presence bit (per core, not per process) still claims it
        for i in range(1, 6):
            system.load(0, 0x1000 + i * 256, now=1000 + i * 300)
        r = system.load(0, 0x1000, now=5000)
        assert not r.first_access  # process 2 rides process 1's bit
        assert r.level == "LLC"
