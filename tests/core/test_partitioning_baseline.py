"""The comparison baseline: CAT-style way partitioning + flush-on-switch.

Section VIII-B positions TimeCache against Catalyst/Apparition-style
partitioning.  The baseline must be *secure* against the reuse attack
(otherwise the comparison is meaningless) while paying its cost in
reduced effective cache and per-switch flushes.
"""

import pytest

from repro.attacks.flush_reload import run_microbenchmark_attack
from repro.common.errors import ConfigError
from repro.core.timecache import TimeCacheSystem

from tests.conftest import tiny_config


def partition_config(domains=2):
    return tiny_config(num_cores=1).with_partitioning(domains=domains)


class TestConfig:
    def test_partitioning_disables_timecache(self):
        cfg = partition_config()
        assert cfg.partition.enabled
        assert not cfg.timecache.enabled

    def test_cannot_enable_both(self):
        import dataclasses

        from repro.common.config import PartitionConfig

        cfg = dataclasses.replace(
            tiny_config(), partition=PartitionConfig(enabled=True)
        )
        with pytest.raises(ConfigError):
            cfg.validate()

    def test_domains_bounded_by_ways(self):
        with pytest.raises(ConfigError):
            partition_config(domains=100).validate()


class TestMechanics:
    def test_fills_stay_in_domain_ways(self):
        system = TimeCacheSystem(partition_config(domains=2))
        hier = system.hierarchy
        system.context_switch(None, incoming_task=1, ctx=0, now=0)  # domain 0
        for i in range(32):
            system.load(0, 0x100000 + i * 64 * hier.llc.num_sets, now=i * 300)
        allowed = hier.domain_ways(0)
        for cset in hier.llc.sets:
            for way, line in enumerate(cset.lines):
                if line is not None:
                    assert way in allowed

    def test_domain_flush_empties_ways(self):
        system = TimeCacheSystem(partition_config(domains=2))
        hier = system.hierarchy
        system.context_switch(None, 1, ctx=0, now=0)
        for i in range(8):
            system.load(0, 0x100000 + i * 64, now=i * 300)
        flushed = hier.flush_domain_ways(0)
        assert flushed > 0
        for cset in hier.llc.sets:
            for way in hier.domain_ways(0):
                assert cset.lines[way] is None

    def test_switch_between_domains_flushes(self):
        system = TimeCacheSystem(partition_config(domains=2))
        system.context_switch(None, 1, ctx=0, now=0)
        system.load(0, 0x100000, now=100)
        cost = system.context_switch(1, 2, ctx=0, now=1000)  # other domain
        assert cost.dma_cycles > 0  # flush cost charged
        # task 1's data is gone: reload misses to DRAM
        system.context_switch(2, 1, ctx=0, now=2000)
        r = system.load(0, 0x100000, now=2100)
        assert r.level == "DRAM"

    def test_same_domain_switch_does_not_flush(self):
        system = TimeCacheSystem(partition_config(domains=2))
        system.context_switch(None, 1, ctx=0, now=0)  # domain 0
        system.context_switch(1, 3, ctx=0, now=100)  # task 3 -> domain 1
        cost = system.context_switch(3, 3, ctx=0, now=200)
        assert cost.dma_cycles == 0


class TestSecurity:
    def test_partitioning_blocks_the_microbenchmark(self):
        outcome = run_microbenchmark_attack(
            partition_config(domains=2), shared_lines=32, sleep_cycles=50_000
        )
        assert outcome.probe_hits == 0

    def test_without_flush_partitioning_would_leak(self):
        """Sanity: plain fill-partitioning without the switch flush (the
        naked Intel CAT semantics) leaves the reuse channel open, which
        is exactly why Apparition adds the flush."""
        system = TimeCacheSystem(partition_config(domains=2))
        hier = system.hierarchy
        system.context_switch(None, 1, ctx=0, now=0)
        system.load(0, 0x100000, now=100)  # victim (domain 0) caches line
        # attacker (domain 1) reads WITHOUT an intervening domain flush:
        hier.set_domain(0, 1)
        r = system.load(0, 0x100000, now=500)
        assert r.level in ("L1", "LLC")  # lookup is global -> fast hit
