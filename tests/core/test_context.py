"""Tests for the context-switch engine: save/restore/comparator update."""

import dataclasses

import numpy as np
import pytest

from repro.core.timecache import TimeCacheSystem

from tests.conftest import tiny_config


def _with_engine(cfg, engine):
    return dataclasses.replace(
        cfg, hierarchy=dataclasses.replace(cfg.hierarchy, engine=engine)
    )


@pytest.fixture
def system():
    return TimeCacheSystem(tiny_config(num_cores=1))


def warm(system, ctx, addrs, start=0):
    for i, addr in enumerate(addrs):
        system.load(ctx, addr, now=start + i * 300)
    return start + len(addrs) * 300


class TestSaveRestore:
    def test_new_task_restores_all_clear(self, system):
        warm(system, 0, [0x1000, 0x2000], start=0)
        system.context_switch(None, incoming_task=7, ctx=0, now=1000)
        # Task 7 never ran: everything is a first access for it.
        r = system.load(0, 0x1000, now=1100)
        assert r.first_access

    def test_roundtrip_preserves_sbits_when_cache_unchanged(self, system):
        end = warm(system, 0, [0x1000, 0x2000], start=0)
        system.context_switch(None, 1, ctx=0, now=0)  # task 1 owns ctx now
        # re-warm as task 1
        end = warm(system, 0, [0x1000, 0x2000], start=end)
        system.context_switch(1, 2, ctx=0, now=end)  # save task 1
        # task 2 does nothing that touches those lines
        system.context_switch(2, 1, ctx=0, now=end + 100)  # restore task 1
        r = system.load(0, 0x1000, now=end + 200)
        assert not r.first_access
        assert r.level == "L1"

    def test_lines_refilled_while_preempted_are_reset(self, system):
        system.context_switch(None, 1, ctx=0, now=0)
        warm(system, 0, [0x1000], start=100)
        system.context_switch(1, 2, ctx=0, now=1000)  # Ts(task1) = 1000
        # Task 2 flushes and refills the line: new Tc > Ts.
        system.flush(0, 0x1000, now=1100)
        system.load(0, 0x1000, now=1200)
        system.context_switch(2, 1, ctx=0, now=2000)
        r = system.load(0, 0x1000, now=2100)
        assert r.first_access  # comparator must have cleared the stale bit

    def test_lines_untouched_while_preempted_stay_visible(self, system):
        system.context_switch(None, 1, ctx=0, now=0)
        warm(system, 0, [0x1000, 0x2000], start=100)
        system.context_switch(1, 2, ctx=0, now=1000)
        warm(system, 0, [0x9000], start=1100)  # task 2 touches other lines
        system.context_switch(2, 1, ctx=0, now=2000)
        r = system.load(0, 0x1000, now=2100)
        assert not r.first_access

    def test_switch_cost_reports_dma_and_comparator(self, system):
        system.context_switch(None, 1, ctx=0, now=0)
        warm(system, 0, [0x1000], start=0)
        system.context_switch(1, 2, ctx=0, now=1000)
        cost = system.context_switch(2, 1, ctx=0, now=2000)
        assert cost.dma_cycles == system.config.timecache.sbit_dma_cycles
        # bits+2 per cache level that had saved bits (L1I, L1D, LLC)
        per_level = system.config.timecache.timestamp_bits + 2
        assert cost.comparator_cycles == 3 * per_level

    def test_disabled_timecache_costs_nothing(self):
        system = TimeCacheSystem(tiny_config(enabled=False))
        cost = system.context_switch(None, 1, ctx=0, now=0)
        assert cost.total == 0


class TestResetAblation:
    def test_reset_on_switch_forgets_everything(self):
        system = TimeCacheSystem(tiny_config(reset_sbits_on_switch=True))
        system.context_switch(None, 1, ctx=0, now=0)
        for i, addr in enumerate([0x1000, 0x2000]):
            system.load(0, addr, now=i * 300)
        system.context_switch(1, 2, ctx=0, now=1000)
        system.context_switch(2, 1, ctx=0, now=2000)
        r = system.load(0, 0x1000, now=2100)
        assert r.first_access  # saved context was dropped


class TestMigration:
    def test_llc_visibility_survives_migration(self):
        """The LLC is the same physical cache on every core: a migrating
        task keeps the visibility it paid for there."""
        system = TimeCacheSystem(tiny_config(num_cores=2))
        system.context_switch(None, 1, ctx=0, now=0)
        system.load(0, 0x1000, now=100)
        system.context_switch(1, 2, ctx=0, now=1000)
        system.context_switch(None, 1, ctx=1, now=2000)
        r = system.load(1, 0x1000, now=2100)
        # L1D1 misses (plain miss), LLC serves with the restored s-bit.
        assert not r.first_access
        assert r.level == "LLC"

    def test_l1_bits_do_not_follow_across_cores(self):
        """Saved L1 bits describe core 0's physical L1 and must not be
        restored into core 1's L1: a same-positioned line there belongs
        to someone else."""
        system = TimeCacheSystem(tiny_config(num_cores=2))
        system.context_switch(None, 1, ctx=0, now=0)
        system.load(0, 0x3000, now=100)  # task 1's L1D0 slot bit set
        system.context_switch(1, 2, ctx=0, now=1000)
        # Another task on core 1 pulls the same line into L1D1.
        system.context_switch(None, 3, ctx=1, now=1500)
        system.load(1, 0x3000, now=1600)
        # Task 1 migrates to core 1: L1D1 holds the line (tag hit) but
        # task 1 must not see it at L1 speed there.
        system.context_switch(3, 1, ctx=1, now=2000)
        r = system.load(1, 0x3000, now=2100)
        assert r.first_access


class TestRollover:
    def test_rollover_resets_all_sbits(self):
        system = TimeCacheSystem(tiny_config(timestamp_bits=8))
        system.context_switch(None, 1, ctx=0, now=0)
        system.load(0, 0x1000, now=10)
        system.context_switch(1, 2, ctx=0, now=100)  # Ts = 100
        # resume after the 8-bit counter wrapped (epoch change at 256)
        cost = system.context_switch(2, 1, ctx=0, now=300)
        assert cost.rollover_reset
        r = system.load(0, 0x1000, now=310)
        assert r.first_access  # conservative reset

    def test_no_rollover_keeps_bits(self):
        system = TimeCacheSystem(tiny_config(timestamp_bits=8))
        system.context_switch(None, 1, ctx=0, now=0)
        system.load(0, 0x1000, now=10)
        system.context_switch(1, 2, ctx=0, now=100)
        cost = system.context_switch(2, 1, ctx=0, now=200)  # same epoch
        assert not cost.rollover_reset
        r = system.load(0, 0x1000, now=210)
        assert not r.first_access

    def test_stale_large_tc_causes_unnecessary_but_safe_reset(self):
        """Section VI-C: without a rollover between save and resume, an
        old line from the previous epoch can carry a *larger* truncated
        Tc than Ts and be reset unnecessarily — allowed, never unsafe."""
        system = TimeCacheSystem(tiny_config(timestamp_bits=8))
        system.context_switch(None, 1, ctx=0, now=0)
        system.load(0, 0x1000, now=200)  # Tc = 200 (epoch 0)
        # Run task 1 past the rollover so its own bits stay live (running
        # processes need no action), then preempt in epoch 1.
        system.load(0, 0x1000, now=270)
        system.context_switch(1, 2, ctx=0, now=260 + 2)  # Ts = 262 -> 6
        cost = system.context_switch(2, 1, ctx=0, now=265)  # same epoch
        assert not cost.rollover_reset
        r = system.load(0, 0x1000, now=266)
        # truncated Tc (200) > truncated Ts (6): unnecessary reset happens
        assert r.first_access

    def test_conservative_reset_at_minimum_width(self):
        """bits=2 is the harshest regime: epochs are 4 cycles, so any
        realistic preemption gap spans one and the Section VI-C rule —
        preempted before, resumed after a rollover -> full s-bit reset —
        must fire essentially every switch."""
        system = TimeCacheSystem(tiny_config(timestamp_bits=2))
        system.context_switch(None, 1, ctx=0, now=0)
        system.load(0, 0x1000, now=1)
        system.context_switch(1, 2, ctx=0, now=3)  # preempt in epoch 0
        cost = system.context_switch(2, 1, ctx=0, now=5)  # resume, epoch 1
        assert cost.rollover_reset
        r = system.load(0, 0x1000, now=6)
        assert r.first_access  # all bits conservatively gone

    def test_minimum_width_same_epoch_keeps_bits(self):
        system = TimeCacheSystem(tiny_config(timestamp_bits=2))
        system.context_switch(None, 1, ctx=0, now=0)
        system.load(0, 0x1000, now=1)
        system.context_switch(1, 2, ctx=0, now=8)  # epoch 2
        cost = system.context_switch(2, 1, ctx=0, now=9)  # still epoch 2
        assert not cost.rollover_reset

    def test_no_conservative_reset_at_maximum_width(self):
        """bits=64 never rolls over within any simulated run: visibility
        must survive arbitrary preemption gaps untouched."""
        system = TimeCacheSystem(tiny_config(timestamp_bits=64))
        system.context_switch(None, 1, ctx=0, now=0)
        system.load(0, 0x1000, now=10)
        system.context_switch(1, 2, ctx=0, now=1_000)
        cost = system.context_switch(2, 1, ctx=0, now=10**15)
        assert not cost.rollover_reset
        r = system.load(0, 0x1000, now=10**15 + 10)
        assert not r.first_access  # untouched line, bit preserved


class TestEpochBoundaryTs:
    """Regression for the collapsed double truncation: a preemption at
    ``Ts = 2**bits - 1`` — the last cycle of an epoch — must flow to the
    comparator as the full time and truncate exactly once."""

    @pytest.mark.parametrize("engine", ["object", "fast"])
    def test_preemption_on_last_epoch_cycle_keeps_bits(self, engine):
        """Ts = 255 at 8 bits: every in-epoch Tc is <= Ts, so the scan
        clears nothing and the task's visibility survives intact."""
        system = TimeCacheSystem(
            _with_engine(tiny_config(timestamp_bits=8), engine)
        )
        system.context_switch(None, 1, ctx=0, now=0)
        system.load(0, 0x1000, now=200)  # Tc = 200
        system.context_switch(1, 2, ctx=0, now=255)  # Ts = 2**8 - 1
        cost = system.context_switch(2, 1, ctx=0, now=255)  # same cycle
        assert not cost.rollover_reset
        r = system.load(0, 0x1000, now=255)
        assert not r.first_access

    @pytest.mark.parametrize("engine", ["object", "fast"])
    def test_line_filled_at_exact_preemption_time_keeps_bit(self, engine):
        """Tc == Ts at the epoch boundary: a line (re)filled in the very
        cycle of the switch is *not* cleared — the comparison is strictly
        ``Tc > Ts``."""
        system = TimeCacheSystem(
            _with_engine(tiny_config(timestamp_bits=8), engine)
        )
        system.context_switch(None, 1, ctx=0, now=0)
        system.load(0, 0x1000, now=255)  # Tc = 255 == upcoming Ts
        system.context_switch(1, 2, ctx=0, now=255)
        system.context_switch(2, 1, ctx=0, now=255)
        r = system.load(0, 0x1000, now=255)
        assert not r.first_access

    def test_refill_one_cycle_later_is_cleared(self):
        """The contrast case: Tc = Ts + 1 (same epoch) must be cleared.
        With Ts mid-epoch this isolates the strict comparison without a
        rollover reset masking it."""
        system = TimeCacheSystem(tiny_config(timestamp_bits=8))
        system.context_switch(None, 1, ctx=0, now=0)
        system.load(0, 0x1000, now=10)
        system.context_switch(1, 2, ctx=0, now=100)  # Ts = 100
        system.flush(0, 0x1000, now=100)
        system.load(0, 0x1000, now=101)  # Tc = 101 > Ts
        system.context_switch(2, 1, ctx=0, now=150)
        r = system.load(0, 0x1000, now=151)
        assert r.first_access

    def test_refill_at_exact_preemption_time_keeps_bit_mid_epoch(self):
        """Same contrast pair away from the boundary: a victim refill at
        exactly Ts leaves the stale s-bit in place (equality keeps)."""
        system = TimeCacheSystem(tiny_config(timestamp_bits=8))
        system.context_switch(None, 1, ctx=0, now=0)
        system.load(0, 0x1000, now=10)
        system.context_switch(1, 2, ctx=0, now=100)  # Ts = 100
        system.flush(0, 0x1000, now=100)
        system.load(0, 0x1000, now=100)  # Tc = 100 == Ts
        system.context_switch(2, 1, ctx=0, now=150)
        r = system.load(0, 0x1000, now=151)
        assert not r.first_access


class TestGateLevelPath:
    def test_gate_level_comparator_gives_same_behavior(self):
        results = []
        for gate in (False, True):
            system = TimeCacheSystem(
                tiny_config(gate_level_comparator=gate, timestamp_bits=8)
            )
            system.context_switch(None, 1, ctx=0, now=0)
            system.load(0, 0x1000, now=10)
            system.context_switch(1, 2, ctx=0, now=50)
            system.flush(0, 0x1000, now=60)
            system.load(0, 0x1000, now=70)
            system.context_switch(2, 1, ctx=0, now=90)
            r = system.load(0, 0x1000, now=100)
            results.append((r.first_access, r.latency))
        assert results[0] == results[1]

    def test_transposed_view_matches_cache_tc(self):
        system = TimeCacheSystem(tiny_config(timestamp_bits=8))
        system.load(0, 0x1000, now=5)
        system.load(0, 0x2000, now=9)
        llc = system.hierarchy.llc
        sram = system.context_engine.build_transposed_view(llc)
        assert np.array_equal(sram.dump_words(), llc.tc.reshape(-1))

    def test_save_restore_transfer_counts(self):
        system = TimeCacheSystem(tiny_config())
        transfers = system.context_engine.save_restore_transfers()
        # tiny caches: 1 KiB L1 = 16 lines = 2 bytes -> 1 transfer each
        assert all(t >= 1 for t in transfers)
        assert len(transfers) == 3  # L1I, L1D, LLC
