"""Tests for the sweep drivers and attack scaffolding helpers."""

import pytest

from repro.analysis.runner import llc_sensitivity_sweep, single_config
from repro.attacks.base import AttackOutcome, hit_threshold

from tests.conftest import tiny_config


def test_single_config_valid():
    cfg = single_config(llc_kib=64, num_cores=2)
    cfg.validate()
    assert cfg.hierarchy.num_cores == 2
    assert cfg.hierarchy.llc.size_bytes == 64 * 1024


def test_llc_sweep_structure():
    sweep = llc_sensitivity_sweep(
        pairs=[("namd", "namd")],
        llc_sizes_kib=(16, 32),
        instructions=5_000,
    )
    assert set(sweep) == {16, 32}
    for results in sweep.values():
        assert len(results) == 1
        assert results[0].label == "2Xnamd"


class TestHitThreshold:
    def test_sits_between_hit_and_miss_paths(self):
        cfg = tiny_config()
        lat = cfg.hierarchy.latency
        threshold = hit_threshold(cfg)
        assert lat.l1_hit + lat.l2_hit < threshold < lat.dram


class TestAttackOutcome:
    def test_hit_fraction(self):
        outcome = AttackOutcome(probe_hits=3, probe_total=4)
        assert outcome.hit_fraction == 0.75
        assert outcome.verdict()

    def test_empty_outcome(self):
        outcome = AttackOutcome(probe_hits=0, probe_total=0)
        assert outcome.hit_fraction == 0.0
        assert not outcome.verdict()


class TestPartitionGeometry:
    def test_last_domain_absorbs_remainder_ways(self):
        from repro.core.timecache import TimeCacheSystem

        system = TimeCacheSystem(tiny_config().with_partitioning(domains=3))
        hier = system.hierarchy  # 8 LLC ways across 3 domains: 2+2+4
        assert list(hier.domain_ways(0)) == [0, 1]
        assert list(hier.domain_ways(1)) == [2, 3]
        assert list(hier.domain_ways(2)) == [4, 5, 6, 7]

    def test_all_ways_covered_exactly_once(self):
        from repro.core.timecache import TimeCacheSystem

        system = TimeCacheSystem(tiny_config().with_partitioning(domains=3))
        hier = system.hierarchy
        covered = []
        for domain in range(3):
            covered.extend(hier.domain_ways(domain))
        assert sorted(covered) == list(range(hier.llc.ways))


def test_choose_victim_in_rejects_empty_range():
    from repro.common.errors import SimulationError
    from repro.memsys.cacheset import CacheSet
    from repro.memsys.line import LineState
    from repro.memsys.replacement import LruPolicy

    cset = CacheSet(0, ways=4, policy=LruPolicy(4))
    for way in range(4):
        cset.install(way, tag=way, now=way, state=LineState.SHARED)
    with pytest.raises(SimulationError):
        cset.choose_victim_in(range(0, 0), now=10)


def test_choose_victim_in_prefers_free_allowed_way():
    from repro.memsys.cacheset import CacheSet
    from repro.memsys.line import LineState
    from repro.memsys.replacement import LruPolicy

    cset = CacheSet(0, ways=4, policy=LruPolicy(4))
    cset.install(0, tag=9, now=0, state=LineState.SHARED)
    assert cset.choose_victim_in(range(0, 2), now=1) == 1  # the free one


def test_choose_victim_in_lru_within_allowed():
    from repro.memsys.cacheset import CacheSet
    from repro.memsys.line import LineState
    from repro.memsys.replacement import LruPolicy

    cset = CacheSet(0, ways=4, policy=LruPolicy(4))
    for way, touch in zip(range(4), [5, 1, 9, 0]):
        cset.install(way, tag=way, now=touch, state=LineState.SHARED)
    # globally way 3 is LRU (touch 0), but outside the allowed range
    assert cset.choose_victim_in(range(0, 2), now=10) == 1


class TestBatchedReplay:
    """The batched-replay driver: batch/scalar and engine equivalence,
    serial vs parallel sweep equivalence (``--jobs N``)."""

    def test_run_is_invariant_to_batching_and_engine(self):
        from repro.analysis.runner import batched_replay_run

        runs = {
            (engine, batch): batched_replay_run(
                accesses=1_500, engine=engine, batch=batch
            )
            for engine in ("object", "fast")
            for batch in (True, False)
        }
        reference = runs[("object", False)]
        for key, run in runs.items():
            assert run == reference, f"batched replay diverges for {key}"

    def test_run_shape(self):
        from repro.analysis.runner import batched_replay_run

        run = batched_replay_run(accesses=800)
        assert run["accesses"] == 800
        assert sum(run["levels"].values()) == 800
        assert run["final_now"] > 800  # every access costs >= 1 cycle

    def test_sweep_parallel_equals_serial(self):
        from repro.analysis.runner import batched_replay_sweep

        serial = batched_replay_sweep(cells=3, accesses=1_000, jobs=1)
        parallel = batched_replay_sweep(cells=3, accesses=1_000, jobs=2)
        assert serial == parallel
        # distinct seeds -> the cells are genuinely different traces
        assert serial[0] != serial[1]
