"""The perf benchmark harness: output files, baseline gate, CLI."""

import json
import os

import pytest

from repro.analysis.bench import (
    BENCHMARKS,
    BenchResult,
    bench_sweep_parallel,
    compare_to_baseline,
    load_baseline,
    machine_metadata,
    profile_benchmarks,
    run_benchmarks,
    write_baseline,
    write_results,
)
from repro.analysis.cli import main


def _fake_results():
    return {
        "single_config": BenchResult("single_config", runs=[0.5, 0.4, 0.6]),
        "comparator": BenchResult("comparator", runs=[0.010]),
    }


class TestComparisonLogic:
    def test_regression_over_threshold_fails(self):
        results = _fake_results()
        baseline = {"single_config": 0.3, "comparator": 0.009}
        regressions = compare_to_baseline(results, baseline, threshold=0.20)
        # 0.5 vs 0.3 is a 1.67x slowdown; 0.010 vs 0.009 is within 20%.
        assert len(regressions) == 1
        assert "single_config" in regressions[0]

    def test_within_threshold_passes(self):
        results = _fake_results()
        baseline = {"single_config": 0.45, "comparator": 0.010}
        assert compare_to_baseline(results, baseline, threshold=0.20) == []

    def test_benches_missing_from_baseline_are_ignored(self):
        results = _fake_results()
        assert compare_to_baseline(results, {}, threshold=0.20) == []

    def test_boundary_is_strictly_greater(self):
        results = {"x": BenchResult("x", runs=[1.2])}
        assert compare_to_baseline(results, {"x": 1.0}, threshold=0.20) == []
        results = {"x": BenchResult("x", runs=[1.21])}
        assert compare_to_baseline(results, {"x": 1.0}, threshold=0.20)

    def test_baseline_roundtrip(self, tmp_path):
        path = write_baseline(_fake_results(), tmp_path / "BASELINE.json")
        baseline = load_baseline(path)
        assert baseline["single_config"] == pytest.approx(0.5)
        assert baseline["comparator"] == pytest.approx(0.010)

    def test_load_rejects_non_baseline_files(self, tmp_path):
        bogus = tmp_path / "x.json"
        bogus.write_text(json.dumps({"kind": "something_else"}))
        with pytest.raises(ValueError, match="not a bench baseline"):
            load_baseline(bogus)


class TestOutputFiles:
    def test_write_results_one_file_per_bench(self, tmp_path):
        paths = write_results(_fake_results(), tmp_path)
        names = sorted(p.name for p in paths)
        assert names == ["BENCH_comparator.json", "BENCH_single_config.json"]
        payload = json.loads((tmp_path / "BENCH_single_config.json").read_text())
        assert payload["name"] == "single_config"
        assert payload["median_s"] == pytest.approx(0.5)
        assert payload["runs"] == [0.5, 0.4, 0.6]
        assert payload["meta"]["cpu_count"] >= 1
        assert payload["meta"]["python"]

    def test_machine_metadata_fields(self):
        meta = machine_metadata()
        for key in ("python", "platform", "machine", "cpu_count", "taken_at"):
            assert key in meta

    def test_registry_covers_required_workloads(self):
        assert set(BENCHMARKS) >= {
            "single_config",
            "comparator",
            "hierarchy_access",
            "hierarchy_access_batched",
            "sweep_parallel",
            "fill_kernel",
            "evict_kernel",
            "sbit_miss_kernel",
        }

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown benchmark"):
            run_benchmarks(names=["nope"])


class TestRealWorkloads:
    def test_comparator_bench_runs(self):
        result = run_benchmarks(names=["comparator"], quick=True)["comparator"]
        assert result.median_s > 0
        # the vectorized path must beat the gate-level scan decisively
        assert result.extra["fast_speedup"] > 1.0

    def test_sweep_parallel_bench_records_speedup(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        result = run_benchmarks(
            names=["sweep_parallel"], quick=True, jobs=2
        )["sweep_parallel"]
        assert result.skipped is None
        assert result.extra["jobs"] == 2.0
        assert result.extra["serial_median_s"] > 0
        assert result.extra["parallel_median_s"] > 0
        assert result.extra["speedup"] > 0

    def test_sweep_parallel_skips_on_single_cpu(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        result = bench_sweep_parallel(quick=True, jobs=2)
        assert result.skipped == "insufficient_cpus"
        assert result.runs == []
        assert result.median_s == 0.0
        assert result.extra["cpus"] == 1.0

    def test_sweep_parallel_skips_with_one_worker(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        result = bench_sweep_parallel(quick=True, jobs=1)
        assert result.skipped == "insufficient_cpus"


class TestBatchedBench:
    def test_batched_arm_runs_and_records_throughput(self):
        result = run_benchmarks(
            names=["hierarchy_access_batched"], quick=True
        )["hierarchy_access_batched"]
        assert result.median_s > 0
        assert result.extra["accesses"] > 0
        assert result.extra["accesses_per_s"] > 0
        assert result.extra["scalar_median_s"] > 0
        assert result.extra["batch_speedup"] > 0

    def test_batched_arm_is_engine_aware(self):
        results = run_benchmarks(
            names=["hierarchy_access_batched"], quick=True, engine="fast"
        )
        assert list(results) == ["hierarchy_access_batched_fast"]
        fast = results["hierarchy_access_batched_fast"]
        # Quick mode on a loaded machine is too noisy to assert the
        # full >1x batch speedup here — the committed-baseline gate
        # owns the real perf bar; this only catches a catastrophically
        # broken batch path.
        assert fast.extra["batch_speedup"] > 0.3


class TestKernelArms:
    @pytest.mark.parametrize(
        "name", ["fill_kernel", "evict_kernel", "sbit_miss_kernel"]
    )
    def test_kernel_arm_records_event_rate(self, name):
        result = run_benchmarks(names=[name], quick=True)[name]
        assert result.median_s > 0
        assert result.extra["events"] > 0
        assert result.extra["events_per_s"] > 0

    @pytest.mark.parametrize("engine", ["object", "fast"])
    def test_fill_kernel_records_phase_breakdown(self, engine):
        results = run_benchmarks(names=["fill_kernel"], quick=True, engine=engine)
        result = next(iter(results.values()))
        assert result.extra["phase_total_s"] > 0
        shares = [
            result.extra[f"phase_share_{p}"]
            for p in ("classify", "plan", "rehearse", "apply", "fallback")
        ]
        assert sum(shares) == pytest.approx(1.0, abs=0.01)
        if engine == "fast":
            assert result.extra["phase_windows"] > 0
            # the kernel retires the batch; phase time lives in the pipeline
            assert result.extra["phase_share_fallback"] < 0.5
        else:
            # the object engine's scalar loop is all fallback, by design
            assert result.extra["phase_share_fallback"] == pytest.approx(1.0)

    def test_render_shows_phase_breakdown(self):
        from repro.analysis.bench import render_results

        result = BenchResult(
            "fill_kernel",
            runs=[0.5],
            extra={
                "events": 100.0,
                "events_per_s": 200.0,
                "phase_total_s": 0.4,
                "phase_share_plan": 0.25,
                "phase_share_apply": 0.75,
            },
        )
        out = render_results({"fill_kernel": result})
        assert "phases (0.4000s)" in out
        assert "plan 25%" in out
        assert "apply 75%" in out

    def test_kernel_arms_are_engine_aware(self):
        results = run_benchmarks(
            names=["sbit_miss_kernel"], quick=True, engine="fast"
        )
        assert list(results) == ["sbit_miss_kernel_fast"]
        assert results["sbit_miss_kernel_fast"].extra["events_per_s"] > 0

    def test_render_shows_event_rate(self):
        from repro.analysis.bench import render_results

        result = BenchResult(
            "fill_kernel",
            runs=[0.5],
            extra={"events": 1000.0, "events_per_s": 2000.0},
        )
        out = render_results({"fill_kernel": result})
        assert "2,000 events/s" in out

    def test_render_flags_slow_batching(self):
        from repro.analysis.bench import render_results

        result = BenchResult(
            "hierarchy_access_batched",
            runs=[0.5],
            extra={"accesses_per_s": 1.0, "batch_speedup": 0.82},
        )
        out = render_results({"hierarchy_access_batched": result})
        assert "SLOWER" in out
        assert "0.82x" in out
        assert "benchmarks/perf/README.md" in out

    def test_render_no_flag_when_batching_wins(self):
        from repro.analysis.bench import render_results

        result = BenchResult(
            "hierarchy_access_batched_fast",
            runs=[0.5],
            extra={"accesses_per_s": 1.0, "batch_speedup": 2.4},
        )
        out = render_results({"hierarchy_access_batched_fast": result})
        assert "SLOWER" not in out


class TestEngineSelection:
    def test_engine_aware_benches_get_fast_suffix(self):
        results = run_benchmarks(
            names=["hierarchy_access"], quick=True, engine="fast"
        )
        assert list(results) == ["hierarchy_access_fast"]
        assert results["hierarchy_access_fast"].name == "hierarchy_access_fast"
        assert results["hierarchy_access_fast"].median_s > 0

    def test_engine_agnostic_benches_keep_their_name(self):
        results = run_benchmarks(
            names=["comparator"], quick=True, engine="fast"
        )
        assert list(results) == ["comparator"]

    def test_object_engine_keeps_plain_names(self):
        results = run_benchmarks(
            names=["hierarchy_access"], quick=True, engine="object"
        )
        assert list(results) == ["hierarchy_access"]


class TestSkippedResults:
    def _skipped(self):
        return BenchResult(
            "sweep_parallel",
            runs=[],
            extra={"cpus": 1.0},
            skipped="insufficient_cpus",
        )

    def test_compare_ignores_skipped_results(self):
        results = {"sweep_parallel": self._skipped()}
        baseline = {"sweep_parallel": 0.5}
        assert compare_to_baseline(results, baseline, threshold=0.20) == []

    def test_load_baseline_drops_skipped_entries(self, tmp_path):
        results = {
            "sweep_parallel": self._skipped(),
            "comparator": BenchResult("comparator", runs=[0.010]),
        }
        path = write_baseline(results, tmp_path / "BASELINE.json")
        assert load_baseline(path) == {"comparator": pytest.approx(0.010)}

    def test_skipped_reason_serialized(self, tmp_path):
        paths = write_results({"sweep_parallel": self._skipped()}, tmp_path)
        payload = json.loads(paths[0].read_text())
        assert payload["skipped"] == "insufficient_cpus"
        assert payload["median_s"] == 0.0


class TestProfile:
    def test_profile_writes_pstats_dump(self, tmp_path):
        import pstats

        paths = profile_benchmarks(
            names=["comparator"], quick=True, output_dir=tmp_path
        )
        assert [p.name for p in paths] == ["BENCH_profile_comparator.pstats"]
        stats = pstats.Stats(str(paths[0]))
        assert stats.total_calls > 0

    def test_profile_cli_flag(self, tmp_path, capsys):
        rc = main(
            [
                "bench",
                "--quick",
                "--only",
                "comparator",
                "--profile",
                "--output-dir",
                str(tmp_path),
            ]
        )
        assert rc == 0
        assert (tmp_path / "BENCH_profile_comparator.pstats").exists()
        assert "pstats" in capsys.readouterr().out


class TestBenchCli:
    def test_bench_writes_files_and_succeeds(self, tmp_path, capsys):
        rc = main(
            [
                "bench",
                "--quick",
                "--only",
                "comparator",
                "--output-dir",
                str(tmp_path),
            ]
        )
        assert rc == 0
        assert (tmp_path / "BENCH_comparator.json").exists()
        assert "comparator" in capsys.readouterr().out

    def test_bench_fails_on_regression(self, tmp_path, capsys):
        baseline = tmp_path / "BASELINE.json"
        write_baseline(
            {"comparator": BenchResult("comparator", runs=[1e-12])}, baseline
        )
        rc = main(
            [
                "bench",
                "--quick",
                "--only",
                "comparator",
                "--output-dir",
                str(tmp_path),
                "--baseline",
                str(baseline),
            ]
        )
        assert rc == 1
        assert "REGRESSION" in capsys.readouterr().err

    def test_warn_only_downgrades_regression(self, tmp_path, capsys):
        baseline = tmp_path / "BASELINE.json"
        write_baseline(
            {"comparator": BenchResult("comparator", runs=[1e-12])}, baseline
        )
        rc = main(
            [
                "bench",
                "--quick",
                "--only",
                "comparator",
                "--output-dir",
                str(tmp_path),
                "--baseline",
                str(baseline),
                "--warn-only",
            ]
        )
        assert rc == 0
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.err
        assert "warn-only" in captured.out

    def test_write_baseline_flag(self, tmp_path):
        target = tmp_path / "NEW_BASELINE.json"
        rc = main(
            [
                "bench",
                "--quick",
                "--only",
                "comparator",
                "--output-dir",
                str(tmp_path),
                "--write-baseline",
                str(target),
            ]
        )
        assert rc == 0
        assert "comparator" in load_baseline(target)
