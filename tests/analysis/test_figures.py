"""Tests for the ASCII figure renderers."""

from repro.analysis.figures import (
    ascii_bars,
    figure7,
    figure10,
    latency_histogram_ascii,
)


def test_ascii_bars_basic():
    text = ascii_bars("T", [("a", 2.0), ("b", 1.0)], width=10)
    assert "T" in text
    lines = text.splitlines()
    assert len(lines) == 4  # title, rule, two rows
    # larger value gets the longer bar
    assert lines[2].count("#") > lines[3].count("#")


def test_ascii_bars_baseline_subtraction():
    text = ascii_bars("T", [("a", 1.02), ("b", 1.01)], baseline=1.0)
    a_row = [l for l in text.splitlines() if l.startswith("a")][0]
    b_row = [l for l in text.splitlines() if l.startswith("b")][0]
    assert a_row.count("#") > b_row.count("#")


def test_ascii_bars_empty():
    assert "(no data)" in ascii_bars("T", [])


def test_ascii_bars_zero_delta_rows_have_no_bar():
    text = ascii_bars("T", [("a", 1.0), ("b", 1.5)], baseline=1.0)
    a_row = [l for l in text.splitlines() if l.startswith("a")][0]
    assert "#" not in a_row


class FakeResult:
    def __init__(self, label, normalized_time):
        self.label = label
        self.normalized_time = normalized_time


def test_figure7_and_10_render():
    results = [FakeResult("2Xlbm", 1.0039), FakeResult("2Xwrf", 1.0135)]
    text = figure7(results)
    assert "Figure 7" in text and "2Xlbm" in text
    text10 = figure10([("2MB", 1.0113), ("8MB", 1.001)])
    assert "Figure 10" in text10 and "2MB" in text10


def test_latency_histogram():
    text = latency_histogram_ascii(
        "lat", [2, 2, 2, 22, 222, 222], edges=[10, 100]
    )
    assert "<= 10" in text and "> 100" in text
    assert text.splitlines()[2].count("#") > 0
