"""Tests for the experiment harness (small workloads, full pipeline)."""

import pytest

from repro.analysis.experiment import (
    run_parsec_experiment,
    run_spec_pair_experiment,
)
from repro.analysis.tables import (
    render_figure_series,
    render_mpki_table,
    render_table2,
    summarize_overheads,
)

from tests.conftest import tiny_config


@pytest.fixture(scope="module")
def spec_result():
    return run_spec_pair_experiment(
        tiny_config(quantum=3_000), "namd", "namd", instructions=6_000
    )


@pytest.fixture(scope="module")
def parsec_result():
    return run_parsec_experiment(
        tiny_config(num_cores=2), "swaptions", instructions_per_thread=5_000
    )


class TestSpecExperiment:
    def test_runs_both_configurations(self, spec_result):
        assert spec_result.baseline.cycles > 0
        assert spec_result.timecache.cycles > 0
        assert spec_result.label == "2Xnamd"

    def test_identical_work_both_sides(self, spec_result):
        assert (
            spec_result.baseline.instructions
            == spec_result.timecache.instructions
        )

    def test_timecache_never_faster(self, spec_result):
        """Same instruction stream; the defense only adds delay."""
        assert spec_result.normalized_time >= 1.0

    def test_first_access_misses_only_under_timecache(self, spec_result):
        base_fa = sum(
            lvl.first_access_misses
            for lvl in spec_result.baseline.level_mpki.values()
        )
        tc_fa = sum(
            lvl.first_access_misses
            for lvl in spec_result.timecache.level_mpki.values()
        )
        assert base_fa == 0.0
        assert tc_fa > 0.0

    def test_mpki_increases_under_timecache(self, spec_result):
        assert spec_result.timecache.llc_mpki >= spec_result.baseline.llc_mpki

    def test_bookkeeping_is_small_share(self, spec_result):
        assert 0.0 <= spec_result.bookkeeping_fraction < 0.05


class TestParsecExperiment:
    def test_no_l1_first_accesses(self, parsec_result):
        tc = parsec_result.timecache.level_mpki
        assert tc["L1I"].first_access_misses == 0.0
        assert tc["L1D"].first_access_misses == 0.0

    def test_llc_first_accesses_exist(self, parsec_result):
        assert parsec_result.timecache.llc_first_access_mpki > 0.0

    def test_overhead_nonnegative(self, parsec_result):
        assert parsec_result.normalized_time >= 1.0


class TestRenderers:
    def test_table2_contains_rows_and_geomean(self, spec_result):
        text = render_table2([spec_result])
        assert "2Xnamd" in text
        assert "geomean" in text

    def test_table2_with_paper_columns(self, spec_result):
        text = render_table2(
            [spec_result], paper={"2Xnamd": (1.0108, 0.1623, 0.2181)}
        )
        assert "1.0108" in text

    def test_mpki_table(self, parsec_result):
        text = render_mpki_table([parsec_result])
        assert "LLC fa-MPKI" in text
        assert "swaptions" in text

    def test_figure_series(self):
        text = render_figure_series("Fig 10", [("2MB", 1.0113), ("4MB", 1.004)])
        assert "Fig 10" in text and "2MB" in text

    def test_summary_aggregates(self, spec_result):
        summary = summarize_overheads([spec_result])
        assert summary["geomean_normalized_time"] >= 1.0
        assert summary["max_overhead"] >= 0.0
        assert 0 <= summary["mean_bookkeeping_fraction"] < 1
