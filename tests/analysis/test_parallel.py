"""The parallel sweep executor: equivalence, resume, failure propagation.

The load-bearing correctness check for the process-pool layer is
serial/parallel *equivalence*: the same seeds must produce byte-identical
exported tables and checkpoints whether cells run in-process one by one
or out of order across workers.
"""

import json

import pytest

from repro.analysis.experiment import ExperimentJob, run_experiment_job
from repro.analysis.export import (
    export_outcome,
    result_from_dict,
    result_to_dict,
    sweep_to_dict,
)
from repro.analysis.parallel import (
    ParallelSweepExecutor,
    SweepJob,
    derive_job_seed,
    resolve_jobs,
)
from repro.analysis.runner import (
    llc_sensitivity_sweep,
    resilient_spec_pair_sweep,
    spec_pair_sweep,
)
from repro.common.config import scaled_experiment_config
from repro.common.errors import SweepExecutionError
from repro.robustness.campaign import run_injection_uncaught
from repro.robustness.resilience import Checkpoint
from repro.workloads.mixes import pair_label

PAIRS = [("wrf", "wrf"), ("milc", "milc")]
INSTRUCTIONS = 2_000


def _sweep_bytes(results) -> bytes:
    return json.dumps(sweep_to_dict(results), sort_keys=True).encode()


class TestSerialParallelEquivalence:
    def test_spec_pair_sweep_tables_identical(self):
        serial = spec_pair_sweep(pairs=PAIRS, instructions=INSTRUCTIONS, jobs=1)
        parallel = spec_pair_sweep(pairs=PAIRS, instructions=INSTRUCTIONS, jobs=2)
        assert _sweep_bytes(serial) == _sweep_bytes(parallel)

    def test_llc_sweep_identical_across_grid(self):
        serial = llc_sensitivity_sweep(
            pairs=PAIRS[:1],
            llc_sizes_kib=(32, 64),
            instructions=INSTRUCTIONS,
            jobs=1,
        )
        parallel = llc_sensitivity_sweep(
            pairs=PAIRS[:1],
            llc_sizes_kib=(32, 64),
            instructions=INSTRUCTIONS,
            jobs=2,
        )
        assert sorted(serial) == sorted(parallel)
        for kib in serial:
            assert _sweep_bytes(serial[kib]) == _sweep_bytes(parallel[kib])

    def test_checkpoints_byte_identical(self, tmp_path):
        paths = {}
        for jobs in (1, 2):
            path = tmp_path / f"ck{jobs}.json"
            outcome = resilient_spec_pair_sweep(
                pairs=PAIRS,
                instructions=INSTRUCTIONS,
                checkpoint_path=path,
                jobs=jobs,
            )
            assert outcome.complete
            paths[jobs] = path.read_bytes()
        assert paths[1] == paths[2]

    def test_exported_outcome_byte_identical(self, tmp_path):
        labels = [pair_label(a, b) for a, b in PAIRS]
        blobs = {}
        for jobs in (1, 2):
            outcome = resilient_spec_pair_sweep(
                pairs=PAIRS, instructions=INSTRUCTIONS, jobs=jobs
            )
            target = tmp_path / f"out{jobs}.json"
            export_outcome(outcome, labels, target)
            blobs[jobs] = target.read_bytes()
        assert blobs[1] == blobs[2]


class TestResume:
    def test_resume_after_kill_with_two_workers(self, tmp_path):
        """A partially-written checkpoint (what a killed run leaves
        behind) resumes under --jobs 2: completed cells load, missing
        cells re-run, and the final file matches an uninterrupted run."""
        path = tmp_path / "ck.json"
        outcome = resilient_spec_pair_sweep(
            pairs=PAIRS, instructions=INSTRUCTIONS, checkpoint_path=path, jobs=2
        )
        assert outcome.complete
        full = path.read_bytes()

        # Simulate the kill: drop one completed cell from the checkpoint
        # (resealing the checksum — this models a checkpoint that was
        # legitimately written before the kill, not a corrupt one; the
        # corrupt case is covered by tests/robustness/test_safeio.py).
        from repro.robustness import safeio

        payload = json.loads(full)
        killed_label = pair_label(*PAIRS[1])
        del payload["completed"][killed_label]
        path.write_text(json.dumps(safeio.seal(payload)))
        safeio.backup_path(path).unlink()

        resumed = resilient_spec_pair_sweep(
            pairs=PAIRS, instructions=INSTRUCTIONS, checkpoint_path=path, jobs=2
        )
        assert resumed.complete
        assert resumed.resumed == [pair_label(*PAIRS[0])]
        assert path.read_bytes() == full

    def test_fully_complete_checkpoint_runs_nothing(self, tmp_path):
        path = tmp_path / "ck.json"
        resilient_spec_pair_sweep(
            pairs=PAIRS, instructions=INSTRUCTIONS, checkpoint_path=path, jobs=2
        )
        again = resilient_spec_pair_sweep(
            pairs=PAIRS, instructions=INSTRUCTIONS, checkpoint_path=path, jobs=2
        )
        assert sorted(again.resumed) == sorted(pair_label(a, b) for a, b in PAIRS)


class TestFailurePropagation:
    # sbit-corruption at seed 0 deterministically raises
    # InvariantViolation (verified by the fault-campaign tests); any
    # change there will fail this test loudly, not silently.
    DETECTED = ("sbit-corruption", 0)

    def test_invariant_violation_from_child_is_recorded(self):
        model, seed = self.DETECTED
        executor = ParallelSweepExecutor(2, retries=0)
        outcome = executor.run(
            [
                SweepJob("inject", run_injection_uncaught, (model, seed)),
                # a trivially-succeeding picklable job riding along
                SweepJob("clean", derive_job_seed, (1, "x")),
            ]
        )
        assert "clean" in outcome.results
        (failure,) = outcome.failures
        assert failure.label == "inject"
        assert failure.error_type == "InvariantViolation"
        assert failure.message  # the diagnostic detail survived the pool

    def test_map_raises_sweep_execution_error(self):
        model, seed = self.DETECTED
        executor = ParallelSweepExecutor(2, retries=0)
        with pytest.raises(SweepExecutionError, match="InvariantViolation"):
            executor.map([SweepJob("inject", run_injection_uncaught, (model, seed))])

    def test_failure_lands_in_checkpoint(self, tmp_path):
        model, seed = self.DETECTED
        path = tmp_path / "ck.json"
        checkpoint = Checkpoint(
            path, serialize=result_to_dict, deserialize=result_from_dict
        )
        executor = ParallelSweepExecutor(2, retries=0, checkpoint=checkpoint)
        executor.run([SweepJob("inject", run_injection_uncaught, (model, seed))])
        payload = json.loads(path.read_text())
        (record,) = payload["failures"]
        assert record["label"] == "inject"
        assert record["error_type"] == "InvariantViolation"


class TestExecutorContract:
    def test_duplicate_labels_rejected(self):
        job = SweepJob("same", run_injection_uncaught, ("sbit-corruption", 0))
        with pytest.raises(ValueError, match="unique"):
            ParallelSweepExecutor(2).run([job, job])

    def test_derived_seeds_deterministic_and_distinct(self):
        assert derive_job_seed(7, "a") == derive_job_seed(7, "a")
        assert derive_job_seed(7, "a") != derive_job_seed(7, "b")
        assert derive_job_seed(7, "a") != derive_job_seed(8, "a")

    def test_resolve_jobs(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(0) == 1
        assert resolve_jobs(4) == 4
        assert resolve_jobs(None) >= 1

    def test_ordered_reassembly(self):
        config = scaled_experiment_config(num_cores=1, llc_kib=32, seed=1)
        jobs = []
        for a, b in [("milc", "milc"), ("wrf", "wrf"), ("gobmk", "gobmk")]:
            label = pair_label(a, b)
            spec = ExperimentJob(
                kind="spec_pair",
                label=label,
                config=config,
                args=(a, b),
                kwargs={"instructions": INSTRUCTIONS, "seed": 1},
            )
            jobs.append(SweepJob(label, run_experiment_job, (spec,)))
        outcome = ParallelSweepExecutor(2, retries=0).run(jobs)
        assert list(outcome.results) == [j.label for j in jobs]
