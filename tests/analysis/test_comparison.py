"""Tests for the three-way defense comparison harness."""

import pytest

from repro.analysis.comparison import compare_defenses

from tests.conftest import tiny_config


@pytest.fixture(scope="module")
def comparison():
    return compare_defenses(
        tiny_config(quantum=4_000),
        bench_a="perlbench",
        bench_b="perlbench",
        instructions=12_000,
    )


def test_all_three_configurations_ran(comparison):
    assert set(comparison.reports) == {"baseline", "timecache", "partition"}
    for report in comparison.reports.values():
        assert report.run.instructions > 0


def test_baseline_leaks_and_defenses_block(comparison):
    assert comparison.reports["baseline"].attack_hits > 0
    assert comparison.reports["timecache"].secure
    assert comparison.reports["partition"].secure


def test_both_defenses_cost_time(comparison):
    assert comparison.overhead("timecache") >= 0.0
    assert comparison.overhead("partition") >= 0.0
    assert comparison.normalized_time("baseline") == 1.0


def test_render_mentions_everything(comparison):
    text = comparison.render()
    assert "2Xperlbench" in text
    assert "timecache" in text and "partition" in text
    assert "blocked" in text
