"""Tests for JSON export of experiment results."""

import pytest

from repro.analysis.comparison import compare_defenses
from repro.analysis.experiment import run_spec_pair_experiment
from repro.analysis.export import (
    comparison_to_dict,
    export_sweep,
    load_json,
    result_to_dict,
    save_json,
    summarize_json,
    sweep_to_dict,
)

from tests.conftest import tiny_config


@pytest.fixture(scope="module")
def result():
    return run_spec_pair_experiment(
        tiny_config(quantum=4_000), "namd", "namd", instructions=6_000
    )


def test_result_dict_schema(result):
    payload = result_to_dict(result)
    assert payload["label"] == "2Xnamd"
    assert payload["normalized_time"] >= 1.0
    assert set(payload["baseline"]["levels"]) == {"L1I", "L1D", "LLC"}
    assert payload["timecache"]["instructions"] > 0


def test_sweep_roundtrip(tmp_path, result):
    path = export_sweep([result], tmp_path / "sweep.json")
    loaded = load_json(path)
    assert loaded["kind"] == "spec_sweep"
    assert loaded["results"][0]["label"] == "2Xnamd"


def test_sweep_is_valid_json(tmp_path, result):
    import json

    path = export_sweep([result], tmp_path / "sweep.json")
    with open(path) as handle:
        json.load(handle)  # must parse cleanly


def test_schema_version_enforced(tmp_path):
    save_json({"schema": 99}, tmp_path / "bad.json")
    with pytest.raises(ValueError):
        load_json(tmp_path / "bad.json")


def test_summarize_json(result):
    payload = sweep_to_dict([result])
    summary = summarize_json(payload)
    assert summary["count"] == 1
    assert summary["geomean_normalized_time"] == result.normalized_time


def test_summarize_empty():
    assert summarize_json({"results": []}) == {"count": 0}


def test_comparison_export():
    comparison = compare_defenses(
        tiny_config(quantum=4_000),
        bench_a="namd",
        bench_b="namd",
        instructions=6_000,
    )
    payload = comparison_to_dict(comparison)
    assert set(payload["defenses"]) == {"baseline", "timecache", "partition"}
    assert payload["defenses"]["timecache"]["secure"]
