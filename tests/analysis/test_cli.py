"""Tests for the artifact-regeneration CLI."""

import pytest

from repro.analysis.cli import build_parser, main


def test_parser_lists_all_commands():
    parser = build_parser()
    # every documented command parses
    for command in ("micro", "rsa", "table2", "fig8", "fig9", "fig10"):
        args = parser.parse_args([command] if command in ("micro", "rsa") else [command, "--pairs", "1"])
        assert args.command == command


def test_requires_a_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_micro_command_prints_both_configs(capsys):
    assert main(["--instructions", "1000", "micro"]) == 0
    out = capsys.readouterr().out
    assert "baseline" in out and "TimeCache" in out
    assert "256" in out


def test_table2_command_prints_rows(capsys):
    assert main(["--instructions", "8000", "table2", "--pairs", "2"]) == 0
    out = capsys.readouterr().out
    assert "2Xspecrand" in out
    assert "geomean" in out


def test_fig9_command_prints_parsec(capsys):
    assert main(["--instructions", "8000", "fig9", "--pairs", "1"]) == 0
    out = capsys.readouterr().out
    assert "fluidanimate" in out
    assert "fa-MPKI" in out


def test_fig10_command_prints_series(capsys):
    assert main(["--instructions", "8000", "fig10"]) == 0
    out = capsys.readouterr().out
    assert "32KiB" in out and "128KiB" in out


def test_compare_command(capsys):
    assert main(["--instructions", "8000", "compare", "--bench", "namd"]) == 0
    out = capsys.readouterr().out
    assert "timecache" in out and "partition" in out


def test_export_command(tmp_path, capsys):
    target = str(tmp_path / "out.json")
    assert (
        main(
            ["--instructions", "6000", "export", "--output", target, "--pairs", "1"]
        )
        == 0
    )
    from repro.analysis.export import load_json, summarize_json

    payload = load_json(target)
    assert summarize_json(payload)["count"] == 1


def test_table2_with_explicit_jobs(capsys):
    """--jobs 2 runs the sweep through the process pool; same output."""
    assert (
        main(["--instructions", "6000", "table2", "--pairs", "2", "--jobs", "2"])
        == 0
    )
    out = capsys.readouterr().out
    assert "2Xspecrand" in out
    assert "geomean" in out


def test_jobs_accepted_by_sweep_and_bench_commands():
    parser = build_parser()
    for argv in (
        ["table2", "--jobs", "4"],
        ["fig9", "--jobs", "1"],
        ["export", "--jobs", "2"],
        ["bench", "--quick", "--jobs", "2"],
    ):
        args = parser.parse_args(argv)
        assert args.jobs == int(argv[-1])
    # single-simulation commands deliberately have no --jobs
    import pytest

    with pytest.raises(SystemExit):
        parser.parse_args(["micro", "--jobs", "2"])


def test_export_resume_with_jobs_writes_outcome(tmp_path):
    target = str(tmp_path / "out.json")
    checkpoint = str(tmp_path / "ck.json")
    assert (
        main(
            [
                "--instructions",
                "4000",
                "export",
                "--output",
                target,
                "--pairs",
                "1",
                "--resume",
                checkpoint,
                "--jobs",
                "2",
            ]
        )
        == 0
    )
    from repro.analysis.export import load_json

    payload = load_json(target)
    assert len(payload["results"]) == 1
    assert payload["failures"] == []
