"""Keystroke-timing recovery (§II-B's cited attack class)."""

import pytest

from repro.attacks.keystroke import run_keystroke_attack
from repro.common.errors import ConfigError

from tests.conftest import tiny_config


@pytest.fixture(scope="module")
def baseline_result():
    return run_keystroke_attack(
        tiny_config(num_cores=2, enabled=False), presses=8
    )


def test_baseline_recovers_the_timeline(baseline_result):
    assert baseline_result.timeline_recovered
    assert baseline_result.recall >= 0.8
    # no huge over-detection: recovered events on the order of presses
    assert len(baseline_result.recovered_times) <= 2 * len(
        baseline_result.true_press_times
    ) + 2


def test_baseline_hits_track_presses(baseline_result):
    assert baseline_result.probe_hits > 0
    assert len(baseline_result.true_press_times) == 8


def test_timecache_recovers_nothing():
    result = run_keystroke_attack(
        tiny_config(num_cores=2, enabled=True), presses=6
    )
    assert result.probe_hits == 0
    assert result.recovered_times == []
    assert not result.timeline_recovered
    assert result.recall == 0.0


def test_needs_two_contexts():
    with pytest.raises(ConfigError):
        run_keystroke_attack(tiny_config(num_cores=1))


def test_deterministic():
    a = run_keystroke_attack(tiny_config(num_cores=2, enabled=False), presses=5)
    b = run_keystroke_attack(tiny_config(num_cores=2, enabled=False), presses=5)
    assert a.recovered_times == b.recovered_times
    assert a.true_press_times == b.true_press_times
