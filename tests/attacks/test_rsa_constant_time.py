"""The constant-time software mitigation (the paper's Section VIII-C
comparison class): key-independent fetch pattern, at a real runtime cost.
"""

import pytest

from repro.attacks.rsa import generate_key, run_rsa_attack

from tests.conftest import tiny_config


@pytest.fixture(scope="module")
def key():
    return generate_key(seed=9, prime_bits=16)


@pytest.fixture(scope="module")
def runs(key):
    cfg = tiny_config(num_cores=2, enabled=False)  # undefended cache
    normal = run_rsa_attack(cfg, key=key)
    constant = run_rsa_attack(cfg, key=key, constant_time_victim=True)
    return normal, constant


def test_constant_time_keeps_arithmetic_correct(runs):
    normal, constant = runs
    assert normal.ciphertext_ok
    assert constant.ciphertext_ok


def test_constant_time_defeats_decoding_even_without_timecache(runs):
    _, constant = runs
    # every bit shows the multiply fetch -> the decoder reads all ones,
    # learning nothing beyond the key length
    assert all(b == 1 for b in constant.recovered_bits)
    assert not constant.key_recovered or all(b == 1 for b in constant.true_bits)


def test_normal_victim_is_recoverable_control(runs):
    normal, _ = runs
    assert normal.key_recovered


def test_constant_time_costs_victim_cycles(runs):
    normal, constant = runs
    # the always-multiply transform pays the multiply+reduce on every
    # clear bit: measurable slowdown proportional to the zero fraction
    assert constant.victim_cycles > normal.victim_cycles * 1.1
