"""AttackOutcome's statistical verdict and the removed ``leaked`` alias."""

import pytest

from repro.attacks.base import DEFAULT_AUC_LEAK_CUTOFF, AttackOutcome


# ----------------------------------------------------------------------
# fallback path: no control arm, AUC implied by the hit fraction
# ----------------------------------------------------------------------
def test_leak_auc_fallback_maps_hit_fraction():
    assert AttackOutcome(0, 10).leak_auc() == pytest.approx(0.5)
    assert AttackOutcome(5, 10).leak_auc() == pytest.approx(0.75)
    assert AttackOutcome(10, 10).leak_auc() == pytest.approx(1.0)


def test_leak_auc_no_probes_is_noninformative():
    assert AttackOutcome(0, 0).leak_auc() == pytest.approx(0.5)
    assert AttackOutcome(0, 0).verdict() is False


def test_verdict_threshold_on_fallback():
    # cutoff 0.55 ⇔ hit fraction 10%: 1/10 hits sits exactly at the
    # cutoff (verdict is strict), 2/10 clears it.
    assert AttackOutcome(1, 10).verdict() is False
    assert AttackOutcome(2, 10).verdict() is True
    assert AttackOutcome(1, 10).verdict(cutoff=0.54) is True


# ----------------------------------------------------------------------
# control-arm path: real two-sample statistic
# ----------------------------------------------------------------------
def test_control_arm_overrides_hit_counting():
    # Hit counts claim a leak, but the control distribution is identical
    # to the probe distribution — no distinguishability, no leak.
    outcome = AttackOutcome(
        8, 8, latencies=[4] * 8, control_latencies=[4] * 8
    )
    assert outcome.leak_auc() == pytest.approx(0.5)
    assert outcome.verdict() is False


def test_control_arm_detects_separation_without_hits():
    # No probe classified as a "hit", yet the two distributions are
    # disjoint — exactly the case threshold counting misses.
    outcome = AttackOutcome(
        0, 8, latencies=[60] * 8, control_latencies=[90] * 8
    )
    assert outcome.leak_auc() == pytest.approx(1.0)
    assert outcome.verdict() is True


# ----------------------------------------------------------------------
# removed alias (deprecation cycle completed)
# ----------------------------------------------------------------------
def test_leaked_raises_pointing_at_verdict():
    # ``leaked`` went through a DeprecationWarning cycle and is now
    # removed; the error must name both replacements so stale callers
    # know where to go.
    outcome = AttackOutcome(7, 8)
    with pytest.raises(AttributeError, match=r"verdict\(\)") as excinfo:
        outcome.leaked
    assert "leak_auc()" in str(excinfo.value)
    assert "removed" in str(excinfo.value)


def test_leaked_raises_even_on_clean_outcomes():
    # The raise must not depend on the outcome's contents — any access
    # is a stale caller.
    with pytest.raises(AttributeError):
        AttackOutcome(0, 0).leaked


def test_default_cutoff_is_below_tournament_cutoff():
    from repro.security.stats import LEAK_AUC_CUTOFF

    assert DEFAULT_AUC_LEAK_CUTOFF < LEAK_AUC_CUTOFF
