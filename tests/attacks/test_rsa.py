"""The Section VI-A2 demonstration: RSA key extraction via flush+reload.

Baseline: the attacker recovers the private exponent's bits from the
square/multiply fetch pattern.  TimeCache: zero probe hits, nothing
recovered — while the victim's (genuine) RSA arithmetic stays correct.
"""

import pytest

from repro.attacks.rsa import (
    RsaKey,
    decode_key_bits,
    generate_key,
    run_rsa_attack,
)

from tests.conftest import tiny_config


class TestKeyGeneration:
    def test_deterministic(self):
        assert generate_key(seed=5) == generate_key(seed=5)

    def test_valid_rsa_pair(self):
        key = generate_key(seed=5, prime_bits=20)
        message = 0xABCD
        cipher = pow(message, key.e, key.n)
        assert pow(cipher, key.d, key.n) == message

    def test_d_bits_msb_first(self):
        key = RsaKey(n=1000, e=3, d=0b1011)
        assert key.d_bits == [1, 0, 1, 1]


class TestDecoder:
    def test_decodes_clean_pattern(self):
        # square events at samples 0, 6, 10; multiply hits after the
        # first and third squares  ->  bits 1, 0, 1
        square = {0, 6, 10}
        multiply = {2, 12}
        samples = [
            (i, i in square, i in multiply, False) for i in range(13)
        ]
        assert decode_key_bits(samples) == [1, 0, 1]

    def test_clustered_square_hits_are_one_event(self):
        # squares at 0,1 (one event) and 5,6 (a second event); multiply
        # in between -> bits 1, 0
        square = {0, 1, 5, 6}
        multiply = {3}
        samples = [
            (i, i in square, i in multiply, False) for i in range(8)
        ]
        assert decode_key_bits(samples) == [1, 0]

    def test_no_hits_no_bits(self):
        samples = [(i, False, False, False) for i in range(10)]
        assert decode_key_bits(samples) == []


@pytest.fixture(scope="module")
def small_key():
    return generate_key(seed=3, prime_bits=18)


class TestAttack:
    def test_baseline_recovers_key(self, small_key):
        cfg = tiny_config(num_cores=2, enabled=False)
        result = run_rsa_attack(cfg, key=small_key)
        assert result.ciphertext_ok
        assert result.probe_hits > 0
        assert result.accuracy >= 0.9
        assert result.key_recovered

    def test_timecache_blocks_recovery(self, small_key):
        cfg = tiny_config(num_cores=2, enabled=True)
        result = run_rsa_attack(cfg, key=small_key)
        assert result.ciphertext_ok  # the defense never breaks correctness
        assert result.probe_hits == 0
        assert result.recovered_bits == []
        assert not result.key_recovered
        assert result.accuracy == 0.0

    def test_needs_two_contexts(self, small_key):
        from repro.common.errors import ConfigError

        with pytest.raises(ConfigError):
            run_rsa_attack(tiny_config(num_cores=1), key=small_key)

    def test_samples_collected_either_way(self, small_key):
        cfg = tiny_config(num_cores=2, enabled=True)
        result = run_rsa_attack(cfg, key=small_key)
        assert result.probe_total == 3 * len(result.samples)
        assert len(result.samples) > 10
