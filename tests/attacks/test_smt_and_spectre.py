"""SMT (hyperthread) attacks and the Spectre-style covert channel.

The threat model covers attackers on "the same (hyperthreaded) or
different cores"; Section VIII argues that breaking the conventional
reuse channel also kills Spectre's transmit end.
"""

import pytest

from repro.attacks.smt import run_smt_flush_reload
from repro.attacks.spectre import run_spectre_covert_channel
from repro.common.config import (
    CacheConfig,
    HierarchyConfig,
    SimConfig,
    TimeCacheConfig,
)
from repro.common.errors import ConfigError
from repro.common.units import KIB

from tests.conftest import tiny_config


def smt_config(enabled=True):
    cfg = SimConfig(
        hierarchy=HierarchyConfig(
            num_cores=1,
            threads_per_core=2,
            l1i=CacheConfig("L1I", 1 * KIB, ways=4),
            l1d=CacheConfig("L1D", 1 * KIB, ways=4),
            llc=CacheConfig("LLC", 16 * KIB, ways=8),
        ),
        timecache=TimeCacheConfig(enabled=enabled, sbit_dma_cycles=20),
        quantum_cycles=5_000,
        context_switch_cycles=50,
    )
    cfg.validate()
    return cfg


class TestSmtFlushReload:
    def test_baseline_leaks_at_l1_speed(self):
        outcome = run_smt_flush_reload(smt_config(enabled=False))
        assert outcome.probe_hits == outcome.probe_total
        # sibling hyperthreads share the L1: some reloads are L1-fast
        l1 = smt_config().hierarchy.latency.l1_hit
        assert min(outcome.latencies) <= l1 + 2

    def test_timecache_blocks_sibling_hyperthread(self):
        outcome = run_smt_flush_reload(smt_config(enabled=True))
        assert outcome.probe_hits == 0

    def test_requires_smt(self):
        with pytest.raises(ConfigError):
            run_smt_flush_reload(tiny_config(num_cores=1))


class TestSpectreCovertChannel:
    def test_baseline_leaks_the_secret_byte(self):
        result = run_spectre_covert_channel(
            tiny_config(num_cores=2, enabled=False), secret=0x5A
        )
        assert result.leaked
        assert result.recovered == 0x5A

    def test_timecache_kills_the_transmit_end(self):
        result = run_spectre_covert_channel(
            tiny_config(num_cores=2, enabled=True), secret=0x5A
        )
        assert not result.leaked
        assert result.recovered is None
        assert result.probe_hits == 0

    def test_different_secret_values_recovered(self):
        for secret in (0, 17, 255):
            result = run_spectre_covert_channel(
                tiny_config(num_cores=2, enabled=False),
                secret=secret,
                rounds=2,
            )
            assert result.recovered == secret

    def test_rejects_out_of_range_secret(self):
        with pytest.raises(ConfigError):
            run_spectre_covert_channel(tiny_config(num_cores=2), secret=300)

    def test_needs_two_contexts(self):
        with pytest.raises(ConfigError):
            run_spectre_covert_channel(tiny_config(num_cores=1), secret=1)
