"""Section VII attacks: flush+flush, evict+time, LRU, prime+probe,
coherence — which TimeCache option mitigates which, and which channels
are explicitly out of scope (the threat-model boundary)."""

import pytest

from repro.attacks.coherence_attack import run_invalidate_transfer
from repro.attacks.evict_time import run_evict_time
from repro.attacks.flush_flush import run_flush_flush
from repro.attacks.lru_attack import run_lru_attack
from repro.attacks.prime_probe import run_prime_probe

from tests.conftest import tiny_config


class TestFlushFlush:
    def test_baseline_distinguishes_victim_activity(self):
        active = run_flush_flush(tiny_config(enabled=False), victim_touches=True)
        idle = run_flush_flush(tiny_config(enabled=False), victim_touches=False)
        assert active.probe_hits > 0
        assert idle.probe_hits == 0

    def test_constant_time_flush_closes_the_channel(self):
        cfg = tiny_config(constant_time_flush=True)
        active = run_flush_flush(cfg, victim_touches=True)
        idle = run_flush_flush(cfg, victim_touches=False)
        # All flush latencies identical -> the two cases indistinguishable.
        assert set(active.latencies) == set(idle.latencies)
        assert len(set(active.latencies)) == 1

    def test_plain_timecache_does_not_stop_flush_flush(self):
        """Flush+flush never loads the line, so first-access delay alone
        cannot help — the paper prescribes constant-time clflush."""
        outcome = run_flush_flush(
            tiny_config(enabled=True, constant_time_flush=False),
            victim_touches=True,
        )
        assert outcome.probe_hits > 0


class TestEvictTime:
    def test_channel_exists_when_victim_uses_line(self):
        outcome = run_evict_time(tiny_config(enabled=False), victim_uses_line=True)
        assert outcome.extra["slowdown"] > 0

    def test_no_signal_when_victim_does_not_use_line(self):
        outcome = run_evict_time(tiny_config(enabled=False), victim_uses_line=False)
        assert abs(outcome.extra["slowdown"]) < 5


class TestLruAttack:
    def test_leaks_in_baseline(self):
        outcome = run_lru_attack(tiny_config(enabled=False), victim_touches=True)
        idle = run_lru_attack(tiny_config(enabled=False), victim_touches=False)
        assert outcome.probe_hits > idle.probe_hits

    def test_not_blocked_by_timecache_as_paper_states(self):
        """Section VII-A: LRU attacks are eviction-set attacks; TimeCache
        does not (and does not claim to) block them — randomizing caches
        are the complementary defense."""
        outcome = run_lru_attack(tiny_config(enabled=True), victim_touches=True)
        idle = run_lru_attack(tiny_config(enabled=True), victim_touches=False)
        assert outcome.probe_hits > idle.probe_hits


class TestPrimeProbe:
    def test_contention_visible_in_baseline(self):
        active = run_prime_probe(tiny_config(enabled=False), victim_active=True)
        idle = run_prime_probe(tiny_config(enabled=False), victim_active=False)
        assert active.extra["displaced_probes"] > idle.extra["displaced_probes"]

    def test_out_of_threat_model_under_timecache(self):
        """Prime+probe needs no shared memory; TimeCache leaves it to
        randomizing caches (the paper's stated composition)."""
        active = run_prime_probe(tiny_config(enabled=True), victim_active=True)
        idle = run_prime_probe(tiny_config(enabled=True), victim_active=False)
        assert active.extra["displaced_probes"] > idle.extra["displaced_probes"]


class TestCoherenceAttack:
    def test_invalidate_transfer_leaks_in_baseline(self):
        cfg = tiny_config(num_cores=2, enabled=False)
        active = run_invalidate_transfer(cfg, victim_touches=True)
        idle = run_invalidate_transfer(cfg, victim_touches=False)
        assert active.probe_hits > 0
        assert idle.probe_hits == 0

    def test_timecache_blocks_invalidate_transfer(self):
        cfg = tiny_config(num_cores=2, enabled=True)
        active = run_invalidate_transfer(cfg, victim_touches=True)
        assert active.probe_hits == 0

    def test_dirty_variant_leaks_in_baseline(self):
        cfg = tiny_config(num_cores=2, enabled=False)
        active = run_invalidate_transfer(
            cfg, victim_touches=True, victim_writes=True
        )
        assert active.probe_hits > 0

    def test_timecache_blocks_dirty_variant_at_memory_latency(self):
        """The E-vs-S variant: under TimeCache the attacker's reload waits
        for the DRAM response even when the victim's L1 holds the line
        modified, so latency matches a plain miss exactly."""
        cfg = tiny_config(num_cores=2, enabled=True)
        active = run_invalidate_transfer(
            cfg, victim_touches=True, victim_writes=True
        )
        idle = run_invalidate_transfer(cfg, victim_touches=False)
        assert active.probe_hits == 0
        assert set(active.latencies) == set(idle.latencies)

    def test_needs_two_contexts(self):
        from repro.common.errors import ConfigError

        with pytest.raises(ConfigError):
            run_invalidate_transfer(tiny_config(num_cores=1))
