"""Flush+reload: the Section VI-A1 microbenchmark and a spy variant.

The paper's success criterion: the baseline attacker observes hits (a
fully leaking channel), the defended attacker observes zero.
"""

from repro.attacks.flush_reload import (
    run_microbenchmark_attack,
    run_spy_flush_reload,
)

from tests.conftest import tiny_config


class TestMicrobenchmark:
    def test_baseline_leaks_every_line(self):
        outcome = run_microbenchmark_attack(
            tiny_config(enabled=False), shared_lines=64, sleep_cycles=50_000
        )
        assert outcome.probe_total == 64
        assert outcome.probe_hits == 64

    def test_timecache_blocks_every_line(self):
        outcome = run_microbenchmark_attack(
            tiny_config(enabled=True), shared_lines=64, sleep_cycles=50_000
        )
        assert outcome.probe_total == 64
        assert outcome.probe_hits == 0
        assert not outcome.verdict()

    def test_latencies_cluster_by_configuration(self):
        base = run_microbenchmark_attack(
            tiny_config(enabled=False), shared_lines=32, sleep_cycles=50_000
        )
        defended = run_microbenchmark_attack(
            tiny_config(enabled=True), shared_lines=32, sleep_cycles=50_000
        )
        assert max(base.latencies) < min(defended.latencies)

    def test_hit_fraction(self):
        base = run_microbenchmark_attack(
            tiny_config(enabled=False), shared_lines=16, sleep_cycles=50_000
        )
        assert base.hit_fraction == 1.0


class TestSpy:
    SECRET = (3, 11, 17)

    def test_baseline_recovers_exact_secret(self):
        outcome = run_spy_flush_reload(
            tiny_config(enabled=False),
            secret_indices=self.SECRET,
            shared_lines=32,
            rounds=3,
        )
        assert outcome.extra["exact_recovery"]
        assert outcome.extra["recovered"] == set(self.SECRET)

    def test_timecache_recovers_nothing(self):
        outcome = run_spy_flush_reload(
            tiny_config(enabled=True),
            secret_indices=self.SECRET,
            shared_lines=32,
            rounds=3,
        )
        assert outcome.extra["recovered"] == set()
        assert outcome.probe_hits == 0

    def test_spy_sees_nothing_when_victim_idle(self):
        outcome = run_spy_flush_reload(
            tiny_config(enabled=False),
            secret_indices=(),
            shared_lines=16,
            rounds=2,
        )
        assert outcome.extra["recovered"] == set()


class TestBatchedProbes:
    """``batched=True`` sweeps the probe array with one AccessRun; the
    recorded latencies and verdicts must be byte-identical to the
    per-line rdtsc stanzas."""

    def test_microbenchmark_batched_equals_scalar(self):
        for enabled in (False, True):
            scalar = run_microbenchmark_attack(
                tiny_config(enabled=enabled),
                shared_lines=32,
                sleep_cycles=50_000,
            )
            batched = run_microbenchmark_attack(
                tiny_config(enabled=enabled),
                shared_lines=32,
                sleep_cycles=50_000,
                batched=True,
            )
            assert batched.latencies == scalar.latencies
            assert batched.probe_hits == scalar.probe_hits
            assert batched.probe_total == scalar.probe_total

    def test_spy_batched_equals_scalar(self):
        secret = (3, 11, 17)
        for enabled in (False, True):
            scalar = run_spy_flush_reload(
                tiny_config(enabled=enabled),
                secret_indices=secret,
                shared_lines=32,
                rounds=3,
            )
            batched = run_spy_flush_reload(
                tiny_config(enabled=enabled),
                secret_indices=secret,
                shared_lines=32,
                rounds=3,
                batched=True,
            )
            assert batched.latencies == scalar.latencies
            assert batched.extra["recovered"] == scalar.extra["recovered"]
            assert batched.probe_hits == scalar.probe_hits
