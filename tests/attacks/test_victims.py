"""Tests for the victim program library."""

from repro.cpu.isa import Compute, Exit, Load, Store
from repro.attacks.victim import (
    idle_victim,
    periodic_victim,
    secret_indexed_victim,
    writer_victim,
)


def line_vaddr(i):
    return 0x100000 + i * 64


def ops_of(program):
    return list(program.start())


def test_writer_victim_covers_all_lines():
    ops = ops_of(writer_victim(line_vaddr, num_lines=8, repetitions=2))
    stores = [op for op in ops if isinstance(op, Store)]
    assert len(stores) == 16
    assert {op.vaddr for op in stores} == {line_vaddr(i) for i in range(8)}
    assert isinstance(ops[-1], Exit)


def test_secret_indexed_victim_touches_only_secret_lines():
    ops = ops_of(
        secret_indexed_victim(line_vaddr, [3, 5], touches_per_index=4)
    )
    loads = [op for op in ops if isinstance(op, Load)]
    assert {op.vaddr for op in loads} == {line_vaddr(3), line_vaddr(5)}
    assert len(loads) == 8
    assert any(isinstance(op, Compute) for op in ops)


def test_periodic_victim_emits_each_round():
    seen = []

    def make_round(r):
        seen.append(r)
        return [Compute(1)]

    ops = ops_of(periodic_victim(make_round, rounds=3))
    assert seen == [0, 1, 2]
    assert isinstance(ops[-1], Exit)


def test_idle_victim_touches_nothing():
    ops = ops_of(idle_victim(cycles=100))
    assert not any(isinstance(op, (Load, Store)) for op in ops)
    compute = [op for op in ops if isinstance(op, Compute)]
    assert compute and compute[0].instructions == 100
