"""Evict+reload: the clflush-free reuse attack."""

from repro.attacks.evict_reload import run_evict_reload

from tests.conftest import tiny_config


def test_baseline_leaks():
    outcome = run_evict_reload(tiny_config(enabled=False), rounds=4)
    assert outcome.probe_hits == outcome.probe_total == 4


def test_timecache_blocks():
    outcome = run_evict_reload(tiny_config(enabled=True), rounds=4)
    assert outcome.probe_hits == 0


def test_untouched_line_shows_no_hits():
    """Control case: the victim never touches the monitored line, so a
    correct attack reports no activity even in the baseline."""
    outcome = run_evict_reload(
        tiny_config(enabled=False),
        secret_indices=(9,),
        monitored_line=2,
        rounds=3,
    )
    assert outcome.probe_hits == 0


def test_monitored_equals_touched_leaks_in_baseline():
    outcome = run_evict_reload(
        tiny_config(enabled=False),
        secret_indices=(9,),
        monitored_line=9,
        rounds=3,
    )
    assert outcome.probe_hits == 3
