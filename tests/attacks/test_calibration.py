"""Tests for the attacker's threshold calibration routine."""

import pytest

from repro.attacks.base import hit_threshold
from repro.attacks.calibration import CalibrationResult, calibrate_hit_threshold
from repro.common.errors import CalibrationError, ReproError

from tests.conftest import tiny_config


@pytest.fixture(scope="module")
def result():
    return calibrate_hit_threshold(tiny_config(enabled=False), probes=16)


def test_populations_collected(result):
    assert len(result.cached_latencies) == 16
    assert len(result.uncached_latencies) == 16


def test_populations_separable(result):
    assert result.separable
    assert result.cached_max < result.uncached_min


def test_threshold_sits_between_populations(result):
    assert result.cached_max < result.threshold < result.uncached_min


def test_measured_threshold_agrees_with_configured_heuristic(result):
    """The attacker's measured threshold and the harness's derived one
    must classify identically on both populations."""
    configured = hit_threshold(tiny_config())
    for lat in result.cached_latencies:
        assert (lat < configured) == (lat < result.threshold)
    for lat in result.uncached_latencies:
        assert (lat < configured) == (lat < result.threshold)


def test_calibration_works_under_timecache_too():
    """TimeCache does not break the attacker's *own* calibration: its
    own fills are visible to itself (no first access on own data)."""
    result = calibrate_hit_threshold(tiny_config(enabled=True), probes=8)
    assert result.separable


class TestDegeneratePopulations:
    """Inseparable or empty latency populations must raise a typed error
    instead of yielding a meaningless midpoint threshold."""

    def test_overlapping_populations_raise(self):
        overlapping = CalibrationResult(
            cached_latencies=[3, 4, 7],  # slowest "hit" = 7
            uncached_latencies=[5, 6, 9],  # fastest "miss" = 5
        )
        with pytest.raises(CalibrationError) as exc:
            overlapping.validate()
        assert exc.value.cached_max == 7
        assert exc.value.uncached_min == 5
        assert "overlap" in str(exc.value)

    def test_touching_populations_raise(self):
        """Equal boundary values are just as inseparable — a probe at
        that latency could be either class."""
        touching = CalibrationResult(
            cached_latencies=[3, 5], uncached_latencies=[5, 9]
        )
        with pytest.raises(CalibrationError):
            touching.validate()

    def test_empty_population_raises(self):
        with pytest.raises(CalibrationError, match="empty"):
            CalibrationResult(
                cached_latencies=[], uncached_latencies=[5]
            ).validate()
        with pytest.raises(CalibrationError, match="empty"):
            CalibrationResult(
                cached_latencies=[3], uncached_latencies=[]
            ).validate()

    def test_error_is_catchable_as_repro_error(self):
        assert issubclass(CalibrationError, ReproError)

    def test_validate_returns_self_when_separable(self):
        good = CalibrationResult(
            cached_latencies=[3, 4], uncached_latencies=[100, 110]
        )
        assert good.validate() is good
