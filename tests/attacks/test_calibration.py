"""Tests for the attacker's threshold calibration routine."""

import pytest

from repro.attacks.base import hit_threshold
from repro.attacks.calibration import calibrate_hit_threshold

from tests.conftest import tiny_config


@pytest.fixture(scope="module")
def result():
    return calibrate_hit_threshold(tiny_config(enabled=False), probes=16)


def test_populations_collected(result):
    assert len(result.cached_latencies) == 16
    assert len(result.uncached_latencies) == 16


def test_populations_separable(result):
    assert result.separable
    assert result.cached_max < result.uncached_min


def test_threshold_sits_between_populations(result):
    assert result.cached_max < result.threshold < result.uncached_min


def test_measured_threshold_agrees_with_configured_heuristic(result):
    """The attacker's measured threshold and the harness's derived one
    must classify identically on both populations."""
    configured = hit_threshold(tiny_config())
    for lat in result.cached_latencies:
        assert (lat < configured) == (lat < result.threshold)
    for lat in result.uncached_latencies:
        assert (lat < configured) == (lat < result.threshold)


def test_calibration_works_under_timecache_too():
    """TimeCache does not break the attacker's *own* calibration: its
    own fills are visible to itself (no first access on own data)."""
    result = calibrate_hit_threshold(tiny_config(enabled=True), probes=8)
    assert result.separable
