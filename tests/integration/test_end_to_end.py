"""End-to-end scenario tests spanning the full stack.

Each test tells one of the paper's stories on the whole system: OS +
scheduler + VM + hierarchy + TimeCache + attacker/victim programs.
"""

from repro.analysis.experiment import run_spec_pair_experiment
from repro.attacks.flush_reload import run_microbenchmark_attack
from repro.core.timecache import TimeCacheSystem
from repro.cpu.isa import Exit, Load, SleepOp, Store
from repro.cpu.program import Program
from repro.os.kernel import Kernel

from tests.conftest import tiny_config


def test_paper_headline_story():
    """Baseline leaks, TimeCache fully blocks, at modest overhead."""
    base = run_microbenchmark_attack(
        tiny_config(enabled=False), shared_lines=64, sleep_cycles=50_000
    )
    defended = run_microbenchmark_attack(
        tiny_config(enabled=True), shared_lines=64, sleep_cycles=50_000
    )
    assert base.hit_fraction == 1.0
    assert defended.hit_fraction == 0.0


def test_deduplicated_pages_are_safe_to_share():
    """The paper's motivation: with TimeCache, dedup/COW sharing stops
    being a side-channel vector.  Two processes map dedup'd pages; the
    observer process cannot tell which page the other touched."""
    kernel = Kernel(tiny_config())
    img_a = kernel.phys.allocate_segment("img_a", 4096, content_key="img")
    img_b = kernel.phys.allocate_segment("img_b", 4096, content_key="img")
    assert kernel.phys.dedup_hits == 1  # pages physically shared

    observer = kernel.create_process("observer")
    worker = kernel.create_process("worker")
    observer.address_space.map_segment(img_a, 0x10000)
    worker.address_space.map_segment(img_b, 0x10000)

    latencies = []

    def spy():
        from repro.cpu.isa import Flush

        for off in range(0, 4096, 64):
            yield Flush(0x10000 + off)
        yield SleepOp(30_000)
        for off in range(0, 4096, 64):
            r = yield Load(0x10000 + off)
            latencies.append(r.latency)
        yield Exit()

    def toucher():
        for _ in range(3):
            for off in (0, 64, 128):
                yield Store(0x10000 + off)
        yield Exit()

    to = observer.spawn(Program("spy", spy), affinity=0)
    tw = worker.spawn(Program("toucher", toucher), affinity=0)
    kernel.submit(to)
    kernel.submit(tw)
    kernel.run()
    lat = kernel.config.hierarchy.latency
    assert all(v >= lat.dram for v in latencies)


def test_steady_state_sharing_is_free():
    """Section IV: 'performance of steady-state in-cache sharing is
    unaffected' — after both contexts pay once, everyone hits."""
    system = TimeCacheSystem(tiny_config(num_cores=2))
    for rep in range(3):
        for ctx in (0, 1):
            for i in range(8):
                system.access(
                    ctx,
                    0x100000 + i * 64,
                    __import__("repro.memsys", fromlist=["AccessKind"]).AccessKind.LOAD,
                    now=rep * 10_000 + ctx * 3_000 + i * 300,
                )
    # steady state: both contexts now hit in their own L1s
    for ctx in (0, 1):
        r = system.load(ctx, 0x100000, now=100_000 + ctx)
        assert r.level == "L1"


def test_overhead_shrinks_with_larger_llc():
    """The Figure 10 trend at test scale: bigger LLC, fewer first-access
    misses, lower overhead."""
    from repro.common import scaled_experiment_config

    small = run_spec_pair_experiment(
        scaled_experiment_config(llc_kib=32, l1_kib=1, quantum_cycles=20_000),
        "wrf",
        "wrf",
        instructions=30_000,
    )
    large = run_spec_pair_experiment(
        scaled_experiment_config(llc_kib=256, l1_kib=1, quantum_cycles=20_000),
        "wrf",
        "wrf",
        instructions=30_000,
    )
    small_fa = small.timecache.llc_first_access_mpki
    large_fa = large.timecache.llc_first_access_mpki
    assert large_fa <= small_fa
