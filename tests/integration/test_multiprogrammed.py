"""Multiprogrammed scenarios beyond the paper's 2-process pairs.

TimeCache claims no limit on the number of security domains (unlike
DAWG's 16): these tests run 4+ processes through the save/restore
machinery and check both isolation and bounded overhead behavior.
"""

from repro.analysis.experiment import _collect_run
from repro.cpu.isa import Exit, Flush, Load, SleepOp, Store
from repro.cpu.program import Program
from repro.os.kernel import Kernel
from repro.workloads.generator import WorkloadBuilder
from repro.workloads.profiles import spec_profile

from tests.conftest import tiny_config


def test_four_processes_round_robin_complete():
    kernel = Kernel(tiny_config(quantum=3_000))
    builder = WorkloadBuilder(kernel)
    names = ["namd", "astar", "gromacs", "sphinx3"]
    for i, name in enumerate(names):
        _, task = builder.build_process(
            spec_profile(name), i, instructions=5_000, affinity=0
        )
        kernel.submit(task)
    summary = kernel.run()
    assert kernel.all_done()
    assert summary.context_switches >= 4
    assert len(summary.per_task_instructions) == 4


def test_pairwise_isolation_with_four_processes():
    """Every process pair is mutually isolated: an observer can never
    see any other process's fills at hit latency, no matter how many
    domains rotate through the core."""
    kernel = Kernel(tiny_config(quantum=4_000))
    shared = kernel.phys.allocate_segment("lib", 16 * 64)
    observed = {}

    def make_spy(name):
        hits = []
        observed[name] = hits

        def program():
            yield Flush(0x10000)
            yield SleepOp(40_000)
            r = yield Load(0x10000)
            hits.append(r.latency < 100)
            yield Exit()

        return Program(f"spy-{name}", program)

    def toucher():
        for _ in range(20):
            yield Store(0x10000)
        yield Exit()

    # three spies and one toucher, all sharing the library page
    tasks = []
    for i in range(3):
        proc = kernel.create_process(f"spy{i}")
        proc.address_space.map_segment(shared, 0x10000)
        tasks.append(proc.spawn(make_spy(f"spy{i}"), affinity=0))
    victim = kernel.create_process("victim")
    victim.address_space.map_segment(shared, 0x10000)
    tasks.append(victim.spawn(Program("toucher", toucher), affinity=0))
    for task in tasks:
        kernel.submit(task)
    kernel.run()
    for name, hits in observed.items():
        assert sum(hits) == 0, f"{name} observed an unpaid hit"


def test_many_domains_unlike_dawg():
    """12 processes — above DAWG's 16-way partitioning would already be
    strained at our 8-way LLC; TimeCache needs one s-bit column per
    hardware context regardless of process count."""
    kernel = Kernel(tiny_config(quantum=2_000))
    builder = WorkloadBuilder(kernel)
    for i in range(12):
        _, task = builder.build_process(
            spec_profile("namd"), i, instructions=1_500, affinity=0
        )
        kernel.submit(task)
    summary = kernel.run()
    assert kernel.all_done()
    run = _collect_run(kernel, summary)
    # the machinery works and the defense stays bounded: every task's
    # first accesses are finite and the run terminates
    assert run.instructions >= 12 * 1_500
