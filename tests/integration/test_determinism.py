"""Determinism: identical configuration => identical simulation."""

from repro.analysis.experiment import run_spec_pair_experiment
from repro.attacks.flush_reload import run_microbenchmark_attack
from repro.attacks.rsa import generate_key, run_rsa_attack

from tests.conftest import tiny_config


def test_spec_experiment_reproducible():
    a = run_spec_pair_experiment(
        tiny_config(quantum=3_000), "astar", "namd", instructions=4_000
    )
    b = run_spec_pair_experiment(
        tiny_config(quantum=3_000), "astar", "namd", instructions=4_000
    )
    assert a.baseline.cycles == b.baseline.cycles
    assert a.timecache.cycles == b.timecache.cycles
    assert a.baseline.stats == b.baseline.stats
    assert a.timecache.stats == b.timecache.stats


def test_attack_outcome_reproducible():
    a = run_microbenchmark_attack(
        tiny_config(enabled=False), shared_lines=32, sleep_cycles=30_000
    )
    b = run_microbenchmark_attack(
        tiny_config(enabled=False), shared_lines=32, sleep_cycles=30_000
    )
    assert a.latencies == b.latencies


def test_rsa_attack_reproducible():
    key = generate_key(seed=11, prime_bits=16)
    cfg = tiny_config(num_cores=2, enabled=False)
    a = run_rsa_attack(cfg, key=key)
    b = run_rsa_attack(cfg, key=key)
    assert a.recovered_bits == b.recovered_bits
    assert a.samples == b.samples


def test_different_seed_changes_workload():
    a = run_spec_pair_experiment(
        tiny_config(quantum=3_000), "astar", "namd", instructions=4_000, seed=1
    )
    b = run_spec_pair_experiment(
        tiny_config(quantum=3_000), "astar", "namd", instructions=4_000, seed=2
    )
    assert a.baseline.cycles != b.baseline.cycles
