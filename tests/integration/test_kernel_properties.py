"""Property-based kernel/scheduler tests over random task mixes.

Invariants: every submitted finite task eventually exits; instruction
counts are conserved (what the tasks retire is what the summary
reports); core-local time never decreases; and the whole run is
reproducible.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.isa import Compute, Exit, Load, SleepOp, Store, YieldOp
from repro.cpu.program import Program
from repro.os.kernel import Kernel

from tests.conftest import tiny_config

# a task spec: list of (op_kind, arg) tuples
op_spec = st.sampled_from(["compute", "load", "store", "yield", "sleep"])
task_spec = st.lists(
    st.tuples(op_spec, st.integers(1, 50)), min_size=1, max_size=25
)


def build_program(name, spec):
    def factory():
        for kind, arg in spec:
            if kind == "compute":
                yield Compute(arg)
            elif kind == "load":
                yield Load(0x10000 + (arg % 64) * 64)
            elif kind == "store":
                yield Store(0x10000 + (arg % 64) * 64)
            elif kind == "yield":
                yield YieldOp()
            elif kind == "sleep":
                yield SleepOp(arg * 10)
        yield Exit()

    return Program(name, factory)


def run_tasks(task_specs, cores=1, quantum=500):
    kernel = Kernel(tiny_config(num_cores=cores, quantum=quantum))
    seg = kernel.phys.allocate_segment("shared", 64 * 64)
    tasks = []
    for i, spec in enumerate(task_specs):
        process = kernel.create_process(f"p{i}")
        process.address_space.map_segment(seg, 0x10000)
        task = process.spawn(
            build_program(f"t{i}", spec), affinity=i % cores
        )
        kernel.submit(task)
        tasks.append(task)
    summary = kernel.run(max_steps=2_000_000)
    return kernel, summary, tasks


@settings(max_examples=40, deadline=None)
@given(st.lists(task_spec, min_size=1, max_size=4))
def test_every_finite_task_exits(task_specs):
    kernel, _, _ = run_tasks(task_specs)
    assert kernel.all_done()


@settings(max_examples=40, deadline=None)
@given(st.lists(task_spec, min_size=1, max_size=4))
def test_instruction_conservation(task_specs):
    _, summary, tasks = run_tasks(task_specs)
    expected = 0
    for spec in task_specs:
        for kind, arg in spec:
            expected += arg if kind == "compute" else 1
        expected += 1  # the Exit op
    assert summary.total_instructions == expected


@settings(max_examples=20, deadline=None)
@given(st.lists(task_spec, min_size=2, max_size=4))
def test_two_core_runs_complete_too(task_specs):
    kernel, summary, _ = run_tasks(task_specs, cores=2)
    assert kernel.all_done()
    assert summary.makespan > 0


def _by_program(cycles_by_name):
    """Strip the globally unique ``#tid`` suffix for cross-run compare."""
    return {name.rsplit("#", 1)[0]: v for name, v in cycles_by_name.items()}


@settings(max_examples=20, deadline=None)
@given(st.lists(task_spec, min_size=1, max_size=3))
def test_reproducible(task_specs):
    _, a, _ = run_tasks(task_specs)
    _, b, _ = run_tasks(task_specs)
    assert _by_program(a.per_task_cycles) == _by_program(b.per_task_cycles)
    assert a.context_switches == b.context_switches
