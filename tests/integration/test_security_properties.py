"""Property-based security tests against random access traces.

The central guarantee (Section IV): a hardware context never observes a
cache line at hit latency unless *it* paid for that line's presence — by
filling it, or by a delayed first access — since the line's current fill.
An independent shadow tracker re-derives who has "paid" per (cache, slot)
from the observable event stream and checks every access against it.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.timecache import TimeCacheSystem
from repro.memsys.hierarchy import AccessKind

from tests.conftest import tiny_config

# operations: (ctx, line_index, kind)
op_strategy = st.tuples(
    st.integers(0, 1),  # hardware context (2 cores)
    st.integers(0, 40),  # line index within a small shared region
    st.sampled_from(["load", "store", "ifetch", "flush"]),
)


def hit_threshold(system):
    lat = system.config.hierarchy.latency
    return lat.dram  # anything below a DRAM round-trip reads as a hit


@settings(max_examples=60, deadline=None)
@given(st.lists(op_strategy, min_size=1, max_size=120))
def test_no_unpaid_hits_across_contexts(ops):
    """For every access: hit-latency service implies the context already
    paid (filled the line itself or suffered a first-access delay) since
    the line's last arrival into the hierarchy."""
    system = TimeCacheSystem(tiny_config(num_cores=2))
    threshold = hit_threshold(system)
    # paid[line] = set of contexts that have paid since last hierarchy fill
    paid = {}
    now = 0
    for ctx, index, kind in ops:
        addr = 0x100000 + index * 64
        line = addr >> 6
        now += 300
        if kind == "flush":
            system.flush(ctx, addr, now=now)
            paid.pop(line, None)
            continue
        kind_map = {
            "load": AccessKind.LOAD,
            "store": AccessKind.STORE,
            "ifetch": AccessKind.IFETCH,
        }
        result = system.access(ctx, addr, kind_map[kind], now=now)
        if result.latency < threshold:
            assert ctx in paid.get(line, set()), (
                f"ctx{ctx} observed unpaid hit on line {line:#x} "
                f"({result!r})"
            )
        paid.setdefault(line, set()).add(ctx)
        # LLC evictions silently unpay everyone; the shadow set may be
        # stale in the permissive direction only (extra misses are safe,
        # extra hits are the violation we assert against) — so remove
        # knowledge for lines that left the hierarchy.
        if not system.hierarchy.llc.resident(line):
            paid.pop(line, None)


@settings(max_examples=30, deadline=None)
@given(st.lists(op_strategy, min_size=1, max_size=80))
def test_sbit_set_implies_resident(ops):
    """An s-bit may only ever be set on a valid, resident slot."""
    system = TimeCacheSystem(tiny_config(num_cores=2))
    now = 0
    for ctx, index, kind in ops:
        addr = 0x100000 + index * 64
        now += 300
        if kind == "flush":
            system.flush(ctx, addr, now=now)
        else:
            kind_map = {
                "load": AccessKind.LOAD,
                "store": AccessKind.STORE,
                "ifetch": AccessKind.IFETCH,
            }
            system.access(ctx, addr, kind_map[kind], now=now)
    for cache in system.hierarchy.all_caches():
        for set_idx in range(cache.num_sets):
            for way in range(cache.ways):
                if cache.sbits[set_idx, way] != 0:
                    assert cache.line_at(set_idx, way) is not None


@settings(max_examples=30, deadline=None)
@given(st.lists(op_strategy, min_size=1, max_size=80))
def test_inclusion_invariant_under_random_traffic(ops):
    system = TimeCacheSystem(tiny_config(num_cores=2))
    now = 0
    for ctx, index, kind in ops:
        addr = 0x100000 + index * 64
        now += 300
        if kind == "flush":
            system.flush(ctx, addr, now=now)
        else:
            kind_map = {
                "load": AccessKind.LOAD,
                "store": AccessKind.STORE,
                "ifetch": AccessKind.IFETCH,
            }
            system.access(ctx, addr, kind_map[kind], now=now)
    system.hierarchy.check_inclusion()


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.integers(0, 30), min_size=1, max_size=60),
    st.integers(2, 6),
)
def test_save_restore_roundtrip_with_no_intervening_fills(indices, bits):
    """If nothing was filled/evicted between save and restore, the
    restored visibility is exactly the saved visibility (Tc <= Ts keeps
    every bit)."""
    system = TimeCacheSystem(tiny_config(timestamp_bits=32))
    system.context_switch(None, 1, ctx=0, now=0)
    now = 0
    for index in indices:
        now += 300
        system.load(0, 0x100000 + index * 64, now=now)
    saved_visibility = {
        cache.name: cache.save_sbits(0).copy()
        for cache in system.hierarchy.caches_for_ctx(0)
    }
    system.context_switch(1, 2, ctx=0, now=now + 100)
    system.context_switch(2, 1, ctx=0, now=now + 200)  # task 2 did nothing
    for cache in system.hierarchy.caches_for_ctx(0):
        import numpy as np

        assert np.array_equal(cache.save_sbits(0), saved_visibility[cache.name])
