"""Unit tests for deterministic RNG streams."""

import pytest

from repro.common.rng import DeterministicRng


def test_same_seed_same_stream():
    a = DeterministicRng(7)
    b = DeterministicRng(7)
    assert [a.randint(0, 100) for _ in range(20)] == [
        b.randint(0, 100) for _ in range(20)
    ]


def test_different_seeds_differ():
    a = DeterministicRng(7)
    b = DeterministicRng(8)
    assert [a.randint(0, 10_000) for _ in range(10)] != [
        b.randint(0, 10_000) for _ in range(10)
    ]


def test_fork_is_deterministic_and_independent():
    a1 = DeterministicRng(7).fork("workload")
    a2 = DeterministicRng(7).fork("workload")
    other = DeterministicRng(7).fork("attacker")
    seq1 = [a1.randint(0, 10_000) for _ in range(10)]
    seq2 = [a2.randint(0, 10_000) for _ in range(10)]
    seq3 = [other.randint(0, 10_000) for _ in range(10)]
    assert seq1 == seq2
    assert seq1 != seq3


def test_fork_stable_across_processes():
    """fork() must not depend on Python's randomized string hashing:
    the derived stream is pinned to a golden value so any accidental
    reintroduction of ``hash()`` fails this test in some processes."""
    stream = DeterministicRng(7).fork("workload")
    in_process = [stream.randint(0, 10**6) for _ in range(3)]
    import subprocess
    import sys
    from pathlib import Path

    import repro

    # The child is spawned with a scrubbed environment, so `repro` is not
    # importable unless the package's source directory is put back on its
    # path explicitly.
    src_dir = str(Path(repro.__file__).resolve().parents[1])
    script = (
        "from repro.common.rng import DeterministicRng;"
        "r = DeterministicRng(7).fork('workload');"
        "print([r.randint(0, 10**6) for _ in range(3)])"
    )
    out = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        check=True,
        env={
            "PYTHONHASHSEED": "random",
            "PATH": "/usr/bin:/bin",
            "PYTHONPATH": src_dir,
        },
    ).stdout.strip()
    assert out == str(in_process)


def test_fork_does_not_perturb_parent():
    a = DeterministicRng(7)
    b = DeterministicRng(7)
    a.fork("anything")  # deriving a stream must not consume parent state
    assert a.randint(0, 10**9) == b.randint(0, 10**9)


def test_geometric_in_range():
    rng = DeterministicRng(1)
    for _ in range(100):
        assert rng.geometric(0.5) >= 0


def test_geometric_rejects_bad_p():
    rng = DeterministicRng(1)
    with pytest.raises(ValueError):
        rng.geometric(0.0)
    with pytest.raises(ValueError):
        rng.geometric(1.5)


def test_zipf_index_in_range_and_skewed():
    rng = DeterministicRng(1)
    draws = [rng.zipf_index(10, skew=1.5) for _ in range(500)]
    assert all(0 <= d < 10 for d in draws)
    # index 0 must be the most common under positive skew
    counts = [draws.count(i) for i in range(10)]
    assert counts[0] == max(counts)


def test_zipf_index_rejects_empty():
    with pytest.raises(ValueError):
        DeterministicRng(1).zipf_index(0)


def test_choice_shuffle_sample_work():
    rng = DeterministicRng(2)
    seq = list(range(10))
    assert rng.choice(seq) in seq
    picked = rng.sample(seq, 3)
    assert len(picked) == 3 and len(set(picked)) == 3
    rng.shuffle(seq)
    assert sorted(seq) == list(range(10))
