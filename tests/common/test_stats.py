"""Unit tests for statistics primitives."""

import pytest

from repro.common.stats import Counter, Histogram, RatioStat, StatGroup


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter("x").value == 0

    def test_add(self):
        c = Counter("x")
        c.add()
        c.add(4)
        assert c.value == 5

    def test_cannot_decrease(self):
        with pytest.raises(ValueError):
            Counter("x").add(-1)

    def test_reset(self):
        c = Counter("x")
        c.add(3)
        c.reset()
        assert c.value == 0


class TestRatioStat:
    def test_ratio(self):
        r = RatioStat("hits")
        for hit in [True, True, False, True]:
            r.record(hit)
        assert r.ratio == 0.75

    def test_empty_ratio_is_zero(self):
        assert RatioStat("hits").ratio == 0.0


class TestHistogram:
    def test_bucketing(self):
        h = Histogram("lat", edges=[10, 100])
        for v in [5, 9, 50, 500]:
            h.record(v)
        assert h.counts == [2, 1, 1]
        assert h.total == 4

    def test_min_max_mean(self):
        h = Histogram("lat", edges=[10])
        for v in [2, 4, 6]:
            h.record(v)
        assert h.min == 2
        assert h.max == 6
        assert h.mean == 4.0

    def test_fraction_at_or_below(self):
        h = Histogram("lat", edges=[10, 100])
        for v in [1, 2, 50, 500]:
            h.record(v)
        assert h.fraction_at_or_below(10) == 0.5
        assert h.fraction_at_or_below(100) == 0.75

    def test_needs_edges(self):
        with pytest.raises(ValueError):
            Histogram("lat", edges=[])

    def test_reset(self):
        h = Histogram("lat", edges=[10])
        h.record(5)
        h.reset()
        assert h.total == 0 and h.min is None


class TestStatGroup:
    def test_lazy_creation_and_get(self):
        g = StatGroup("cache")
        g.counter("hits").add(2)
        assert g.get("hits") == 2
        assert g.get("nonexistent") == 0

    def test_counter_identity(self):
        g = StatGroup("cache")
        assert g.counter("hits") is g.counter("hits")

    def test_snapshot_keys_are_namespaced(self):
        g = StatGroup("L1D")
        g.counter("misses").add(3)
        assert g.snapshot() == {"L1D.misses": 3}

    def test_reset_clears_everything(self):
        g = StatGroup("x")
        g.counter("a").add(1)
        g.ratio("r").record(True)
        g.histogram("h", [10]).record(5)
        g.reset()
        assert g.get("a") == 0
        assert g.ratio("r").denominator == 0
        assert g.histogram("h", [10]).total == 0
