"""Unit tests for configuration validation and canonical configs."""

import pytest

from repro.common.config import (
    CacheConfig,
    HierarchyConfig,
    LatencyConfig,
    SimConfig,
    TimeCacheConfig,
    paper_table1_gem5_config,
    paper_table1_real_config,
    scaled_experiment_config,
)
from repro.common.errors import ConfigError
from repro.common.units import KIB, MIB


class TestCacheConfig:
    def test_geometry(self):
        c = CacheConfig("L1D", 32 * KIB, ways=4)
        assert c.num_sets == 128
        assert c.num_lines == 512
        c.validate()

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ConfigError):
            CacheConfig("X", 32 * KIB, ways=4, line_bytes=48).validate()

    def test_rejects_non_divisible_size(self):
        with pytest.raises(ConfigError):
            CacheConfig("X", 1000, ways=3).validate()

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ConfigError):
            CacheConfig("X", 3 * 64 * 4, ways=4).validate()

    def test_rejects_zero_ways(self):
        with pytest.raises(ConfigError):
            CacheConfig("X", 32 * KIB, ways=0).validate()


class TestLatencyConfig:
    def test_default_is_valid(self):
        LatencyConfig().validate()

    def test_ordering_enforced(self):
        with pytest.raises(ConfigError):
            LatencyConfig(l1_hit=50, l2_hit=20).validate()

    def test_flush_ordering_enforced(self):
        with pytest.raises(ConfigError):
            LatencyConfig(flush_cached=10, flush_uncached=20).validate()


class TestTimeCacheConfig:
    def test_default_is_valid(self):
        TimeCacheConfig().validate()

    def test_timestamp_width_bounds(self):
        with pytest.raises(ConfigError):
            TimeCacheConfig(timestamp_bits=1).validate()
        with pytest.raises(ConfigError):
            TimeCacheConfig(timestamp_bits=65).validate()

    def test_negative_dma_rejected(self):
        with pytest.raises(ConfigError):
            TimeCacheConfig(sbit_dma_cycles=-1).validate()


class TestHierarchyConfig:
    def test_default_is_valid(self):
        HierarchyConfig().validate()

    def test_context_count(self):
        h = HierarchyConfig(num_cores=2, threads_per_core=2)
        assert h.num_hw_contexts == 4

    def test_rejects_llc_smaller_than_l1(self):
        with pytest.raises(ConfigError):
            HierarchyConfig(
                l1d=CacheConfig("L1D", 64 * KIB, ways=4),
                llc=CacheConfig("LLC", 32 * KIB, ways=8),
            ).validate()

    def test_rejects_mismatched_line_sizes(self):
        with pytest.raises(ConfigError):
            HierarchyConfig(
                l1d=CacheConfig("L1D", 32 * KIB, ways=4, line_bytes=32),
            ).validate()


class TestSimConfig:
    def test_baseline_disables_timecache_only(self):
        cfg = SimConfig()
        base = cfg.baseline()
        assert not base.timecache.enabled
        assert cfg.timecache.enabled  # original untouched (frozen)
        assert base.hierarchy == cfg.hierarchy

    def test_with_timecache_replaces_fields(self):
        cfg = SimConfig().with_timecache(constant_time_flush=True)
        assert cfg.timecache.constant_time_flush

    def test_rejects_bad_quantum(self):
        import dataclasses

        with pytest.raises(ConfigError):
            dataclasses.replace(SimConfig(), quantum_cycles=0).validate()


class TestCanonicalConfigs:
    def test_paper_gem5_config_matches_table1(self):
        cfg = paper_table1_gem5_config()
        assert cfg.clock_ghz == 2.0
        assert cfg.hierarchy.l1i.size_bytes == 32 * KIB
        assert cfg.hierarchy.l1d.size_bytes == 32 * KIB
        assert cfg.hierarchy.llc.size_bytes == 2 * MIB

    def test_paper_real_config_documents_i7(self):
        rows = paper_table1_real_config()
        assert any("i7-7700" in row for row in rows)
        assert any("8192K" in row for row in rows)

    def test_scaled_config_valid_and_scaled(self):
        cfg = scaled_experiment_config()
        cfg.validate()
        assert cfg.hierarchy.llc.size_bytes < 2 * MIB

    def test_scaled_config_dma_scales_with_llc(self):
        small = scaled_experiment_config(llc_kib=128)
        large = scaled_experiment_config(llc_kib=512)
        assert large.timecache.sbit_dma_cycles > small.timecache.sbit_dma_cycles
