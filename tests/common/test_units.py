"""Unit tests for unit conversions and aggregates."""

import math

import pytest

from repro.common.units import (
    KIB,
    MIB,
    checked_mean,
    cycles_from_ns,
    cycles_from_us,
    geometric_mean,
    is_power_of_two,
    mpki,
    pretty_size,
)


def test_size_constants():
    assert KIB == 1024
    assert MIB == 1024 * 1024


def test_cycles_from_us_matches_paper_dma_constant():
    # The paper's 1.08 us DMA at the 2 GHz gem5 clock.
    assert cycles_from_us(1.08, 2.0) == 2160


def test_cycles_from_ns():
    assert cycles_from_ns(500, 2.0) == 1000


def test_cycles_rejects_bad_clock():
    with pytest.raises(ValueError):
        cycles_from_ns(10, 0.0)


def test_geometric_mean_basic():
    assert math.isclose(geometric_mean([1.0, 4.0]), 2.0)


def test_geometric_mean_of_identical_values():
    assert math.isclose(geometric_mean([1.0113] * 5), 1.0113)


def test_geometric_mean_rejects_empty_and_nonpositive():
    with pytest.raises(ValueError):
        geometric_mean([])
    with pytest.raises(ValueError):
        geometric_mean([1.0, 0.0])


def test_mpki():
    assert mpki(50, 100_000) == 0.5
    assert mpki(0, 1000) == 0.0


def test_mpki_zero_instructions_is_zero_not_error():
    assert mpki(10, 0) == 0.0


def test_pretty_size():
    assert pretty_size(32 * KIB) == "32K"
    assert pretty_size(2 * MIB) == "2M"
    assert pretty_size(100) == "100B"


def test_is_power_of_two():
    assert is_power_of_two(1)
    assert is_power_of_two(64)
    assert not is_power_of_two(0)
    assert not is_power_of_two(3)
    assert not is_power_of_two(-4)


def test_checked_mean():
    assert checked_mean([2.0, 4.0]) == 3.0
    with pytest.raises(ValueError):
        checked_mean([])
