"""Unit tests for the global simulation clock."""

import pytest

from repro.common.clock import GlobalClock


def test_starts_at_zero_by_default():
    assert GlobalClock().now == 0


def test_starts_at_given_time():
    assert GlobalClock(42).now == 42


def test_negative_start_rejected():
    with pytest.raises(ValueError):
        GlobalClock(-1)


def test_tick_advances_and_returns_new_time():
    clock = GlobalClock()
    assert clock.tick(5) == 5
    assert clock.now == 5
    assert clock.tick() == 6


def test_tick_backwards_rejected():
    clock = GlobalClock()
    with pytest.raises(ValueError):
        clock.tick(-3)


def test_advance_to_moves_forward_only():
    clock = GlobalClock(10)
    assert clock.advance_to(20) == 20
    assert clock.advance_to(5) == 20  # no-op backwards
    assert clock.now == 20


def test_advance_to_is_idempotent():
    clock = GlobalClock()
    clock.advance_to(7)
    clock.advance_to(7)
    assert clock.now == 7
