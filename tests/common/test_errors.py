"""The exception hierarchy contract: one root catches everything."""

import inspect

import pytest

from repro.common import errors
from repro.common.errors import (
    ConfigError,
    FaultInjectionError,
    InvariantViolation,
    ProgramError,
    ReproError,
    SchedulerError,
    SimulationError,
    SimulationTimeout,
)


def _all_library_exceptions():
    return [
        obj
        for _, obj in inspect.getmembers(errors, inspect.isclass)
        if issubclass(obj, Exception) and obj.__module__ == errors.__name__
    ]


def test_every_library_exception_is_under_the_root():
    classes = _all_library_exceptions()
    assert ReproError in classes
    for cls in classes:
        assert issubclass(cls, ReproError), f"{cls.__name__} escapes ReproError"


@pytest.mark.parametrize(
    "cls",
    [
        ConfigError,
        SimulationError,
        SchedulerError,
        ProgramError,
        SimulationTimeout,
        FaultInjectionError,
    ],
)
def test_each_exception_is_catchable_via_root(cls):
    with pytest.raises(ReproError):
        raise cls("boom")


def test_invariant_violation_is_a_simulation_error():
    # The checker reports broken simulator state, so generic handlers for
    # SimulationError (and ReproError) must both see it.
    assert issubclass(InvariantViolation, SimulationError)
    with pytest.raises(ReproError):
        raise InvariantViolation("bad state")


def test_invariant_violation_carries_diagnostics():
    violation = InvariantViolation(
        "task holds a bit it never earned",
        invariant="sbit-subset-of-entitlement",
        cache="L1D0",
        set_idx=3,
        way=1,
        ctx=0,
        task=42,
    )
    assert violation.invariant == "sbit-subset-of-entitlement"
    assert violation.cache == "L1D0"
    assert (violation.set_idx, violation.way) == (3, 1)
    assert violation.ctx == 0 and violation.task == 42
    text = str(violation)
    assert "sbit-subset-of-entitlement" in text
    assert "L1D0" in text and "set=3" in text and "task=42" in text


def test_invariant_violation_message_without_location():
    violation = InvariantViolation("broken", invariant="tc-in-domain")
    assert str(violation) == "tc-in-domain: broken"


def test_distinct_categories_do_not_cross_catch():
    with pytest.raises(ConfigError):
        try:
            raise ConfigError("cfg")
        except SchedulerError:  # pragma: no cover - must not trigger
            pytest.fail("ConfigError caught as SchedulerError")
    with pytest.raises(SimulationTimeout):
        try:
            raise SimulationTimeout("slow")
        except SimulationError:  # pragma: no cover - must not trigger
            pytest.fail("SimulationTimeout caught as SimulationError")
