"""Shared fixtures: small, fast configurations for unit/integration tests.

Tests run on deliberately tiny caches (16 KiB LLC, 1 KiB L1s) and short
quanta so every mechanism — fills, evictions, context switches, rollover —
is exercised with little simulated work.
"""

import pytest

from repro.common import scaled_experiment_config
from repro.common.config import (
    CacheConfig,
    HierarchyConfig,
    SimConfig,
    TimeCacheConfig,
)
from repro.common.units import KIB


def tiny_config(
    num_cores: int = 1,
    enabled: bool = True,
    quantum: int = 5_000,
    timestamp_bits: int = 32,
    **tc_kwargs,
) -> SimConfig:
    """A minimal machine: 1 KiB L1s (4 sets x 4 ways), 16 KiB LLC."""
    cfg = SimConfig(
        hierarchy=HierarchyConfig(
            num_cores=num_cores,
            threads_per_core=1,
            l1i=CacheConfig("L1I", 1 * KIB, ways=4),
            l1d=CacheConfig("L1D", 1 * KIB, ways=4),
            llc=CacheConfig("LLC", 16 * KIB, ways=8),
        ),
        timecache=TimeCacheConfig(
            enabled=enabled,
            timestamp_bits=timestamp_bits,
            sbit_dma_cycles=20,
            **tc_kwargs,
        ),
        quantum_cycles=quantum,
        context_switch_cycles=50,
    )
    cfg.validate()
    return cfg


@pytest.fixture
def config():
    return tiny_config()


@pytest.fixture
def baseline_config():
    return tiny_config(enabled=False)


@pytest.fixture
def two_core_config():
    return tiny_config(num_cores=2)


@pytest.fixture
def experiment_config():
    """The (scaled-down further) experiment configuration for workload
    tests: a bit larger than tiny so profiles behave sanely."""
    return scaled_experiment_config(
        num_cores=1, llc_kib=32, l1_kib=2, quantum_cycles=20_000
    )
