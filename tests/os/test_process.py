"""Unit tests for processes and tasks."""

import pytest

from repro.common.errors import SchedulerError
from repro.cpu.isa import Compute
from repro.cpu.program import Program
from repro.os.process import Process, TaskStatus
from repro.os.vm import AddressSpace, PhysicalMemory


def make_process(name="p"):
    phys = PhysicalMemory()
    return Process(name, AddressSpace(name, phys))


def prog():
    def factory():
        yield Compute(1)

    return Program("noop", factory)


def test_pids_unique():
    assert make_process().pid != make_process().pid


def test_spawn_attaches_task():
    process = make_process()
    task = process.spawn(prog(), affinity=0)
    assert task in process.tasks
    assert task.process is process
    assert task.affinity == 0


def test_tids_unique():
    process = make_process()
    a = process.spawn(prog())
    b = process.spawn(prog())
    assert a.tid != b.tid


def test_task_name_includes_process_and_program():
    process = make_process("gpg")
    task = process.spawn(prog())
    assert "gpg" in task.name and "noop" in task.name


def test_generator_is_lazy_and_cached():
    process = make_process()
    task = process.spawn(prog())
    gen = task.generator()
    assert task.generator() is gen


def test_exit_clears_generator():
    process = make_process()
    task = process.spawn(prog())
    task.generator()
    task.exit()
    assert task.status is TaskStatus.EXITED
    with pytest.raises(SchedulerError):
        task.assert_runnable()


def test_translate_delegates_to_address_space():
    process = make_process()
    seg = process.address_space.phys.allocate_segment("a", 4096)
    process.address_space.map_segment(seg, 0x10000)
    task = process.spawn(prog())
    assert task.translate(0x10008) == seg.phys_base + 8
    assert task.translator()(0x10008) == seg.phys_base + 8


def test_threads_share_address_space():
    process = make_process()
    t1 = process.spawn(prog())
    t2 = process.spawn(prog())
    assert t1.process.address_space is t2.process.address_space
