"""Unit tests for physical memory, segments, and address spaces."""

import pytest

from repro.common.errors import SimulationError
from repro.os.vm import AddressSpace, PhysicalMemory


@pytest.fixture
def phys():
    return PhysicalMemory(page_bytes=4096)


def test_page_size_must_be_power_of_two():
    with pytest.raises(SimulationError):
        PhysicalMemory(page_bytes=3000)


def test_segment_allocation_is_page_aligned(phys):
    seg = phys.allocate_segment("a", 100)
    assert seg.phys_base % 4096 == 0
    assert seg.num_pages == 1


def test_segments_do_not_overlap(phys):
    a = phys.allocate_segment("a", 8192)
    b = phys.allocate_segment("b", 4096)
    a_pages = {a.phys_page(i) for i in range(a.num_pages)}
    assert b.phys_page(0) not in a_pages


def test_duplicate_segment_name_rejected(phys):
    phys.allocate_segment("a", 100)
    with pytest.raises(SimulationError):
        phys.allocate_segment("a", 100)


def test_dedup_by_content_key(phys):
    a = phys.allocate_segment("libc-in-proc-a", 8192, content_key="libc")
    b = phys.allocate_segment("libc-in-proc-b", 8192, content_key="libc")
    assert a.phys_base == b.phys_base
    assert phys.dedup_hits == 1


def test_dedup_saves_physical_memory(phys):
    before = phys.allocated_bytes
    phys.allocate_segment("x1", 4096 * 4, content_key="img")
    mid = phys.allocated_bytes
    phys.allocate_segment("x2", 4096 * 4, content_key="img")
    assert phys.allocated_bytes == mid
    assert mid - before == 4096 * 4


def test_segment_lookup(phys):
    phys.allocate_segment("a", 100)
    assert phys.segment("a").name == "a"
    with pytest.raises(SimulationError):
        phys.segment("missing")


class TestAddressSpace:
    def test_translate(self, phys):
        aspace = AddressSpace("p", phys)
        seg = phys.allocate_segment("a", 8192)
        aspace.map_segment(seg, 0x10000)
        paddr = aspace.translate(0x10000 + 123)
        assert paddr == seg.phys_base + 123
        paddr2 = aspace.translate(0x10000 + 4096 + 7)
        assert paddr2 == seg.phys_base + 4096 + 7

    def test_unmapped_access_faults(self, phys):
        aspace = AddressSpace("p", phys)
        with pytest.raises(SimulationError):
            aspace.translate(0xDEAD000)

    def test_unaligned_map_rejected(self, phys):
        aspace = AddressSpace("p", phys)
        seg = phys.allocate_segment("a", 4096)
        with pytest.raises(SimulationError):
            aspace.map_segment(seg, 0x10001)

    def test_double_map_rejected(self, phys):
        aspace = AddressSpace("p", phys)
        a = phys.allocate_segment("a", 4096)
        b = phys.allocate_segment("b", 4096)
        aspace.map_segment(a, 0x10000)
        with pytest.raises(SimulationError):
            aspace.map_segment(b, 0x10000)

    def test_two_spaces_share_physical_page(self, phys):
        seg = phys.allocate_segment("shared", 4096)
        a = AddressSpace("a", phys)
        b = AddressSpace("b", phys)
        a.map_segment(seg, 0x10000)
        b.map_segment(seg, 0x70000)  # different virtual bases
        assert a.translate(0x10040) == b.translate(0x70040)

    def test_shares_page_with(self, phys):
        seg = phys.allocate_segment("shared", 4096)
        a = AddressSpace("a", phys)
        b = AddressSpace("b", phys)
        a.map_segment(seg, 0x10000)
        b.map_segment(seg, 0x10000)
        assert a.shares_page_with(b, 0x10000)
        assert not a.shares_page_with(b, 0x90000)

    def test_cow_break_gives_private_page(self, phys):
        seg = phys.allocate_segment("data", 4096)
        parent = AddressSpace("parent", phys)
        child = AddressSpace("child", phys)
        parent.map_segment(seg, 0x10000)
        child.map_segment_cow(seg, 0x10000)
        assert parent.translate(0x10000) == child.translate(0x10000)
        assert child.write_fault(0x10010)  # COW break
        assert parent.translate(0x10000) != child.translate(0x10000)
        assert not child.write_fault(0x10010)  # already private

    def test_write_fault_on_non_cow_page_is_noop(self, phys):
        seg = phys.allocate_segment("data", 4096)
        aspace = AddressSpace("p", phys)
        aspace.map_segment(seg, 0x10000)
        before = aspace.translate(0x10000)
        assert not aspace.write_fault(0x10000)
        assert aspace.translate(0x10000) == before

    def test_segment_base_lookup(self, phys):
        seg = phys.allocate_segment("a", 4096)
        aspace = AddressSpace("p", phys)
        aspace.map_segment(seg, 0x30000)
        assert aspace.segment_base("a") == 0x30000
        with pytest.raises(SimulationError):
            aspace.segment_base("missing")

    def test_is_mapped(self, phys):
        seg = phys.allocate_segment("a", 4096)
        aspace = AddressSpace("p", phys)
        aspace.map_segment(seg, 0x30000)
        assert aspace.is_mapped(0x30FFF)
        assert not aspace.is_mapped(0x31000)
