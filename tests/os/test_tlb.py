"""Tests for the per-context TLB."""

import pytest

from repro.cpu.isa import Compute, Exit, Load
from repro.cpu.program import Program
from repro.os.kernel import Kernel
from repro.os.tlb import Tlb, tlb_wrapped_translator

from tests.conftest import tiny_config


class TestTlbUnit:
    def walker(self, vaddr):
        return vaddr + 0x1000_0000  # a fake page-table walk

    def test_miss_then_hit(self):
        tlb = Tlb(entries=4, walk_cycles=30)
        paddr, cost = tlb.translate(0x2000, self.walker)
        assert paddr == 0x1000_2000
        assert cost == 30
        paddr, cost = tlb.translate(0x2008, self.walker)  # same page
        assert paddr == 0x1000_2008
        assert cost == 0
        assert tlb.stats.get("hits") == 1
        assert tlb.stats.get("misses") == 1

    def test_lru_eviction(self):
        tlb = Tlb(entries=2, walk_cycles=10)
        tlb.translate(0x1000, self.walker)
        tlb.translate(0x2000, self.walker)
        tlb.translate(0x1000, self.walker)  # refresh page 1
        tlb.translate(0x3000, self.walker)  # evicts page 2 (LRU)
        _, cost = tlb.translate(0x1000, self.walker)
        assert cost == 0
        _, cost = tlb.translate(0x2000, self.walker)
        assert cost == 10  # was evicted

    def test_flush_drops_everything(self):
        tlb = Tlb(entries=4)
        tlb.translate(0x1000, self.walker)
        tlb.flush()
        assert tlb.occupancy == 0
        _, cost = tlb.translate(0x1000, self.walker)
        assert cost == tlb.walk_cycles

    def test_validation(self):
        with pytest.raises(ValueError):
            Tlb(entries=0)
        with pytest.raises(ValueError):
            Tlb(entries=1, walk_cycles=-1)

    def test_wrapped_translator_charges(self):
        tlb = Tlb(entries=4, walk_cycles=25)
        charged = []
        translate = tlb_wrapped_translator(
            tlb, self.walker, charged.append
        )
        assert translate(0x5000) == 0x1000_5000
        assert charged == [25]
        translate(0x5010)
        assert charged == [25]  # hit: nothing more charged


class TestTlbInKernel:
    def run_kernel(self, tlb_entries):
        import dataclasses

        cfg = dataclasses.replace(
            tiny_config(quantum=2_000),
            tlb_entries=tlb_entries,
            tlb_walk_cycles=30,
        )
        kernel = Kernel(cfg)
        pa, pb = kernel.create_process("a"), kernel.create_process("b")
        for proc in (pa, pb):
            seg = kernel.phys.allocate_segment(f"{proc.name}.data", 8192)
            proc.address_space.map_segment(seg, 0x10000)

        def prog():
            # long enough to outlast several 2000-cycle quanta, so the
            # two processes genuinely alternate
            for _ in range(400):
                yield Load(0x10000)
                yield Load(0x11000)  # second page
                yield Compute(20)
            yield Exit()

        ta = pa.spawn(Program("a", prog), affinity=0)
        tb = pb.spawn(Program("b", prog), affinity=0)
        kernel.submit(ta)
        kernel.submit(tb)
        summary = kernel.run()
        return kernel, summary

    def test_walks_slow_the_run(self):
        _, without = self.run_kernel(tlb_entries=0)
        kernel, with_tlb = self.run_kernel(tlb_entries=8)
        assert with_tlb.makespan > without.makespan  # walk costs charged
        tlb = kernel._tlbs[0]
        assert tlb is not None
        assert tlb.stats.get("hits") > 0

    def test_switch_flushes_tlb(self):
        kernel, _ = self.run_kernel(tlb_entries=8)
        tlb = kernel._tlbs[0]
        assert tlb.stats.get("flushes") >= 2  # one per process change
        # post-switch re-walks: more misses than the 4 distinct pages
        assert tlb.stats.get("misses") > 4
