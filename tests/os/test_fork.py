"""fork()/COW tests: the sharing pattern the paper's intro motivates."""

from repro.cpu.isa import Exit, Flush, Load, SleepOp, Store
from repro.cpu.program import Program
from repro.os.kernel import Kernel

from tests.conftest import tiny_config


def make_forked_pair(kernel):
    parent = kernel.create_process("parent")
    seg = kernel.phys.allocate_segment("heap", 8192)
    parent.address_space.map_segment(seg, 0x10000)
    child = kernel.fork_process(parent)
    return parent, child


def test_child_shares_parent_pages():
    kernel = Kernel(tiny_config())
    parent, child = make_forked_pair(kernel)
    assert parent.address_space.shares_page_with(child.address_space, 0x10000)
    assert child.address_space.segment_base("heap") == 0x10000


def test_child_write_breaks_sharing():
    kernel = Kernel(tiny_config())
    parent, child = make_forked_pair(kernel)
    assert child.address_space.write_fault(0x10020)
    assert not parent.address_space.shares_page_with(
        child.address_space, 0x10000
    )
    # other pages still shared
    assert parent.address_space.shares_page_with(child.address_space, 0x11000)


def test_parent_unaffected_by_child_cow_break():
    kernel = Kernel(tiny_config())
    parent, child = make_forked_pair(kernel)
    before = parent.address_space.translate(0x10000)
    child.address_space.write_fault(0x10000)
    assert parent.address_space.translate(0x10000) == before


def test_forked_pages_are_a_reuse_channel_without_timecache():
    """Parent spies on which COW pages the child *reads* (reads keep
    sharing): the classic fork-based leak, blocked by TimeCache."""
    for enabled, expected_hits in ((False, 1), (True, 0)):
        kernel = Kernel(tiny_config(enabled=enabled))
        parent, child = make_forked_pair(kernel)
        hits = []

        def spy():
            yield Flush(0x10000)
            yield SleepOp(30_000)
            r = yield Load(0x10000)
            hits.append(r.latency < 100)
            yield Exit()

        def reader():
            for _ in range(4):
                yield Load(0x10000)  # read does not break COW
            yield Exit()

        tp = parent.spawn(Program("spy", spy), affinity=0)
        tc = child.spawn(Program("reader", reader), affinity=0)
        kernel.submit(tp)
        kernel.submit(tc)
        kernel.run()
        assert sum(hits) == expected_hits


def test_cow_break_stops_even_the_baseline_channel():
    """After the child writes (COW break), its accesses hit private
    pages: the parent's probe of its own copy shows nothing, defense or
    not — sharing is gone (and so is the memory saving)."""
    kernel = Kernel(tiny_config(enabled=False))
    parent, child = make_forked_pair(kernel)
    hits = []

    def spy():
        yield Flush(0x10000)
        yield SleepOp(30_000)
        r = yield Load(0x10000)
        hits.append(r.latency < 100)
        yield Exit()

    def writer():
        child.address_space.write_fault(0x10000)  # kernel COW handler
        for _ in range(4):
            yield Store(0x10000)
        yield Exit()

    tp = parent.spawn(Program("spy", spy), affinity=0)
    tc = child.spawn(Program("writer", writer), affinity=0)
    kernel.submit(tp)
    kernel.submit(tc)
    kernel.run()
    assert sum(hits) == 0
