"""Unit tests for the round-robin scheduler."""

import pytest

from repro.common.errors import SchedulerError
from repro.cpu.isa import Compute
from repro.cpu.program import Program
from repro.os.process import Process, TaskStatus
from repro.os.scheduler import RoundRobinScheduler
from repro.os.vm import AddressSpace, PhysicalMemory


def make_task(affinity=None):
    phys = PhysicalMemory()
    process = Process("p", AddressSpace("p", phys))

    def factory():
        yield Compute(1)

    return process.spawn(Program("t", factory), affinity=affinity)


def test_validation():
    with pytest.raises(SchedulerError):
        RoundRobinScheduler(0, 100)
    with pytest.raises(SchedulerError):
        RoundRobinScheduler(1, 0)


def test_admit_respects_affinity():
    sched = RoundRobinScheduler(2, 100)
    task = make_task(affinity=1)
    assert sched.admit(task) == 1
    assert sched.pending(1) == 1
    assert sched.pending(0) == 0


def test_admit_balances_without_affinity():
    sched = RoundRobinScheduler(2, 100)
    placements = [sched.admit(make_task()) for _ in range(4)]
    assert placements.count(0) == 2 and placements.count(1) == 2


def test_admit_rejects_bad_context():
    sched = RoundRobinScheduler(2, 100)
    with pytest.raises(SchedulerError):
        sched.admit(make_task(affinity=5))


def test_round_robin_order():
    sched = RoundRobinScheduler(1, 100)
    a, b = make_task(0), make_task(0)
    sched.admit(a)
    sched.admit(b)
    first = sched.next_task(0, local_time=0)
    assert first is a
    sched.requeue(first, 0)
    second = sched.next_task(0, local_time=10)
    assert second is b


def test_next_task_skips_exited():
    sched = RoundRobinScheduler(1, 100)
    a, b = make_task(0), make_task(0)
    sched.admit(a)
    sched.admit(b)
    a.status = TaskStatus.EXITED
    assert sched.next_task(0, 0) is b


def test_sleep_and_wake():
    sched = RoundRobinScheduler(1, 100)
    task = make_task(0)
    sched.admit(task)
    got = sched.next_task(0, 0)
    sched.put_to_sleep(got, 0, wake_at=500)
    assert sched.next_task(0, 100) is None  # still asleep
    assert sched.earliest_wake(0) == 500
    assert sched.next_task(0, 500) is got  # woken


def test_requeue_ignores_exited():
    sched = RoundRobinScheduler(1, 100)
    task = make_task(0)
    sched.admit(task)
    got = sched.next_task(0, 0)
    got.status = TaskStatus.EXITED
    sched.requeue(got, 0)
    assert sched.pending(0) == 0


def test_has_work():
    sched = RoundRobinScheduler(2, 100)
    assert not sched.has_work()
    sched.admit(make_task(0))
    assert sched.has_work()
