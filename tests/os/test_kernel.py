"""Integration tests for the kernel: dispatch, quanta, switches, sleep."""

from repro.cpu.isa import Compute, Exit, Load, SleepOp, Store, YieldOp
from repro.cpu.program import Program
from repro.os.kernel import Kernel

from tests.conftest import tiny_config


def simple_program(name, ops):
    def factory():
        for op in ops:
            yield op

    return Program(name, factory)


def test_single_task_runs_to_completion(config):
    kernel = Kernel(config)
    process = kernel.create_process("p")
    task = process.spawn(simple_program("c", [Compute(100), Exit()]), affinity=0)
    kernel.submit(task)
    summary = kernel.run()
    assert kernel.all_done()
    assert summary.per_task_instructions[task.name] == 101


def test_two_tasks_round_robin_with_switches():
    kernel = Kernel(tiny_config(quantum=200))
    pa = kernel.create_process("a")
    pb = kernel.create_process("b")
    ta = pa.spawn(simple_program("a", [Compute(1000), Exit()]), affinity=0)
    tb = pb.spawn(simple_program("b", [Compute(1000), Exit()]), affinity=0)
    kernel.submit(ta)
    kernel.submit(tb)
    summary = kernel.run()
    assert kernel.all_done()
    # 1000 cycles each at quantum 200 -> multiple alternations
    assert summary.context_switches >= 4


def test_single_task_is_not_switched_against_itself(config):
    kernel = Kernel(config)
    process = kernel.create_process("p")
    task = process.spawn(
        simple_program("c", [Compute(50_000), Exit()]), affinity=0
    )
    kernel.submit(task)
    summary = kernel.run()
    assert summary.context_switches == 1  # only the initial dispatch


def test_yield_rotates_queue():
    kernel = Kernel(tiny_config(quantum=10**6))
    pa, pb = kernel.create_process("a"), kernel.create_process("b")
    order = []

    def make(tag, n):
        def factory():
            for _ in range(n):
                order.append(tag)
                yield YieldOp()
            yield Exit()

        return Program(tag, factory)

    ta = pa.spawn(make("A", 3), affinity=0)
    tb = pb.spawn(make("B", 3), affinity=0)
    kernel.submit(ta)
    kernel.submit(tb)
    kernel.run()
    assert order == ["A", "B", "A", "B", "A", "B"]


def test_sleep_blocks_until_wake(config):
    kernel = Kernel(config)
    pa, pb = kernel.create_process("a"), kernel.create_process("b")
    events = []

    def sleeper():
        events.append("sleep")
        yield SleepOp(10_000)
        events.append("woke")
        yield Exit()

    def worker():
        yield Compute(100)
        events.append("worked")
        yield Exit()

    ta = pa.spawn(Program("sleeper", sleeper), affinity=0)
    tb = pb.spawn(Program("worker", worker), affinity=0)
    kernel.submit(ta)
    kernel.submit(tb)
    kernel.run()
    assert events == ["sleep", "worked", "woke"]


def test_idle_core_skids_clock_to_wake(config):
    kernel = Kernel(config)
    process = kernel.create_process("p")
    task = process.spawn(
        simple_program("s", [SleepOp(50_000), Exit()]), affinity=0
    )
    kernel.submit(task)
    kernel.run()
    assert kernel.contexts[0].local_time >= 50_000


def test_memory_ops_translated_through_process(config):
    kernel = Kernel(config)
    process = kernel.create_process("p")
    seg = kernel.phys.allocate_segment("data", 4096)
    process.address_space.map_segment(seg, 0x10000)
    task = process.spawn(
        simple_program("w", [Store(0x10000), Load(0x10040), Exit()]),
        affinity=0,
    )
    kernel.submit(task)
    kernel.run()
    hier = kernel.system.hierarchy
    assert hier.l1d[0].resident(seg.phys_base >> 6)


def test_two_cores_progress_in_lockstep(two_core_config):
    kernel = Kernel(two_core_config)
    pa, pb = kernel.create_process("a"), kernel.create_process("b")
    ta = pa.spawn(simple_program("a", [Compute(5000), Exit()]), affinity=0)
    tb = pb.spawn(simple_program("b", [Compute(5000), Exit()]), affinity=1)
    kernel.submit(ta)
    kernel.submit(tb)
    summary = kernel.run()
    assert kernel.all_done()
    assert summary.per_ctx_local_time[0] > 0
    assert summary.per_ctx_local_time[1] > 0


def test_stop_when_predicate(config):
    kernel = Kernel(config)
    pa, pb = kernel.create_process("a"), kernel.create_process("b")

    def forever():
        while True:
            yield Compute(1)

    short = pa.spawn(simple_program("s", [Compute(500), Exit()]), affinity=0)
    loop = pb.spawn(Program("loop", forever), affinity=0)
    kernel.submit(short)
    kernel.submit(loop)
    kernel.run(stop_when=lambda k: k.task_done(short), max_steps=10**6)
    assert kernel.task_done(short)
    assert not kernel.task_done(loop)


def test_max_steps_bounds_runaway(config):
    kernel = Kernel(config)
    process = kernel.create_process("p")

    def forever():
        while True:
            yield Compute(1)

    kernel.submit(process.spawn(Program("f", forever), affinity=0))
    summary = kernel.run(max_steps=1000)
    assert summary.steps == 1000


def test_switch_cost_charged_to_local_time():
    cfg = tiny_config(quantum=100)
    kernel = Kernel(cfg)
    pa, pb = kernel.create_process("a"), kernel.create_process("b")
    ta = pa.spawn(simple_program("a", [Compute(400), Exit()]), affinity=0)
    tb = pb.spawn(simple_program("b", [Compute(400), Exit()]), affinity=0)
    kernel.submit(ta)
    kernel.submit(tb)
    summary = kernel.run()
    switches = summary.context_switches
    pure_work = 802
    overhead_per_switch = (
        cfg.context_switch_cycles + cfg.timecache.sbit_dma_cycles
    )
    assert kernel.contexts[0].local_time >= pure_work + switches * overhead_per_switch


def test_task_cycle_accounting_sums_to_core_time(config):
    kernel = Kernel(config)
    pa, pb = kernel.create_process("a"), kernel.create_process("b")
    ta = pa.spawn(simple_program("a", [Compute(3000), Exit()]), affinity=0)
    tb = pb.spawn(simple_program("b", [Compute(3000), Exit()]), affinity=0)
    kernel.submit(ta)
    kernel.submit(tb)
    summary = kernel.run()
    total_task_cycles = sum(summary.per_task_cycles.values())
    # switch costs are charged while no task is dispatched, so task cycles
    # are bounded by (and close to) the core's local time
    assert total_task_cycles <= kernel.contexts[0].local_time
    assert total_task_cycles >= 6000


def test_wall_clock_budget_interrupts_giant_batched_run(config):
    """One AccessRun is a single kernel step, so the per-step watchdog
    alone can overshoot the budget by a whole batch.  The kernel arms the
    hierarchy's cooperative ``batch_deadline`` seam, which re-checks the
    budget between batch windows and raises mid-run."""
    import pytest

    from repro.common.errors import SimulationTimeout
    from repro.cpu.isa import AccessRun

    kernel = Kernel(config)
    process = kernel.create_process("p")
    seg = kernel.phys.allocate_segment("data", 1 << 16)
    process.address_space.map_segment(seg, 0x10000)
    # Far more work than the budget allows, all inside ONE op.
    addrs = [0x10000 + (i * 64) % (1 << 16) for i in range(400_000)]
    task = process.spawn(
        simple_program("big", [AccessRun(addrs), Exit()]), affinity=0
    )
    kernel.submit(task)
    with pytest.raises(SimulationTimeout, match="batched access run"):
        kernel.run(wall_clock_budget_s=0.05)
    # the seam is disarmed again even on the raise path
    assert kernel.system.hierarchy.batch_deadline is None


def test_budgetless_run_leaves_seam_disarmed(config):
    kernel = Kernel(config)
    process = kernel.create_process("p")
    task = process.spawn(simple_program("c", [Compute(10), Exit()]), affinity=0)
    kernel.submit(task)
    kernel.run()
    assert kernel.system.hierarchy.batch_deadline is None
