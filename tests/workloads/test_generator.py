"""Tests for the synthetic workload generator."""

import pytest

from repro.cpu.isa import Compute, Exit, Ifetch, Load, Store
from repro.os.kernel import Kernel
from repro.workloads.generator import (
    CODE_BASE,
    DATA_BASE,
    KERNEL_BASE,
    LIB_BASE,
    WorkloadBuilder,
)
from repro.workloads.profiles import spec_profile

from tests.conftest import tiny_config


@pytest.fixture
def kernel():
    return Kernel(tiny_config())


def collect_ops(program, limit=100_000):
    ops = []
    for op in program.start():
        ops.append(op)
        if len(ops) > limit:
            raise AssertionError("program did not terminate")
    return ops


def instructions_of(ops):
    total = 0
    for op in ops:
        if isinstance(op, Compute):
            total += op.instructions
        elif not isinstance(op, Exit):
            total += 1
    return total


def test_program_retires_requested_instructions(kernel):
    builder = WorkloadBuilder(kernel)
    _, task = builder.build_process(
        spec_profile("namd"), instance=0, instructions=5_000
    )
    ops = collect_ops(task.program)
    retired = instructions_of(ops)
    assert 5_000 <= retired <= 5_010  # may overshoot by one burst
    assert isinstance(ops[-1], Exit)


def test_program_is_deterministic(kernel):
    builder_a = WorkloadBuilder(Kernel(tiny_config()), seed=42)
    builder_b = WorkloadBuilder(Kernel(tiny_config()), seed=42)
    _, ta = builder_a.build_process(spec_profile("astar"), 0, 2_000)
    _, tb = builder_b.build_process(spec_profile("astar"), 0, 2_000)
    ops_a = [(type(o).__name__, getattr(o, "vaddr", None)) for o in collect_ops(ta.program)]
    ops_b = [(type(o).__name__, getattr(o, "vaddr", None)) for o in collect_ops(tb.program)]
    assert ops_a == ops_b


def test_address_regions_respected(kernel):
    builder = WorkloadBuilder(kernel)
    profile = spec_profile("gobmk")
    _, task = builder.build_process(profile, 0, 5_000)
    for op in collect_ops(task.program):
        if isinstance(op, (Load, Store)):
            assert DATA_BASE <= op.vaddr < DATA_BASE + profile.data_lines * 64
        elif isinstance(op, Ifetch):
            assert op.vaddr >= CODE_BASE


def test_all_regions_mapped(kernel):
    builder = WorkloadBuilder(kernel)
    process, task = builder.build_process(spec_profile("wrf"), 0, 3_000)
    aspace = process.address_space
    for op in collect_ops(task.program):
        if hasattr(op, "vaddr"):
            aspace.translate(op.vaddr)  # must not page-fault


def test_ifetch_mix_touches_lib_and_kernel(kernel):
    builder = WorkloadBuilder(kernel)
    _, task = builder.build_process(spec_profile("perlbench"), 0, 30_000)
    regions = {"code": 0, "lib": 0, "kernel": 0}
    for op in collect_ops(task.program):
        if isinstance(op, Ifetch):
            if op.vaddr >= KERNEL_BASE:
                regions["kernel"] += 1
            elif op.vaddr >= LIB_BASE:
                regions["lib"] += 1
            else:
                regions["code"] += 1
    assert all(count > 0 for count in regions.values())
    assert regions["code"] > regions["lib"]


def test_same_benchmark_instances_share_text(kernel):
    builder = WorkloadBuilder(kernel)
    pa, _ = builder.build_process(spec_profile("h264ref"), 0, 100)
    pb, _ = builder.build_process(spec_profile("h264ref"), 1, 100)
    assert pa.address_space.shares_page_with(pb.address_space, CODE_BASE)


def test_different_benchmarks_do_not_share_text(kernel):
    builder = WorkloadBuilder(kernel)
    pa, _ = builder.build_process(spec_profile("h264ref"), 0, 100)
    pb, _ = builder.build_process(spec_profile("astar"), 1, 100)
    assert not pa.address_space.shares_page_with(pb.address_space, CODE_BASE)


def test_all_processes_share_libc_and_kernel(kernel):
    builder = WorkloadBuilder(kernel)
    pa, _ = builder.build_process(spec_profile("namd"), 0, 100)
    pb, _ = builder.build_process(spec_profile("gromacs"), 1, 100)
    assert pa.address_space.shares_page_with(pb.address_space, LIB_BASE)
    assert pa.address_space.shares_page_with(pb.address_space, KERNEL_BASE)


def test_private_data_not_shared(kernel):
    builder = WorkloadBuilder(kernel)
    pa, _ = builder.build_process(spec_profile("namd"), 0, 100)
    pb, _ = builder.build_process(spec_profile("namd"), 1, 100)
    assert not pa.address_space.shares_page_with(pb.address_space, DATA_BASE)


def test_streaming_profile_advances_through_working_set(kernel):
    builder = WorkloadBuilder(kernel)
    profile = spec_profile("lbm")
    _, task = builder.build_process(profile, 0, 60_000)
    data_lines = set()
    for op in collect_ops(task.program):
        if isinstance(op, (Load, Store)):
            data_lines.add((op.vaddr - DATA_BASE) // 64)
    # the stream must cover far more lines than the hot set alone
    hot = int(profile.data_lines * profile.hot_set_fraction)
    assert len(data_lines) > 3 * hot
