"""Integration tests for SPEC-pair and PARSEC workload construction."""

import pytest

from repro.os.kernel import Kernel
from repro.workloads.mixes import (
    PARSEC_BENCHMARKS,
    SPEC_MIXED_PAIRS,
    SPEC_SAME_PAIRS,
    pair_label,
)
from repro.workloads.parsec import build_parsec_workload
from repro.workloads.spec import build_spec_pair

from tests.conftest import tiny_config


class TestSpecPair:
    def test_pair_runs_to_completion(self):
        kernel = Kernel(tiny_config(quantum=3_000))
        ta, tb = build_spec_pair(kernel, "namd", "gromacs", instructions=4_000)
        summary = kernel.run()
        assert kernel.all_done()
        assert summary.per_task_instructions[ta.name] >= 4_000
        assert summary.per_task_instructions[tb.name] >= 4_000

    def test_pair_time_slices_on_one_core(self):
        kernel = Kernel(tiny_config(quantum=2_000))
        build_spec_pair(kernel, "astar", "astar", instructions=8_000)
        summary = kernel.run()
        assert summary.context_switches > 2
        assert all(t.affinity == 0 for t in kernel.tasks)

    def test_same_pair_shares_more_than_mixed_pair(self):
        same = Kernel(tiny_config())
        ta, tb = build_spec_pair(same, "h264ref", "h264ref", instructions=10)
        mixed = Kernel(tiny_config())
        tc, td = build_spec_pair(mixed, "h264ref", "sjeng", instructions=10)
        from repro.workloads.generator import CODE_BASE

        assert ta.process.address_space.shares_page_with(
            tb.process.address_space, CODE_BASE
        )
        assert not tc.process.address_space.shares_page_with(
            td.process.address_space, CODE_BASE
        )


class TestParsec:
    def test_threads_pinned_to_different_cores(self):
        kernel = Kernel(tiny_config(num_cores=2))
        t0, t1 = build_parsec_workload(kernel, "swaptions", 2_000)
        assert t0.affinity == 0
        assert t1.affinity == 1
        assert t0.process is t1.process

    def test_runs_to_completion(self):
        kernel = Kernel(tiny_config(num_cores=2))
        build_parsec_workload(kernel, "blackscholes", 3_000)
        kernel.run()
        assert kernel.all_done()

    def test_no_context_switch_bookkeeping_cost(self):
        """Each thread owns its core: after the initial dispatches there
        are no CR3 changes, so PARSEC overhead is all first accesses."""
        kernel = Kernel(tiny_config(num_cores=2))
        build_parsec_workload(kernel, "swaptions", 2_000)
        summary = kernel.run()
        assert summary.context_switches == 2  # the two initial dispatches

    def test_needs_two_cores(self):
        from repro.common.errors import ConfigError

        kernel = Kernel(tiny_config(num_cores=1))
        with pytest.raises(ConfigError):
            build_parsec_workload(kernel, "swaptions", 100)


class TestMixes:
    def test_table2_pair_counts(self):
        assert len(SPEC_SAME_PAIRS) == 15
        assert len(SPEC_MIXED_PAIRS) == 9
        assert len(PARSEC_BENCHMARKS) == 6

    def test_same_pairs_are_same(self):
        assert all(a == b for a, b in SPEC_SAME_PAIRS)

    def test_mixed_pairs_are_mixed(self):
        assert all(a != b for a, b in SPEC_MIXED_PAIRS)

    def test_pair_labels(self):
        assert pair_label("lbm", "lbm") == "2Xlbm"
        assert pair_label("namd", "lbm") == "namd+lbm"

    def test_all_pair_benchmarks_have_profiles(self):
        from repro.workloads.profiles import SPEC_PROFILES

        for a, b in SPEC_SAME_PAIRS + SPEC_MIXED_PAIRS:
            assert a in SPEC_PROFILES and b in SPEC_PROFILES
