"""Unit tests for benchmark profiles."""

import pytest

from repro.common.errors import ConfigError
from repro.workloads.profiles import (
    PARSEC_PROFILES,
    SPEC_PROFILES,
    BenchmarkProfile,
    parsec_profile,
    spec_profile,
)


def test_all_spec_profiles_valid():
    for profile in SPEC_PROFILES.values():
        profile.validate()


def test_all_parsec_profiles_valid():
    for profile in PARSEC_PROFILES.values():
        profile.validate()


def test_table2_spec_benchmarks_present():
    expected = {
        "specrand", "lbm", "leslie3d", "gobmk", "libquantum", "wrf",
        "calculix", "sjeng", "perlbench", "astar", "h264ref", "milc",
        "sphinx3", "namd", "gromacs", "zeusmp", "cactus",
    }
    assert expected <= set(SPEC_PROFILES)


def test_table2_parsec_benchmarks_present():
    expected = {
        "fluidanimate", "raytrace", "blackscholes", "x264", "swaptions",
        "facesim",
    }
    assert expected == set(PARSEC_PROFILES)


def test_streaming_group_has_higher_stream_fraction():
    """The Table II high-MPKI group must be the streaming-heavy one."""
    high = ["lbm", "leslie3d", "milc", "cactus", "zeusmp"]
    low = ["specrand", "namd", "calculix", "sphinx3"]
    min_high = min(SPEC_PROFILES[b].stream_fraction for b in high)
    max_low = max(SPEC_PROFILES[b].stream_fraction for b in low)
    assert min_high > max_low


def test_wrf_and_perlbench_have_large_shared_instruction_footprints():
    """Figure 8's callout: their first-access MPKI is driven by shared
    instruction memory."""
    others = [
        p.shared_lib_lines
        for name, p in SPEC_PROFILES.items()
        if name not in ("wrf", "perlbench")
    ]
    assert SPEC_PROFILES["wrf"].shared_lib_lines >= max(others)
    assert SPEC_PROFILES["perlbench"].shared_lib_lines >= max(others)


def test_lookup_helpers():
    assert spec_profile("lbm").name == "lbm"
    assert parsec_profile("x264").name == "x264"
    with pytest.raises(ConfigError):
        spec_profile("doom")
    with pytest.raises(ConfigError):
        parsec_profile("doom")


class TestValidation:
    def base(self, **kw):
        args = dict(
            name="x", data_lines=10, code_lines=10, shared_lib_lines=10,
            stream_fraction=0.5,
        )
        args.update(kw)
        return BenchmarkProfile(**args)

    def test_rejects_bad_footprint(self):
        with pytest.raises(ConfigError):
            self.base(data_lines=0).validate()

    def test_rejects_bad_fractions(self):
        with pytest.raises(ConfigError):
            self.base(stream_fraction=1.5).validate()
        with pytest.raises(ConfigError):
            self.base(hot_fraction=-0.1).validate()
        with pytest.raises(ConfigError):
            self.base(mem_ratio=0.0).validate()
        with pytest.raises(ConfigError):
            self.base(write_ratio=2.0).validate()

    def test_rejects_bad_rates(self):
        with pytest.raises(ConfigError):
            self.base(syscall_every=0).validate()
        with pytest.raises(ConfigError):
            self.base(ifetch_every=0).validate()
        with pytest.raises(ConfigError):
            self.base(stream_accesses_per_line=0).validate()
