"""Unit tests for program wrappers."""

from repro.cpu.isa import Compute, Load
from repro.cpu.program import Program, looping_program, trace_program


def test_program_restartable():
    def factory():
        yield Compute(1)
        yield Compute(2)

    program = Program("p", factory)
    ops1 = list(program.start())
    ops2 = list(program.start())
    assert len(ops1) == len(ops2) == 2


def test_trace_program_replays_fixed_ops():
    program = trace_program("t", [Load(1), Load(2)])
    first = [op.vaddr for op in program.start()]
    second = [op.vaddr for op in program.start()]
    assert first == second == [1, 2]


def test_trace_program_materializes_generator_input():
    program = trace_program("t", (Load(i) for i in range(3)))
    assert len(list(program.start())) == 3
    assert len(list(program.start())) == 3  # generator input not consumed


def test_looping_program_bounded():
    program = looping_program("l", lambda i: [Load(i)], iterations=4)
    assert [op.vaddr for op in program.start()] == [0, 1, 2, 3]


def test_looping_program_unbounded_is_lazy():
    program = looping_program("l", lambda i: [Load(i)], iterations=None)
    gen = program.start()
    assert next(gen).vaddr == 0
    assert next(gen).vaddr == 1  # still going; no materialization
