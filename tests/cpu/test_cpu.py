"""Unit tests for the hardware-context executor."""

import pytest

from repro.common.errors import ProgramError
from repro.core.timecache import TimeCacheSystem
from repro.cpu.cpu import HardwareContext, StepEvent
from repro.cpu.isa import (
    Compute,
    Exit,
    Fence,
    Flush,
    Ifetch,
    Load,
    Rdtsc,
    SleepOp,
    Store,
    YieldOp,
)

from tests.conftest import tiny_config

identity = lambda vaddr: vaddr  # noqa: E731 - trivial translator


@pytest.fixture
def ctx():
    return HardwareContext(0, TimeCacheSystem(tiny_config()))


def run_ops(ctx, ops):
    def gen():
        for op in ops:
            yield op

    ctx.install(gen(), identity)
    outcomes = []
    while True:
        outcome = ctx.step()
        outcomes.append(outcome)
        if outcome.event is StepEvent.EXITED:
            break
    return outcomes


def test_requires_installed_task(ctx):
    with pytest.raises(ProgramError):
        ctx.step()


def test_load_charges_latency(ctx):
    run_ops(ctx, [Load(0x1000), Exit()])
    lat = ctx.system.config.hierarchy.latency
    assert ctx.local_time == 1 + (lat.l1_hit + lat.l2_hit + lat.dram)
    assert ctx.stats.get("loads") == 1


def test_compute_counts_instructions(ctx):
    run_ops(ctx, [Compute(10), Exit()])
    assert ctx.stats.get("instructions") == 11  # 10 + Exit
    assert ctx.local_time == 10


def test_rdtsc_returns_local_time(ctx):
    seen = []

    def gen():
        t0 = yield Rdtsc()
        yield Compute(100)
        t1 = yield Rdtsc()
        seen.append(t1 - t0)
        yield Exit()

    ctx.install(gen(), identity)
    while ctx.step().event is not StepEvent.EXITED:
        pass
    assert seen == [101]  # 100 compute + 1 rdtsc


def test_load_result_sent_back(ctx):
    results = []

    def gen():
        r = yield Load(0x1000)
        results.append(r)
        yield Exit()

    ctx.install(gen(), identity)
    while ctx.step().event is not StepEvent.EXITED:
        pass
    assert results[0].level == "DRAM"


def test_yield_and_sleep_events(ctx):
    def gen():
        yield YieldOp()
        yield SleepOp(500)
        yield Exit()

    ctx.install(gen(), identity)
    assert ctx.step().event is StepEvent.YIELDED
    outcome = ctx.step()
    assert outcome.event is StepEvent.SLEEPING
    assert outcome.wake_at == ctx.local_time + 500
    assert ctx.step().event is StepEvent.EXITED


def test_generator_exhaustion_is_exit(ctx):
    def gen():
        yield Compute(1)

    ctx.install(gen(), identity)
    assert ctx.step().event is StepEvent.RUNNING
    assert ctx.step().event is StepEvent.EXITED


def test_fence_and_flush_and_store_and_ifetch(ctx):
    run_ops(ctx, [Store(0x1000), Ifetch(0x2000), Fence(), Flush(0x1000), Exit()])
    assert ctx.stats.get("stores") == 1
    assert ctx.stats.get("ifetches") == 1
    assert ctx.stats.get("flushes") == 1


def test_translation_applied(ctx):
    ctx.install(iter([Load(0x10)]), lambda v: v + 0x5000)
    # install expects a generator; wrap properly
    def gen():
        yield Load(0x10)

    ctx.install(gen(), lambda v: v + 0x5000)
    ctx.step()
    hier = ctx.system.hierarchy
    assert hier.l1d[0].resident(hier.line_addr(0x5010))


def test_uninstall_clears_state(ctx):
    def gen():
        yield Compute(1)

    ctx.install(gen(), identity)
    ctx.step()
    ctx.uninstall()
    assert not ctx.busy
    with pytest.raises(ProgramError):
        ctx.step()
