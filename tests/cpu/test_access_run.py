"""Tests for the AccessRun op, its trace format, and ``replay_ops``."""

import dataclasses

import pytest

from repro.common.errors import ProgramError
from repro.core.timecache import TimeCacheSystem
from repro.cpu.cpu import HardwareContext, StepEvent
from repro.cpu.isa import (
    AccessRun,
    Compute,
    Exit,
    Fence,
    Flush,
    Ifetch,
    Load,
    Rdtsc,
    SleepOp,
    Store,
)
from repro.cpu.tracing import format_op, parse_op, replay_ops

from tests.conftest import tiny_config

identity = lambda vaddr: vaddr  # noqa: E731 - trivial translator
LINE = 64


def _engine_config(engine):
    cfg = tiny_config()
    return dataclasses.replace(
        cfg, hierarchy=dataclasses.replace(cfg.hierarchy, engine=engine)
    )


class TestAccessRunOp:
    def test_uniform_and_per_access_kinds(self):
        run = AccessRun([0x40, 0x80, 0xC0])
        assert run.kinds == "L"
        run = AccessRun([0x40, 0x80, 0xC0], kinds="LSI")
        assert run.kinds == "LSI"

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            AccessRun([])
        with pytest.raises(ValueError, match="codes for"):
            AccessRun([0x40, 0x80], kinds="LSI")
        with pytest.raises(ValueError, match="L/S/I"):
            AccessRun([0x40], kinds="Q")

    def test_trace_roundtrip(self):
        for run in (
            AccessRun([0x1000, 0x2040, 0x3080]),
            AccessRun([0x1000, 0x2040, 0x3080], kinds="SIL"),
            AccessRun([0xBEEF00], kinds="S"),
        ):
            line = format_op(run)
            parsed = parse_op(line)
            assert isinstance(parsed, AccessRun)
            assert parsed.vaddrs == run.vaddrs
            assert parsed.kinds == run.kinds

    def test_parse_rejects_bad_runs(self):
        for bad in ("R", "R L", "R Q 1000", "R LS 1000"):
            with pytest.raises((ProgramError, ValueError)):
                parse_op(bad)


class TestAccessRunExecution:
    def _drive(self, ops, engine):
        ctx = HardwareContext(0, TimeCacheSystem(_engine_config(engine)))
        received = []

        def gen():
            for op in ops:
                result = yield op
                received.append(result)
            yield Exit()

        ctx.install(gen(), identity)
        while ctx.step().event is not StepEvent.EXITED:
            pass
        return ctx, received

    @pytest.mark.parametrize("engine", ["object", "fast"])
    def test_run_equals_scalar_sequence(self, engine):
        """One AccessRun must leave the CPU in exactly the state the
        equivalent scalar op sequence does: local_time, per-kind
        counters, and per-access results."""
        addrs = [(i * 7 % 40) * LINE for i in range(60)]
        kinds = "".join("LSI"[i % 3] for i in range(60))
        scalar_ops = [
            {"L": Load, "S": Store, "I": Ifetch}[code](addr)
            for addr, code in zip(addrs, kinds)
        ]
        run_ctx, run_recv = self._drive([AccessRun(addrs, kinds)], engine)
        seq_ctx, seq_recv = self._drive(scalar_ops, engine)
        assert run_ctx.local_time == seq_ctx.local_time
        for counter in ("instructions", "loads", "stores", "ifetches"):
            assert run_ctx.stats.get(counter) == seq_ctx.stats.get(counter), (
                counter
            )
        batch_results = run_recv[0]
        assert [(r.latency, r.level) for r in batch_results] == [
            (r.latency, r.level) for r in seq_recv
        ]

    def test_fast_and_object_engines_agree_on_runs(self):
        addrs = [(i * 13 % 50) * LINE for i in range(80)]
        fast_ctx, fast_recv = self._drive([AccessRun(addrs)], "fast")
        obj_ctx, obj_recv = self._drive([AccessRun(addrs)], "object")
        assert fast_ctx.local_time == obj_ctx.local_time
        assert [(r.latency, r.level) for r in fast_recv[0]] == [
            (r.latency, r.level) for r in obj_recv[0]
        ]


class TestReplayOps:
    OPS = None  # built per test; generators are single-shot

    def _ops(self):
        ops = []
        for i in range(200):
            addr = (i * 11 % 70) * LINE
            ops.append(("LSI"[i % 3], addr))
        stream = [
            {"L": Load, "S": Store, "I": Ifetch}[code](addr)
            for code, addr in ops
        ]
        # sprinkle batch boundaries through the access stream
        stream[25:25] = [Flush((3 * 11 % 70) * LINE)]
        stream[60:60] = [Compute(40)]
        stream[100:100] = [Rdtsc(), Fence()]
        stream[150:150] = [SleepOp(500)]
        stream.append(AccessRun([i * LINE for i in range(48)], kinds="L"))
        return stream

    @pytest.mark.parametrize("engine", ["object", "fast"])
    def test_batch_matches_scalar_replay(self, engine):
        runs = {}
        for batch in (True, False):
            system = TimeCacheSystem(_engine_config(engine))
            results, now = replay_ops(system, self._ops(), batch=batch)
            runs[batch] = (
                [(r.latency, r.level, r.first_access) for r in results],
                now,
                system.stats_snapshot(),
            )
        assert runs[True] == runs[False]

    def test_engines_agree_through_replay(self):
        runs = {}
        for engine in ("object", "fast"):
            system = TimeCacheSystem(_engine_config(engine))
            results, now = replay_ops(system, self._ops(), batch=True)
            runs[engine] = (
                [(r.latency, r.level, r.first_access) for r in results],
                now,
            )
        assert runs["object"] == runs["fast"]

    def test_exit_stops_replay(self):
        system = TimeCacheSystem(_engine_config("fast"))
        ops = [Load(0x40), Exit(), Load(0x80)]
        results, _ = replay_ops(system, ops)
        assert len(results) == 1

    def test_translation_applied(self):
        system = TimeCacheSystem(_engine_config("fast"))
        results, _ = replay_ops(
            system, [Load(0x40)], translate=lambda v: v + 0x1000
        )
        assert 0x1040 // LINE in system.hierarchy.llc.resident_line_addrs()


class TestProfileReferenceStream:
    def test_deterministic_and_well_formed(self):
        from repro.workloads.generator import profile_reference_stream
        from repro.workloads.profiles import spec_profile

        profile = spec_profile("namd")
        vaddrs, kinds = profile_reference_stream(profile, 500, seed=11)
        again_v, again_k = profile_reference_stream(profile, 500, seed=11)
        assert (vaddrs, kinds) == (again_v, again_k)
        assert len(vaddrs) == len(kinds) == 500
        assert set(kinds) <= set("LSI")
        other_v, _ = profile_reference_stream(profile, 500, seed=12)
        assert other_v != vaddrs

    def test_stream_replays_through_access_batch(self):
        from repro.workloads.generator import profile_reference_stream
        from repro.workloads.profiles import spec_profile

        vaddrs, kinds = profile_reference_stream(spec_profile("milc"), 300)
        results = {}
        for engine in ("object", "fast"):
            system = TimeCacheSystem(_engine_config(engine))
            out = replay_ops(system, [AccessRun(vaddrs, kinds)])
            results[engine] = [
                (r.latency, r.level, r.first_access) for r in out[0]
            ]
        assert results["object"] == results["fast"]
