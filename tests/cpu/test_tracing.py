"""Tests for trace recording, serialization, and replay."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import ProgramError
from repro.cpu.isa import (
    Compute,
    Exit,
    Fence,
    Flush,
    Ifetch,
    Load,
    Rdtsc,
    SleepOp,
    Store,
    YieldOp,
)
from repro.cpu.program import Program, trace_program
from repro.cpu.tracing import (
    format_op,
    iter_trace_ops,
    load_trace,
    parse_op,
    record_program,
    save_trace,
    trace_file_program,
)

ALL_OPS = [
    Load(0x1000),
    Store(0xBEEF40),
    Ifetch(0x2000),
    Flush(0x1000),
    Compute(7),
    Rdtsc(),
    Fence(),
    YieldOp(),
    SleepOp(500),
    Exit(),
]


def ops_equal(a, b):
    if type(a) is not type(b):
        return False
    for attr in ("vaddr", "instructions", "cycles"):
        if getattr(a, attr, None) != getattr(b, attr, None):
            return False
    return True


def test_format_parse_roundtrip_all_kinds():
    for op in ALL_OPS:
        assert ops_equal(parse_op(format_op(op)), op)


@given(st.integers(0, 2**48))
def test_address_roundtrip_property(vaddr):
    assert parse_op(format_op(Load(vaddr))).vaddr == vaddr


def test_parse_rejects_garbage():
    for bad in ("", "Q 1", "L", "C xyz", "L zz"):
        with pytest.raises(ProgramError):
            parse_op(bad)


def test_record_program():
    program = trace_program("t", ALL_OPS)
    ops = record_program(program)
    assert len(ops) == len(ALL_OPS)


def test_record_bounds_runaway():
    def forever():
        while True:
            yield Compute(1)

    with pytest.raises(ProgramError):
        record_program(Program("f", forever), max_ops=100)


def test_save_load_roundtrip(tmp_path):
    path = tmp_path / "trace.txt"
    assert save_trace(ALL_OPS, path) == len(ALL_OPS)
    loaded = load_trace(path)
    assert len(loaded) == len(ALL_OPS)
    for a, b in zip(ALL_OPS, loaded):
        assert ops_equal(a, b)


def test_load_skips_comments_and_blanks(tmp_path):
    path = tmp_path / "trace.txt"
    path.write_text("# header\n\nL 1000\n# mid\nX\n")
    ops = load_trace(path)
    assert len(ops) == 2
    assert ops[0].vaddr == 0x1000


def test_trace_file_program_restartable(tmp_path):
    path = tmp_path / "trace.txt"
    save_trace([Load(0x10), Exit()], path)
    program = trace_file_program("replay", path)
    assert len(list(program.start())) == 2
    assert len(list(program.start())) == 2


def test_streaming_parser():
    lines = ["L 10", "# comment", "C 3", "X"]
    ops = list(iter_trace_ops(lines))
    assert len(ops) == 3


def test_recorded_workload_replays_identically(tmp_path):
    """A workload trace saved and replayed drives the simulator to the
    exact same state as the original generator."""
    from repro.os.kernel import Kernel
    from repro.workloads.generator import WorkloadBuilder
    from repro.workloads.profiles import spec_profile

    from tests.conftest import tiny_config

    def run(program):
        kernel = Kernel(tiny_config())
        # identical address-space layout for generator and replay runs
        builder = WorkloadBuilder(kernel, seed=5)
        proc, task = builder.build_process(
            spec_profile("namd"), 0, instructions=3_000
        )
        if program is not None:
            task = proc.spawn(program, affinity=0)  # replay instead
        kernel.submit(task)
        kernel.run()
        return kernel.system.stats_snapshot(), task

    # record the generator's ops once
    kernel = Kernel(tiny_config())
    builder = WorkloadBuilder(kernel, seed=5)
    _, source_task = builder.build_process(
        spec_profile("namd"), 0, instructions=3_000
    )
    ops = record_program(source_task.program)
    path = tmp_path / "namd.trace"
    save_trace(ops, path)

    stats_original, _ = run(None)
    stats_replay, _ = run(trace_file_program("namd-replay", path))
    assert stats_original == stats_replay
