"""Unit tests for the operation types."""

import pytest

from repro.cpu.isa import (
    Compute,
    Exit,
    Fence,
    Flush,
    Ifetch,
    Load,
    Op,
    Rdtsc,
    SleepOp,
    Store,
    YieldOp,
)


def test_memory_ops_carry_vaddr():
    assert Load(0x10).vaddr == 0x10
    assert Store(0x20).vaddr == 0x20
    assert Ifetch(0x30).vaddr == 0x30
    assert Flush(0x40).vaddr == 0x40


def test_compute_validates_count():
    assert Compute(5).instructions == 5
    with pytest.raises(ValueError):
        Compute(0)


def test_sleep_validates_cycles():
    assert SleepOp(10).cycles == 10
    with pytest.raises(ValueError):
        SleepOp(0)


def test_all_ops_are_op_instances():
    for op in [
        Load(0), Store(0), Ifetch(0), Flush(0), Compute(1),
        Rdtsc(), Fence(), YieldOp(), SleepOp(1), Exit(),
    ]:
        assert isinstance(op, Op)


def test_ops_use_slots():
    with pytest.raises(AttributeError):
        Load(0).surprise = 1  # type: ignore[attr-defined]
