"""Crash-safe JSON: corruption detection, backup recovery, the IO seam.

The acceptance bar for this layer: every corruption a kill or a bad
disk can produce — truncation, flipped bytes, a stale schema, a torn
rename — must be *detected* on read and healed from the rotated
last-good backup, and a sweep resumed over the healed state must end
byte-identical to one that was never interrupted.
"""

import json

import pytest

from repro.analysis.runner import resilient_spec_pair_sweep
from repro.common.errors import CheckpointCorruptionError
from repro.robustness import safeio
from repro.robustness.resilience import CHECKPOINT_SCHEMA
from repro.workloads.mixes import pair_label

PAYLOAD = {"schema": 1, "kind": "thing", "values": [1, 2, 3]}


class TestWriteRead:
    def test_round_trip_and_integrity_field(self, tmp_path):
        path = tmp_path / "doc.json"
        safeio.write_json_atomic(PAYLOAD, path)
        loaded = safeio.read_json_verified(
            path, expected_kind="thing", expected_schema=1
        )
        assert loaded["values"] == [1, 2, 3]
        assert loaded[safeio.INTEGRITY_KEY]["algo"] == "sha256"
        assert (
            loaded[safeio.INTEGRITY_KEY]["digest"]
            == safeio.canonical_digest(loaded)
        )

    def test_rewrite_rotates_backup(self, tmp_path):
        path = tmp_path / "doc.json"
        safeio.write_json_atomic({"gen": 1}, path)
        assert not safeio.backup_path(path).exists()
        safeio.write_json_atomic({"gen": 2}, path)
        bak = json.loads(safeio.backup_path(path).read_text())
        assert bak["gen"] == 1
        assert json.loads(path.read_text())["gen"] == 2

    def test_no_leftover_tmp_file(self, tmp_path):
        path = tmp_path / "doc.json"
        safeio.write_json_atomic(PAYLOAD, path)
        assert not list(tmp_path.glob("*" + safeio.TMP_SUFFIX))

    def test_legacy_file_without_integrity_accepted(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"schema": 1, "kind": "thing"}))
        loaded = safeio.read_json_verified(path, expected_kind="thing")
        assert loaded["kind"] == "thing"

    def test_missing_primary_and_backup_is_fresh_start(self, tmp_path):
        payload, recovered = safeio.read_json_recovering(tmp_path / "no.json")
        assert payload is None and recovered is False


class TestCorruptionDetection:
    def _published(self, tmp_path):
        """Two generations: the primary holds gen2, the backup gen1."""
        path = tmp_path / "doc.json"
        safeio.write_json_atomic({"schema": 1, "kind": "t", "gen": 1}, path)
        safeio.write_json_atomic({"schema": 1, "kind": "t", "gen": 2}, path)
        return path

    def test_truncated_primary_recovers_from_backup(self, tmp_path):
        path = self._published(tmp_path)
        path.write_bytes(path.read_bytes()[:20])
        payload, recovered = safeio.read_json_recovering(path)
        assert recovered is True
        assert payload["gen"] == 1

    def test_bitflip_fails_checksum_and_recovers(self, tmp_path):
        path = self._published(tmp_path)
        raw = bytearray(path.read_bytes())
        pos = raw.index(b'"gen": 2') + len('"gen": ')
        raw[pos] = ord("7")  # valid JSON, wrong content
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointCorruptionError, match="checksum"):
            safeio.read_json_verified(path)
        payload, recovered = safeio.read_json_recovering(path)
        assert recovered is True and payload["gen"] == 1

    def test_stale_schema_rejected_and_recovers(self, tmp_path):
        path = self._published(tmp_path)
        stale = json.loads(path.read_text())
        stale["schema"] = 99  # resealed: checksum fine, schema wrong
        path.write_text(json.dumps(safeio.seal(stale)))
        with pytest.raises(CheckpointCorruptionError, match="schema"):
            safeio.read_json_verified(path, expected_schema=1)
        payload, recovered = safeio.read_json_recovering(
            path, expected_schema=1
        )
        assert recovered is True and payload["gen"] == 1

    def test_kill_during_rename_recovers_from_backup(self, tmp_path):
        # The torn-rename state: primary gone, only a partial .tmp and
        # the backup survive the kill.
        path = self._published(tmp_path)
        tmp = path.with_suffix(path.suffix + safeio.TMP_SUFFIX)
        tmp.write_bytes(path.read_bytes()[:10])
        path.unlink()
        payload, recovered = safeio.read_json_recovering(path)
        assert recovered is True and payload["gen"] == 1
        # ...and the next write simply overwrites the leftover tmp
        safeio.write_json_atomic({"schema": 1, "kind": "t", "gen": 3}, path)
        assert json.loads(path.read_text())["gen"] == 3

    def test_both_corrupt_raises_with_all_reasons(self, tmp_path):
        path = self._published(tmp_path)
        path.write_bytes(b"garbage")
        safeio.backup_path(path).write_bytes(b"also garbage")
        with pytest.raises(CheckpointCorruptionError) as err:
            safeio.read_json_recovering(path)
        assert len(err.value.reasons) == 2

    def test_wrong_kind_rejected(self, tmp_path):
        path = self._published(tmp_path)
        with pytest.raises(CheckpointCorruptionError, match="kind"):
            safeio.read_json_verified(path, expected_kind="other")


class TestIoHook:
    def test_transient_write_error_is_retried(self, tmp_path):
        calls = {"n": 0}

        def hook(stage, path, data):
            if stage == "write":
                calls["n"] += 1
                if calls["n"] <= 2:
                    raise OSError("transient")
            return data

        path = tmp_path / "doc.json"
        safeio.install_io_hook(hook)
        try:
            safeio.write_json_atomic(PAYLOAD, path, io_retries=2)
        finally:
            safeio.install_io_hook(None)
        assert safeio.read_json_verified(path)["kind"] == "thing"

    def test_persistent_write_error_propagates_keeps_old_state(self, tmp_path):
        path = tmp_path / "doc.json"
        safeio.write_json_atomic({"schema": 1, "kind": "t", "gen": 1}, path)

        def hook(stage, p, data):
            if stage == "write":
                raise OSError("disk on fire")
            return data

        safeio.install_io_hook(hook)
        try:
            with pytest.raises(OSError, match="disk on fire"):
                safeio.write_json_atomic(
                    {"schema": 1, "kind": "t", "gen": 2}, path
                )
        finally:
            safeio.install_io_hook(None)
        assert safeio.read_json_verified(path)["gen"] == 1


PAIRS = [("wrf", "wrf"), ("milc", "milc")]
INSTRUCTIONS = 2_000


class TestCheckpointRecovery:
    """The acceptance bar: a sweep resumed over every corruption variant
    ends byte-identical to one that was never interrupted."""

    @pytest.fixture(scope="class")
    def uninterrupted(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("ref") / "ck.json"
        outcome = resilient_spec_pair_sweep(
            pairs=PAIRS,
            instructions=INSTRUCTIONS,
            checkpoint_path=path,
            jobs=1,
        )
        assert outcome.complete
        return path.read_bytes()

    def _interrupted_checkpoint(self, tmp_path):
        """A checkpoint whose backup holds the one-cell generation (what
        an incremental writer leaves after the second cell's publish)."""
        path = tmp_path / "ck.json"
        outcome = resilient_spec_pair_sweep(
            pairs=PAIRS,
            instructions=INSTRUCTIONS,
            checkpoint_path=path,
            jobs=1,
        )
        assert outcome.complete
        bak = json.loads(safeio.backup_path(path).read_text())
        assert list(bak["completed"]) == [pair_label(*PAIRS[0])]
        return path

    @pytest.mark.parametrize(
        "variant", ["truncate", "bitflip", "stale_schema", "torn_rename"]
    )
    def test_resume_over_corruption_matches_uninterrupted(
        self, tmp_path, uninterrupted, variant
    ):
        path = self._interrupted_checkpoint(tmp_path)
        if variant == "truncate":
            path.write_bytes(path.read_bytes()[:25])
        elif variant == "bitflip":
            raw = bytearray(path.read_bytes())
            raw[len(raw) // 2] ^= 0x20
            path.write_bytes(bytes(raw))
        elif variant == "stale_schema":
            stale = json.loads(path.read_text())
            stale["schema"] = CHECKPOINT_SCHEMA + 999
            path.write_text(json.dumps(safeio.seal(stale)))
        else:  # torn_rename
            tmp = path.with_suffix(path.suffix + safeio.TMP_SUFFIX)
            tmp.write_bytes(path.read_bytes()[:10])
            path.unlink()
        resumed = resilient_spec_pair_sweep(
            pairs=PAIRS,
            instructions=INSTRUCTIONS,
            checkpoint_path=path,
            jobs=1,
        )
        assert resumed.complete
        # Healed from the one-cell backup: the first pair resumed, the
        # second re-ran, and the final bytes match the clean run exactly.
        assert resumed.resumed == [pair_label(*PAIRS[0])]
        assert path.read_bytes() == uninterrupted
