"""Fault models, deterministic injection, and the detection matrix."""

import pytest

from repro.common.errors import FaultInjectionError, InvariantViolation
from repro.common.rng import DeterministicRng
from repro.core.timecache import TimeCacheSystem
from repro.robustness.campaign import (
    _drive,
    campaign_config,
    run_fault_campaign,
    run_single_injection,
)
from repro.robustness.faults import (
    ALL_FAULT_MODELS,
    DroppedComparatorClear,
    FaultInjector,
    SBitCorruption,
    SwitchStateLoss,
    TcCorruption,
)
from repro.robustness.invariants import InvariantChecker


def _fresh(seed=3):
    return TimeCacheSystem(campaign_config(seed=seed))


class TestInjector:
    def test_fires_exactly_once_at_chosen_switch(self):
        system = _fresh()
        injector = FaultInjector(
            system, SBitCorruption(), DeterministicRng(5), at_switch=3
        ).attach()
        _drive(system, DeterministicRng(5), rounds=6)
        assert injector.fired
        assert len(injector.events) == 1
        assert injector.events[0].switch_no == 3
        assert injector.switches == 6

    def test_rejects_nonpositive_trigger(self):
        with pytest.raises(FaultInjectionError):
            FaultInjector(
                _fresh(), SBitCorruption(), DeterministicRng(1), at_switch=0
            )

    def test_detach_stops_observing(self):
        system = _fresh()
        injector = FaultInjector(
            system, SBitCorruption(), DeterministicRng(5), at_switch=99
        ).attach()
        injector.detach()
        _drive(system, DeterministicRng(5), rounds=4)
        assert injector.switches == 0
        assert not system.switch_listeners

    def test_same_seed_same_fault(self):
        events = []
        for _ in range(2):
            system = _fresh(seed=9)
            injector = FaultInjector(
                system, SBitCorruption(), DeterministicRng(41), at_switch=2
            ).attach()
            _drive(system, DeterministicRng(9), rounds=4)
            events.append(injector.events[0])
        a, b = events
        assert (a.mode, a.cache, a.set_idx, a.way, a.description) == (
            b.mode,
            b.cache,
            b.set_idx,
            b.way,
            b.description,
        )


class TestModels:
    @pytest.mark.parametrize("model_cls", ALL_FAULT_MODELS)
    def test_every_model_produces_an_event(self, model_cls):
        system = _fresh(seed=17)
        injector = FaultInjector(
            system, model_cls(), DeterministicRng(17), at_switch=3
        ).attach()
        try:
            _drive(system, DeterministicRng(17), rounds=6)
        except InvariantViolation:
            pytest.fail("no checker attached; nothing should raise")
        event = injector.events[0]
        assert event.model == model_cls.name
        assert event.mode

    def test_dropped_clear_filter_self_disarms(self):
        system = _fresh(seed=23)
        FaultInjector(
            system, DroppedComparatorClear(), DeterministicRng(23), at_switch=2
        ).attach()
        _drive(system, DeterministicRng(23), rounds=6)
        # After the budgeted comparisons the comparator must be clean again.
        assert system.context_engine.comparator.reset_mask_filter is None

    def test_switch_filters_self_disarm(self):
        for _ in range(3):  # whatever mode the rng picks, it is one-shot
            system = _fresh(seed=29)
            FaultInjector(
                system, SwitchStateLoss(), DeterministicRng(29), at_switch=2
            ).attach()
            _drive(system, DeterministicRng(29), rounds=6)
            assert system.context_engine.save_filter is None
            assert system.context_engine.restore_filter is None

    def test_tc_corruption_is_detected_by_checker(self):
        # Pin the mode by retrying seeds until an in-domain corruption is
        # drawn; determinism makes the found seed stable forever.
        for seed in range(40):
            outcome = run_single_injection(TcCorruption, seed)
            if outcome.event is not None and outcome.event.mode.startswith(
                "corrupt"
            ):
                assert outcome.outcome == "detected"
                return
            if outcome.outcome == "detected":
                continue
        pytest.fail("no corrupt-mode draw in 40 seeds")


class TestCampaign:
    def test_quick_campaign_zero_silent(self):
        matrix = run_fault_campaign(per_model=3, seed=1)
        assert matrix.total == 3 * len(ALL_FAULT_MODELS)
        assert matrix.silent_total == 0

    def test_campaign_is_deterministic(self):
        a = run_fault_campaign(per_model=2, seed=5)
        b = run_fault_campaign(per_model=2, seed=5)
        assert [(o.model, o.seed, o.outcome) for o in a.outcomes] == [
            (o.model, o.seed, o.outcome) for o in b.outcomes
        ]

    def test_every_model_detected_at_least_once_at_scale(self):
        matrix = run_fault_campaign(per_model=10, seed=2)
        for model_cls in ALL_FAULT_MODELS:
            row = matrix.counts[model_cls.name]
            assert row["detected"] >= 1, model_cls.name
            assert row["silent"] == 0

    def test_render_mentions_every_model(self):
        matrix = run_fault_campaign(per_model=1, seed=3)
        table = matrix.render()
        for model_cls in ALL_FAULT_MODELS:
            assert model_cls.name in table

    def test_dropped_clear_with_checker_detects(self):
        """End to end: dropped comparator clears leave stale visibility
        that the post-switch subset scan must catch."""
        for seed in range(10):
            outcome = run_single_injection(DroppedComparatorClear, seed)
            if outcome.outcome == "detected":
                assert "entitlement" in outcome.violation or outcome.violation
                return
        pytest.fail("dropped clears never detected across 10 seeds")


def test_checker_and_injector_compose_without_interference():
    """An attached injector that never fires must leave a checked run
    perfectly clean."""
    system = _fresh(seed=31)
    FaultInjector(
        system, SBitCorruption(), DeterministicRng(31), at_switch=10_000
    ).attach()
    checker = InvariantChecker(system).attach()
    _drive(system, DeterministicRng(31), rounds=6)
    checker.scan_all()
