"""Supervised execution: hang kills, crash reschedules, quarantine.

Sabotage specs stand in for real-world failure (OOM kills, deadlocks)
so every path is deterministic: ``("kill", code)`` makes the worker die
mid-protocol, ``("hang", s)`` makes it go silent, ``("raise", msg)``
makes the job raise.  The supervisor must convert each into either a
recovered reschedule or a loud, provenance-rich quarantine — never a
silently missing result.
"""

import json

import pytest

from repro.analysis.parallel import SweepJob
from repro.robustness.resilience import Checkpoint, FailureRecord
from repro.robustness.supervisor import (
    SupervisedSweepExecutor,
    load_quarantine_record,
    quarantine_record_path,
    write_quarantine_record,
)


def probe(value):
    """Tiny deterministic picklable job."""
    return {"value": value * 2}


def _jobs(n=2):
    return [
        SweepJob(
            label=f"j{i}",
            fn=probe,
            args=(i,),
            provenance={
                "seed": 40 + i,
                "engine": "fast",
                "config_sha256": "cafe" * 16,
                "batch_window": 4096,
            },
        )
        for i in range(n)
    ]


def _sabotage(label, models):
    """Sabotage ``label`` per ``models``: {attempt: spec} ({0: spec}
    sabotages every attempt)."""

    def sabotage_for(lab, attempt):
        if lab != label:
            return None
        return models.get(0) or models.get(attempt)

    return sabotage_for


class TestRecovery:
    def test_killed_worker_is_detected_and_rescheduled(self):
        executor = SupervisedSweepExecutor(
            2,
            retries=2,
            backoff_s=0.01,
            poll_s=0.01,
            sabotage_for=_sabotage("j0", {1: ("kill", 9)}),
        )
        outcome = executor.run(_jobs())
        assert outcome.complete
        assert outcome.results["j0"] == {"value": 0}
        assert executor.report.crashes_detected == 1
        assert executor.report.reschedules == 1

    def test_hung_worker_is_killed_at_deadline(self):
        executor = SupervisedSweepExecutor(
            2,
            retries=1,
            backoff_s=0.01,
            deadline_s=0.3,
            poll_s=0.01,
            sabotage_for=_sabotage("j1", {1: ("hang", 30.0)}),
        )
        outcome = executor.run(_jobs())
        assert outcome.complete
        assert executor.report.hangs_killed == 1

    def test_raise_sabotage_travels_the_failure_path(self):
        executor = SupervisedSweepExecutor(
            2,
            retries=0,
            backoff_s=0.01,
            poll_s=0.01,
            sabotage_for=_sabotage("j0", {1: ("raise", "boom")}),
        )
        outcome = executor.run(_jobs())
        (failure,) = outcome.failures
        assert failure.error_type == "FaultInjectionError"
        assert "boom" in failure.message
        assert failure.traceback  # worker-side traceback crossed the pipe


class TestQuarantine:
    def test_poison_job_quarantined_with_full_provenance(self, tmp_path):
        qdir = tmp_path / "quarantine"
        executor = SupervisedSweepExecutor(
            2,
            retries=1,
            backoff_s=0.01,
            poll_s=0.01,
            quarantine_dir=qdir,
            manifest_id="deadbeef" * 8,
            sabotage_for=_sabotage("j0", {0: ("kill", 9)}),
        )
        outcome = executor.run(_jobs())
        assert outcome.results["j1"] == {"value": 2}  # sweep continued
        (failure,) = outcome.failures
        assert failure.label == "j0"
        assert failure.error_type == "WorkerCrashError"
        assert failure.attempts == 2  # retries + 1, kills count
        # enrichment: job provenance + sweep manifest id
        assert failure.seed == 40
        assert failure.engine == "fast"
        assert failure.config_sha256 == "cafe" * 16
        assert failure.batch_window == 4096
        assert failure.manifest_id == "deadbeef" * 8
        # the standalone record round-trips
        assert failure.record_path
        record = load_quarantine_record(failure.record_path)
        assert record.to_dict() == failure.to_dict()

    def test_quarantined_failure_lands_in_checkpoint(self, tmp_path):
        path = tmp_path / "ck.json"
        checkpoint = Checkpoint(
            path, serialize=dict, deserialize=dict
        )
        executor = SupervisedSweepExecutor(
            2,
            retries=0,
            backoff_s=0.01,
            poll_s=0.01,
            checkpoint=checkpoint,
            sabotage_for=_sabotage("j0", {0: ("kill", 7)}),
        )
        executor.run(_jobs())
        payload = json.loads(path.read_text())
        (record,) = payload["failures"]
        assert record["error_type"] == "WorkerCrashError"
        assert record["seed"] == 40

    def test_record_path_sanitizes_label(self, tmp_path):
        path = quarantine_record_path(tmp_path, "a/b c:d")
        assert path.name == "a_b_c_d.failure.json"
        record = FailureRecord(
            label="a/b c:d", attempts=1, error_type="E", message="m"
        )
        written = write_quarantine_record(record, tmp_path)
        assert written == path and path.exists()
        assert record.record_path == str(path)


class TestContractCompatibility:
    def test_serial_delegation_unchanged(self):
        outcome = SupervisedSweepExecutor(1, retries=0).run(_jobs())
        assert outcome.results == {"j0": {"value": 0}, "j1": {"value": 2}}

    def test_resume_skips_completed_jobs(self, tmp_path):
        path = tmp_path / "ck.json"
        checkpoint = Checkpoint(path, serialize=dict, deserialize=dict)
        SupervisedSweepExecutor(2, checkpoint=checkpoint).run(_jobs())
        checkpoint2 = Checkpoint(path, serialize=dict, deserialize=dict)
        again = SupervisedSweepExecutor(2, checkpoint=checkpoint2).run(_jobs())
        assert sorted(again.resumed) == ["j0", "j1"]

    def test_ordered_reassembly(self):
        jobs = _jobs(4)
        outcome = SupervisedSweepExecutor(2).run(jobs)
        assert list(outcome.results) == [j.label for j in jobs]


class TestFailureRecordEnrichment:
    """Satellite: the enriched record schema stays backward-compatible."""

    def test_legacy_payload_backfills_defaults(self):
        legacy = {
            "label": "old",
            "attempts": 3,
            "error_type": "ValueError",
            "message": "pre-enrichment record",
        }
        record = FailureRecord.from_dict(legacy)
        assert record.seed is None
        assert record.engine == ""
        assert record.batch_window is None
        assert record.manifest_id == ""
        assert record.traceback == ""
        assert record.record_path == ""
        # and re-serialization emits the full enriched schema
        assert set(record.to_dict()) >= {
            "seed", "engine", "config_sha256", "batch_window",
            "manifest_id", "traceback", "record_path",
        }

    def test_apply_provenance_fills_only_defaults(self):
        record = FailureRecord(
            label="x", attempts=1, error_type="E", message="m", engine="object"
        )
        record.apply_provenance(
            {"seed": 5, "engine": "fast", "batch_window": 4096}
        )
        assert record.seed == 5
        assert record.engine == "object"  # existing value wins
        assert record.batch_window == 4096
