"""The invariant checker: silent on healthy runs, loud on corruption."""

import pytest

from repro.common.errors import ConfigError, InvariantViolation
from repro.common.rng import DeterministicRng
from repro.core.timecache import TimeCacheSystem
from repro.robustness.campaign import _drive, campaign_config
from repro.robustness.invariants import InvariantChecker

from tests.conftest import tiny_config


@pytest.fixture
def system():
    return TimeCacheSystem(tiny_config(num_cores=1))


@pytest.fixture
def checked(system):
    checker = InvariantChecker(system).attach()
    return system, checker


def test_rejects_baseline_config():
    baseline = TimeCacheSystem(tiny_config(enabled=False))
    with pytest.raises(ConfigError):
        InvariantChecker(baseline)


def test_clean_run_raises_nothing(checked):
    system, checker = checked
    _drive(system, DeterministicRng(3), rounds=6)
    checker.scan_all()
    assert checker.scans > 0
    assert checker.checked_accesses > 0


def test_clean_campaign_machine_raises_nothing():
    system = TimeCacheSystem(campaign_config(seed=11))
    checker = InvariantChecker(system).attach()
    _drive(system, DeterministicRng(11))
    checker.scan_all()


def test_detects_sbit_on_invalid_slot(checked):
    system, checker = checked
    l1d = system.hierarchy.l1d[0]
    assert not l1d.valid[0, 0]
    l1d.sbits[0, 0] = 1  # bit with no line behind it
    with pytest.raises(InvariantViolation) as exc:
        checker.scan(l1d)
    assert exc.value.invariant == "sbit-implies-valid-line"


def test_detects_unearned_sbit(checked):
    system, checker = checked
    system.context_switch(None, 1, ctx=0, now=0)
    system.load(0, 0x1000, now=10)  # task 1 fills and earns the slot
    system.context_switch(1, 2, ctx=0, now=500)
    # Hand task 2 the bit without it ever touching the line.
    pos = system.hierarchy.l1d[0].lookup(system.hierarchy.line_addr(0x1000))
    assert pos is not None
    system.hierarchy.l1d[0].sbits[pos] = 1
    with pytest.raises(InvariantViolation) as exc:
        checker.scan_all()
    assert exc.value.invariant == "sbit-subset-of-entitlement"


def test_detects_tc_out_of_domain(checked):
    system, checker = checked
    system.load(0, 0x2000, now=10)
    llc = system.hierarchy.llc
    pos = llc.lookup(system.hierarchy.line_addr(0x2000))
    llc.tc[pos] = system.context_engine.domain.mask + 5
    with pytest.raises(InvariantViolation) as exc:
        checker.scan(llc)
    assert exc.value.invariant == "tc-in-domain"


def test_detects_tc_mismatch_with_fill_time(checked):
    system, checker = checked
    system.load(0, 0x2000, now=10)
    llc = system.hierarchy.llc
    pos = llc.lookup(system.hierarchy.line_addr(0x2000))
    llc.tc[pos] = int(llc.tc[pos]) + 1  # in-domain but wrong
    with pytest.raises(InvariantViolation) as exc:
        checker.scan(llc)
    assert exc.value.invariant == "tc-matches-fill-time"


def test_per_access_check_catches_exploited_stale_bit(checked):
    """A corrupt s-bit is not just a latent state error: if an access is
    actually *served* through it, the per-access path must flag it."""
    system, checker = checked
    system.context_switch(None, 1, ctx=0, now=0)
    system.load(0, 0x1000, now=10)
    system.context_switch(1, 2, ctx=0, now=500)
    pos = system.hierarchy.l1d[0].lookup(system.hierarchy.line_addr(0x1000))
    system.hierarchy.l1d[0].sbits[pos] = 1  # forged visibility for task 2
    with pytest.raises(InvariantViolation) as exc:
        system.load(0, 0x1000, now=600)
    assert exc.value.invariant == "stale-visibility-exploited"
    assert exc.value.task == 2


def test_eviction_with_surviving_sbits_detected(checked):
    system, checker = checked
    system.load(0, 0x1000, now=10)
    l1d = system.hierarchy.l1d[0]
    # Sabotage the eviction path: make clearing impossible to observe by
    # restoring the bit inside the event. Simpler: invalidate while the
    # notification hook checks the post-state, so force bits back first.
    original_listener = l1d.event_listener

    def corrupting(event, s, w, ctx):
        if event == "invalidate":
            l1d.sbits[s, w] = 1  # bits survive the invalidation
        original_listener(event, s, w, ctx)

    l1d.event_listener = corrupting
    with pytest.raises(InvariantViolation) as exc:
        system.flush(0, 0x1000, now=100)
    assert exc.value.invariant == "sbits-cleared-on-eviction"


def test_detach_restores_hooks(system):
    checker = InvariantChecker(system).attach()
    checker.detach()
    assert all(
        c.event_listener is None for c in system.hierarchy.all_caches()
    )
    assert not system.hierarchy.pre_access_listeners
    assert not system.hierarchy.post_access_listeners
    assert not system.switch_listeners
    # A second detach is a no-op, and the system still runs clean.
    checker.detach()
    system.load(0, 0x1000, now=10)


def test_bootstrap_adopts_preexisting_state(system):
    # Warm the caches BEFORE attaching: existing bits must be adopted as
    # legitimate, not reported.
    system.context_switch(None, 1, ctx=0, now=0)
    for i in range(8):
        system.load(0, 0x1000 + i * 64, now=10 + i * 300)
    checker = InvariantChecker(system).attach()
    checker.scan_all()
    r = system.load(0, 0x1000, now=5_000)
    assert not r.first_access  # adopted visibility still serves hits


def test_first_access_discipline_violation_detected(system):
    """If the hierarchy ever served a tag-hit-with-clear-s-bit at full
    speed, the checker must notice.  Simulated by lying to the checker
    through a post-listener that rewrites the result."""
    from repro.memsys.hierarchy import AccessResult

    checker = InvariantChecker(system).attach()
    system.context_switch(None, 1, ctx=0, now=0)
    system.load(0, 0x1000, now=10)
    system.context_switch(1, 2, ctx=0, now=500)

    # Replace the checker's post hook with one that feeds it a forged
    # "L1-speed, no first access" result for task 2's first touch.
    post = checker._post_access
    system.hierarchy.post_access_listeners.remove(post)

    def forged(ctx, line, kind, now, result):
        post(ctx, line, kind, now, AccessResult(3, "L1", False))

    system.hierarchy.post_access_listeners.append(forged)
    with pytest.raises(InvariantViolation) as exc:
        system.load(0, 0x1000, now=600)
    assert exc.value.invariant == "first-access-discipline"
