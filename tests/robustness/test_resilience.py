"""Retry, graceful degradation, and checkpoint/resume for sweeps."""

import json

import pytest

from repro.analysis.experiment import SimulationBudget
from repro.analysis.runner import resilient_spec_pair_sweep
from repro.common.errors import SimulationTimeout
from repro.robustness.resilience import (
    Checkpoint,
    FailureRecord,
    run_resilient_jobs,
)


def _noop_sleep(_):
    pass


class TestRetries:
    def test_all_jobs_succeed_first_try(self):
        outcome = run_resilient_jobs(
            [("a", lambda: 1), ("b", lambda: 2)], sleep=_noop_sleep
        )
        assert outcome.results == {"a": 1, "b": 2}
        assert outcome.complete
        assert outcome.ordered_results(["b", "a"]) == [2, 1]

    def test_transient_failure_is_retried(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise RuntimeError("transient")
            return "ok"

        outcome = run_resilient_jobs(
            [("flaky", flaky)], retries=2, sleep=_noop_sleep
        )
        assert outcome.results["flaky"] == "ok"
        assert calls["n"] == 3
        assert outcome.complete

    def test_backoff_is_exponential(self):
        waits = []

        def always_fails():
            raise RuntimeError("no")

        run_resilient_jobs(
            [("bad", always_fails)],
            retries=3,
            backoff_s=0.5,
            sleep=waits.append,
        )
        assert waits == [0.5, 1.0, 2.0]

    def test_exhausted_job_becomes_failure_record(self):
        def always_fails():
            raise ValueError("deterministic bug")

        outcome = run_resilient_jobs(
            [("good", lambda: 7), ("bad", always_fails), ("after", lambda: 8)],
            retries=1,
            sleep=_noop_sleep,
        )
        # Graceful degradation: the good jobs' results survive.
        assert outcome.results == {"good": 7, "after": 8}
        assert not outcome.complete
        (failure,) = outcome.failures
        assert failure.label == "bad"
        assert failure.attempts == 2
        assert failure.error_type == "ValueError"
        assert "deterministic bug" in failure.message

    def test_keyboard_interrupt_is_not_swallowed(self):
        def interrupted():
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_resilient_jobs([("x", interrupted)], sleep=_noop_sleep)


class TestCheckpoint:
    def _checkpoint(self, path):
        return Checkpoint(
            path, serialize=lambda r: {"v": r}, deserialize=lambda p: p["v"]
        )

    def test_checkpoint_written_and_resumed(self, tmp_path):
        path = tmp_path / "ckpt.json"
        ran = []

        def job(label, value):
            def thunk():
                ran.append(label)
                return value

            return (label, thunk)

        first = run_resilient_jobs(
            [job("a", 1), job("b", 2)],
            checkpoint=self._checkpoint(path),
            sleep=_noop_sleep,
        )
        assert first.results == {"a": 1, "b": 2}
        payload = json.loads(path.read_text())
        assert payload["kind"] == "sweep_checkpoint"
        assert set(payload["completed"]) == {"a", "b"}

        ran.clear()
        second = run_resilient_jobs(
            [job("a", 1), job("b", 2), job("c", 3)],
            checkpoint=self._checkpoint(path),
            sleep=_noop_sleep,
        )
        assert ran == ["c"]  # completed jobs were not re-run
        assert second.resumed == ["a", "b"]
        assert second.results == {"a": 1, "b": 2, "c": 3}

    def test_failed_jobs_are_retried_on_resume(self, tmp_path):
        path = tmp_path / "ckpt.json"
        healthy = {"now": False}

        def sometimes():
            if not healthy["now"]:
                raise RuntimeError("down")
            return 42

        jobs = [("ok", lambda: 1), ("sick", sometimes)]
        first = run_resilient_jobs(
            jobs, retries=1, checkpoint=self._checkpoint(path), sleep=_noop_sleep
        )
        assert [f.label for f in first.failures] == ["sick"]

        healthy["now"] = True
        second = run_resilient_jobs(
            jobs, retries=1, checkpoint=self._checkpoint(path), sleep=_noop_sleep
        )
        assert second.resumed == ["ok"]
        assert second.results["sick"] == 42
        assert second.complete
        # The stale failure record is gone from the checkpoint too.
        payload = json.loads(path.read_text())
        assert payload["failures"] == []

    def test_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"schema": 1, "kind": "spec_sweep"}))
        ckpt = self._checkpoint(path)
        with pytest.raises(ValueError):
            ckpt.load()

    def test_failure_record_roundtrip(self):
        record = FailureRecord("lbl", 3, "RuntimeError", "boom")
        assert FailureRecord.from_dict(record.to_dict()) == record


class TestSweepIntegration:
    def test_resilient_sweep_returns_results(self, tmp_path):
        outcome = resilient_spec_pair_sweep(
            pairs=[("specrand", "specrand")],
            instructions=4_000,
            checkpoint_path=tmp_path / "sweep.json",
        )
        assert outcome.complete
        (result,) = outcome.results.values()
        assert result.baseline.cycles > 0
        # Resume: nothing re-runs, the result round-trips the serializer.
        again = resilient_spec_pair_sweep(
            pairs=[("specrand", "specrand")],
            instructions=4_000,
            checkpoint_path=tmp_path / "sweep.json",
        )
        assert again.resumed == [result.label]
        restored = again.results[result.label]
        assert restored.timecache.cycles == result.timecache.cycles
        assert restored.normalized_time == pytest.approx(
            result.normalized_time
        )

    def test_budget_timeout_becomes_failure_record(self):
        """One forced timeout must not sink the sweep: the other pair
        completes and the timeout is recorded."""
        tight = SimulationBudget(max_instructions=100)
        outcome = resilient_spec_pair_sweep(
            pairs=[("specrand", "specrand")],
            instructions=4_000,
            budget=tight,
            retries=0,
        )
        (failure,) = outcome.failures
        assert failure.error_type == "SimulationTimeout"
        assert not outcome.results

    def test_partial_results_with_one_failure(self, monkeypatch):
        import repro.analysis.runner as runner_mod

        real = runner_mod.run_spec_pair_experiment

        def sabotaged(config, a, b, **kwargs):
            if a == "lbm":
                raise SimulationTimeout("forced")
            return real(config, a, b, **kwargs)

        monkeypatch.setattr(
            runner_mod, "run_spec_pair_experiment", sabotaged
        )
        outcome = resilient_spec_pair_sweep(
            pairs=[("specrand", "specrand"), ("lbm", "lbm")],
            instructions=4_000,
            retries=0,
        )
        assert len(outcome.results) == 1
        (failure,) = outcome.failures
        assert failure.error_type == "SimulationTimeout"
        assert "lbm" in failure.label.lower()


def test_experiment_budget_passthrough():
    """A generous budget changes nothing about the result."""
    from repro.analysis.experiment import run_spec_pair_experiment
    from repro.common.config import scaled_experiment_config

    config = scaled_experiment_config(num_cores=1)
    unbudgeted = run_spec_pair_experiment(
        config, "specrand", "specrand", instructions=3_000
    )
    budgeted = run_spec_pair_experiment(
        config,
        "specrand",
        "specrand",
        instructions=3_000,
        budget=SimulationBudget(wall_clock_s=120.0, max_instructions=10**9),
    )
    assert budgeted.timecache.cycles == unbudgeted.timecache.cycles
    assert budgeted.baseline.cycles == unbudgeted.baseline.cycles
