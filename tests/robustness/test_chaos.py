"""The chaos campaign: seeded plans, scorecard accounting, zero silence.

Also hosts the PR's acceptance test: a chaos-interrupted ``table2
--jobs 2 --resume`` must print byte-identical tables to an
uninterrupted serial run.
"""

import json

import pytest

from repro.analysis.cli import EXIT_OK, EXIT_PARTIAL, main
from repro.common.errors import FaultInjectionError
from repro.robustness import safeio
from repro.robustness.chaos import (
    CHAOS_MODELS,
    CORRUPT_VARIANTS,
    ChaosPlan,
    ResilienceScorecard,
    run_chaos_campaign,
)


class TestPlan:
    def test_generation_is_deterministic(self):
        a = ChaosPlan.generate(3)
        b = ChaosPlan.generate(3)
        assert a == b
        assert ChaosPlan.generate(4) != a

    def test_counts_respected_and_models_covered(self):
        counts = {"kill": 2, "hang": 1, "corrupt": 4, "io_error": 3}
        plan = ChaosPlan.generate(0, counts)
        by_model = {}
        for event in plan.events:
            by_model[event.model] = by_model.get(event.model, 0) + 1
        assert by_model == counts
        assert [e.index for e in plan.events] == list(range(10))

    def test_default_quick_mix_spans_all_models_with_50_plus(self):
        plan = ChaosPlan.generate(0)
        models = {e.model for e in plan.events}
        assert models == set(CHAOS_MODELS)
        assert len(plan.events) >= 50

    def test_corrupt_variants_drawn_from_known_set(self):
        plan = ChaosPlan.generate(1, {"corrupt": 12})
        assert {e.variant for e in plan.events} <= set(CORRUPT_VARIANTS)

    def test_unknown_model_rejected(self):
        with pytest.raises(FaultInjectionError, match="unknown chaos"):
            ChaosPlan.generate(0, {"gremlins": 1})


class TestScorecard:
    def test_accounting_and_render(self):
        plan = ChaosPlan.generate(0, {"kill": 1, "corrupt": 1})
        scorecard = ResilienceScorecard(seed=0)
        scorecard.record(plan.events[0], "recovered", "ok")
        scorecard.record(plan.events[1], "silent", "bad")
        assert scorecard.total == 2
        assert scorecard.silent_total == 1
        rendered = scorecard.render()
        assert "kill" in rendered and "corrupt" in rendered
        assert "total" in rendered
        payload = scorecard.to_dict()
        assert payload["kind"] == "resilience_scorecard"
        assert payload["silent"] == {"corrupt": 1}

    def test_unknown_outcome_rejected(self):
        plan = ChaosPlan.generate(0, {"kill": 1})
        with pytest.raises(FaultInjectionError):
            ResilienceScorecard(seed=0).record(plan.events[0], "shrug")


class TestCampaign:
    def test_small_campaign_zero_silent_all_models(self, tmp_path):
        counts = {"kill": 1, "hang": 1, "corrupt": 4, "io_error": 2}
        scorecard = run_chaos_campaign(
            seed=2, counts=counts, jobs=2, workdir=tmp_path
        )
        assert scorecard.total == sum(counts.values())
        assert scorecard.silent_total == 0
        # every injection classified exactly once
        assert len(scorecard.details) == scorecard.total
        for model, n in counts.items():
            assert (
                scorecard.recovered.get(model, 0)
                + scorecard.quarantined.get(model, 0)
                == n
            )

    def test_corrupt_only_campaign_is_deterministic(self, tmp_path):
        counts = {"corrupt": 6, "io_error": 3}
        a = run_chaos_campaign(seed=5, counts=counts, workdir=tmp_path / "a")
        b = run_chaos_campaign(seed=5, counts=counts, workdir=tmp_path / "b")
        assert a.to_dict() == b.to_dict()


class TestChaosCli:
    def test_chaos_command_exit_zero_and_scorecard_output(
        self, tmp_path, capsys
    ):
        out_path = tmp_path / "scorecard.json"
        code = main(
            [
                "chaos",
                "--injections", "1",
                "--workdir", str(tmp_path / "w"),
                "--output", str(out_path),
            ]
        )
        assert code == EXIT_OK
        out = capsys.readouterr().out
        assert "silent" in out and "injections" in out
        payload = safeio.read_json_verified(
            out_path, expected_kind="resilience_scorecard"
        )
        assert payload["silent_total"] == 0
        assert payload["total"] == 4  # one per model


PAIRS_ARGS = ["--instructions", "2000", "table2", "--pairs", "2", "--quiet"]


class TestAcceptanceResume:
    def test_chaos_interrupted_table2_matches_serial(self, tmp_path, capsys):
        """Acceptance: chaos-interrupt a ``table2 --jobs 2`` sweep (kill
        a worker mid-job, then corrupt the published checkpoint), resume
        it, and require byte-identical stdout to an uninterrupted serial
        run."""
        # 1. the uninterrupted serial reference
        ck_serial = tmp_path / "serial.json"
        assert (
            main(PAIRS_ARGS + ["--resume", str(ck_serial), "--jobs", "1"])
            == EXIT_OK
        )
        reference = capsys.readouterr().out

        # 2. a chaos-interrupted parallel run: worker killed on its
        # first attempt (supervisor reschedules), checkpoint then
        # corrupted on disk after the run (as a kill mid-write would)
        from repro.analysis.runner import resilient_spec_pair_sweep

        # the same first-two pairs `table2 --pairs 2` sweeps
        pairs = [("specrand", "specrand"), ("lbm", "lbm")]
        ck = tmp_path / "chaos.json"
        import repro.analysis.runner as runner_mod
        from repro.robustness.supervisor import SupervisedSweepExecutor

        original = SupervisedSweepExecutor.__init__

        def sabotaged_init(self, *args, **kwargs):
            kwargs.setdefault("backoff_s", 0.01)
            original(self, *args, **kwargs)
            self.sabotage_for = (
                lambda label, attempt: ("kill", 9)
                if label == "2Xspecrand" and attempt == 1
                else None
            )

        SupervisedSweepExecutor.__init__ = sabotaged_init
        try:
            outcome = resilient_spec_pair_sweep(
                pairs=pairs,
                instructions=2_000,
                checkpoint_path=ck,
                jobs=2,
            )
        finally:
            SupervisedSweepExecutor.__init__ = original
        assert outcome.complete  # the kill was rescheduled, not fatal
        assert runner_mod is not None
        # corrupt the published checkpoint: torn tail
        ck.write_bytes(ck.read_bytes()[:30])

        # 3. resume under --jobs 2: heals from backup, re-runs the gap
        capsys.readouterr()
        assert (
            main(PAIRS_ARGS + ["--resume", str(ck), "--jobs", "2"])
            == EXIT_OK
        )
        resumed_out = capsys.readouterr().out
        assert resumed_out == reference


class TestExitContract:
    def test_partial_sweep_exits_3_with_quarantine_summary(
        self, tmp_path, capsys, monkeypatch
    ):
        """A sweep with a quarantined cell exits EXIT_PARTIAL, renders a
        gap marker, and names the FailureRecord file."""
        import repro.analysis.runner as runner_mod

        real_pair = runner_mod.run_spec_pair_experiment

        def poisoned_pair(config, a, b, **kwargs):
            if a == "lbm":  # the second of table2's first two pairs
                raise ValueError("poison cell")
            return real_pair(config, a, b, **kwargs)

        monkeypatch.setattr(
            runner_mod, "run_spec_pair_experiment", poisoned_pair
        )
        ck = tmp_path / "ck.json"
        code = main(
            [
                "--instructions", "2000",
                "table2", "--pairs", "2",
                "--resume", str(ck), "--jobs", "1",
            ]
        )
        captured = capsys.readouterr()
        assert code == EXIT_PARTIAL
        assert "[quarantined]" in captured.out
        assert "geomean*" in captured.out
        assert "quarantined 1 job(s)" in captured.err
