"""Sink behavior: JSONL persistence, ring eviction order, tee fan-out."""

import pytest

from repro.obs import JsonlSink, RingBufferSink, TeeSink, TraceEvent, read_events


def _events(n):
    return [TraceEvent(kind="cache.fill", ts=i, seq=i) for i in range(n)]


def test_jsonl_sink_round_trips(tmp_path):
    path = tmp_path / "nested" / "trace.jsonl"  # parent made on demand
    events = _events(5)
    with JsonlSink(path) as sink:
        for event in events:
            sink.emit(event)
        assert sink.emitted == 5
    assert list(read_events(path)) == events


def test_ring_buffer_evicts_oldest_first():
    ring = RingBufferSink(capacity=4)
    events = _events(10)
    for event in events:
        ring.emit(event)
    assert ring.events == events[-4:]  # newest 4, oldest first
    assert ring.emitted == 10
    assert ring.dropped == 6


def test_ring_buffer_under_capacity_drops_nothing():
    ring = RingBufferSink(capacity=100)
    for event in _events(3):
        ring.emit(event)
    assert ring.dropped == 0
    assert [e.ts for e in ring.events] == [0, 1, 2]


def test_ring_buffer_rejects_bad_capacity():
    with pytest.raises(ValueError):
        RingBufferSink(capacity=0)


def test_jsonl_close_flushes_and_fsyncs(tmp_path, monkeypatch):
    """close() must push buffered lines to durable storage: a crash right
    after close can't lose events (the crash-tolerant read contract)."""
    import os

    synced = []
    real_fsync = os.fsync
    monkeypatch.setattr(os, "fsync", lambda fd: (synced.append(fd), real_fsync(fd)))
    sink = JsonlSink(tmp_path / "t.jsonl")
    for event in _events(3):
        sink.emit(event)
    sink.close()
    assert synced, "close() did not fsync"
    assert len(list(read_events(tmp_path / "t.jsonl"))) == 3


def test_tee_duplicates_to_every_sink(tmp_path):
    ring_a, ring_b = RingBufferSink(), RingBufferSink()
    jsonl = JsonlSink(tmp_path / "t.jsonl")
    tee = TeeSink([ring_a, ring_b, jsonl])
    events = _events(3)
    for event in events:
        tee.emit(event)
    tee.close()
    assert ring_a.events == events
    assert ring_b.events == events
    assert list(read_events(jsonl.path)) == events
