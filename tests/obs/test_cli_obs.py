"""The `repro trace` / `repro obs summarize` commands and --quiet."""

import json

import pytest

from repro.analysis.cli import main
from repro.obs import EVENT_KINDS, Console, load_manifest, read_events


@pytest.fixture(scope="module")
def trace_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("trace_cli")
    rc = main(
        ["trace", "--output-dir", str(out), "--lines", "12",
         "--sample-every", "2000"]
    )
    assert rc == 0
    return out


def test_trace_writes_jsonl_stream(trace_dir):
    events = list(read_events(trace_dir / "trace.jsonl"))
    assert events
    kinds = {e.kind for e in events}
    assert kinds <= EVENT_KINDS
    # the defining beats of a traced flush+reload
    for expected in ("phase.begin", "cache.fill", "access.first_miss",
                     "ctx.switch", "metrics.sample"):
        assert expected in kinds, f"missing {expected}"


def test_trace_writes_loadable_perfetto_file(trace_dir):
    with open(trace_dir / "trace.perfetto.json") as handle:
        payload = json.load(handle)
    trace = payload["traceEvents"]
    assert [e["name"] for e in trace if e["ph"] == "B"] == [
        "flush", "wait", "probe"
    ]
    assert any(e["ph"] == "C" for e in trace)  # metrics counter track


def test_trace_manifest_indexes_artifacts(trace_dir):
    payload = load_manifest(trace_dir / "manifest.json")
    names = {a["name"] for a in payload["artifacts"]}
    assert names == {"trace.jsonl", "trace.perfetto.json"}
    assert payload["command"][:2] == ["repro", "trace"]
    assert payload["extra"]["probe_hits"] == 0  # TimeCache defends
    assert payload["extra"]["events"] == len(
        list(read_events(trace_dir / "trace.jsonl"))
    )
    assert all(len(a["sha256"]) == 64 for a in payload["artifacts"])


def test_obs_summarize(trace_dir, capsys):
    rc = main(["obs", "summarize", str(trace_dir / "trace.jsonl")])
    out = capsys.readouterr().out
    assert rc == 0
    assert "events over" in out
    assert "cache.fill" in out
    assert "phases:" in out
    assert "probe" in out


def test_obs_summarize_exports_perfetto(trace_dir, tmp_path, capsys):
    target = tmp_path / "exported.json"
    rc = main(
        ["obs", "summarize", str(trace_dir / "trace.jsonl"),
         "--perfetto", str(target)]
    )
    assert rc == 0
    with open(target) as handle:
        assert json.load(handle)["traceEvents"]


def test_obs_summarize_empty_trace_fails(tmp_path, capsys):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    rc = main(["obs", "summarize", str(empty)])
    captured = capsys.readouterr()
    assert rc == 1
    assert "no events" in captured.err


def _write_lines(path, events, torn_tail=False):
    with open(path, "w") as handle:
        for event in events:
            handle.write(event.to_json_line() + "\n")
        if torn_tail:
            handle.write('{"kind":"cache.evict","ts":99')


def test_obs_summarize_warns_on_torn_tail_and_drops(tmp_path, capsys):
    from repro.obs import TraceEvent

    path = tmp_path / "dropped.jsonl"
    # seqs start at 3 (ring dropped the head) and skip 6 (mid-stream gap)
    events = [
        TraceEvent(kind="cache.fill", ts=i, seq=s)
        for i, s in enumerate([3, 4, 5, 7])
    ]
    _write_lines(path, events, torn_tail=True)
    rc = main(["obs", "summarize", str(path)])
    captured = capsys.readouterr()
    assert rc == 3  # partial: the trace is usable but incomplete
    assert "WARNING" in captured.err
    assert "torn trailing line" in captured.err
    assert "3 event(s) dropped before the stream start" in captured.err
    assert "1 event(s) missing mid-stream" in captured.err
    assert "4 events" in captured.out  # the summary still renders


def test_obs_summarize_clean_trace_stays_quiet(trace_dir, capsys):
    rc = main(["obs", "summarize", str(trace_dir / "trace.jsonl")])
    captured = capsys.readouterr()
    assert rc == 0
    assert "WARNING" not in captured.err


@pytest.fixture(scope="module")
def obs_sweep_dir(tmp_path_factory):
    from tests.obs.test_shards import _jobs
    from repro.robustness.supervisor import SupervisedSweepExecutor

    obs_dir = tmp_path_factory.mktemp("cli_obs") / "obs"
    outcome = SupervisedSweepExecutor(2, retries=0, obs_dir=obs_dir).run(_jobs())
    assert not outcome.failures
    return obs_dir


def test_obs_flame_prints_folded_stacks(obs_sweep_dir, capsys):
    rc = main(["obs", "flame", "--obs-dir", str(obs_sweep_dir)])
    captured = capsys.readouterr()
    assert rc == 0
    assert "job:alpha" in captured.out
    assert "kernel;" in captured.out


def test_obs_flame_writes_file(obs_sweep_dir, tmp_path, capsys):
    out = tmp_path / "folded.txt"
    rc = main(["obs", "flame", "--obs-dir", str(obs_sweep_dir), "--out", str(out)])
    assert rc == 0
    lines = out.read_text().splitlines()
    assert lines and all(line.rsplit(" ", 1)[1].isdigit() for line in lines)


def test_obs_flame_empty_dir_is_fatal(tmp_path, capsys):
    rc = main(["obs", "flame", "--obs-dir", str(tmp_path)])
    assert rc == 1
    assert "no obs shards" in capsys.readouterr().err


def test_obs_top_once_renders_heartbeat_and_shards(obs_sweep_dir, capsys):
    rc = main(["obs", "top", str(obs_sweep_dir), "--once"])
    captured = capsys.readouterr()
    assert rc == 0
    assert "sweep done" in captured.out
    assert "3/3" in captured.out
    assert "alpha" in captured.out


def test_obs_top_once_without_heartbeat(tmp_path, capsys):
    rc = main(["obs", "top", str(tmp_path), "--once"])
    assert rc == 1
    assert "no heartbeat" in capsys.readouterr().out


def test_quiet_suppresses_progress_not_artifacts(tmp_path, capsys):
    out = tmp_path / "quiet_trace"
    rc = main(
        ["--quiet", "trace", "--output-dir", str(out), "--lines", "4",
         "--sample-every", "0"]
    )
    captured = capsys.readouterr()
    assert rc == 0
    assert "reload hits" in captured.out       # the artifact line stays
    assert "config sha256" not in captured.out  # progress chatter goes
    # the flag is also accepted after the subcommand
    rc = main(["obs", "summarize", str(out / "trace.jsonl"), "--quiet"])
    assert rc == 0


def test_console_routing(capsys):
    console = Console()
    console.info("progress")
    console.result("artifact")
    console.error("bad")
    captured = capsys.readouterr()
    assert "progress" in captured.out
    assert "artifact" in captured.out
    assert "bad" in captured.err

    quiet = Console(quiet=True)
    quiet.info("progress")
    quiet.result("artifact")
    quiet.error("bad")
    captured = capsys.readouterr()
    assert "progress" not in captured.out
    assert "artifact" in captured.out
    assert "bad" in captured.err
