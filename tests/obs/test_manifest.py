"""Run manifests: determinism, artifact hashing, round trips."""

import json

import pytest

from repro.common.config import scaled_experiment_config
from repro.obs import RunManifest, config_fingerprint, load_manifest


def test_config_fingerprint_tracks_config_identity():
    a = scaled_experiment_config(seed=1)
    b = scaled_experiment_config(seed=1)
    c = scaled_experiment_config(seed=2)
    assert config_fingerprint(a) == config_fingerprint(b)
    assert config_fingerprint(a) != config_fingerprint(c)


def test_manifest_fingerprint_is_deterministic(tmp_path):
    """Same command/config/artifacts -> same fingerprint, even though
    the volatile fields (timestamp, git, machine) may differ."""
    artifact = tmp_path / "out.json"
    artifact.write_text('{"x": 1}\n')
    config = scaled_experiment_config(seed=9)
    first = RunManifest.build(
        command=["repro", "trace"], config=config, artifacts=[artifact]
    )
    second = RunManifest.build(
        command=["repro", "trace"], config=config, artifacts=[artifact]
    )
    second.created_at = "1999-01-01T00:00:00Z"
    second.git = {"sha": "something-else", "dirty": True}
    second.machine = {"python": "0.0"}
    assert first.fingerprint() == second.fingerprint()


def test_manifest_fingerprint_sees_artifact_content(tmp_path):
    artifact = tmp_path / "out.json"
    config = scaled_experiment_config()
    artifact.write_text("one")
    first = RunManifest.build(
        command="trace", config=config, artifacts=[artifact]
    )
    artifact.write_text("two")
    second = RunManifest.build(
        command="trace", config=config, artifacts=[artifact]
    )
    assert first.fingerprint() != second.fingerprint()


def test_manifest_defaults_come_from_config():
    config = scaled_experiment_config(seed=42, engine="fast")
    manifest = RunManifest.build(command="x", config=config)
    assert manifest.seed == 42
    assert manifest.engine == "fast"
    assert manifest.config_sha256 == config_fingerprint(config)


def test_manifest_write_load_round_trip(tmp_path):
    artifact = tmp_path / "results.json"
    artifact.write_text("[]\n")
    manifest = RunManifest.build(
        command=["repro", "export"],
        config=scaled_experiment_config(seed=3),
        artifacts=[artifact],
        extra={"rows": 0},
    )
    path = manifest.write(tmp_path / "manifest.json")
    payload = load_manifest(path)
    assert payload["kind"] == "run_manifest"
    assert payload["seed"] == 3
    assert payload["fingerprint"] == manifest.fingerprint()
    assert payload["artifacts"][0]["name"] == "results.json"
    assert payload["artifacts"][0]["bytes"] == 3
    assert payload["extra"] == {"rows": 0}


def test_load_manifest_rejects_other_json(tmp_path):
    path = tmp_path / "not_manifest.json"
    path.write_text(json.dumps({"kind": "bench_baseline"}))
    with pytest.raises(ValueError, match="not a run manifest"):
        load_manifest(path)
