"""The tracing-overhead benchmark and its <5% disabled-overhead gate."""

from repro.analysis.bench import (
    BENCHMARKS,
    ENGINE_AWARE,
    bench_hierarchy_access_traced,
)

#: the acceptance bound: a constructed-but-disabled tracer must not
#: slow the raw-access hot path by 5% or more
DISABLED_OVERHEAD_BOUND = 0.05


def test_traced_bench_is_registered():
    assert BENCHMARKS["hierarchy_access_traced"] is bench_hierarchy_access_traced
    assert "hierarchy_access_traced" in ENGINE_AWARE


def test_disabled_tracing_overhead_under_five_percent():
    result = bench_hierarchy_access_traced(quick=True)
    assert result.skipped is None
    assert len(result.runs) == 3
    # min-over-min estimator: robust to one noisy run in either arm
    assert result.extra["overhead_disabled"] < DISABLED_OVERHEAD_BOUND, (
        "a disabled tracer must leave the hot path untouched; measured "
        f"{result.extra['overhead_disabled']:.1%}"
    )
    # the enabled arm actually traced something
    assert result.extra["events"] > 0
    assert result.extra["enabled_median_s"] > 0
