"""Event record wire-format round trips."""

import json

import pytest

from repro.obs import EVENT_KINDS, TraceEvent, parse_event, read_events


def test_event_json_round_trip():
    event = TraceEvent(
        kind="cache.fill",
        ts=1234,
        src="L1D0",
        ctx=1,
        seq=7,
        args={"set": 3, "way": 2},
    )
    assert parse_event(event.to_json_line()) == event


def test_json_line_is_canonical():
    """Sorted keys, compact separators — traces are byte-reproducible."""
    line = TraceEvent(kind="phase.begin", ts=0, args={"name": "probe"}).to_json_line()
    payload = json.loads(line)
    assert line == json.dumps(payload, sort_keys=True, separators=(",", ":"))
    assert "\n" not in line


def test_from_dict_defaults():
    event = TraceEvent.from_dict({"kind": "ctx.switch", "ts": 5})
    assert event.src == "sim"
    assert event.ctx == -1
    assert event.seq == 0
    assert event.args == {}


def test_read_events_skips_blank_lines(tmp_path):
    path = tmp_path / "trace.jsonl"
    first = TraceEvent(kind="sched.dispatch", ts=1, args={"task": 0})
    second = TraceEvent(kind="sched.sleep", ts=9, args={"task": 0})
    path.write_text(
        first.to_json_line() + "\n\n" + second.to_json_line() + "\n"
    )
    assert list(read_events(path)) == [first, second]


def test_event_kinds_are_namespaced():
    assert EVENT_KINDS  # non-empty
    for kind in EVENT_KINDS:
        layer, _, name = kind.partition(".")
        assert layer and name, f"kind {kind!r} is not layer.name shaped"


def test_parse_rejects_garbage():
    with pytest.raises(json.JSONDecodeError):
        parse_event("not json")
