"""Event record wire-format round trips."""

import json

import pytest

from repro.obs import EVENT_KINDS, TraceEvent, parse_event, read_events


def test_event_json_round_trip():
    event = TraceEvent(
        kind="cache.fill",
        ts=1234,
        src="L1D0",
        ctx=1,
        seq=7,
        args={"set": 3, "way": 2},
    )
    assert parse_event(event.to_json_line()) == event


def test_json_line_is_canonical():
    """Sorted keys, compact separators — traces are byte-reproducible."""
    line = TraceEvent(kind="phase.begin", ts=0, args={"name": "probe"}).to_json_line()
    payload = json.loads(line)
    assert line == json.dumps(payload, sort_keys=True, separators=(",", ":"))
    assert "\n" not in line


def test_from_dict_defaults():
    event = TraceEvent.from_dict({"kind": "ctx.switch", "ts": 5})
    assert event.src == "sim"
    assert event.ctx == -1
    assert event.seq == 0
    assert event.args == {}


def test_read_events_skips_blank_lines(tmp_path):
    path = tmp_path / "trace.jsonl"
    first = TraceEvent(kind="sched.dispatch", ts=1, args={"task": 0})
    second = TraceEvent(kind="sched.sleep", ts=9, args={"task": 0})
    path.write_text(
        first.to_json_line() + "\n\n" + second.to_json_line() + "\n"
    )
    assert list(read_events(path)) == [first, second]


def test_event_kinds_are_namespaced():
    assert EVENT_KINDS  # non-empty
    for kind in EVENT_KINDS:
        layer, _, name = kind.partition(".")
        assert layer and name, f"kind {kind!r} is not layer.name shaped"


def test_parse_rejects_garbage():
    with pytest.raises(json.JSONDecodeError):
        parse_event("not json")


def test_tolerant_read_skips_torn_final_line(tmp_path):
    from repro.obs import read_events_tolerant

    path = tmp_path / "torn.jsonl"
    good = [TraceEvent(kind="cache.fill", ts=i, seq=i) for i in range(3)]
    with open(path, "w") as handle:
        for event in good:
            handle.write(event.to_json_line() + "\n")
        handle.write('{"kind":"cache.evict","ts":9')  # killed mid-write
    events, skipped = read_events_tolerant(path)
    assert events == good
    assert skipped == 1


def test_tolerant_read_clean_file_skips_nothing(tmp_path):
    from repro.obs import read_events_tolerant

    path = tmp_path / "clean.jsonl"
    good = [TraceEvent(kind="cache.fill", ts=i, seq=i) for i in range(2)]
    path.write_text("".join(e.to_json_line() + "\n" for e in good))
    assert read_events_tolerant(path) == (good, 0)


def test_tolerant_read_raises_on_mid_file_corruption(tmp_path):
    """Only a *final* torn line is survivable; corruption followed by
    more data is a broken file, not a crash artifact."""
    from repro.obs import read_events_tolerant

    path = tmp_path / "corrupt.jsonl"
    good = TraceEvent(kind="cache.fill", ts=0).to_json_line()
    path.write_text('{"kind": bad\n' + good + "\n")
    with pytest.raises(json.JSONDecodeError):
        read_events_tolerant(path)
