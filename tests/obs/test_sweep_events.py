"""Sweep executor progress events, serial and pooled."""

import os

import pytest

from repro.analysis.parallel import ParallelSweepExecutor, SweepJob
from repro.obs import RingBufferSink, Tracer


def _square(x):
    """Module-level so the process pool can pickle it."""
    return x * x


def _jobs(n):
    return [SweepJob(label=f"job{i}", fn=_square, args=(i,)) for i in range(n)]


def _traced_run(jobs_arg, sweep_jobs):
    ring = RingBufferSink()
    tracer = Tracer(ring)
    executor = ParallelSweepExecutor(jobs_arg, retries=0, tracer=tracer)
    outcome = executor.run(sweep_jobs)
    tracer.close()
    return outcome, ring.events


def test_serial_sweep_emits_lifecycle_events():
    outcome, events = _traced_run(1, _jobs(3))
    assert len(outcome.results) == 3
    kinds = [e.kind for e in events]
    assert kinds[0] == "sweep.begin"
    assert kinds[-1] == "sweep.end"
    assert kinds.count("sweep.job_done") == 3
    assert kinds.count("sweep.heartbeat") == 3
    assert events[0].args == {"n_jobs": 3, "workers": 1}
    assert events[-1].args == {"ok": 3, "failed": 0, "resumed": 0}
    hb = [e.args for e in events if e.kind == "sweep.heartbeat"]
    assert [h["done"] for h in hb] == [1, 2, 3]
    assert all(h["total"] == 3 for h in hb)


def test_failed_job_emits_job_failed():
    jobs = _jobs(2) + [SweepJob(label="boom", fn=_square, args=("nan",))]
    outcome, events = _traced_run(1, jobs)
    assert len(outcome.failures) == 1
    kinds = [e.kind for e in events]
    assert kinds.count("sweep.job_failed") == 1
    assert events[-1].args["failed"] == 1
    failed = next(e for e in events if e.kind == "sweep.job_failed")
    assert failed.args["label"] == "boom"


@pytest.mark.skipif((os.cpu_count() or 1) < 2, reason="needs >=2 CPUs")
def test_pool_sweep_emits_same_lifecycle():
    outcome, events = _traced_run(2, _jobs(4))
    assert len(outcome.results) == 4
    kinds = [e.kind for e in events]
    assert kinds[0] == "sweep.begin"
    assert kinds[-1] == "sweep.end"
    assert kinds.count("sweep.job_done") == 4
    assert kinds.count("sweep.heartbeat") == 4
    done = [e for e in events if e.kind == "sweep.job_done"]
    assert all("duration_s" in e.args and "attempts" in e.args for e in done)


def test_untraced_executor_unchanged():
    executor = ParallelSweepExecutor(1, retries=0)
    outcome = executor.run(_jobs(2))
    assert [outcome.results[f"job{i}"] for i in range(2)] == [0, 1]
