"""Wall-clock spans, kernel phase accumulators, and the obs session."""

import pytest

from repro.common.config import scaled_experiment_config
from repro.core.timecache import TimeCacheSystem
from repro.memsys.hierarchy import AccessKind
from repro.obs import CounterRegistry, ObsSession, PhaseAccumulator, SpanProfiler
from repro.obs.spans import KERNEL_PHASES, folded_to_lines, session_scope


# ----------------------------------------------------------------------
# PhaseAccumulator
# ----------------------------------------------------------------------
def test_phase_accumulator_payload_round_trip():
    acc = PhaseAccumulator()
    acc.plan_ns = 100
    acc.apply_ns = 300
    acc.windows = 2
    acc.events = 7
    other = PhaseAccumulator().load(acc.to_payload()).load(acc.to_payload())
    assert other.plan_ns == 200  # load() sums
    assert other.windows == 4
    assert other.events == 14


def test_phase_accumulator_summary_shares():
    acc = PhaseAccumulator()
    acc.plan_ns = 750
    acc.apply_ns = 250
    acc.events = 3
    summary = acc.summary()
    assert summary["total_ns"] == 1000
    assert summary["phase_share"]["plan"] == pytest.approx(0.75)
    assert summary["phase_share"]["apply"] == pytest.approx(0.25)
    assert summary["plan_events_per_s"] == pytest.approx(3 / 750e-9)
    # empty accumulator: shares are defined (zero), no rate key
    empty = PhaseAccumulator().summary()
    assert empty["phase_share"]["plan"] == 0.0
    assert "plan_events_per_s" not in empty


def test_kernel_phases_constant_matches_accumulator():
    acc = PhaseAccumulator()
    assert set(acc.phase_ns()) == set(KERNEL_PHASES)


# ----------------------------------------------------------------------
# SpanProfiler
# ----------------------------------------------------------------------
def test_spans_nest_and_carry_counter_deltas():
    reg = CounterRegistry()
    prof = SpanProfiler(reg)
    with prof.span("outer"):
        reg.bump("work.outer")
        with prof.span("inner"):
            reg.bump("work.inner", 2)
    # children close before parents
    assert [s.name for s in prof.spans] == ["inner", "outer"]
    inner, outer = prof.spans
    assert inner.path == ("outer", "inner")
    assert inner.counters == {"work.inner": 2}
    # the parent's delta includes everything that happened inside it
    assert outer.counters == {"work.inner": 2, "work.outer": 1}
    assert outer.start_ns <= inner.start_ns <= inner.end_ns <= outer.end_ns


def test_folded_stacks_self_time_invariant():
    prof = SpanProfiler()
    with prof.span("root"):
        with prof.span("child"):
            pass
        with prof.span("child"):
            pass
    folded = prof.folded_stacks()
    assert set(folded) == {"root", "root;child"}
    root_total = next(s for s in prof.spans if s.name == "root").duration_ns
    # self times sum back to the root duration (flamegraph invariant)
    assert folded["root"] + folded["root;child"] == root_total
    lines = folded_to_lines(folded)
    assert all(" " in line for line in lines)
    assert lines == sorted(lines)


def test_perfetto_slices_are_relative_to_epoch():
    prof = SpanProfiler()
    with prof.span("a", category="test"):
        pass
    (slice_,) = prof.to_perfetto_slices(pid=5, tid=9)
    assert slice_["ph"] == "X"
    assert slice_["pid"] == 5 and slice_["tid"] == 9
    assert slice_["cat"] == "test"
    assert slice_["ts"] >= 0
    assert slice_["dur"] >= 0


def test_span_profiler_payload_round_trip():
    prof = SpanProfiler()
    with prof.span("outer"):
        with prof.span("inner"):
            pass
    clone = SpanProfiler().load(prof.to_payload())
    assert [s.path for s in clone.spans] == [s.path for s in prof.spans]
    assert clone.folded_stacks() == prof.folded_stacks()


# ----------------------------------------------------------------------
# ObsSession + the construction-time attach
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", ["object", "fast"])
def test_session_attaches_kernel_profiler_on_construction(engine):
    config = scaled_experiment_config(l1_kib=4, llc_kib=64, engine=engine)
    line = config.hierarchy.line_bytes
    addrs = [i * line for i in range(512)]
    with session_scope(ObsSession("t")) as session:
        system = TimeCacheSystem(config)
        assert system.hierarchy.kernel_profiler is session.kernel_phases
        system.hierarchy.access_batch(0, addrs, AccessKind.LOAD, now=0, advance=0)
        payload = session.to_payload()
    phases = payload["kernel_phases"]
    assert sum(phases[f"{p}_ns"] for p in KERNEL_PHASES) > 0
    if engine == "fast":
        assert phases["windows"] > 0
        assert phases["batch_accesses"] + phases["scalar_accesses"] == len(addrs)
    else:
        # the object engine's scalar loop is all fallback, by design
        assert phases["fallback_ns"] > 0
        assert phases["scalar_accesses"] == len(addrs)
    # finalize folded the system's stats into the counter tree
    assert any(k.startswith("sim.") for k in payload["counters"])


def test_no_session_means_no_profiler():
    config = scaled_experiment_config(l1_kib=4, llc_kib=64)
    system = TimeCacheSystem(config)
    assert system.hierarchy.kernel_profiler is None


def test_profiler_does_not_change_results():
    """Instrumentation must be observational: same batch, same results."""
    config = scaled_experiment_config(l1_kib=4, llc_kib=64, engine="fast")
    line = config.hierarchy.line_bytes
    addrs = [((i * 37) % 300) * line for i in range(2000)]

    def run(profiled):
        system = TimeCacheSystem(config)
        if profiled:
            system.hierarchy.kernel_profiler = PhaseAccumulator()
        out = system.hierarchy.access_batch(
            0, addrs, AccessKind.LOAD, now=0, advance=1
        )
        return out.now, [r.latency for r in out.results]

    assert run(False) == run(True)


def test_session_scope_restores_previous():
    from repro.obs import current_session

    outer = ObsSession("outer")
    with session_scope(outer):
        with session_scope(ObsSession("inner")):
            assert current_session().label == "inner"
        assert current_session() is outer
    assert current_session() is not outer
