"""Hierarchical counter registry: slots, snapshots, merges, OpenMetrics."""

import pytest

from repro.obs import (
    CounterRegistry,
    merge_counts,
    registry_from_snapshot,
    to_openmetrics,
)


def test_slot_is_get_or_create_and_bumps():
    reg = CounterRegistry()
    slot = reg.slot("l1.set_group.0.sbit_miss")
    assert slot.value == 0
    slot.bump()
    slot.bump(3)
    assert reg.slot("l1.set_group.0.sbit_miss") is slot  # same object
    assert slot.value == 4
    assert len(reg) == 1
    assert "l1.set_group.0.sbit_miss" in reg


def test_bump_and_load_shorthand():
    reg = CounterRegistry()
    reg.bump("kernel.plan.events", 5)
    reg.bump("kernel.plan.events")
    reg.load({"kernel.windows": 2, "kernel.plan.events": 1})
    assert reg.snapshot() == {"kernel.plan.events": 7, "kernel.windows": 2}


def test_snapshot_is_sorted_and_detached():
    reg = CounterRegistry()
    reg.bump("b.two")
    reg.bump("a.one")
    snap = reg.snapshot()
    assert list(snap) == ["a.one", "b.two"]
    reg.bump("a.one")  # mutating the registry must not touch the snapshot
    assert snap["a.one"] == 1


def test_diff_reports_only_changed_counters():
    reg = CounterRegistry()
    reg.bump("x", 2)
    reg.bump("y", 1)
    before = reg.snapshot()
    reg.bump("x", 3)
    reg.bump("z")
    delta = reg.diff(before)
    assert delta == {"x": 3, "z": 1}  # y unchanged -> omitted


def test_rollup_sums_by_prefix():
    reg = CounterRegistry()
    reg.bump("l1.0.miss", 2)
    reg.bump("l1.1.miss", 3)
    reg.bump("llc.0.miss", 5)
    assert reg.rollup(1) == {"l1": 5, "llc": 5}


def test_rollup_rejects_bad_depth():
    with pytest.raises(ValueError):
        CounterRegistry().rollup(0)


def test_registry_from_snapshot_skips_non_ints():
    reg = registry_from_snapshot(
        {"a": 2, "flag": True, "ratio": 0.5, "name": "x"}, prefix="sim."
    )
    assert reg.snapshot() == {"sim.a": 2}


def test_merge_counts_sums_keywise_sorted():
    merged = merge_counts({"b": 1, "a": 2}, {"a": 3, "c": 4})
    assert merged == {"a": 5, "b": 1, "c": 4}
    assert list(merged) == ["a", "b", "c"]


def test_openmetrics_export_shape():
    text = to_openmetrics(
        {"kernel.plan.events": 7, "3weird-name": 1},
        namespace="repro",
        labels={"engine": "fast"},
    )
    lines = text.splitlines()
    assert lines[-1] == "# EOF"
    assert any(line.startswith("# TYPE repro_") for line in lines)
    assert 'engine="fast"' in text
    assert "repro_kernel_plan_events_total" in text
    # a metric name must not start with a digit
    for line in lines:
        if line.startswith("repro_"):
            continue
        if not line.startswith("#"):
            assert not line[0].isdigit()


def test_openmetrics_without_labels():
    text = to_openmetrics({"a.b": 1})
    assert "repro_a_b_total 1" in text
