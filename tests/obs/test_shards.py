"""Cross-process obs shards: worker output under --jobs N, lossless merge."""

import json

import pytest

from repro.analysis.parallel import SweepJob
from repro.common.config import scaled_experiment_config
from repro.core.timecache import TimeCacheSystem
from repro.memsys.hierarchy import AccessKind
from repro.obs import ObsSession, merge_counts
from repro.obs.shards import (
    list_shards,
    load_shard,
    merge_shards,
    merged_folded_stacks,
    read_heartbeat,
    shard_path,
    write_heartbeat,
    write_merged,
    write_shard,
)
from repro.robustness.supervisor import SupervisedSweepExecutor

LABELS = ("alpha", "beta", "gamma")


def batched_job(seed):
    """Picklable worker payload that drives the batched kernel, so the
    shard carries kernel phases and sim counters."""
    config = scaled_experiment_config(l1_kib=4, llc_kib=64, engine="fast")
    line = config.hierarchy.line_bytes
    system = TimeCacheSystem(config)
    addrs = [((i * 31 + seed) % 200) * line for i in range(800)]
    out = system.hierarchy.access_batch(0, addrs, AccessKind.LOAD, now=0, advance=0)
    return {"seed": seed, "l1_hits": sum(1 for r in out.results if r.level == "L1")}


def _jobs():
    return [
        SweepJob(
            label=label,
            fn=batched_job,
            args=(i,),
            provenance={"seed": i, "engine": "fast"},
        )
        for i, label in enumerate(LABELS)
    ]


@pytest.fixture(scope="module")
def swept(tmp_path_factory):
    obs_dir = tmp_path_factory.mktemp("sweep") / "obs"
    outcome = SupervisedSweepExecutor(2, retries=0, obs_dir=obs_dir).run(_jobs())
    assert len(outcome.results) == len(LABELS)
    return obs_dir


def test_jobs2_sweep_writes_one_shard_per_job(swept):
    paths = list_shards(swept)
    assert [p.name for p in paths] == sorted(
        f"shard-{label}.json" for label in LABELS
    )
    for path, label in zip(paths, sorted(LABELS)):
        shard = load_shard(path)
        assert shard["label"] == label
        assert shard["ok"] is True
        assert shard["pid"] > 0
        assert shard["kernel_phases"]["windows"] > 0
        assert any(k.startswith("sim.") for k in shard["counters"])
        # the job span wraps the whole attempt
        names = [s["name"] for s in shard["spans"]]
        assert f"job:{label}" in names
        assert shard["meta"]["provenance"]["engine"] == "fast"


def test_sweep_writes_merged_trace_and_counters(swept):
    assert (swept / "merged_trace.json").exists()
    assert (swept / "counters.json").exists()
    hb = read_heartbeat(swept)
    assert hb is not None and hb["status"] == "done"
    assert hb["done"] == len(LABELS)


def test_merged_counters_totals_equal_sum_of_shards(swept):
    _, counters = merge_shards(swept)
    shard_counts = [load_shard(p)["counters"] for p in list_shards(swept)]
    assert counters["totals"] == merge_counts(*shard_counts)
    assert set(counters["shards"]) == set(LABELS)
    # kernel phase totals are the shard sum too
    windows = sum(load_shard(p)["kernel_phases"]["windows"] for p in list_shards(swept))
    assert counters["kernel_phases"]["windows"] == windows


def test_merged_trace_has_distinct_worker_process_tracks(swept):
    with open(swept / "merged_trace.json") as handle:
        trace = json.load(handle)["traceEvents"]
    names = {
        e["pid"]: e["args"]["name"]
        for e in trace
        if e["ph"] == "M" and e["name"] == "process_name"
    }
    assert names[1] == "supervisor"
    assert {names[i + 2] for i in range(len(LABELS))} == {
        f"worker:{label}" for label in sorted(LABELS)
    }
    # supervisor track carries one attempt window per job
    sup = [e for e in trace if e["ph"] == "X" and e["pid"] == 1]
    assert sorted(e["name"] for e in sup) == sorted(
        f"job:{label}" for label in LABELS
    )
    # every worker has span slices and a kernel-phase lane
    for index in range(len(LABELS)):
        pid = index + 2
        tids = {e["tid"] for e in trace if e["ph"] == "X" and e["pid"] == pid}
        assert {1, 2} <= tids
    # slices land on the merged wall axis: no negative timestamps
    assert all(e["ts"] >= 0 for e in trace if e["ph"] == "X")


def test_merge_is_deterministic_given_labels(swept):
    first = merge_shards(swept)
    second = merge_shards(swept)
    assert first == second


def test_merged_folded_stacks_cover_jobs_and_kernel(swept):
    folded = merged_folded_stacks(swept)
    for label in LABELS:
        assert f"job:{label}" in folded
    assert any(key.startswith("kernel;") for key in folded)


def test_failed_attempt_still_writes_a_shard(tmp_path):
    session = ObsSession(label="boom")
    with session.span("job:boom", "sweep"):
        session.counters.bump("work.units", 3)
    path = write_shard(session, tmp_path, attempt=2, ok=False)
    assert path == shard_path(tmp_path, "boom")
    shard = load_shard(path)
    assert shard["ok"] is False
    assert shard["attempt"] == 2
    assert shard["counters"]["work.units"] == 3


def test_shard_label_sanitization(tmp_path):
    assert shard_path(tmp_path, "a b/c:d").name == "shard-a_b_c_d.json"


def test_heartbeat_round_trip_and_tolerance(tmp_path):
    assert read_heartbeat(tmp_path) is None
    write_heartbeat(
        tmp_path, status="running", done=1, total=4, failed=0,
        in_flight=[{"label": "x", "attempt": 1, "age_s": 0.5, "pid": 42}],
        quarantined=["y"],
    )
    hb = read_heartbeat(tmp_path)
    assert hb["status"] == "running"
    assert hb["in_flight"][0]["label"] == "x"
    # a torn/corrupt heartbeat reads as None, not an exception
    (tmp_path / "heartbeat.json").write_text('{"kind": "obs_heartbeat"')
    assert read_heartbeat(tmp_path) is None


def test_write_merged_with_no_shards_is_empty_but_valid(tmp_path):
    trace_path, counters_path = write_merged(tmp_path)
    with open(trace_path) as handle:
        trace = json.load(handle)["traceEvents"]
    assert [e["args"]["name"] for e in trace if e["ph"] == "M"] == ["supervisor"]
    with open(counters_path) as handle:
        counters = json.load(handle)
    assert counters["totals"] == {}
