"""Chrome trace-event export validity."""

import json

from repro.obs import (
    RingBufferSink,
    TraceEvent,
    Tracer,
    to_chrome_trace,
    write_chrome_trace,
)

_VALID_PH = {"B", "E", "i", "C", "M"}


def _sample_events():
    ring = RingBufferSink()
    tracer = Tracer(ring)
    with tracer.span("flush", ctx=0):
        tracer.emit("cache.fill", src="L1D0", ctx=0, ts=5,
                    args={"set": 1, "way": 0})
    tracer.emit(
        "metrics.sample", src="sampler", ts=10,
        args={"accesses": 12, "llc_mpka": 83.3, "note": "text-dropped"},
    )
    tracer.emit("ctx.switch", src="os", ctx=1, ts=20,
                args={"outgoing": 0, "incoming": 1, "rollover": False})
    return ring.events


def test_chrome_trace_shape():
    payload = to_chrome_trace(_sample_events())
    trace = payload["traceEvents"]
    assert payload["displayTimeUnit"] == "ms"
    assert trace[0] == {
        "ph": "M", "pid": 1, "name": "process_name",
        "args": {"name": "timecache-sim"},
    }
    assert all(entry["ph"] in _VALID_PH for entry in trace)
    # every non-metadata entry sits on the one simulated process
    assert all(entry["pid"] == 1 for entry in trace)


def test_spans_are_balanced_per_thread():
    trace = to_chrome_trace(_sample_events())["traceEvents"]
    depth = {}
    for entry in trace:
        if entry["ph"] == "B":
            depth[entry["tid"]] = depth.get(entry["tid"], 0) + 1
        elif entry["ph"] == "E":
            depth[entry["tid"]] = depth.get(entry["tid"], 0) - 1
            assert depth[entry["tid"]] >= 0, "E before matching B"
    assert all(v == 0 for v in depth.values())


def test_counter_events_keep_numeric_args_only():
    trace = to_chrome_trace(_sample_events())["traceEvents"]
    counters = [e for e in trace if e["ph"] == "C"]
    assert counters, "metrics.sample did not map to a counter event"
    for counter in counters:
        assert counter["name"] == "metrics"
        assert all(
            isinstance(v, (int, float)) and not isinstance(v, bool)
            for v in counter["args"].values()
        )
        assert "note" not in counter["args"]


def test_thread_name_metadata_per_context():
    trace = to_chrome_trace(_sample_events())["traceEvents"]
    names = {
        e["tid"]: e["args"]["name"]
        for e in trace
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    assert names == {0: "hw-ctx 0", 1: "hw-ctx 1"}


def test_written_file_is_loadable_json(tmp_path):
    path = write_chrome_trace(_sample_events(), tmp_path / "t.perfetto.json")
    with open(path) as handle:
        payload = json.load(handle)
    assert isinstance(payload["traceEvents"], list)
    assert len(payload["traceEvents"]) >= len(_sample_events())


def test_instant_events_carry_scope():
    trace = to_chrome_trace([TraceEvent(kind="cache.evict", ts=3)])["traceEvents"]
    instants = [e for e in trace if e["ph"] == "i"]
    assert instants[0]["s"] == "t"
    assert instants[0]["name"] == "cache.evict"
