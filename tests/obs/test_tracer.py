"""Tracer attach/detach semantics and the emitted stream's integrity."""

import pytest

from repro.common.config import scaled_experiment_config
from repro.core import TimeCacheSystem
from repro.core.context import SwitchCost
from repro.obs import EVENT_KINDS, RingBufferSink, Tracer


def test_enabled_tracer_requires_sink():
    with pytest.raises(ValueError):
        Tracer()


def test_disabled_tracer_attaches_nothing():
    """The production default must leave every hot-path hook untouched."""
    system = TimeCacheSystem(scaled_experiment_config())
    before = list(system.hierarchy.post_access_listeners)
    tracer = Tracer(enabled=False)
    tracer.attach(system)
    assert system.hierarchy.post_access_listeners == before
    assert system.obs_tracer is None
    for cache in system.hierarchy.all_caches():
        assert cache.event_listener is None
    tracer.emit("cache.fill")  # guard swallows it; no sink needed
    tracer.close()


def test_attach_detach_restores_hooks():
    system = TimeCacheSystem(scaled_experiment_config())
    ring = RingBufferSink()
    tracer = Tracer(ring)
    tracer.attach(system)
    assert system.obs_tracer is tracer
    assert all(
        cache.event_listener is not None
        for cache in system.hierarchy.all_caches()
    )
    system.load(0, 0x4000, now=10)
    assert ring.emitted > 0
    tracer.detach()
    assert system.obs_tracer is None
    assert system.hierarchy.post_access_listeners == []
    for cache in system.hierarchy.all_caches():
        assert cache.event_listener is None
    emitted = ring.emitted
    system.load(0, 0x8000, now=20)  # after detach: silence
    assert ring.emitted == emitted


def test_traced_run_stream_integrity():
    """Known kinds only, monotone seq, fills for the cold misses, and a
    first-access miss once a switched-in task revisits a cached line."""
    system = TimeCacheSystem(scaled_experiment_config())
    ring = RingBufferSink()
    tracer = Tracer(ring).attach(system)
    now = 0
    for i in range(16):
        now += system.load(0, 0x10000 + (i % 8) * 64, now=now).latency
    system.context_switch(0, 1, 0, now=now)
    # task 1's s-bits are clear: this warm line reads as a first access
    result = system.load(0, 0x10000, now=now + 10)
    assert result.first_access
    tracer.close()
    events = ring.events
    assert events, "traced run emitted nothing"
    assert {e.kind for e in events} <= EVENT_KINDS
    assert [e.seq for e in events] == sorted(e.seq for e in events)
    assert any(e.kind == "cache.fill" for e in events)
    assert any(e.kind == "access.first_miss" for e in events)
    switch = next(e for e in events if e.kind == "ctx.switch")
    assert switch.args["incoming"] == 1
    assert switch.args["outgoing"] == 0


def test_rollover_switch_emits_epoch_and_flash_clear():
    ring = RingBufferSink()
    tracer = Tracer(ring)
    cost = SwitchCost(dma_cycles=64, comparator_cycles=8, rollover_reset=True)
    tracer.on_context_switch(0, 1, 0, 1000, cost)
    kinds = [e.kind for e in ring.events]
    assert kinds == ["ctx.switch", "rollover.epoch", "sbit.flash_clear"]
    assert ring.events[0].args["rollover"] is True
    assert ring.events[2].args["reason"] == "rollover"


def test_span_wraps_begin_end():
    ring = RingBufferSink()
    tracer = Tracer(ring)
    with tracer.span("probe", ctx=2):
        tracer.emit("cache.fill", ctx=2)
    kinds = [e.kind for e in ring.events]
    assert kinds == ["phase.begin", "cache.fill", "phase.end"]
    assert ring.events[0].args == {"name": "probe"}
    assert ring.events[2].args == {"name": "probe"}


def test_tracer_coexists_with_existing_listener():
    """Chained listeners: a pre-installed direct listener (the invariant
    checker's style) keeps firing alongside the tracer's."""
    system = TimeCacheSystem(scaled_experiment_config())
    l1 = next(c for c in system.hierarchy.all_caches() if "L1D" in c.name)
    seen = []
    l1.event_listener = lambda event, s, w, c: seen.append(event)
    ring = RingBufferSink()
    tracer = Tracer(ring).attach(system)
    system.load(0, 0x4000, now=5)
    assert "fill" in seen
    assert any(e.kind == "cache.fill" and e.src == l1.name for e in ring.events)
    tracer.detach()
    assert l1.event_listener is not None  # the direct listener survives
    seen.clear()
    system.load(0, 0x9000, now=50)
    assert "fill" in seen
