"""Metrics sampler: cadence, windows, derived rates."""

import pytest

from repro.common.config import scaled_experiment_config
from repro.core import TimeCacheSystem
from repro.obs import MetricsSampler, RingBufferSink, Tracer


def _drive(system, accesses, stride_cycles):
    now = 0
    for i in range(accesses):
        system.load(0, 0x10000 + (i % 64) * 64, now=now)
        now += stride_cycles
    return now


def test_sampler_rejects_bad_cadence():
    system = TimeCacheSystem(scaled_experiment_config())
    with pytest.raises(ValueError):
        MetricsSampler(system, every_cycles=0)


def test_sampler_cadence_and_windows():
    system = TimeCacheSystem(scaled_experiment_config())
    sampler = MetricsSampler(system, every_cycles=1_000).attach()
    _drive(system, accesses=100, stride_cycles=100)  # 10k cycles total
    assert 8 <= len(sampler.samples) <= 11
    ts = [s.ts for s in sampler.samples]
    assert ts == sorted(ts)
    total = sum(s.window["accesses"] for s in sampler.samples)
    assert 0 < total <= 100
    first = sampler.samples[0]
    for key in ("accesses", "llc_misses", "misses", "first_access_misses",
                "fills", "evictions"):
        assert key in first.window
    for key in ("llc_mpka", "first_access_rate"):
        assert key in first.derived
    # the cold window is all fills (first-access misses need a context
    # switch first; the tracer test covers those)
    assert first.window["fills"] > 0
    assert first.derived["first_access_rate"] >= 0
    sampler.detach()
    n = len(sampler.samples)
    _drive(system, accesses=50, stride_cycles=100)
    assert len(sampler.samples) == n  # detached: no more samples


def test_long_idle_yields_one_catchup_sample():
    system = TimeCacheSystem(scaled_experiment_config())
    sampler = MetricsSampler(system, every_cycles=1_000).attach()
    system.load(0, 0x4000, now=500)
    n = len(sampler.samples)
    # 50 windows of idle, then one access: exactly one catch-up sample
    system.load(0, 0x8000, now=50_500)
    assert len(sampler.samples) == n + 1


def test_sampler_emits_through_tracer():
    system = TimeCacheSystem(scaled_experiment_config())
    ring = RingBufferSink()
    tracer = Tracer(ring)
    sampler = MetricsSampler(system, every_cycles=1_000, tracer=tracer).attach()
    _drive(system, accesses=40, stride_cycles=100)
    emitted = [e for e in ring.events if e.kind == "metrics.sample"]
    assert len(emitted) == len(sampler.samples)
    assert emitted[0].src == "sampler"
    assert "llc_mpka" in emitted[0].args
