"""Differential fuzz: the fast engine must be bit-identical to the object one.

Each scenario replays the same seeded random trace through both engines and
asserts that every ``AccessResult`` (latency, level, first_access), every
context-switch cost, the full stats snapshot, and the final architectural
state (s-bits, Tc, valid bits, resident tags per cache) agree exactly.

Ten scenarios x twenty seeds = 200 random traces, covering the defense on
and off, context switches, multi-core stores and coherence, SMT sibling
contexts, FTM comparison mode, prefetch, the fifo/random replacement
policies, limited-pointer sharer eviction, the DRAM-latency-on-first-access
hardening, and narrow-timestamp rollover.
"""

import dataclasses

import pytest

from repro.common.config import scaled_experiment_config
from repro.common.rng import DeterministicRng
from repro.core import TimeCacheSystem
from repro.memsys import AccessKind

SEEDS = range(20)

KINDS = (
    AccessKind.LOAD,
    AccessKind.LOAD,
    AccessKind.LOAD,
    AccessKind.STORE,
    AccessKind.IFETCH,
)


def _replace_hierarchy(cfg, **changes):
    return dataclasses.replace(
        cfg, hierarchy=dataclasses.replace(cfg.hierarchy, **changes)
    )


def _with_replacement(cfg, policy):
    hier = cfg.hierarchy
    return dataclasses.replace(
        cfg,
        hierarchy=dataclasses.replace(
            hier,
            l1i=dataclasses.replace(hier.l1i, replacement=policy),
            l1d=dataclasses.replace(hier.l1d, replacement=policy),
            llc=dataclasses.replace(hier.llc, replacement=policy),
        ),
    )


# name -> (config factory taking engine + seed, contexts, switches?)
def _base(engine, seed):
    return scaled_experiment_config(seed=seed, engine=engine)


SCENARIOS = {
    "baseline_off": (lambda e, s: _base(e, s).baseline(), 1, False),
    "tc_on": (_base, 1, False),
    "tc_on_switches": (_base, 1, True),
    "two_cores_stores": (
        lambda e, s: scaled_experiment_config(num_cores=2, seed=s, engine=e),
        2,
        True,
    ),
    "smt_siblings": (
        lambda e, s: _replace_hierarchy(_base(e, s), threads_per_core=2),
        2,
        True,
    ),
    "ftm_mode": (
        lambda e, s: scaled_experiment_config(
            num_cores=2, seed=s, engine=e
        ).with_timecache(enabled=False, ftm_mode=True),
        2,
        True,
    ),
    "prefetch_fifo": (
        lambda e, s: _with_replacement(
            _replace_hierarchy(_base(e, s), next_line_prefetch=True), "fifo"
        ),
        1,
        False,
    ),
    "random_max_sharers": (
        lambda e, s: _with_replacement(
            scaled_experiment_config(num_cores=2, seed=s, engine=e), "random"
        ).with_timecache(max_sharers=1),
        2,
        True,
    ),
    "dram_first_access": (
        lambda e, s: _base(e, s).with_timecache(
            dram_latency_on_first_access=True
        ),
        1,
        False,
    ),
    "narrow_timestamp_rollover": (
        lambda e, s: _base(e, s).with_timecache(timestamp_bits=8),
        1,
        True,
    ),
}


def _run_trace(
    config,
    seed,
    contexts,
    switches,
    n=500,
    pool=192,
    traced=False,
    batched=False,
    kinds=KINDS,
    stride=1,
):
    """Drive one system with a seeded random trace; return observables.

    With ``traced`` an obs Tracer is attached for the whole trace and the
    emitted event stream comes back as the fourth observable — on the fast
    engine the listener forces every access through the event-emitting
    slow routes, so this also fuzzes those against the object model.

    With ``batched`` the *identical* (ctx, addr, kind, now) stream is
    issued through ``access_batch`` in randomly sized same-context
    chunks (pinned issue times via ``nows``), with context switches as
    batch boundaries — the split sizes come from a separate rng so the
    trace itself is unchanged.
    """
    system = TimeCacheSystem(config)
    tracer = ring = None
    if traced:
        from repro.obs import RingBufferSink, Tracer

        ring = RingBufferSink()
        tracer = Tracer(ring)
        tracer.attach(system)
    rng = DeterministicRng(seed * 7919 + 13)
    events = []
    now = 0
    task_of_ctx = {ctx: ctx for ctx in range(contexts)}
    next_task = contexts
    split_rng = DeterministicRng(seed * 104_729 + 7)
    pending = []  # same-context (addr, kind, now) accesses not yet issued
    pending_ctx = None
    limit = split_rng.randint(1, 120)

    def flush_pending():
        nonlocal limit
        if not pending:
            return
        outcome = system.access_batch(
            pending_ctx,
            [p[0] for p in pending],
            [p[1] for p in pending],
            nows=[p[2] for p in pending],
        )
        for result in outcome.results:
            events.append((result.latency, result.level, result.first_access))
        pending.clear()
        limit = split_rng.randint(1, 120)

    for i in range(n):
        now += rng.randint(1, 50)
        ctx = rng.randint(0, contexts - 1) if contexts > 1 else 0
        addr = (rng.randint(0, pool - 1) * stride) << 6
        kind = kinds[rng.randint(0, len(kinds) - 1)]
        if batched:
            if pending and (pending_ctx != ctx or len(pending) >= limit):
                flush_pending()
            pending_ctx = ctx
            pending.append((addr, kind, now))
        else:
            result = system.access(ctx, addr, kind, now)
            events.append((result.latency, result.level, result.first_access))
        if switches and i % 97 == 96:
            flush_pending()
            ctx = rng.randint(0, contexts - 1) if contexts > 1 else 0
            if rng.randint(0, 2) == 0:
                next_task += 1
            incoming = rng.randint(0, next_task - 1)
            cost = system.context_switch(task_of_ctx[ctx], incoming, ctx, now)
            task_of_ctx[ctx] = incoming
            events.append(
                (
                    "switch",
                    cost.dma_cycles,
                    cost.comparator_cycles,
                    cost.rollover_reset,
                )
            )
    flush_pending()
    final = {}
    for cache in system.hierarchy.all_caches():
        final[cache.name] = (
            cache.sbits.tolist(),
            cache.tc.tolist(),
            cache.valid.tolist(),
            sorted(cache.resident_line_addrs()),
        )
    trace = None
    if traced:
        tracer.detach()
        trace = [
            (e.kind, e.src, e.ctx, e.ts, tuple(sorted(e.args.items())))
            for e in ring.events
        ]
        assert ring.dropped == 0
    return events, system.stats_snapshot(), final, trace


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
@pytest.mark.parametrize("seed", SEEDS)
def test_engines_agree(scenario, seed):
    make_config, contexts, switches = SCENARIOS[scenario]
    obj = _run_trace(
        make_config("object", seed), seed, contexts, switches
    )
    fast = _run_trace(
        make_config("fast", seed), seed, contexts, switches
    )
    assert obj[0] == fast[0], f"{scenario}: access/switch streams diverge"
    assert obj[1] == fast[1], f"{scenario}: stats snapshots diverge"
    assert obj[2] == fast[2], f"{scenario}: final cache state diverges"


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
@pytest.mark.parametrize("seed", range(10))
def test_batched_path_matches_scalar(scenario, seed):
    """``access_batch`` must be bit-identical to the scalar loop — access
    results, switch costs, stats, and final s-bits/Tc — on both engines,
    with batches split at random sizes and every context switch."""
    make_config, contexts, switches = SCENARIOS[scenario]
    scalar = _run_trace(make_config("fast", seed), seed, contexts, switches)
    batched = _run_trace(
        make_config("fast", seed), seed, contexts, switches, batched=True
    )
    obj_batched = _run_trace(
        make_config("object", seed), seed, contexts, switches, batched=True
    )
    assert batched[0] == scalar[0], f"{scenario}: batched results diverge"
    assert batched[1] == scalar[1], f"{scenario}: batched stats diverge"
    assert batched[2] == scalar[2], f"{scenario}: batched final state diverges"
    assert obj_batched[0] == scalar[0], f"{scenario}: object batch diverges"
    assert obj_batched[1] == scalar[1], f"{scenario}: object batch stats"
    assert obj_batched[2] == scalar[2], f"{scenario}: object batch state"


#: adversarial stream shapes for the vectorized miss-resolution kernels:
#: every entry is deliberately dominated by the events the batched fast
#: path used to fall back to scalar for (fills, evictions, stores) —
#: name -> (config factory, contexts, switches, _run_trace overrides)
STRESS_SCENARIOS = {
    # pool far beyond LLC capacity: nearly every access misses and the
    # fill/evict kernels run back to back through every level
    "eviction_heavy": (_base, 1, True, {"pool": 1500}),
    # every line lands in the same set (stride covers any power-of-two
    # set count up to 64): chained same-set victim selection
    "conflict_heavy": (_base, 1, False, {"pool": 48, "stride": 64}),
    # mostly stores, two cores with switches: the batched store/dirty
    # path plus store-probes on shared lines
    "store_heavy": (
        lambda e, s: scaled_experiment_config(num_cores=2, seed=s, engine=e),
        2,
        True,
        {
            "pool": 96,
            "kinds": (
                AccessKind.STORE,
                AccessKind.STORE,
                AccessKind.STORE,
                AccessKind.LOAD,
                AccessKind.IFETCH,
            ),
        },
    ),
}


@pytest.mark.parametrize("scenario", sorted(STRESS_SCENARIOS))
@pytest.mark.parametrize("seed", range(8))
def test_kernel_stress_streams(scenario, seed):
    """Eviction-heavy, conflict-heavy, and store-heavy streams hammer the
    vectorized fill/evict/store kernels; the batched fast path must stay
    bit-identical to the scalar loop and to the object engine."""
    make_config, contexts, switches, kw = STRESS_SCENARIOS[scenario]
    scalar = _run_trace(
        make_config("fast", seed), seed, contexts, switches, **kw
    )
    batched = _run_trace(
        make_config("fast", seed), seed, contexts, switches, batched=True, **kw
    )
    obj_batched = _run_trace(
        make_config("object", seed),
        seed,
        contexts,
        switches,
        batched=True,
        **kw,
    )
    assert batched[0] == scalar[0], f"{scenario}: batched results diverge"
    assert batched[1] == scalar[1], f"{scenario}: batched stats diverge"
    assert batched[2] == scalar[2], f"{scenario}: batched final state diverges"
    assert obj_batched[0] == scalar[0], f"{scenario}: object batch diverges"
    assert obj_batched[1] == scalar[1], f"{scenario}: object batch stats"
    assert obj_batched[2] == scalar[2], f"{scenario}: object batch state"


#: scenarios re-fuzzed with a tracer attached (subset: traced runs take the
#: fast engine's slow routes, so the cheap scenarios cover the event paths)
TRACED_SCENARIOS = (
    "baseline_off",
    "tc_on_switches",
    "two_cores_stores",
    "random_max_sharers",
    "narrow_timestamp_rollover",
)


@pytest.mark.parametrize("scenario", TRACED_SCENARIOS)
@pytest.mark.parametrize("seed", range(5))
def test_engines_emit_identical_event_streams(scenario, seed):
    """Both engines must produce the *same trace*, event for event —
    kind, source cache, context, timestamp, and payload, in order."""
    make_config, contexts, switches = SCENARIOS[scenario]
    obj = _run_trace(
        make_config("object", seed), seed, contexts, switches, traced=True
    )
    fast = _run_trace(
        make_config("fast", seed), seed, contexts, switches, traced=True
    )
    assert obj[3] == fast[3], f"{scenario}: trace event streams diverge"
    assert obj[0] == fast[0], f"{scenario}: access/switch streams diverge"
    assert obj[1] == fast[1], f"{scenario}: stats snapshots diverge"
    assert obj[2] == fast[2], f"{scenario}: final cache state diverges"


@pytest.mark.parametrize("scenario", TRACED_SCENARIOS)
@pytest.mark.parametrize("seed", range(3))
def test_batched_traced_event_streams(scenario, seed):
    """With a tracer attached the batched path (which then takes the
    scalar reference route) must emit the identical event stream."""
    make_config, contexts, switches = SCENARIOS[scenario]
    scalar = _run_trace(
        make_config("fast", seed), seed, contexts, switches, traced=True
    )
    batched = _run_trace(
        make_config("fast", seed),
        seed,
        contexts,
        switches,
        traced=True,
        batched=True,
    )
    assert batched[3] == scalar[3], f"{scenario}: traced streams diverge"
    assert batched[0] == scalar[0], f"{scenario}: batched results diverge"
    assert batched[1] == scalar[1], f"{scenario}: batched stats diverge"
    assert batched[2] == scalar[2], f"{scenario}: batched state diverges"


def test_fast_engine_rejects_unsupported_policy():
    from repro.common.config import ConfigError

    config = _with_replacement(
        scaled_experiment_config(engine="fast"), "tree-plru"
    )
    with pytest.raises(ConfigError, match="tree-plru"):
        TimeCacheSystem(config)


# ---------------------------------------------------------------------------
# the defense zoo: every registered defense fuzzed reference-vs-fast
# ---------------------------------------------------------------------------
from repro.defenses import defense_names  # noqa: E402


def _defense_config(name, engine, seed):
    """Each defense on the same two-core machine, via its own
    ``configure`` transform — exactly how a tournament cell builds it."""
    from repro.defenses import get_defense

    return get_defense(name).configure(
        scaled_experiment_config(num_cores=2, seed=seed, engine=engine)
    )


@pytest.mark.parametrize("defense", defense_names())
@pytest.mark.parametrize("seed", range(8))
def test_defense_engines_agree(defense, seed):
    """Under every registered defense the fast engine must stay
    bit-identical to the object one — access results, switch costs
    (including the defense's own contribution), stats, final state."""
    obj = _run_trace(
        _defense_config(defense, "object", seed), seed, 2, True
    )
    fast = _run_trace(
        _defense_config(defense, "fast", seed), seed, 2, True
    )
    assert obj[0] == fast[0], f"{defense}: access/switch streams diverge"
    assert obj[1] == fast[1], f"{defense}: stats snapshots diverge"
    assert obj[2] == fast[2], f"{defense}: final cache state diverges"


@pytest.mark.parametrize("defense", defense_names())
@pytest.mark.parametrize("seed", range(4))
def test_defense_batched_matches_scalar(defense, seed):
    """``access_batch`` under each defense — whether it runs the
    in-kernel batched path (timecache, copy_on_access) or the announced
    scalar fallback (selective_flush's listeners) — must match the
    scalar loop on both engines."""
    scalar = _run_trace(_defense_config(defense, "fast", seed), seed, 2, True)
    batched = _run_trace(
        _defense_config(defense, "fast", seed), seed, 2, True, batched=True
    )
    obj_batched = _run_trace(
        _defense_config(defense, "object", seed), seed, 2, True, batched=True
    )
    assert batched[0] == scalar[0], f"{defense}: batched results diverge"
    assert batched[1] == scalar[1], f"{defense}: batched stats diverge"
    assert batched[2] == scalar[2], f"{defense}: batched final state diverges"
    assert obj_batched[0] == scalar[0], f"{defense}: object batch diverges"
    assert obj_batched[1] == scalar[1], f"{defense}: object batch stats"
    assert obj_batched[2] == scalar[2], f"{defense}: object batch state"


@pytest.mark.parametrize("defense", defense_names())
@pytest.mark.parametrize("seed", range(3))
def test_defense_traced_event_streams(defense, seed):
    """Both engines must emit the identical trace under each defense —
    including the flush events a flushing defense issues at switches."""
    obj = _run_trace(
        _defense_config(defense, "object", seed), seed, 2, True, traced=True
    )
    fast = _run_trace(
        _defense_config(defense, "fast", seed), seed, 2, True, traced=True
    )
    assert obj[3] == fast[3], f"{defense}: trace event streams diverge"
    assert obj[0] == fast[0], f"{defense}: access/switch streams diverge"
    assert obj[1] == fast[1], f"{defense}: stats snapshots diverge"
    assert obj[2] == fast[2], f"{defense}: final cache state diverges"
