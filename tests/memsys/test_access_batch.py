"""Focused ``access_batch`` tests: boundary straddling and API contract.

The differential fuzz in ``test_engine_equivalence.py`` covers random
traces; here we pin down the *deliberately awkward* cases — partial
batches that straddle flushes, capacity evictions, and context switches —
plus the argument-validation contract, on both engines.
"""

import pytest

from repro.common.config import scaled_experiment_config
from repro.common.errors import SimulationError
from repro.core import TimeCacheSystem
from repro.memsys import AccessKind

LINE = 64
LOAD = AccessKind.LOAD
STORE = AccessKind.STORE
IFETCH = AccessKind.IFETCH


def _config(engine, **tc):
    cfg = scaled_experiment_config(seed=3, engine=engine)
    if tc:
        cfg = cfg.with_timecache(**tc)
    return cfg


def _snapshot(system):
    final = {}
    for cache in system.hierarchy.all_caches():
        final[cache.name] = (
            cache.sbits.tolist(),
            cache.tc.tolist(),
            cache.valid.tolist(),
            sorted(cache.resident_line_addrs()),
        )
    return final


def _observe(results):
    return [(r.latency, r.level, r.first_access) for r in results]


def _run_scalar(system, ctx, addrs, kinds, now, advance=1):
    out = []
    cursor = now
    for addr, kind in zip(addrs, kinds):
        result = system.access(ctx, addr, kind, cursor)
        cursor += advance + result.latency
        out.append(result)
    return out, cursor


@pytest.mark.parametrize("engine", ["object", "fast"])
@pytest.mark.parametrize("tc_enabled", [False, True])
def test_eviction_straddling_batch_matches_scalar(engine, tc_enabled):
    """One big batch touching far more lines than the caches hold forces
    fills and evictions mid-batch; results and state must match the
    scalar loop exactly."""
    # 600 distinct lines, revisited, overflow every level of the scaled
    # config's hierarchy, so the vectorized path repeatedly falls back.
    addrs = [(i * 37 % 600) * LINE for i in range(2000)]
    kinds = [LOAD if i % 5 else IFETCH for i in range(2000)]
    tc = {} if tc_enabled else {"enabled": False}
    batched = TimeCacheSystem(_config(engine, **tc))
    outcome = batched.access_batch(0, addrs, kinds, now=0, advance=1)
    scalar = TimeCacheSystem(_config(engine, **tc))
    expected, cursor = _run_scalar(scalar, 0, addrs, kinds, 0)
    assert _observe(outcome.results) == _observe(expected)
    assert outcome.now == cursor
    assert _snapshot(batched) == _snapshot(scalar)
    assert batched.stats_snapshot() == scalar.stats_snapshot()


@pytest.mark.parametrize("engine", ["object", "fast"])
def test_flush_boundary_between_batches(engine):
    """Flushes between partial batches must behave exactly like flushes
    between scalar accesses (invalidation, then first-access refills)."""
    addrs = [i * LINE for i in range(48)]
    batched = TimeCacheSystem(_config(engine))
    scalar = TimeCacheSystem(_config(engine))

    first = batched.access_batch(0, addrs, LOAD, now=0, advance=1)
    ref_first, cursor = _run_scalar(scalar, 0, addrs, [LOAD] * 48, 0)
    for addr in addrs[::3]:
        batched.flush(0, addr, first.now)
        scalar.flush(0, addr, cursor)
    second = batched.access_batch(0, addrs, LOAD, now=first.now, advance=1)
    ref_second, _ = _run_scalar(scalar, 0, addrs, [LOAD] * 48, cursor)

    assert _observe(first.results) == _observe(ref_first)
    assert _observe(second.results) == _observe(ref_second)
    # The flushed lines leave L1 and miss again; the untouched lines in
    # between still hit there.
    assert all(r.level != "L1" for r in second.results[::3])
    assert all(r.level == "L1" for r in second.results[1::3])
    assert _snapshot(batched) == _snapshot(scalar)


@pytest.mark.parametrize("engine", ["object", "fast"])
def test_context_switch_between_batches(engine):
    """A context switch between partial batches: the incoming task's
    s-bits get comparator-repaired, so re-accesses slow down identically
    on both paths."""
    addrs = [i * LINE for i in range(40)]
    batched = TimeCacheSystem(_config(engine))
    scalar = TimeCacheSystem(_config(engine))

    b1 = batched.access_batch(0, addrs, LOAD, now=0, advance=1)
    _, cursor = _run_scalar(scalar, 0, addrs, [LOAD] * 40, 0)
    cost_b = batched.context_switch(0, 1, 0, b1.now)
    cost_s = scalar.context_switch(0, 1, 0, cursor)
    assert (cost_b.dma_cycles, cost_b.comparator_cycles) == (
        cost_s.dma_cycles,
        cost_s.comparator_cycles,
    )
    b2 = batched.access_batch(0, addrs, LOAD, now=b1.now, advance=1)
    ref2, _ = _run_scalar(scalar, 0, addrs, [LOAD] * 40, cursor)
    assert _observe(b2.results) == _observe(ref2)
    # New task, no saved s-bits: every re-access is a first access again.
    assert all(r.first_access for r in b2.results)
    assert _snapshot(batched) == _snapshot(scalar)


@pytest.mark.parametrize("engine", ["object", "fast"])
def test_store_heavy_and_mixed_kind_batches(engine):
    """Uniform-store batches (a permanent fallback on the fast engine)
    and interleaved load/store/ifetch batches both match the scalar
    loop."""
    addrs = [(i % 37) * LINE for i in range(150)]
    stores = TimeCacheSystem(_config(engine))
    out = stores.access_batch(0, addrs, STORE, now=5, advance=1)
    ref_sys = TimeCacheSystem(_config(engine))
    ref, cursor = _run_scalar(ref_sys, 0, addrs, [STORE] * 150, 5)
    assert _observe(out.results) == _observe(ref)
    assert out.now == cursor
    assert _snapshot(stores) == _snapshot(ref_sys)

    kinds = [(LOAD, STORE, IFETCH)[i % 3] for i in range(150)]
    mixed = TimeCacheSystem(_config(engine))
    out2 = mixed.access_batch(0, addrs, kinds, now=5, advance=1)
    ref_sys2 = TimeCacheSystem(_config(engine))
    ref2, cursor2 = _run_scalar(ref_sys2, 0, addrs, kinds, 5)
    assert _observe(out2.results) == _observe(ref2)
    assert out2.now == cursor2
    assert _snapshot(mixed) == _snapshot(ref_sys2)


@pytest.mark.parametrize("engine", ["object", "fast"])
def test_small_batch_and_empty_batch(engine):
    """Batches below the fast engine's vectorization threshold (and the
    empty batch) still go through the API and match the scalar loop."""
    system = TimeCacheSystem(_config(engine))
    empty = system.access_batch(0, [], LOAD, now=9)
    assert empty.results == [] and empty.now == 9

    addrs = [i * LINE for i in range(5)]
    out = system.access_batch(0, addrs, LOAD, now=9, advance=1)
    ref_sys = TimeCacheSystem(_config(engine))
    _run_scalar(ref_sys, 0, [], [], 0)
    ref, cursor = _run_scalar(ref_sys, 0, addrs, [LOAD] * 5, 9)
    assert _observe(out.results) == _observe(ref)
    assert out.now == cursor


@pytest.mark.parametrize("engine", ["object", "fast"])
def test_advance_zero_charges_latency_only(engine):
    system = TimeCacheSystem(_config(engine))
    addrs = [i * LINE for i in range(40)]
    out = system.access_batch(0, addrs, LOAD, now=0, advance=0)
    assert out.now == sum(r.latency for r in out.results)


@pytest.mark.parametrize("engine", ["object", "fast"])
def test_batch_argument_validation(engine):
    """Bad arguments raise SimulationError on both engines — including
    batches large enough to take the fast engine's vectorized path."""
    system = TimeCacheSystem(_config(engine))
    many = [i * LINE for i in range(64)]
    with pytest.raises(SimulationError, match="advance"):
        system.access_batch(0, many, LOAD, advance=-1)
    with pytest.raises(SimulationError):
        system.access_batch(0, many, [LOAD, STORE])  # wrong kinds length
    with pytest.raises(SimulationError, match="non-decreasing"):
        system.access_batch(0, many, LOAD, nows=list(range(63, -1, -1)))
    with pytest.raises(SimulationError):
        system.access_batch(0, many, LOAD, nows=[0, 1, 2])  # wrong length
    with pytest.raises(SimulationError, match="out of range"):
        system.access_batch(99, many, LOAD)


@pytest.mark.parametrize("engine", ["object", "fast"])
def test_nows_pins_issue_times(engine):
    """Explicit per-access issue times: results match issuing each access
    scalar at the same pinned time, and the returned now is the last
    pinned time."""
    addrs = [(i % 50) * LINE for i in range(200)]
    nows = [i * 3 for i in range(200)]
    system = TimeCacheSystem(_config(engine))
    out = system.access_batch(0, addrs, LOAD, nows=nows)
    ref_sys = TimeCacheSystem(_config(engine))
    ref = [ref_sys.access(0, a, LOAD, t) for a, t in zip(addrs, nows)]
    assert _observe(out.results) == _observe(ref)
    assert out.now == nows[-1]
    assert _snapshot(system) == _snapshot(ref_sys)


def test_fast_and_object_batches_agree_with_listeners():
    """An attached post-access listener forces the fast engine's batch
    through the scalar reference path; both engines must still agree."""
    seen = {"object": [], "fast": []}
    outs = {}
    for engine in ("object", "fast"):
        system = TimeCacheSystem(_config(engine))
        record = seen[engine].append
        system.hierarchy.post_access_listeners.append(
            lambda ctx, addr, kind, now, result, record=record: record(
                (ctx, addr, kind, now, result.latency)
            )
        )
        addrs = [(i * 11 % 90) * LINE for i in range(120)]
        outs[engine] = system.access_batch(0, addrs, LOAD, now=0, advance=1)
    assert seen["object"] == seen["fast"]
    assert _observe(outs["object"].results) == _observe(outs["fast"].results)
    assert outs["object"].now == outs["fast"].now


@pytest.mark.parametrize("engine", ["object", "fast"])
def test_expired_batch_deadline_raises_cooperatively(engine):
    """An armed (and already expired) ``batch_deadline`` interrupts a
    batched run on both engines instead of letting it finish — the seam
    the kernel watchdog arms so one huge AccessRun cannot overshoot its
    wall-clock budget (satellite of the supervision PR)."""
    import time

    from repro.common.errors import SimulationTimeout

    system = TimeCacheSystem(_config(engine))
    hierarchy = system.hierarchy
    addrs = [i * LINE for i in range(256)]
    hierarchy.batch_deadline = time.monotonic() - 1.0
    with pytest.raises(SimulationTimeout, match="batched access run"):
        system.access_batch(0, addrs, LOAD)
    with pytest.raises(SimulationTimeout):
        system.access_batch(0, addrs, LOAD, nows=list(range(256)))
    # disarming restores normal execution on the same hierarchy
    hierarchy.batch_deadline = None
    out = system.access_batch(0, addrs, LOAD)
    assert len(out.results) == len(addrs)


# ---------------------------------------------------------------------------
# Adversarial window shapes for the vectorized miss-resolution kernels
# ---------------------------------------------------------------------------


def _assert_batch_matches_scalar(engine, addrs, kinds, advance=1, tc=None):
    tc = tc or {}
    batched = TimeCacheSystem(_config(engine, **tc))
    outcome = batched.access_batch(0, addrs, kinds, now=0, advance=advance)
    scalar = TimeCacheSystem(_config(engine, **tc))
    if isinstance(kinds, AccessKind):
        kinds = [kinds] * len(addrs)
    expected, cursor = _run_scalar(scalar, 0, addrs, kinds, 0, advance)
    assert _observe(outcome.results) == _observe(expected)
    assert outcome.now == cursor
    assert _snapshot(batched) == _snapshot(scalar)
    assert batched.stats_snapshot() == scalar.stats_snapshot()
    return batched, scalar


@pytest.mark.parametrize("engine", ["object", "fast"])
@pytest.mark.parametrize("tc_enabled", [False, True])
def test_all_miss_window_matches_scalar(engine, tc_enabled):
    """A window of nothing but cold misses — no simple hit anywhere — must
    retire through the fill kernels bit-identically to the scalar loop."""
    addrs = [i * LINE for i in range(1500)]
    tc = {} if tc_enabled else {"enabled": False}
    _assert_batch_matches_scalar(engine, addrs, LOAD, tc=tc)


@pytest.mark.parametrize("engine", ["object", "fast"])
def test_same_set_conflict_storm(engine):
    """Every access maps to one cache set (stride covers any power-of-two
    set count up to 64): chained same-set victim selections inside a
    single window must pick the exact victims the in-order loop would."""
    addrs = [((i * 13 % 40) * 64) * LINE for i in range(1200)]
    kinds = [LOAD if i % 7 else IFETCH for i in range(1200)]
    _assert_batch_matches_scalar(engine, addrs, kinds)


@pytest.mark.parametrize("engine", ["object", "fast"])
def test_window_boundary_evictions(engine, monkeypatch):
    """With the adaptive window clamped tiny, evictions land on every
    window boundary; re-entry state (etag mirrors, LRU stamps, s-bits)
    must carry across boundaries exactly."""
    from repro.memsys.fastengine import FastHierarchy

    monkeypatch.setattr(FastHierarchy, "_BATCH_WINDOW_MAX", 32)
    addrs = [(i * 37 % 700) * LINE for i in range(1400)]
    _assert_batch_matches_scalar(engine, addrs, LOAD)


@pytest.mark.parametrize("engine", ["object", "fast"])
def test_stores_to_just_filled_lines(engine):
    """A store immediately following the load that filled its line (same
    window) must hit the freshly filled slot and set the dirty bit, not
    re-fill: the store path has to see in-window fills."""
    addrs, kinds = [], []
    for i in range(400):
        line = (i * 3 % 500) * LINE
        addrs += [line, line]
        kinds += [LOAD, STORE]
    _assert_batch_matches_scalar(engine, addrs, kinds)


@pytest.mark.parametrize("engine", ["object", "fast"])
def test_replan_invalidation_rescans_new_hazards(engine):
    """Regression: when a re-planned round invalidates a prior stale-miss
    conversion (``bad``), the same schedule change can make an *earlier*
    position newly stale — here the store at index 13 hits a line the
    round-two schedule evicts at index 12.  The cut must cover the
    earliest hazard of either kind, not just the invalidated conversion
    (shrunk from a milc profile stream that raised KeyError in apply)."""
    import dataclasses

    from tests.conftest import tiny_config

    lines = [
        2097237, 2097205, 2097225, 2097157, 2097165, 2097161, 2097225,
        2097233, 2097393, 2097237, 2097177, 2097253, 2097157, 2097393,
        2097177, 2097273, 2097233, 2097218, 2097199, 2097200, 2097394,
        65558, 2097165, 2097274, 2097204, 2097163, 2097260, 524295,
        2097394, 2097394, 2097219, 2097253,
    ]
    codes = "LSLSLLSSLSLLLSLLLLSLLILLLLLILSLL"
    addrs = [line * LINE for line in lines]
    kinds = [{"L": LOAD, "S": STORE, "I": IFETCH}[c] for c in codes]
    cfg = tiny_config()
    cfg = dataclasses.replace(
        cfg, hierarchy=dataclasses.replace(cfg.hierarchy, engine=engine)
    )
    batched = TimeCacheSystem(cfg)
    outcome = batched.access_batch(0, addrs, kinds, now=0, advance=1)
    scalar = TimeCacheSystem(cfg)
    expected, cursor = _run_scalar(scalar, 0, addrs, kinds, 0, 1)
    assert _observe(outcome.results) == _observe(expected)
    assert outcome.now == cursor
    assert _snapshot(batched) == _snapshot(scalar)
    assert batched.stats_snapshot() == scalar.stats_snapshot()


@pytest.mark.parametrize("engine", ["object", "fast"])
def test_repeated_line_touches_last_write_wins(engine):
    """Many touches of the same line inside one window: the replacement
    stamp scatter uses duplicate indices, and numpy's last-write-wins
    ordering must leave exactly the scalar loop's final stamp (regression
    for the duplicate-index scatter contract the LRU plan relies on)."""
    addrs = []
    for i in range(50):
        addrs += [0, LINE * 3, 0, 0, LINE * 3]
    addrs += [i * LINE for i in range(30)]  # then some churn
    batched, scalar = _assert_batch_matches_scalar(engine, addrs, LOAD)
    if engine == "fast":
        for cb, cs in zip(
            batched.hierarchy.all_caches(), scalar.hierarchy.all_caches()
        ):
            assert cb.last_flat.tolist() == cs.last_flat.tolist(), cb.name
            assert cb.filled_flat.tolist() == cs.filled_flat.tolist(), cb.name


@pytest.mark.parametrize("engine", ["object", "fast"])
def test_deadline_expiry_mid_kernel_leaves_consistent_state(
    engine, monkeypatch
):
    """A ``batch_deadline`` that expires *between kernel windows* must
    raise ``SimulationTimeout`` with the hierarchy at a state the scalar
    loop could have produced: some exact prefix of the stream applied,
    never a half-applied window."""
    import repro.memsys.hierarchy as hier_mod
    from repro.common.errors import SimulationTimeout

    addrs = [(i * 37 % 600) * LINE for i in range(1200)]
    system = TimeCacheSystem(_config(engine))

    # deterministic clock: the first deadline check passes, the second
    # one fails, so the run dies mid-batch no matter how fast the host
    # is (the object engine checks every 1024 accesses, the fast engine
    # between kernel windows)
    ticks = iter(range(10_000))
    monkeypatch.setattr(hier_mod.time, "monotonic", lambda: next(ticks))
    system.hierarchy.batch_deadline = 0.5
    with pytest.raises(SimulationTimeout, match="batched access run"):
        system.access_batch(0, addrs, LOAD, now=0, advance=1)
    monkeypatch.undo()
    state = _snapshot(system)

    # the surviving state must equal the scalar replay of some prefix
    scalar = TimeCacheSystem(_config(engine))
    prefixes = [_snapshot(scalar)]
    cursor = 0
    for addr in addrs:
        cursor += 1 + scalar.access(0, addr, LOAD, cursor).latency
        prefixes.append(_snapshot(scalar))
    assert state in prefixes


@pytest.mark.parametrize("engine", ["object", "fast"])
def test_unarmed_deadline_costs_nothing_and_changes_nothing(engine):
    """With no deadline armed (the default), batched results are
    untouched by the seam."""
    addrs = [(i * 7 % 80) * LINE for i in range(300)]
    armed = TimeCacheSystem(_config(engine))
    assert armed.hierarchy.batch_deadline is None
    plain = TimeCacheSystem(_config(engine))
    a = armed.access_batch(0, addrs, LOAD)
    b = plain.access_batch(0, addrs, LOAD)
    assert _observe(a.results) == _observe(b.results)
    assert _snapshot(armed) == _snapshot(plain)
