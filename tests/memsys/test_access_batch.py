"""Focused ``access_batch`` tests: boundary straddling and API contract.

The differential fuzz in ``test_engine_equivalence.py`` covers random
traces; here we pin down the *deliberately awkward* cases — partial
batches that straddle flushes, capacity evictions, and context switches —
plus the argument-validation contract, on both engines.
"""

import pytest

from repro.common.config import scaled_experiment_config
from repro.common.errors import SimulationError
from repro.core import TimeCacheSystem
from repro.memsys import AccessKind

LINE = 64
LOAD = AccessKind.LOAD
STORE = AccessKind.STORE
IFETCH = AccessKind.IFETCH


def _config(engine, **tc):
    cfg = scaled_experiment_config(seed=3, engine=engine)
    if tc:
        cfg = cfg.with_timecache(**tc)
    return cfg


def _snapshot(system):
    final = {}
    for cache in system.hierarchy.all_caches():
        final[cache.name] = (
            cache.sbits.tolist(),
            cache.tc.tolist(),
            cache.valid.tolist(),
            sorted(cache.resident_line_addrs()),
        )
    return final


def _observe(results):
    return [(r.latency, r.level, r.first_access) for r in results]


def _run_scalar(system, ctx, addrs, kinds, now, advance=1):
    out = []
    cursor = now
    for addr, kind in zip(addrs, kinds):
        result = system.access(ctx, addr, kind, cursor)
        cursor += advance + result.latency
        out.append(result)
    return out, cursor


@pytest.mark.parametrize("engine", ["object", "fast"])
@pytest.mark.parametrize("tc_enabled", [False, True])
def test_eviction_straddling_batch_matches_scalar(engine, tc_enabled):
    """One big batch touching far more lines than the caches hold forces
    fills and evictions mid-batch; results and state must match the
    scalar loop exactly."""
    # 600 distinct lines, revisited, overflow every level of the scaled
    # config's hierarchy, so the vectorized path repeatedly falls back.
    addrs = [(i * 37 % 600) * LINE for i in range(2000)]
    kinds = [LOAD if i % 5 else IFETCH for i in range(2000)]
    tc = {} if tc_enabled else {"enabled": False}
    batched = TimeCacheSystem(_config(engine, **tc))
    outcome = batched.access_batch(0, addrs, kinds, now=0, advance=1)
    scalar = TimeCacheSystem(_config(engine, **tc))
    expected, cursor = _run_scalar(scalar, 0, addrs, kinds, 0)
    assert _observe(outcome.results) == _observe(expected)
    assert outcome.now == cursor
    assert _snapshot(batched) == _snapshot(scalar)
    assert batched.stats_snapshot() == scalar.stats_snapshot()


@pytest.mark.parametrize("engine", ["object", "fast"])
def test_flush_boundary_between_batches(engine):
    """Flushes between partial batches must behave exactly like flushes
    between scalar accesses (invalidation, then first-access refills)."""
    addrs = [i * LINE for i in range(48)]
    batched = TimeCacheSystem(_config(engine))
    scalar = TimeCacheSystem(_config(engine))

    first = batched.access_batch(0, addrs, LOAD, now=0, advance=1)
    ref_first, cursor = _run_scalar(scalar, 0, addrs, [LOAD] * 48, 0)
    for addr in addrs[::3]:
        batched.flush(0, addr, first.now)
        scalar.flush(0, addr, cursor)
    second = batched.access_batch(0, addrs, LOAD, now=first.now, advance=1)
    ref_second, _ = _run_scalar(scalar, 0, addrs, [LOAD] * 48, cursor)

    assert _observe(first.results) == _observe(ref_first)
    assert _observe(second.results) == _observe(ref_second)
    # The flushed lines leave L1 and miss again; the untouched lines in
    # between still hit there.
    assert all(r.level != "L1" for r in second.results[::3])
    assert all(r.level == "L1" for r in second.results[1::3])
    assert _snapshot(batched) == _snapshot(scalar)


@pytest.mark.parametrize("engine", ["object", "fast"])
def test_context_switch_between_batches(engine):
    """A context switch between partial batches: the incoming task's
    s-bits get comparator-repaired, so re-accesses slow down identically
    on both paths."""
    addrs = [i * LINE for i in range(40)]
    batched = TimeCacheSystem(_config(engine))
    scalar = TimeCacheSystem(_config(engine))

    b1 = batched.access_batch(0, addrs, LOAD, now=0, advance=1)
    _, cursor = _run_scalar(scalar, 0, addrs, [LOAD] * 40, 0)
    cost_b = batched.context_switch(0, 1, 0, b1.now)
    cost_s = scalar.context_switch(0, 1, 0, cursor)
    assert (cost_b.dma_cycles, cost_b.comparator_cycles) == (
        cost_s.dma_cycles,
        cost_s.comparator_cycles,
    )
    b2 = batched.access_batch(0, addrs, LOAD, now=b1.now, advance=1)
    ref2, _ = _run_scalar(scalar, 0, addrs, [LOAD] * 40, cursor)
    assert _observe(b2.results) == _observe(ref2)
    # New task, no saved s-bits: every re-access is a first access again.
    assert all(r.first_access for r in b2.results)
    assert _snapshot(batched) == _snapshot(scalar)


@pytest.mark.parametrize("engine", ["object", "fast"])
def test_store_heavy_and_mixed_kind_batches(engine):
    """Uniform-store batches (a permanent fallback on the fast engine)
    and interleaved load/store/ifetch batches both match the scalar
    loop."""
    addrs = [(i % 37) * LINE for i in range(150)]
    stores = TimeCacheSystem(_config(engine))
    out = stores.access_batch(0, addrs, STORE, now=5, advance=1)
    ref_sys = TimeCacheSystem(_config(engine))
    ref, cursor = _run_scalar(ref_sys, 0, addrs, [STORE] * 150, 5)
    assert _observe(out.results) == _observe(ref)
    assert out.now == cursor
    assert _snapshot(stores) == _snapshot(ref_sys)

    kinds = [(LOAD, STORE, IFETCH)[i % 3] for i in range(150)]
    mixed = TimeCacheSystem(_config(engine))
    out2 = mixed.access_batch(0, addrs, kinds, now=5, advance=1)
    ref_sys2 = TimeCacheSystem(_config(engine))
    ref2, cursor2 = _run_scalar(ref_sys2, 0, addrs, kinds, 5)
    assert _observe(out2.results) == _observe(ref2)
    assert out2.now == cursor2
    assert _snapshot(mixed) == _snapshot(ref_sys2)


@pytest.mark.parametrize("engine", ["object", "fast"])
def test_small_batch_and_empty_batch(engine):
    """Batches below the fast engine's vectorization threshold (and the
    empty batch) still go through the API and match the scalar loop."""
    system = TimeCacheSystem(_config(engine))
    empty = system.access_batch(0, [], LOAD, now=9)
    assert empty.results == [] and empty.now == 9

    addrs = [i * LINE for i in range(5)]
    out = system.access_batch(0, addrs, LOAD, now=9, advance=1)
    ref_sys = TimeCacheSystem(_config(engine))
    _run_scalar(ref_sys, 0, [], [], 0)
    ref, cursor = _run_scalar(ref_sys, 0, addrs, [LOAD] * 5, 9)
    assert _observe(out.results) == _observe(ref)
    assert out.now == cursor


@pytest.mark.parametrize("engine", ["object", "fast"])
def test_advance_zero_charges_latency_only(engine):
    system = TimeCacheSystem(_config(engine))
    addrs = [i * LINE for i in range(40)]
    out = system.access_batch(0, addrs, LOAD, now=0, advance=0)
    assert out.now == sum(r.latency for r in out.results)


@pytest.mark.parametrize("engine", ["object", "fast"])
def test_batch_argument_validation(engine):
    """Bad arguments raise SimulationError on both engines — including
    batches large enough to take the fast engine's vectorized path."""
    system = TimeCacheSystem(_config(engine))
    many = [i * LINE for i in range(64)]
    with pytest.raises(SimulationError, match="advance"):
        system.access_batch(0, many, LOAD, advance=-1)
    with pytest.raises(SimulationError):
        system.access_batch(0, many, [LOAD, STORE])  # wrong kinds length
    with pytest.raises(SimulationError, match="non-decreasing"):
        system.access_batch(0, many, LOAD, nows=list(range(63, -1, -1)))
    with pytest.raises(SimulationError):
        system.access_batch(0, many, LOAD, nows=[0, 1, 2])  # wrong length
    with pytest.raises(SimulationError, match="out of range"):
        system.access_batch(99, many, LOAD)


@pytest.mark.parametrize("engine", ["object", "fast"])
def test_nows_pins_issue_times(engine):
    """Explicit per-access issue times: results match issuing each access
    scalar at the same pinned time, and the returned now is the last
    pinned time."""
    addrs = [(i % 50) * LINE for i in range(200)]
    nows = [i * 3 for i in range(200)]
    system = TimeCacheSystem(_config(engine))
    out = system.access_batch(0, addrs, LOAD, nows=nows)
    ref_sys = TimeCacheSystem(_config(engine))
    ref = [ref_sys.access(0, a, LOAD, t) for a, t in zip(addrs, nows)]
    assert _observe(out.results) == _observe(ref)
    assert out.now == nows[-1]
    assert _snapshot(system) == _snapshot(ref_sys)


def test_fast_and_object_batches_agree_with_listeners():
    """An attached post-access listener forces the fast engine's batch
    through the scalar reference path; both engines must still agree."""
    seen = {"object": [], "fast": []}
    outs = {}
    for engine in ("object", "fast"):
        system = TimeCacheSystem(_config(engine))
        record = seen[engine].append
        system.hierarchy.post_access_listeners.append(
            lambda ctx, addr, kind, now, result, record=record: record(
                (ctx, addr, kind, now, result.latency)
            )
        )
        addrs = [(i * 11 % 90) * LINE for i in range(120)]
        outs[engine] = system.access_batch(0, addrs, LOAD, now=0, advance=1)
    assert seen["object"] == seen["fast"]
    assert _observe(outs["object"].results) == _observe(outs["fast"].results)
    assert outs["object"].now == outs["fast"].now


@pytest.mark.parametrize("engine", ["object", "fast"])
def test_expired_batch_deadline_raises_cooperatively(engine):
    """An armed (and already expired) ``batch_deadline`` interrupts a
    batched run on both engines instead of letting it finish — the seam
    the kernel watchdog arms so one huge AccessRun cannot overshoot its
    wall-clock budget (satellite of the supervision PR)."""
    import time

    from repro.common.errors import SimulationTimeout

    system = TimeCacheSystem(_config(engine))
    hierarchy = system.hierarchy
    addrs = [i * LINE for i in range(256)]
    hierarchy.batch_deadline = time.monotonic() - 1.0
    with pytest.raises(SimulationTimeout, match="batched access run"):
        system.access_batch(0, addrs, LOAD)
    with pytest.raises(SimulationTimeout):
        system.access_batch(0, addrs, LOAD, nows=list(range(256)))
    # disarming restores normal execution on the same hierarchy
    hierarchy.batch_deadline = None
    out = system.access_batch(0, addrs, LOAD)
    assert len(out.results) == len(addrs)


@pytest.mark.parametrize("engine", ["object", "fast"])
def test_unarmed_deadline_costs_nothing_and_changes_nothing(engine):
    """With no deadline armed (the default), batched results are
    untouched by the seam."""
    addrs = [(i * 7 % 80) * LINE for i in range(300)]
    armed = TimeCacheSystem(_config(engine))
    assert armed.hierarchy.batch_deadline is None
    plain = TimeCacheSystem(_config(engine))
    a = armed.access_batch(0, addrs, LOAD)
    b = plain.access_batch(0, addrs, LOAD)
    assert _observe(a.results) == _observe(b.results)
    assert _snapshot(armed) == _snapshot(plain)
