"""Tests for the TimeCache access protocol inside the hierarchy.

These exercise the Section IV/V rules directly against the hierarchy:
first-access misses, probe-down semantics, s-bit lifecycle on fills,
evictions, invalidations, and the hardened first-access options.
"""

import pytest

from repro.core.timecache import TimeCacheSystem

from tests.conftest import tiny_config


@pytest.fixture
def system(two_core_config):
    return TimeCacheSystem(two_core_config)


def lat(system):
    return system.config.hierarchy.latency


class TestFirstAccess:
    def test_own_fill_then_hit(self, system):
        system.load(0, 0x1000, now=0)
        r = system.load(0, 0x1000, now=300)
        assert r.level == "L1" and not r.first_access

    def test_cross_context_first_access_pays_dram(self, system):
        system.load(0, 0x1000, now=0)
        r = system.load(1, 0x1000, now=300)
        assert r.first_access
        assert r.latency >= lat(system).dram

    def test_second_access_after_first_access_is_fast(self, system):
        system.load(0, 0x1000, now=0)
        system.load(1, 0x1000, now=300)
        r = system.load(1, 0x1000, now=900)
        assert not r.first_access
        assert r.level == "L1"

    def test_first_access_does_not_move_data(self, system):
        """The response data is discarded: the line stays where it was
        and its Tc is unchanged (the cache already had the newest copy)."""
        system.load(0, 0x1000, now=0)
        hier = system.hierarchy
        line = hier.line_addr(0x1000)
        s, w = hier.llc.lookup(line)
        tc_before = hier.llc.tc[s, w]
        system.load(1, 0x1000, now=500)
        assert hier.llc.tc[s, w] == tc_before
        assert hier.llc.lookup(line) == (s, w)

    def test_first_access_counted_at_each_level(self, system):
        system.load(0, 0x1000, now=0)
        system.load(1, 0x1000, now=300)
        # ctx1 is on core 1: its L1 missed (plain miss) and LLC saw the
        # first access.
        assert system.hierarchy.llc.stats.get("first_access_misses") == 1

    def test_ifetch_first_access_also_delayed(self, system):
        system.ifetch(0, 0x1000, now=0)
        r = system.ifetch(1, 0x1000, now=300)
        assert r.first_access
        assert r.latency >= lat(system).dram

    def test_store_first_access_also_delayed(self, system):
        system.load(0, 0x1000, now=0)
        r = system.store(1, 0x1000, now=300)
        assert r.first_access


class TestSameCoreTimeSlicing:
    """Single core, two hardware-context-less processes: the s-bit is per
    hardware context, so cross-process isolation on one core comes from
    the context-switch save/restore — tested in core/test_context.py.
    Here: same-context accesses never self-delay."""

    def test_single_context_never_first_access(self):
        system = TimeCacheSystem(tiny_config(num_cores=1))
        for i in range(50):
            system.load(0, i * 64, now=i * 300)
        for i in range(50):
            r = system.load(0, i * 64, now=20000 + i * 10)
            assert not r.first_access


class TestProbeDown:
    def test_probe_stops_at_llc_when_sbit_set_there(self, two_core_config):
        """L1 first access with a set LLC s-bit is served at LLC latency:
        the paper's rationale for sending the request down (Section V-A)."""
        system = TimeCacheSystem(tiny_config(num_cores=1, quantum=10**9))
        hier = system.hierarchy
        # ctx0 loads a line; then a context switch restores a *different*
        # task whose L1 s-bits are clear but (by construction) LLC s-bit
        # was re-set via first access.
        system.load(0, 0x1000, now=0)
        # Simulate: clear only the L1D s-bit for ctx0, keep LLC s-bit.
        line = hier.line_addr(0x1000)
        s, w = hier.l1d[0].lookup(line)
        hier.l1d[0].sbits[s, w] = 0
        r = system.load(0, 0x1000, now=600)
        assert r.first_access
        assert r.level == "LLC"
        l = lat(system)
        assert r.latency == l.l1_hit + l.l2_hit

    def test_probe_reaches_dram_when_llc_sbit_clear(self, system):
        system.load(0, 0x1000, now=0)
        r = system.load(1, 0x1000, now=300)  # LLC s-bit clear for ctx1
        assert r.level == "DRAM"


class TestSbitLifecycle:
    def test_eviction_clears_all_sbits(self, system):
        hier = system.hierarchy
        llc = hier.llc
        stride = llc.num_sets * 64
        base = 0x40000
        system.load(0, base, now=0)
        system.load(1, base, now=300)  # both contexts paid for this line
        for i in range(1, llc.ways + 1):
            system.load(0, base + i * stride, now=600 + i * 300)
        assert not llc.resident(hier.line_addr(base))
        # When the line returns, both contexts start over.
        system.load(0, base, now=10_000)
        r = system.load(1, base, now=10_500)
        assert r.first_access

    def test_flush_clears_sbits_for_everyone(self, system):
        system.load(0, 0x1000, now=0)
        system.load(1, 0x1000, now=300)
        system.flush(0, 0x1000, now=900)
        r0 = system.load(0, 0x1000, now=1200)
        assert r0.level == "DRAM"  # plain miss, refill by ctx0
        r1 = system.load(1, 0x1000, now=1500)
        assert r1.first_access  # ctx1 must pay again

    def test_store_invalidation_clears_remote_sbits(self, system):
        system.load(0, 0x1000, now=0)
        system.load(1, 0x1000, now=300)  # ctx1 paid its first access
        system.store(0, 0x1000, now=900)  # invalidates core 1's copy
        r = system.load(1, 0x1000, now=1200)
        # ctx1's L1 line is gone; at the LLC its s-bit survived (the LLC
        # line was not refilled), so this is a plain LLC hit.
        assert r.level in ("LLC", "remote")


class TestHardenedModes:
    def test_dram_latency_on_first_access_forces_memory_wait(self):
        cfg = tiny_config(num_cores=1, dram_latency_on_first_access=True)
        system = TimeCacheSystem(cfg)
        hier = system.hierarchy
        system.load(0, 0x1000, now=0)
        line = hier.line_addr(0x1000)
        s, w = hier.l1d[0].lookup(line)
        hier.l1d[0].sbits[s, w] = 0  # stale L1 s-bit, LLC s-bit still set
        r = system.load(0, 0x1000, now=600)
        assert r.latency >= lat(system).dram

    def test_constant_time_flush(self):
        cfg = tiny_config(num_cores=1, constant_time_flush=True)
        system = TimeCacheSystem(cfg)
        system.load(0, 0x2000, now=0)
        hot = system.flush(0, 0x2000, now=300)
        cold = system.flush(0, 0x2000, now=600)
        assert hot.latency == cold.latency


class TestBaselineEquivalence:
    def test_disabled_timecache_never_reports_first_access(self, baseline_config):
        system = TimeCacheSystem(baseline_config)
        system.load(0, 0x1000, now=0)
        r = system.load(0, 0x1000, now=300)
        assert not r.first_access
        assert system.hierarchy.total_first_access_misses() == 0
