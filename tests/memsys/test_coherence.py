"""Unit tests for the LLC directory."""

from repro.memsys.coherence import Directory


def test_add_remove_sharer():
    d = Directory()
    d.add_sharer(0x10, "L1D0")
    d.add_sharer(0x10, "L1D1")
    assert d.sharers(0x10) == {"L1D0", "L1D1"}
    d.remove_sharer(0x10, "L1D0")
    assert d.sharers(0x10) == {"L1D1"}


def test_remove_last_sharer_forgets_line():
    d = Directory()
    d.add_sharer(0x10, "L1D0")
    d.remove_sharer(0x10, "L1D0")
    assert d.sharers(0x10) == set()
    assert list(d.tracked_lines()) == []


def test_owner_lifecycle():
    d = Directory()
    d.set_owner(0x10, "L1D0")
    assert d.owner(0x10) == "L1D0"
    assert "L1D0" in d.sharers(0x10)  # owning implies sharing
    d.clear_owner(0x10)
    assert d.owner(0x10) == ""


def test_removing_owner_sharer_clears_ownership():
    d = Directory()
    d.set_owner(0x10, "L1D0")
    d.remove_sharer(0x10, "L1D0")
    assert d.owner(0x10) == ""


def test_others():
    d = Directory()
    d.add_sharer(0x10, "L1D0")
    d.add_sharer(0x10, "L1D1")
    assert d.others(0x10, "L1D0") == ["L1D1"]
    assert d.others(0x99, "L1D0") == []


def test_drop_line_returns_sharers():
    d = Directory()
    d.set_owner(0x10, "L1D0")
    d.add_sharer(0x10, "L1D1")
    dropped = d.drop_line(0x10)
    assert dropped == {"L1D0", "L1D1"}
    assert d.owner(0x10) == ""
    assert d.sharers(0x10) == set()
