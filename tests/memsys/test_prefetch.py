"""Next-line prefetcher tests, including the TimeCache interaction.

The security-relevant invariant: a prefetch runs on behalf of the
demand-missing context and sets only *its* s-bit, so prefetching never
grants another context an unpaid hit.
"""

import dataclasses

from repro.core.timecache import TimeCacheSystem

from tests.conftest import tiny_config


def prefetch_config(enabled=True, cores=1):
    cfg = tiny_config(num_cores=cores, enabled=enabled)
    hierarchy = dataclasses.replace(cfg.hierarchy, next_line_prefetch=True)
    return dataclasses.replace(cfg, hierarchy=hierarchy)


def test_prefetch_brings_in_next_line():
    system = TimeCacheSystem(prefetch_config())
    system.load(0, 0x1000, now=0)  # demand miss: prefetches 0x1040
    r = system.load(0, 0x1040, now=300)
    assert r.level == "L1"  # already there
    assert system.hierarchy.l1d[0].stats.get("prefetches") == 1


def test_prefetch_fills_llc_too():
    system = TimeCacheSystem(prefetch_config())
    system.load(0, 0x1000, now=0)
    hier = system.hierarchy
    assert hier.llc.resident(hier.line_addr(0x1040))
    hier.check_inclusion()


def test_no_prefetch_when_disabled():
    system = TimeCacheSystem(tiny_config())
    system.load(0, 0x1000, now=0)
    r = system.load(0, 0x1040, now=300)
    assert r.level == "DRAM"


def test_prefetch_sets_only_requester_sbit():
    system = TimeCacheSystem(prefetch_config(cores=2))
    system.load(0, 0x1000, now=0)  # ctx0 prefetches 0x1040
    # ctx1's access to the prefetched line is still a first access:
    r = system.load(1, 0x1040, now=300)
    assert r.first_access
    assert r.latency >= system.config.hierarchy.latency.dram


def test_prefetched_line_is_free_for_the_prefetching_context():
    system = TimeCacheSystem(prefetch_config())
    system.load(0, 0x1000, now=0)
    r = system.load(0, 0x1040, now=300)
    assert not r.first_access


def test_prefetch_does_not_leak_through_reuse():
    """Flush+reload against a line the victim only *prefetched*: the
    attacker still observes no hit under TimeCache."""
    system = TimeCacheSystem(prefetch_config(cores=2))
    system.flush(0, 0x1040, now=0)
    system.load(1, 0x1000, now=100)  # victim's demand miss prefetches 0x1040
    r = system.load(0, 0x1040, now=500)  # attacker reload
    assert r.latency >= system.config.hierarchy.latency.dram


def test_prefetch_counts_are_tracked():
    system = TimeCacheSystem(prefetch_config())
    for i in range(4):
        system.load(0, 0x4000 + i * 128, now=i * 300)  # every other line
    assert system.hierarchy.l1d[0].stats.get("prefetches") >= 4
