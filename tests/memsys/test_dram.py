"""Unit tests for the DRAM model."""

import pytest

from repro.memsys.dram import Dram


def test_fixed_latency():
    dram = Dram(latency=200)
    assert dram.access(0) == 200
    assert dram.access(12345) == 200


def test_counts_accesses_and_writebacks():
    dram = Dram(latency=100)
    dram.access(1)
    dram.writeback(2)
    assert dram.stats.get("accesses") == 2
    assert dram.stats.get("writebacks") == 1


def test_row_hit_discount():
    dram = Dram(latency=200, row_bytes=4096, row_hit_discount=50, line_bytes=64)
    first = dram.access(0)
    second = dram.access(1)  # same 4KB row (64 lines per row)
    other = dram.access(100)  # different row
    assert first == 200
    assert second == 150
    assert other == 200
    assert dram.stats.get("row_hits") == 1


def test_rejects_bad_latency():
    with pytest.raises(ValueError):
        Dram(latency=0)


def test_rejects_bad_discount():
    with pytest.raises(ValueError):
        Dram(latency=100, row_hit_discount=100)
