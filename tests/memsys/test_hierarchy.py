"""Unit tests for the hierarchy's baseline (non-TimeCache) behavior."""

import pytest

from repro.common.errors import SimulationError
from repro.core.timecache import TimeCacheSystem

from tests.conftest import tiny_config


@pytest.fixture
def system(baseline_config):
    return TimeCacheSystem(baseline_config)


def test_cold_miss_goes_to_dram(system):
    r = system.load(0, 0x1000, now=0)
    assert r.level == "DRAM"
    lat = system.config.hierarchy.latency
    assert r.latency == lat.l1_hit + lat.l2_hit + lat.dram


def test_l1_hit_after_fill(system):
    system.load(0, 0x1000, now=0)
    r = system.load(0, 0x1000, now=300)
    assert r.level == "L1"
    assert r.latency == system.config.hierarchy.latency.l1_hit


def test_same_line_different_offset_hits(system):
    system.load(0, 0x1000, now=0)
    r = system.load(0, 0x103F, now=300)  # same 64-byte line
    assert r.level == "L1"


def test_llc_hit_after_l1_eviction(system):
    # Fill enough same-L1-set lines to evict 0x1000 from L1 but keep it
    # in the larger LLC.  L1: 4 sets, so stride 4*64=256 bytes.
    system.load(0, 0x1000, now=0)
    for i in range(1, 5):
        system.load(0, 0x1000 + i * 256, now=i * 300)
    r = system.load(0, 0x1000, now=3000)
    assert r.level == "LLC"
    lat = system.config.hierarchy.latency
    assert r.latency == lat.l1_hit + lat.l2_hit


def test_ifetch_uses_l1i_not_l1d(system):
    system.ifetch(0, 0x1000, now=0)
    hier = system.hierarchy
    assert hier.l1i[0].resident(hier.line_addr(0x1000))
    assert not hier.l1d[0].resident(hier.line_addr(0x1000))


def test_store_marks_dirty_and_hits(system):
    system.store(0, 0x1000, now=0)
    hier = system.hierarchy
    pos = hier.l1d[0].lookup(hier.line_addr(0x1000))
    line = hier.l1d[0].line_at(*pos)
    assert line.dirty
    r = system.store(0, 0x1000, now=300)
    assert r.level == "L1"


def test_inclusion_maintained_under_pressure(system):
    # Touch far more lines than the L1 holds; inclusion must never break.
    for i in range(200):
        system.load(0, i * 64, now=i * 250)
    system.hierarchy.check_inclusion()


def test_llc_eviction_back_invalidates_l1(system):
    hier = system.hierarchy
    llc = hier.llc
    # Fill one LLC set completely plus one: lines with same LLC set index.
    stride = llc.num_sets * 64
    base = 0x40000
    for i in range(llc.ways + 1):
        system.load(0, base + i * stride, now=i * 300)
    hier.check_inclusion()
    # The victim line must be gone from L1 as well.
    victim_line = hier.line_addr(base)
    assert not llc.resident(victim_line)
    assert not hier.l1d[0].resident(victim_line)


def test_flush_removes_from_all_levels(system):
    system.load(0, 0x1000, now=0)
    r = system.flush(0, 0x1000, now=300)
    assert r.latency == system.config.hierarchy.latency.flush_cached
    hier = system.hierarchy
    line = hier.line_addr(0x1000)
    assert not hier.l1d[0].resident(line)
    assert not hier.llc.resident(line)
    r2 = system.load(0, 0x1000, now=600)
    assert r2.level == "DRAM"


def test_flush_uncached_is_faster(system):
    cached = system.load(0, 0x2000, now=0)
    assert cached.level == "DRAM"
    hot = system.flush(0, 0x2000, now=300)
    cold = system.flush(0, 0x2000, now=600)
    assert cold.latency < hot.latency


def test_bad_context_rejected(system):
    with pytest.raises(SimulationError):
        system.load(9, 0x1000, now=0)


class TestMultiCore:
    def test_cross_core_llc_hit(self, two_core_config):
        system = TimeCacheSystem(two_core_config.baseline())
        system.load(0, 0x1000, now=0)
        r = system.load(1, 0x1000, now=300)
        assert r.level == "LLC"

    def test_store_invalidates_remote_l1(self, two_core_config):
        system = TimeCacheSystem(two_core_config.baseline())
        system.load(0, 0x1000, now=0)
        system.load(1, 0x1000, now=300)
        hier = system.hierarchy
        line = hier.line_addr(0x1000)
        assert hier.l1d[0].resident(line) and hier.l1d[1].resident(line)
        system.store(0, 0x1000, now=600)
        assert hier.l1d[0].resident(line)
        assert not hier.l1d[1].resident(line)

    def test_remote_dirty_line_transfer_latency(self, two_core_config):
        system = TimeCacheSystem(two_core_config.baseline())
        lat = two_core_config.hierarchy.latency
        system.store(0, 0x1000, now=0)  # modified in core 0's L1D
        r = system.load(1, 0x1000, now=300)
        assert r.level == "remote"
        assert r.latency == lat.l1_hit + lat.l2_hit + lat.remote_transfer

    def test_remote_transfer_downgrades_owner(self, two_core_config):
        system = TimeCacheSystem(two_core_config.baseline())
        system.store(0, 0x1000, now=0)
        system.load(1, 0x1000, now=300)
        hier = system.hierarchy
        pos = hier.l1d[0].lookup(hier.line_addr(0x1000))
        line = hier.l1d[0].line_at(*pos)
        assert not line.dirty
        # LLC copy absorbed the dirty data
        llc_pos = hier.llc.lookup(hier.line_addr(0x1000))
        assert hier.llc.line_at(*llc_pos).dirty


def test_dirty_llc_eviction_writes_back():
    system = TimeCacheSystem(tiny_config(enabled=False))
    hier = system.hierarchy
    llc = hier.llc
    stride = llc.num_sets * 64
    base = 0x40000
    system.store(0, base, now=0)
    for i in range(1, llc.ways + 1):
        system.load(0, base + i * stride, now=i * 300)
    assert hier.dram.stats.get("writebacks") >= 1
