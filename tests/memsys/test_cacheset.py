"""Unit tests for CacheSet."""

import pytest

from repro.common.errors import SimulationError
from repro.memsys.cacheset import CacheSet
from repro.memsys.line import LineState
from repro.memsys.replacement import LruPolicy


@pytest.fixture
def cset():
    return CacheSet(index=0, ways=4, policy=LruPolicy(4))


def test_lookup_miss_returns_none(cset):
    assert cset.lookup(0x42) is None


def test_install_and_lookup(cset):
    cset.install(0, tag=0x42, now=1, state=LineState.SHARED)
    assert cset.lookup(0x42) == 0


def test_install_occupied_way_rejected(cset):
    cset.install(0, tag=1, now=1, state=LineState.SHARED)
    with pytest.raises(SimulationError):
        cset.install(0, tag=2, now=2, state=LineState.SHARED)


def test_duplicate_tag_rejected(cset):
    cset.install(0, tag=1, now=1, state=LineState.SHARED)
    with pytest.raises(SimulationError):
        cset.install(1, tag=1, now=2, state=LineState.SHARED)


def test_free_way_then_victim(cset):
    for way in range(4):
        assert cset.free_way() == way
        cset.install(way, tag=way, now=way, state=LineState.SHARED)
    assert cset.free_way() is None
    # LRU victim is tag 0 (oldest touch)
    assert cset.choose_victim(now=10) == 0


def test_choose_victim_prefers_free_way(cset):
    cset.install(0, tag=9, now=1, state=LineState.SHARED)
    assert cset.choose_victim(now=2) == 1


def test_remove(cset):
    cset.install(2, tag=7, now=1, state=LineState.SHARED)
    line = cset.remove(2)
    assert line.tag == 7
    assert cset.lookup(7) is None
    assert cset.occupancy == 0


def test_remove_empty_way_rejected(cset):
    with pytest.raises(SimulationError):
        cset.remove(0)


def test_touch_updates_lru_order(cset):
    for way in range(4):
        cset.install(way, tag=way, now=way, state=LineState.SHARED)
    cset.touch(0, now=100)  # tag 0 becomes MRU; victim should be tag 1
    assert cset.choose_victim(now=200) == 1


def test_touch_empty_way_rejected(cset):
    with pytest.raises(SimulationError):
        cset.touch(3, now=5)


def test_resident_tags(cset):
    cset.install(0, tag=10, now=0, state=LineState.SHARED)
    cset.install(1, tag=20, now=0, state=LineState.SHARED)
    assert sorted(cset.resident_tags()) == [10, 20]
