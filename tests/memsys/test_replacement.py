"""Unit and property tests for replacement policies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.rng import DeterministicRng
from repro.memsys.line import CacheLine, LineState
from repro.memsys.replacement import (
    FifoPolicy,
    LruPolicy,
    RandomPolicy,
    SrripPolicy,
    TreePlruPolicy,
    make_replacement_policy,
)


def _lines(ways, touch_times):
    lines = []
    for way in range(ways):
        line = CacheLine(tag=way, now=0, state=LineState.SHARED)
        line.last_used = touch_times[way]
        line.filled_at = touch_times[way]
        lines.append(line)
    return lines


class TestLru:
    def test_evicts_least_recent(self):
        policy = LruPolicy(4)
        lines = _lines(4, [10, 3, 7, 5])
        assert policy.victim(lines, now=20) == 1

    def test_raises_on_free_way(self):
        from repro.common.errors import SimulationError

        policy = LruPolicy(2)
        with pytest.raises(SimulationError):
            policy.victim([None, None], now=0)

    @given(st.lists(st.integers(0, 1000), min_size=2, max_size=8, unique=True))
    def test_most_recent_never_victim(self, touches):
        policy = LruPolicy(len(touches))
        lines = _lines(len(touches), touches)
        victim = policy.victim(lines, now=max(touches) + 1)
        assert touches[victim] != max(touches)


class TestFifo:
    def test_evicts_oldest_fill_regardless_of_touch(self):
        policy = FifoPolicy(3)
        lines = _lines(3, [5, 1, 9])
        lines[1].last_used = 100  # re-touched, FIFO must ignore
        assert policy.victim(lines, now=200) == 1


class TestRandom:
    def test_deterministic_with_seed(self):
        lines = _lines(4, [0, 1, 2, 3])
        a = RandomPolicy(4, DeterministicRng(9))
        b = RandomPolicy(4, DeterministicRng(9))
        assert [a.victim(lines, 0) for _ in range(10)] == [
            b.victim(lines, 0) for _ in range(10)
        ]

    def test_victims_in_range(self):
        lines = _lines(4, [0, 1, 2, 3])
        policy = RandomPolicy(4, DeterministicRng(1))
        assert all(0 <= policy.victim(lines, 0) < 4 for _ in range(50))


class TestTreePlru:
    def test_just_touched_way_not_victim(self):
        policy = TreePlruPolicy(4)
        lines = _lines(4, [0, 0, 0, 0])
        for way in range(4):
            policy.on_access(way, now=way)
            assert policy.victim(lines, now=10) != way

    @settings(max_examples=50)
    @given(st.lists(st.integers(0, 7), min_size=1, max_size=30))
    def test_victim_always_valid_way(self, accesses):
        policy = TreePlruPolicy(8)
        lines = _lines(8, list(range(8)))
        for way in accesses:
            policy.on_access(way, now=0)
        assert 0 <= policy.victim(lines, now=0) < 8

    def test_non_power_of_two_ways(self):
        policy = TreePlruPolicy(6)
        lines = _lines(6, list(range(6)))
        for way in [0, 5, 3]:
            policy.on_access(way, now=0)
        assert 0 <= policy.victim(lines, now=0) < 6


class TestSrrip:
    def test_fill_then_hit_promotes(self):
        policy = SrripPolicy(4)
        lines = _lines(4, [0, 1, 2, 3])
        for way in range(4):
            policy.on_fill(way, now=way)
        policy.on_access(0, now=10)  # way 0 promoted to RRPV 0
        victim = policy.victim(lines, now=20)
        assert victim != 0

    def test_untouched_fill_evicted_before_hit_line(self):
        policy = SrripPolicy(2)
        lines = _lines(2, [0, 1])
        policy.on_fill(0, now=0)
        policy.on_fill(1, now=1)
        policy.on_access(0, now=2)
        assert policy.victim(lines, now=3) == 1

    def test_invalidate_makes_way_immediate_victim(self):
        policy = SrripPolicy(4)
        lines = _lines(4, [0, 1, 2, 3])
        for way in range(4):
            policy.on_fill(way, now=way)
            policy.on_access(way, now=way + 10)
        policy.on_invalidate(2)
        assert policy.victim(lines, now=20) == 2

    def test_aging_terminates(self):
        policy = SrripPolicy(3)
        lines = _lines(3, [0, 1, 2])
        for way in range(3):
            policy.on_fill(way, now=way)
            policy.on_access(way, now=way + 10)  # everyone at RRPV 0
        assert 0 <= policy.victim(lines, now=20) < 3  # ages until found

    @settings(max_examples=50)
    @given(st.lists(st.integers(0, 7), min_size=1, max_size=40))
    def test_victim_always_valid(self, accesses):
        policy = SrripPolicy(8)
        lines = _lines(8, list(range(8)))
        for way in accesses:
            policy.on_access(way, now=0)
        assert 0 <= policy.victim(lines, now=0) < 8

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            SrripPolicy(4, bits=0)

    def test_whole_cache_runs_with_srrip(self):
        """End-to-end: a hierarchy whose LLC uses SRRIP behaves sanely
        and keeps the TimeCache semantics."""
        import dataclasses

        from repro.core.timecache import TimeCacheSystem
        from tests.conftest import tiny_config

        cfg = tiny_config(num_cores=2)
        llc = dataclasses.replace(cfg.hierarchy.llc, replacement="srrip")
        cfg = dataclasses.replace(
            cfg, hierarchy=dataclasses.replace(cfg.hierarchy, llc=llc)
        )
        system = TimeCacheSystem(cfg)
        system.load(0, 0x1000, now=0)
        r = system.load(1, 0x1000, now=300)
        assert r.first_access
        system.hierarchy.check_inclusion()


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("lru", LruPolicy),
            ("fifo", FifoPolicy),
            ("random", RandomPolicy),
            ("tree-plru", TreePlruPolicy),
            ("plru", TreePlruPolicy),
            ("srrip", SrripPolicy),
            ("LRU", LruPolicy),
        ],
    )
    def test_known_names(self, name, cls):
        assert isinstance(make_replacement_policy(name, 4), cls)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_replacement_policy("mru", 4)
