"""Hierarchy semantics with SMT (two hardware contexts per L1).

On a hyperthreaded core the L1 itself is shared between contexts, so the
first-access discipline applies at the innermost level — the paper's
"same core, another hyperthread" threat vector.
"""

import pytest

from repro.common.config import (
    CacheConfig,
    HierarchyConfig,
    SimConfig,
    TimeCacheConfig,
)
from repro.common.units import KIB
from repro.core.timecache import TimeCacheSystem


def smt_system(enabled=True, cores=1):
    cfg = SimConfig(
        hierarchy=HierarchyConfig(
            num_cores=cores,
            threads_per_core=2,
            l1i=CacheConfig("L1I", 1 * KIB, ways=4),
            l1d=CacheConfig("L1D", 1 * KIB, ways=4),
            llc=CacheConfig("LLC", 16 * KIB, ways=8),
        ),
        timecache=TimeCacheConfig(enabled=enabled, sbit_dma_cycles=20),
    )
    cfg.validate()
    return TimeCacheSystem(cfg)


def test_sibling_contexts_share_l1():
    system = smt_system(enabled=False)
    system.load(0, 0x1000, now=0)
    r = system.load(1, 0x1000, now=300)  # sibling hyperthread
    assert r.level == "L1"  # baseline: L1-fast reuse across contexts


def test_sibling_first_access_delayed_at_l1():
    system = smt_system(enabled=True)
    system.load(0, 0x1000, now=0)
    r = system.load(1, 0x1000, now=300)
    assert r.first_access
    assert r.latency >= system.config.hierarchy.latency.dram
    # L1 recorded the first access (the line was resident there)
    assert system.hierarchy.l1d[0].stats.get("first_access_misses") == 1


def test_sibling_pays_once_then_hits():
    system = smt_system(enabled=True)
    system.load(0, 0x1000, now=0)
    system.load(1, 0x1000, now=300)
    r = system.load(1, 0x1000, now=900)
    assert r.level == "L1" and not r.first_access


def test_four_contexts_across_two_smt_cores():
    system = smt_system(enabled=True, cores=2)
    system.load(0, 0x1000, now=0)  # core0/thread0 fills everywhere
    # core0/thread1: line resident in shared L1 -> L1 first access
    r1 = system.load(1, 0x1000, now=300)
    assert r1.first_access
    # core1/thread0: L1 miss, LLC first access
    r2 = system.load(2, 0x1000, now=600)
    assert r2.first_access
    # core1/thread1: L1 *hit* (thread 2 filled core1's L1) but own s-bit
    # clear -> first access at L1; LLC s-bit also clear -> DRAM probe
    r3 = system.load(3, 0x1000, now=900)
    assert r3.first_access
    assert r3.latency >= system.config.hierarchy.latency.dram
    # everyone has paid: all four now hit
    for ctx in range(4):
        r = system.load(ctx, 0x1000, now=2000 + ctx)
        assert not r.first_access


def test_ctx_mapping():
    system = smt_system(cores=2)
    hier = system.hierarchy
    assert hier.core_of_ctx(0) == 0
    assert hier.core_of_ctx(1) == 0
    assert hier.core_of_ctx(2) == 1
    assert hier.core_of_ctx(3) == 1
    with pytest.raises(Exception):
        hier.core_of_ctx(4)


def test_l1_sbit_columns_independent_per_sibling():
    system = smt_system(enabled=True)
    l1d = system.hierarchy.l1d[0]
    system.load(0, 0x1000, now=0)
    pos = l1d.lookup(system.hierarchy.line_addr(0x1000))
    assert l1d.sbit_is_set(*pos, ctx=0)
    assert not l1d.sbit_is_set(*pos, ctx=1)
