"""Unit tests for a single Cache level: fills, evictions, s-bit arrays."""

import numpy as np
import pytest

from repro.common.config import CacheConfig
from repro.common.errors import SimulationError
from repro.memsys.cache import Cache
from repro.memsys.line import LineState


@pytest.fixture
def cache():
    # 4 sets x 2 ways, two hardware contexts (0 and 1)
    return Cache(CacheConfig("T", 4 * 2 * 64, ways=2), [0, 1], hit_latency=2)


def test_geometry(cache):
    assert cache.num_sets == 4
    assert cache.ways == 2


def test_fill_sets_requester_sbit_only(cache):
    cache.fill(0x10, ctx=0, tc_now=5, state=LineState.SHARED)
    pos = cache.lookup(0x10)
    assert pos is not None
    s, w = pos
    assert cache.sbit_is_set(s, w, ctx=0)
    assert not cache.sbit_is_set(s, w, ctx=1)
    assert cache.tc[s, w] == 5


def test_fill_evicts_lru_and_clears_sbits(cache):
    # Three lines to the same set (stride = num_sets)
    for i, line in enumerate([0x00, 0x04, 0x08]):
        cache.fill(line, ctx=0, tc_now=i, state=LineState.SHARED)
    assert not cache.resident(0x00)  # oldest evicted
    assert cache.resident(0x04) and cache.resident(0x08)
    assert cache.stats.get("evictions") == 1


def test_eviction_resets_slot_sbits(cache):
    cache.fill(0x00, ctx=1, tc_now=0, state=LineState.SHARED)
    s, w = cache.lookup(0x00)
    cache.fill(0x04, ctx=0, tc_now=1, state=LineState.SHARED)
    cache.fill(0x08, ctx=0, tc_now=2, state=LineState.SHARED)  # evicts 0x00
    # slot of the evicted line was refilled by ctx 0 only
    pos08 = cache.lookup(0x08)
    assert pos08 == (s, w)
    assert not cache.sbit_is_set(s, w, ctx=1)


def test_invalidate_clears_sbits_and_returns_line(cache):
    cache.fill(0x10, ctx=0, tc_now=1, state=LineState.SHARED)
    s, w = cache.lookup(0x10)
    line = cache.invalidate(0x10)
    assert line is not None and line.tag == 0x10
    assert cache.sbits[s, w] == 0
    assert cache.invalidate(0x10) is None  # second time: not resident


def test_set_and_check_sbit(cache):
    cache.fill(0x10, ctx=0, tc_now=1, state=LineState.SHARED)
    s, w = cache.lookup(0x10)
    cache.set_sbit(s, w, ctx=1)
    assert cache.sbit_is_set(s, w, ctx=1)
    assert cache.sbit_is_set(s, w, ctx=0)


def test_unknown_context_rejected(cache):
    with pytest.raises(SimulationError):
        cache.ctx_column(5)


def test_save_restore_roundtrip(cache):
    cache.fill(0x10, ctx=0, tc_now=1, state=LineState.SHARED)
    cache.fill(0x21, ctx=0, tc_now=2, state=LineState.SHARED)
    saved = cache.save_sbits(ctx=0)
    assert saved.sum() == 2
    cache.restore_sbits(ctx=0, saved=None)  # wipe
    assert cache.save_sbits(ctx=0).sum() == 0
    cache.restore_sbits(ctx=0, saved=saved)
    assert np.array_equal(cache.save_sbits(ctx=0), saved)


def test_restore_does_not_touch_other_context(cache):
    cache.fill(0x10, ctx=1, tc_now=1, state=LineState.SHARED)
    before = cache.save_sbits(ctx=1)
    cache.restore_sbits(ctx=0, saved=None)
    assert np.array_equal(cache.save_sbits(ctx=1), before)


def test_restore_shape_mismatch_rejected(cache):
    with pytest.raises(SimulationError):
        cache.restore_sbits(ctx=0, saved=np.zeros((1, 1), dtype=bool))


def test_clear_sbits_where(cache):
    cache.fill(0x10, ctx=0, tc_now=1, state=LineState.SHARED)
    cache.fill(0x21, ctx=0, tc_now=9, state=LineState.SHARED)
    mask = cache.tc > 5
    cleared = cache.clear_sbits_where(ctx=0, mask=mask)
    assert cleared == 1
    s, w = cache.lookup(0x10)
    assert cache.sbit_is_set(s, w, ctx=0)  # tc=1 <= 5 kept
    s, w = cache.lookup(0x21)
    assert not cache.sbit_is_set(s, w, ctx=0)  # tc=9 > 5 cleared


def test_clear_all_sbits(cache):
    cache.fill(0x10, ctx=0, tc_now=1, state=LineState.SHARED)
    cache.fill(0x11, ctx=1, tc_now=1, state=LineState.SHARED)
    cache.clear_all_sbits(ctx=0)
    assert cache.save_sbits(ctx=0).sum() == 0
    assert cache.save_sbits(ctx=1).sum() == 1


def test_sbit_save_arithmetic_matches_paper():
    # Section VI-D: a 64KB cache (1024 lines) -> 128 bytes -> 2 transfers;
    # an 8MB cache (131072 lines) -> 16KB -> 256 transfers.
    small = Cache(CacheConfig("S", 64 * 1024, ways=4), [0], hit_latency=2)
    assert small.sbit_save_bytes() == 128
    assert small.sbit_save_transfers() == 2
    big = Cache(CacheConfig("B", 8 * 1024 * 1024, ways=16), [0], hit_latency=20)
    assert big.sbit_save_transfers() == 256


def test_cold_miss_counted_once_per_line(cache):
    cache.fill(0x10, ctx=0, tc_now=1, state=LineState.SHARED)
    cache.invalidate(0x10)
    cache.fill(0x10, ctx=0, tc_now=2, state=LineState.SHARED)
    assert cache.stats.get("cold_misses") == 1
    assert cache.stats.get("fills") == 2


def test_occupancy_and_resident_addrs(cache):
    cache.fill(0x10, ctx=0, tc_now=1, state=LineState.SHARED)
    cache.fill(0x21, ctx=0, tc_now=1, state=LineState.SHARED)
    assert cache.occupancy == 2
    assert sorted(cache.resident_line_addrs()) == [0x10, 0x21]
