"""Tournament harness tests: cell scoring, artifacts, and the gate.

The simulation-backed smoke tests run the cheapest cell (flush+reload,
object engine, quick sampling, small bootstrap) so the whole module
stays fast; the gate logic is additionally unit-tested on synthetic
cells so every failure direction is exercised without a simulator run.
"""

import pytest

from repro.analysis import tournament as tm
from repro.common.errors import LeakageStatsError


def _quick_cell(defense, n_boot=50):
    return tm.run_tournament_cell(
        "flush_reload", defense, "object", seeds=(7,), quick=True,
        n_boot=n_boot,
    )


# ----------------------------------------------------------------------
# job matrix construction
# ----------------------------------------------------------------------
def test_tournament_jobs_unknown_attack_raises():
    with pytest.raises(ValueError, match="unknown attack"):
        tm.tournament_jobs(attacks=["flush_reload", "nonexistent"])


def test_tournament_jobs_full_matrix_shape():
    jobs = tm.tournament_jobs()
    assert len(jobs) == len(tm.ATTACKS) * len(tm.DEFENSES) * len(tm.ENGINES)
    labels = [job.label for job in jobs]
    assert len(set(labels)) == len(labels)
    assert tm.cell_label("flush_reload", "timecache", "object") in labels


def test_run_tournament_cell_rejects_unknown_defense():
    with pytest.raises(LeakageStatsError, match="unknown defense"):
        tm.run_tournament_cell("flush_reload", "nocache", "object", (7,))


# ----------------------------------------------------------------------
# simulation-backed smoke: defense off leaks, defense on does not
# ----------------------------------------------------------------------
def test_flush_reload_leaks_without_defense():
    cell = _quick_cell("baseline")
    assert cell["separation"] > 0.9
    assert cell["leak"] is True
    assert cell["mi_bits"] > 0.5


def test_flush_reload_silent_under_timecache():
    cell = _quick_cell("timecache")
    assert cell["separation"] <= 0.55
    assert cell["leak"] is False


def test_cell_score_is_deterministic():
    assert _quick_cell("baseline") == _quick_cell("baseline")


# ----------------------------------------------------------------------
# the driver: checkpoint resume + artifacts round-trip
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def quick_outcome(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("tournament")
    outcome = tm.run_tournament(
        attacks=["flush_reload"],
        engines=("object",),
        seeds=(7,),
        quick=True,
        jobs=1,
        n_boot=50,
        checkpoint_path=tmp / "ck.json",
    )
    return tmp, outcome


def test_run_tournament_scores_both_defenses(quick_outcome):
    _, outcome = quick_outcome
    assert outcome.complete
    assert sorted(outcome.cells) == sorted(outcome.labels)
    off = outcome.cells["flush_reload|baseline|object"]
    on = outcome.cells["flush_reload|timecache|object"]
    assert off["separation"] > 0.9
    assert on["separation"] <= 0.55


def test_run_tournament_resumes_from_checkpoint(quick_outcome):
    tmp, first = quick_outcome
    second = tm.run_tournament(
        attacks=["flush_reload"],
        engines=("object",),
        seeds=(7,),
        quick=True,
        jobs=1,
        n_boot=50,
        checkpoint_path=tmp / "ck.json",
    )
    assert sorted(second.sweep.resumed) == sorted(first.labels)
    assert second.cells == first.cells


def test_scorecard_round_trip(quick_outcome, tmp_path):
    _, outcome = quick_outcome
    path = tm.write_scorecard(outcome, tmp_path / "SECURITY.json",
                              params={"quick": True})
    loaded = tm.load_scorecard(path)
    assert loaded["kind"] == "security_scorecard"
    assert loaded["cells"] == outcome.cells
    assert loaded["gaps"] == []
    assert loaded["params"] == {"quick": True}


def test_baseline_round_trip_keeps_gate_fields_only(quick_outcome, tmp_path):
    _, outcome = quick_outcome
    path = tm.write_security_baseline(outcome, tmp_path / "BASELINE.json")
    baseline = tm.load_security_baseline(path)
    assert sorted(baseline) == sorted(outcome.cells)
    for label, cell in baseline.items():
        assert sorted(cell) == [
            "ci_high", "ci_low", "leak", "mi_bits", "separation",
        ]
        assert cell["separation"] == outcome.cells[label]["separation"]


def test_render_scorecard_lines(quick_outcome):
    _, outcome = quick_outcome
    text = tm.render_scorecard(outcome)
    assert "flush_reload|baseline|object" in text
    assert "LEAK" in text
    assert "safe" in text


# ----------------------------------------------------------------------
# gate semantics on synthetic cells (no simulator needed)
# ----------------------------------------------------------------------
def _cell(defense, *, ci_low=0.45, ci_high=0.58, separation=0.5):
    return {
        "defense": defense,
        "ci_low": ci_low,
        "ci_high": ci_high,
        "separation": separation,
    }


def test_gate_passes_against_itself(quick_outcome, tmp_path):
    _, outcome = quick_outcome
    path = tm.write_security_baseline(outcome, tmp_path / "BASELINE.json")
    baseline = tm.load_security_baseline(path)
    assert tm.compare_to_security_baseline(outcome.cells, baseline) == []


def test_gate_flags_defense_regression():
    cells = {"a|timecache|object": _cell("timecache", ci_low=0.80)}
    baseline = {"a|timecache|object": {"separation": 0.50, "leak": False}}
    failures = tm.compare_to_security_baseline(cells, baseline)
    assert len(failures) == 1
    assert "defense regression" in failures[0]


def test_gate_tolerance_absorbs_small_drift():
    cells = {"a|timecache|object": _cell("timecache", ci_low=0.54)}
    baseline = {"a|timecache|object": {"separation": 0.50, "leak": False}}
    assert tm.compare_to_security_baseline(cells, baseline) == []


def test_gate_sanity_direction_fires_when_leak_vanishes():
    cells = {"a|baseline|object": _cell("baseline", ci_high=0.52)}
    baseline = {"a|baseline|object": {"separation": 1.0, "leak": True}}
    failures = tm.compare_to_security_baseline(cells, baseline)
    assert len(failures) == 1
    assert "sanity failure" in failures[0]


def test_gate_sanity_direction_needs_confident_silence():
    # CI high still reaches the leak cutoff: not confidently silent.
    cells = {"a|baseline|object": _cell("baseline", ci_high=0.70)}
    baseline = {"a|baseline|object": {"separation": 1.0, "leak": True}}
    assert tm.compare_to_security_baseline(cells, baseline) == []


def test_gate_ignores_one_sided_cells():
    # A new attack (no baseline entry) and a retired baseline entry
    # (no scored cell) must both be inert.
    cells = {"new|timecache|object": _cell("timecache", ci_low=0.99)}
    baseline = {"old|baseline|object": {"separation": 1.0, "leak": True}}
    assert tm.compare_to_security_baseline(cells, baseline) == []


def test_gate_direction_covers_every_noncontrol_defense():
    # The regression direction keys off the registry's control flag, not
    # a hard-coded name — a new defense is gated from its first cell.
    cells = {"a|selective_flush|object": _cell("selective_flush", ci_low=0.80)}
    baseline = {"a|selective_flush|object": {"separation": 0.50, "leak": False}}
    failures = tm.compare_to_security_baseline(cells, baseline)
    assert len(failures) == 1
    assert "defense regression" in failures[0]


def test_gate_waives_known_boundary_cells():
    # evict_time self-times the victim; TimeCache cannot close it, the
    # baseline records that, and the gate reports-but-never-fails it.
    cells = {"evict_time|timecache|object": _cell("timecache", ci_low=0.99)}
    baseline = {
        "evict_time|timecache|object": {
            "separation": 1.0,
            "leak": True,
            "known_boundary": True,
        }
    }
    waived = []
    failures = tm.compare_to_security_baseline(
        cells, baseline, waived=waived
    )
    assert failures == []
    # never silently dropped: without drift there is nothing to report…
    assert waived == []
    # …but when the flagged cell trips the direction, it lands in waived
    hot = {
        "evict_time|timecache|object": {
            "separation": 0.50,
            "leak": True,
            "known_boundary": True,
        }
    }
    waived = []
    assert tm.compare_to_security_baseline(cells, hot, waived=waived) == []
    assert len(waived) == 1
    assert "known boundary" in waived[0]
    # and without a waived sink the exemption still holds (no failure)
    assert tm.compare_to_security_baseline(cells, hot) == []


def test_baseline_payload_flags_self_timing_cells():
    outcome = tm.TournamentOutcome(
        cells={
            "evict_time|timecache|object": {
                "attack": "evict_time", "defense": "timecache",
                "engine": "object", "label": "evict_time|timecache|object",
                "seeds": [7], "separation": 1.0, "ci_low": 1.0,
                "ci_high": 1.0, "mi_bits": 0.9, "leak": True,
            },
            "evict_time|baseline|object": {
                "attack": "evict_time", "defense": "baseline",
                "engine": "object", "label": "evict_time|baseline|object",
                "seeds": [7], "separation": 1.0, "ci_low": 1.0,
                "ci_high": 1.0, "mi_bits": 0.9, "leak": True,
            },
            "flush_reload|timecache|object": {
                "attack": "flush_reload", "defense": "timecache",
                "engine": "object", "label": "flush_reload|timecache|object",
                "seeds": [7], "separation": 0.5, "ci_low": 0.5,
                "ci_high": 0.5, "mi_bits": 0.0, "leak": False,
            },
        },
        sweep=None,
        labels=[],
    )
    cells = tm.baseline_payload(outcome)["cells"]
    # self-timing attack × defended arm: flagged
    assert cells["evict_time|timecache|object"]["known_boundary"] is True
    # control arm leaking is expected — no flag
    assert "known_boundary" not in cells["evict_time|baseline|object"]
    # defended arm of a closable attack — no flag
    assert "known_boundary" not in cells["flush_reload|timecache|object"]


def test_gate_fails_on_doctored_committed_baseline(quick_outcome, tmp_path):
    """The ISSUE's acceptance check: a doctored baseline must fail.

    Lower the recorded defended separation far below what the harness
    reproduces and the gate must flag it as a defense regression.
    """
    _, outcome = quick_outcome
    baseline = tm.load_security_baseline(
        tm.write_security_baseline(outcome, tmp_path / "B.json")
    )
    baseline["flush_reload|timecache|object"]["separation"] = 0.30
    failures = tm.compare_to_security_baseline(
        outcome.cells, baseline, tolerance=0.05
    )
    assert any("flush_reload|timecache|object" in f for f in failures)
