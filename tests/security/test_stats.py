"""Unit tests for the leakage-scoring statistics.

AUC values are checked against hand-computable synthetic distributions,
mutual information against exact entropy arithmetic, and the bootstrap
against its own determinism contract.
"""

import math

import numpy as np
import pytest

from repro.common.errors import LeakageStatsError, ReproError
from repro.security.stats import (
    BootstrapCI,
    auc_separation,
    bootstrap_auc,
    mutual_information_bits,
    roc_auc,
    roc_curve,
    score_populations,
)


# ----------------------------------------------------------------------
# roc_auc
# ----------------------------------------------------------------------
def test_auc_identical_distributions_is_half():
    samples = [5, 5, 5, 5, 5, 5]
    assert roc_auc(samples, samples) == pytest.approx(0.5)


def test_auc_identical_multivalue_distributions_is_half():
    samples = [1, 2, 3, 4, 5, 6]
    assert roc_auc(samples, list(samples)) == pytest.approx(0.5)


def test_auc_disjoint_distributions():
    low = [1, 2, 3]
    high = [10, 11, 12]
    assert roc_auc(low, high) == pytest.approx(1.0)
    assert roc_auc(high, low) == pytest.approx(0.0)


def test_auc_hand_computed_with_ties():
    # neg = [1, 3], pos = [2, 3]: of the 4 (neg, pos) pairs —
    # (1,2) pos wins, (1,3) pos wins, (3,2) neg wins, (3,3) tie (half)
    # → AUC = (1 + 1 + 0 + 0.5) / 4 = 0.625
    assert roc_auc([1, 3], [2, 3]) == pytest.approx(0.625)


def test_auc_matches_brute_force_on_random_samples():
    rng = np.random.default_rng(42)
    neg = rng.integers(0, 12, size=37)
    pos = rng.integers(3, 15, size=23)
    wins = sum(
        1.0 if p > n else 0.5 if p == n else 0.0 for n in neg for p in pos
    )
    assert roc_auc(neg, pos) == pytest.approx(wins / (len(neg) * len(pos)))


def test_auc_matches_trapezoid_area_under_roc_curve():
    rng = np.random.default_rng(7)
    neg = rng.integers(0, 10, size=40)
    pos = rng.integers(4, 14, size=40)
    points = roc_curve(neg, pos)
    area = sum(
        (x1 - x0) * (y0 + y1) / 2.0
        for (x0, y0), (x1, y1) in zip(points, points[1:])
    )
    assert roc_auc(neg, pos) == pytest.approx(area)


def test_auc_separation_folds_direction():
    low, high = [1, 2, 3], [10, 11, 12]
    assert auc_separation(low, high) == pytest.approx(1.0)
    assert auc_separation(high, low) == pytest.approx(1.0)
    assert auc_separation(low, low) == pytest.approx(0.5)


# ----------------------------------------------------------------------
# degenerate input raises the typed error
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "fn",
    [roc_auc, auc_separation, mutual_information_bits, roc_curve],
)
@pytest.mark.parametrize("neg,pos", [([], [1, 2]), ([1, 2], []), ([], [])])
def test_empty_class_raises_typed_error(fn, neg, pos):
    with pytest.raises(LeakageStatsError):
        fn(neg, pos)


def test_bootstrap_empty_class_raises_typed_error():
    with pytest.raises(LeakageStatsError):
        bootstrap_auc([], [1, 2])


def test_leakage_stats_error_is_a_repro_error():
    assert issubclass(LeakageStatsError, ReproError)


def test_bootstrap_rejects_bad_parameters():
    with pytest.raises(LeakageStatsError):
        bootstrap_auc([1], [2], n_boot=0)
    with pytest.raises(LeakageStatsError):
        bootstrap_auc([1], [2], alpha=1.5)


# ----------------------------------------------------------------------
# mutual information
# ----------------------------------------------------------------------
def test_mi_identical_distributions_is_zero():
    samples = [4, 4, 4, 4]
    assert mutual_information_bits(samples, samples) == pytest.approx(0.0)


def test_mi_fully_separated_balanced_classes_is_one_bit():
    # Latency determines the class exactly; balanced classes → H=1 bit.
    # The contingency table has no sparse cells, so Miller-Madow's
    # correction is exactly zero here: (2 - 2 - 2 + 1 + 1)/(2N) ... use
    # the uncorrected estimator for the exact identity.
    neg = [10] * 8
    pos = [90] * 8
    assert mutual_information_bits(neg, pos, miller_madow=False) == (
        pytest.approx(1.0)
    )


def test_mi_hand_computed_partial_overlap():
    # neg = [0, 0, 1, 1], pos = [1, 1, 2, 2]; N = 8.
    # Joint counts: (neg,0)=2 (neg,1)=2 (pos,1)=2 (pos,2)=2 → H_joint=2.
    # H_class = 1; symbols 0:2, 1:4, 2:2 → H_sym = 1.5.  MI = 0.5 bits.
    mi = mutual_information_bits([0, 0, 1, 1], [1, 1, 2, 2], miller_madow=False)
    assert mi == pytest.approx(0.5)


def test_miller_madow_correction_value():
    # neg=[0,1], pos=[2,2]; N=4.  Plug-in: H_class=1, H_sym=1.5,
    # H_joint=1.5 → MI = 1.0 bit (latency determines class exactly).
    # K_joint=3, K_class=2, K_symbol=3 → correction =
    # (3 - 2 - 3 + 1) / (2 * 4 * ln 2) = -1/(8 ln 2) bits.
    plain = mutual_information_bits([0, 1], [2, 2], miller_madow=False)
    corrected = mutual_information_bits([0, 1], [2, 2])
    assert plain == pytest.approx(1.0)
    assert corrected == pytest.approx(1.0 - 1.0 / (8.0 * math.log(2.0)))


def test_mi_clamped_to_class_entropy():
    rng = np.random.default_rng(3)
    neg = rng.integers(0, 1000, size=30)
    pos = rng.integers(0, 1000, size=30)
    mi = mutual_information_bits(neg, pos)
    assert 0.0 <= mi <= 1.0


# ----------------------------------------------------------------------
# bootstrap
# ----------------------------------------------------------------------
def test_bootstrap_deterministic_under_fixed_seed():
    rng = np.random.default_rng(11)
    neg = list(rng.integers(0, 20, size=25))
    pos = list(rng.integers(10, 30, size=25))
    a = bootstrap_auc(neg, pos, n_boot=100, seed=123)
    b = bootstrap_auc(neg, pos, n_boot=100, seed=123)
    assert a == b


def test_bootstrap_seed_changes_the_interval():
    rng = np.random.default_rng(11)
    neg = list(rng.integers(0, 20, size=25))
    pos = list(rng.integers(10, 30, size=25))
    a = bootstrap_auc(neg, pos, n_boot=100, seed=123)
    b = bootstrap_auc(neg, pos, n_boot=100, seed=124)
    assert (a.low, a.high) != (b.low, b.high)


def test_bootstrap_interval_brackets_point_and_orders():
    rng = np.random.default_rng(5)
    neg = list(rng.integers(0, 15, size=40))
    pos = list(rng.integers(5, 20, size=40))
    ci = bootstrap_auc(neg, pos, n_boot=200, seed=9)
    assert isinstance(ci, BootstrapCI)
    assert 0.5 <= ci.low <= ci.high <= 1.0
    assert ci.point == pytest.approx(auc_separation(neg, pos))


def test_bootstrap_degenerate_separation_is_tight():
    # Identical constant populations: every resample scores exactly 0.5.
    ci = bootstrap_auc([7] * 10, [7] * 10, n_boot=50, seed=0)
    assert ci.low == ci.high == ci.point == pytest.approx(0.5)


# ----------------------------------------------------------------------
# score_populations
# ----------------------------------------------------------------------
def test_score_populations_verdict_uses_ci_lower_bound():
    separated = score_populations([1] * 20, [50] * 20, n_boot=50, seed=1)
    assert separated["leak"] is True
    assert separated["separation"] == pytest.approx(1.0)
    identical = score_populations([5] * 20, [5] * 20, n_boot=50, seed=1)
    assert identical["leak"] is False
    assert identical["mi_bits"] == pytest.approx(0.0)


def test_score_populations_is_json_ready():
    import json

    score = score_populations([1, 2, 3], [4, 5, 6], n_boot=20, seed=2)
    json.dumps(score)  # no numpy scalars may survive into the payload
