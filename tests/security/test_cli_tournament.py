"""End-to-end tests for the ``repro tournament`` command and its gate."""

import json

from repro.analysis.cli import EXIT_FATAL, build_parser, main
from repro.robustness import safeio


def _run(tmp_path, *extra, quiet=True):
    output = tmp_path / "SECURITY.json"
    argv = [
        "tournament", "--quick", "--attacks", "flush_reload",
        "--engine", "object", "--boot", "50", "--jobs", "1",
        "--output", str(output), *extra,
    ]
    if quiet:
        argv.append("--quiet")
    return main(argv), output


def test_parser_accepts_tournament_flags():
    args = build_parser().parse_args(
        [
            "tournament", "--quick", "--jobs", "2", "--engine", "fast",
            "--attacks", "flush_reload", "--seeds", "2", "--boot", "100",
            "--baseline", "b.json", "--tolerance", "0.1",
            "--update-baseline", "nb.json", "--resume", "ck.json",
        ]
    )
    assert args.command == "tournament"
    assert args.engine == "fast"
    assert args.attacks == ["flush_reload"]
    assert args.tolerance == 0.1


def test_tournament_writes_scorecard_and_manifest(tmp_path, capsys):
    from repro.defenses import defense_names

    status, output = _run(tmp_path)
    assert status == 0
    out = capsys.readouterr().out
    # one cell per registered defense — the axis is the registry
    for defense in defense_names():
        assert f"flush_reload|{defense}|object" in out
    scorecard = json.loads(output.read_text())
    assert scorecard["kind"] == "security_scorecard"
    assert len(scorecard["cells"]) == len(defense_names())
    assert scorecard["params"]["defenses"] == list(defense_names())
    assert scorecard["gaps"] == []
    manifest = json.loads((tmp_path / "SECURITY.json.manifest.json").read_text())
    assert manifest["extra"]["cells"] == len(defense_names())


def test_tournament_rejects_unknown_attack(tmp_path, capsys):
    argv = [
        "tournament", "--quick", "--attacks", "bogus",
        "--output", str(tmp_path / "S.json"), "--quiet",
    ]
    assert main(argv) == EXIT_FATAL


def test_tournament_update_then_gate_passes(tmp_path, capsys):
    baseline = tmp_path / "BASELINE.json"
    status, _ = _run(tmp_path, "--update-baseline", str(baseline))
    assert status == 0
    assert baseline.exists()
    status, _ = _run(tmp_path, "--baseline", str(baseline), quiet=False)
    assert status == 0
    captured = capsys.readouterr()
    assert "security gate passed" in captured.out + captured.err


def test_compare_defenses_writes_matrix(tmp_path, capsys):
    """``repro compare-defenses`` end to end on a one-attack slice."""
    from repro.defenses import defense_names

    output = tmp_path / "DEFENSE_MATRIX.json"
    argv = [
        "compare-defenses", "--quick", "--attacks", "flush_reload",
        "--engine", "object", "--boot", "50", "--jobs", "1",
        "--output", str(output), "--quiet",
    ]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "slowdown" in out
    matrix = json.loads(output.read_text())
    assert matrix["kind"] == "defense_matrix"
    assert matrix["axes"]["defenses"] == list(defense_names())
    for defense in defense_names():
        assert f"flush_reload|{defense}|object" in matrix["cells"]
        assert f"overhead|{defense}|object" in matrix["cells"]
    manifest = json.loads(
        (tmp_path / "DEFENSE_MATRIX.json.manifest.json").read_text()
    )
    assert manifest["extra"]["cells"] == 2 * len(defense_names())


def test_compare_defenses_parser_flags():
    args = build_parser().parse_args(
        [
            "compare-defenses", "--quick", "--jobs", "2",
            "--engine", "both", "--attacks", "flush_reload",
            "--defenses", "timecache", "--defenses", "baseline",
            "--boot", "100", "--resume", "ck.json",
        ]
    )
    assert args.command == "compare-defenses"
    assert args.defenses == ["timecache", "baseline"]
    assert args.output == "DEFENSE_MATRIX.json"


def test_tournament_gate_fails_on_doctored_baseline(tmp_path, capsys):
    """ISSUE acceptance: an injected regression must fail the gate."""
    baseline = tmp_path / "BASELINE.json"
    status, _ = _run(tmp_path, "--update-baseline", str(baseline))
    assert status == 0
    doc = json.loads(baseline.read_text())
    doc["cells"]["flush_reload|timecache|object"]["separation"] = 0.30
    # Re-seal so only the gate (not the integrity check) can object.
    baseline.write_text(json.dumps(safeio.seal(doc)))
    status, _ = _run(tmp_path, "--baseline", str(baseline))
    assert status == EXIT_FATAL
    err = capsys.readouterr().err
    assert "SECURITY REGRESSION" in err
    assert "flush_reload|timecache|object" in err
