"""compare-defenses matrix: job shape, determinism, resume, artifacts.

The determinism contract is per-field: leakage scores and an overhead
cell's simulated cycle counts are pure functions of (config, seeds) —
identical across runs and across ``--jobs`` fan-outs — while wall-clock
fields are explicitly excluded.  The smoke here runs a one-attack slice
of the real matrix under ``jobs=2`` with a checkpoint, twice over.
"""

import pytest

from repro.analysis import defense_matrix as dm
from repro.analysis import tournament as tm
from repro.defenses import defense_names


def _deterministic(cell):
    if cell.get("kind") == "overhead":
        return {k: cell[k] for k in dm.OVERHEAD_DETERMINISTIC_FIELDS}
    return cell  # leakage cells are deterministic in every field


# ----------------------------------------------------------------------
# job matrix construction
# ----------------------------------------------------------------------
def test_matrix_jobs_cover_leakage_plus_overhead():
    jobs = dm.matrix_jobs()
    expected = len(tm.ATTACKS) * len(tm.DEFENSES) * len(tm.ENGINES)
    expected += len(tm.DEFENSES) * len(tm.ENGINES)
    assert len(jobs) == expected
    labels = [job.label for job in jobs]
    assert len(set(labels)) == len(labels)
    assert dm.overhead_label("selective_flush", "fast") in labels


def test_overhead_cell_control_normalizes_to_one():
    cell = dm.run_overhead_cell("baseline", "object", 2_000, 7)
    assert cell["slowdown"] == pytest.approx(1.0)
    assert cell["sim_cycles"] == cell["control_cycles"]


def test_overhead_cell_defenses_cost_something():
    tc = dm.run_overhead_cell("timecache", "object", 2_000, 7)
    sf = dm.run_overhead_cell("selective_flush", "object", 2_000, 7)
    assert tc["slowdown"] > 1.0
    assert sf["slowdown"] > 1.0
    # flush-on-switch must cost more than the s-bit discipline — the
    # whole point of the head-to-head table
    assert sf["slowdown"] > tc["slowdown"]


# ----------------------------------------------------------------------
# the driver: jobs=2 + resume, deterministic rows
# ----------------------------------------------------------------------
MATRIX_KW = dict(
    attacks=["flush_reload"],
    engines=("object",),
    seeds=(7,),
    quick=True,
    jobs=2,
    n_boot=50,
    overhead_instructions=2_000,
)


@pytest.fixture(scope="module")
def matrix_outcome(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("defense_matrix")
    outcome = dm.run_defense_matrix(
        checkpoint_path=tmp / "ck.json", **MATRIX_KW
    )
    return tmp, outcome


def test_matrix_scores_every_registered_defense(matrix_outcome):
    _, outcome = matrix_outcome
    assert outcome.complete
    assert sorted(outcome.cells) == sorted(outcome.labels)
    for defense in defense_names():
        assert f"flush_reload|{defense}|object" in outcome.cells
        assert dm.overhead_label(defense, "object") in outcome.cells
    # flush+reload is a reuse channel: every non-control defense in the
    # zoo closes it, the control leaks
    assert outcome.cells["flush_reload|baseline|object"]["leak"] is True
    for defense in ("timecache", "selective_flush", "copy_on_access"):
        assert outcome.cells[f"flush_reload|{defense}|object"]["leak"] is False


def test_matrix_resumes_from_checkpoint(matrix_outcome):
    tmp, first = matrix_outcome
    second = dm.run_defense_matrix(checkpoint_path=tmp / "ck.json", **MATRIX_KW)
    assert sorted(second.sweep.resumed) == sorted(first.labels)
    assert {k: _deterministic(c) for k, c in second.cells.items()} == {
        k: _deterministic(c) for k, c in first.cells.items()
    }


def test_matrix_rows_deterministic_across_fresh_runs(matrix_outcome, tmp_path):
    """A fresh checkpoint (nothing to resume) under the same jobs=2
    fan-out must reproduce every deterministic field bit-for-bit."""
    _, first = matrix_outcome
    fresh = dm.run_defense_matrix(checkpoint_path=tmp_path / "ck2.json", **MATRIX_KW)
    assert not fresh.sweep.resumed
    assert {k: _deterministic(c) for k, c in fresh.cells.items()} == {
        k: _deterministic(c) for k, c in first.cells.items()
    }


def test_matrix_artifact_round_trip(matrix_outcome, tmp_path):
    _, outcome = matrix_outcome
    path = dm.write_matrix(
        outcome, tmp_path / "DEFENSE_MATRIX.json", params={"quick": True}
    )
    loaded = dm.load_matrix(path)
    assert loaded["kind"] == "defense_matrix"
    assert loaded["cells"] == outcome.cells
    assert loaded["gaps"] == []
    assert loaded["axes"]["defenses"] == list(defense_names())
    assert loaded["axes"]["attacks"] == ["flush_reload"]


def test_render_matrix_rows(matrix_outcome):
    _, outcome = matrix_outcome
    text = dm.render_matrix(outcome)
    for defense in defense_names():
        assert defense in text
    assert "slowdown" in text
    # the control leaks flush+reload: a * marker must appear
    assert "*" in text
