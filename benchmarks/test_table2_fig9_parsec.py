"""E5 — Table II (PARSEC rows) and Figures 9a/9b.

Paper: 2-thread PARSEC runs on 2 separate cores see a mean overhead of
0.8% — lower than the SPEC pairs — and, because each L1 serves exactly
one thread, *zero* first-access misses at L1I/L1D: every first access
lands at the shared LLC (Figure 9b).
"""

from benchmarks.conftest import parsec_instructions, run_once
from repro.analysis import parsec_sweep, render_mpki_table, render_table2
from repro.analysis.tables import summarize_overheads
from repro.workloads.mixes import PAPER_TABLE2_PARSEC, PARSEC_BENCHMARKS


def test_table2_fig9_parsec_sweep(benchmark):
    results = run_once(
        benchmark,
        parsec_sweep,
        benchmarks=PARSEC_BENCHMARKS,
        instructions_per_thread=parsec_instructions(),
    )
    print("\n[E5] Table II (PARSEC) — measured vs paper")
    print(render_table2(results, paper=PAPER_TABLE2_PARSEC))
    print("\n[E5] Figure 9b — first-access MPKI per level")
    print(render_mpki_table(results))
    summary = summarize_overheads(results)
    print(
        f"\n[E5] geomean overhead {summary['geomean_overhead']:.4f} "
        f"(paper: 0.008)"
    )

    # Figure 9b's structural claim: threads on separate cores never see
    # L1 first accesses; the LLC takes them all.
    for result in results:
        tc = result.timecache.level_mpki
        assert tc["L1I"].first_access_misses == 0.0
        assert tc["L1D"].first_access_misses == 0.0
    assert any(
        r.timecache.llc_first_access_mpki > 0 for r in results
    )

    # Low overhead, never a speedup.
    assert all(r.normalized_time >= 0.999 for r in results)
    assert summary["geomean_overhead"] < 0.03

    # No context switches beyond the two initial dispatches -> zero
    # recurring s-bit bookkeeping (threads own their cores).
    assert all(r.timecache.context_switches == 2 for r in results)
