"""Section VII — the other attacks on shared software, as a battery.

Regenerates the paper's qualitative table: which channel exists in the
baseline, which TimeCache option closes it, and which channels the paper
explicitly leaves to complementary defenses (randomizing caches).
"""

from benchmarks.conftest import run_once
from repro.attacks import (
    run_evict_reload,
    run_evict_time,
    run_flush_flush,
    run_invalidate_transfer,
    run_lru_attack,
    run_prime_probe,
    run_smt_flush_reload,
    run_spectre_covert_channel,
)
from repro.common import scaled_experiment_config
from repro.common.config import HierarchyConfig


def _cfg(cores=1, **tc):
    config = scaled_experiment_config(num_cores=cores)
    if tc:
        config = config.with_timecache(**tc)
    return config


def test_evict_reload_blocked(benchmark):
    def run():
        base = run_evict_reload(_cfg().baseline(), rounds=5)
        defended = run_evict_reload(_cfg(), rounds=5)
        return base, defended

    base, defended = run_once(benchmark, run)
    print(
        f"\n[VII] evict+reload: baseline {base.probe_hits}/{base.probe_total}"
        f" hits, TimeCache {defended.probe_hits}"
    )
    assert base.probe_hits == base.probe_total
    assert defended.probe_hits == 0


def test_invalidate_transfer_blocked(benchmark):
    def run():
        base = run_invalidate_transfer(_cfg(2).baseline(), victim_touches=True)
        defended = run_invalidate_transfer(_cfg(2), victim_touches=True)
        dirty = run_invalidate_transfer(
            _cfg(2), victim_touches=True, victim_writes=True
        )
        return base, defended, dirty

    base, defended, dirty = run_once(benchmark, run)
    print(
        f"\n[VII] invalidate+transfer: baseline {base.probe_hits} hits, "
        f"TimeCache {defended.probe_hits}, dirty variant {dirty.probe_hits}"
    )
    assert base.probe_hits > 0
    assert defended.probe_hits == 0
    assert dirty.probe_hits == 0


def test_flush_flush_needs_constant_time_clflush(benchmark):
    def run():
        leaking = run_flush_flush(_cfg(), victim_touches=True)
        fixed_active = run_flush_flush(
            _cfg(constant_time_flush=True), victim_touches=True
        )
        fixed_idle = run_flush_flush(
            _cfg(constant_time_flush=True), victim_touches=False
        )
        return leaking, fixed_active, fixed_idle

    leaking, fixed_active, fixed_idle = run_once(benchmark, run)
    print(
        f"\n[VII] flush+flush: plain TimeCache still leaks "
        f"({leaking.probe_hits} hits); constant-time clflush makes "
        f"active/idle indistinguishable"
    )
    assert leaking.probe_hits > 0  # first-access delay alone is not enough
    assert set(fixed_active.latencies) == set(fixed_idle.latencies)


def test_lru_attack_out_of_scope(benchmark):
    """Paper VII-A: LRU/eviction-set attacks are the randomizing-cache
    defenses' job; TimeCache neither blocks nor claims to block them."""

    def run():
        active = run_lru_attack(_cfg(), victim_touches=True)
        idle = run_lru_attack(_cfg(), victim_touches=False)
        return active, idle

    active, idle = run_once(benchmark, run)
    print(
        f"\n[VII] LRU attack under TimeCache: active {active.probe_hits} "
        f"vs idle {idle.probe_hits} hits (channel remains, as the paper "
        f"states)"
    )
    assert active.probe_hits > idle.probe_hits


def test_prime_probe_out_of_scope(benchmark):
    def run():
        active = run_prime_probe(_cfg(), victim_active=True)
        idle = run_prime_probe(_cfg(), victim_active=False)
        return active, idle

    active, idle = run_once(benchmark, run)
    print(
        f"\n[VII] prime+probe under TimeCache: displaced probes "
        f"{active.extra['displaced_probes']} vs idle "
        f"{idle.extra['displaced_probes']} (contention channel remains)"
    )
    assert active.extra["displaced_probes"] > idle.extra["displaced_probes"]


def test_smt_hyperthread_attack_blocked(benchmark):
    """Threat model: attacker on a sibling hyperthread, sharing the L1."""
    import dataclasses

    base = scaled_experiment_config(num_cores=1)
    smt = dataclasses.replace(
        base,
        hierarchy=HierarchyConfig(
            num_cores=1,
            threads_per_core=2,
            l1i=base.hierarchy.l1i,
            l1d=base.hierarchy.l1d,
            llc=base.hierarchy.llc,
        ),
    )

    def run():
        leaky = run_smt_flush_reload(smt.baseline())
        blocked = run_smt_flush_reload(smt)
        return leaky, blocked

    leaky, blocked = run_once(benchmark, run)
    print(
        f"\n[VII] SMT flush+reload: baseline {leaky.probe_hits}/"
        f"{leaky.probe_total} hits (min latency "
        f"{min(leaky.latencies)} = L1-fast), TimeCache {blocked.probe_hits}"
    )
    assert leaky.probe_hits == leaky.probe_total
    assert blocked.probe_hits == 0


def test_spectre_covert_channel_killed(benchmark):
    """Section VIII: breaking the reuse channel kills Spectre's transmit
    end — the secret byte never crosses."""

    def run():
        leaked = run_spectre_covert_channel(
            scaled_experiment_config(num_cores=2).baseline(), secret=0xA7
        )
        blocked = run_spectre_covert_channel(
            scaled_experiment_config(num_cores=2), secret=0xA7
        )
        return leaked, blocked

    leaked, blocked = run_once(benchmark, run)
    print(
        f"\n[VIII] Spectre covert channel: baseline recovered "
        f"{leaked.recovered:#x} (secret {leaked.secret:#x}); TimeCache "
        f"recovered {blocked.recovered} with {blocked.probe_hits} hits"
    )
    assert leaked.leaked
    assert not blocked.leaked
    assert blocked.probe_hits == 0


def test_keystroke_timing_blocked(benchmark):
    """§II-B's cited attack class: keystroke timing through a shared
    input-handler library."""
    from repro.attacks.keystroke import run_keystroke_attack

    def run():
        base = run_keystroke_attack(_cfg(2).baseline(), presses=8)
        blocked = run_keystroke_attack(_cfg(2), presses=8)
        return base, blocked

    base, blocked = run_once(benchmark, run)
    print(
        f"\n[II-B] keystroke timeline: baseline recall {base.recall:.2f} "
        f"({len(base.recovered_times)} events for "
        f"{len(base.true_press_times)} presses); TimeCache recall "
        f"{blocked.recall:.2f} with {blocked.probe_hits} hits"
    )
    assert base.timeline_recovered
    assert not blocked.timeline_recovered
    assert blocked.probe_hits == 0


def test_evict_time_channel_characterized(benchmark):
    def run():
        uses = run_evict_time(_cfg(), victim_uses_line=True)
        unused = run_evict_time(_cfg(), victim_uses_line=False)
        return uses, unused

    uses, unused = run_once(benchmark, run)
    print(
        f"\n[VII] evict+time: slowdown {uses.extra['slowdown']:.1f} cycles "
        f"when the victim uses the line, {unused.extra['slowdown']:.1f} "
        f"when it does not"
    )
    assert uses.extra["slowdown"] > unused.extra["slowdown"]
