"""Related-work comparison (Section VIII): TimeCache vs partitioning.

The paper's argument for TimeCache over the partitioning family
(Catalyst/Apparition on Intel CAT, DAWG, PLcache): both block reuse
attacks, but partitioning pays with reduced effective cache and flushes
at protection-boundary crossings — DAWG is quoted at 4-12% overhead and
PLcache at ~12%, versus TimeCache's 1.13%.

This benchmark runs the same workload pair and the same microbenchmark
attack under the undefended baseline, TimeCache, and the CAT+flush
baseline, asserting the paper's ordering: both defenses are secure, and
TimeCache is the cheaper one.
"""

from benchmarks.conftest import bench_instructions, run_once
from repro.analysis.comparison import compare_defenses
from repro.common import scaled_experiment_config


def test_timecache_cheaper_than_partitioning(benchmark):
    config = scaled_experiment_config(num_cores=1, quantum_cycles=60_000)
    comparison = run_once(
        benchmark,
        compare_defenses,
        config,
        bench_a="perlbench",
        bench_b="perlbench",
        instructions=max(80_000, bench_instructions() // 2),
    )
    print("\n[VIII] " + comparison.render())
    print(
        f"\n[VIII] overhead: timecache "
        f"{comparison.overhead('timecache'):.4f} vs partition "
        f"{comparison.overhead('partition'):.4f} "
        f"(paper: 1.13% vs 4-12%)"
    )
    # both defenses block the reuse attack...
    assert comparison.reports["baseline"].attack_hits > 0
    assert comparison.reports["timecache"].secure
    assert comparison.reports["partition"].secure
    # ...and TimeCache wins on cost (the paper's headline comparison)
    assert comparison.overhead("timecache") < comparison.overhead("partition")


def test_ftm_threat_model_matrix(benchmark):
    """Section VIII-B2: 'The threat model, and hence the defense
    mechanisms in TimeCache, is stronger than that of FTM.'  The matrix:
    FTM blocks the cross-core channel but not time-sliced same-core
    processes; TimeCache blocks both."""
    import dataclasses

    from repro.attacks.flush_reload import run_microbenchmark_attack
    from repro.common.config import TimeCacheConfig

    base = scaled_experiment_config(num_cores=1)
    ftm_cfg = dataclasses.replace(
        base, timecache=TimeCacheConfig(enabled=False, ftm_mode=True)
    )

    def run():
        ftm_same_core = run_microbenchmark_attack(
            ftm_cfg, shared_lines=64, sleep_cycles=100_000
        )
        tc_same_core = run_microbenchmark_attack(
            base, shared_lines=64, sleep_cycles=100_000
        )
        return ftm_same_core, tc_same_core

    ftm_same_core, tc_same_core = run_once(benchmark, run)
    print(
        f"\n[VIII-B2] same-core time-sliced flush+reload: FTM "
        f"{ftm_same_core.probe_hits}/{ftm_same_core.probe_total} hits "
        f"(leaks), TimeCache {tc_same_core.probe_hits} (blocked)"
    )
    assert ftm_same_core.probe_hits == ftm_same_core.probe_total
    assert tc_same_core.probe_hits == 0


def test_constant_time_algorithm_cost(benchmark):
    """Section VIII-C: the software alternative — a constant-time
    square-and-multiply — hides the key even on an undefended cache, but
    pays the multiply+reduce on every clear bit; TimeCache provides the
    same secrecy with no change to the victim at ~1% system cost."""
    from repro.attacks.rsa import generate_key, run_rsa_attack

    key = generate_key(seed=7, prime_bits=24)
    cfg = scaled_experiment_config(num_cores=2).baseline()

    def run():
        normal = run_rsa_attack(cfg, key=key)
        constant = run_rsa_attack(cfg, key=key, constant_time_victim=True)
        return normal, constant

    normal, constant = run_once(benchmark, run)
    slowdown = constant.victim_cycles / max(1, normal.victim_cycles)
    print(
        f"\n[VIII-C] constant-time victim: signing slowdown "
        f"{slowdown:.2f}x; decoder output "
        f"{'all-ones (no key info)' if all(constant.recovered_bits) else 'leaky'}"
        f"; normal victim recovered: {normal.key_recovered}"
    )
    assert normal.key_recovered
    assert all(b == 1 for b in constant.recovered_bits)
    zero_fraction = 1 - sum(key.d_bits) / len(key.d_bits)
    assert slowdown > 1.0 + zero_fraction / 2  # pays on every clear bit


def test_partitioning_loses_effective_cache(benchmark):
    """The static cost: even between switches, each domain runs in half
    the LLC, so miss rates rise on cache-hungry workloads."""
    config = scaled_experiment_config(num_cores=1, quantum_cycles=60_000)
    comparison = run_once(
        benchmark,
        compare_defenses,
        config,
        bench_a="wrf",
        bench_b="wrf",
        instructions=max(80_000, bench_instructions() // 2),
    )
    print("\n[VIII] " + comparison.render())
    base_mpki = comparison.reports["baseline"].run.llc_mpki
    part_mpki = comparison.reports["partition"].run.llc_mpki
    tc_mpki = comparison.reports["timecache"].run.llc_mpki
    print(
        f"[VIII] LLC MPKI: baseline {base_mpki:.3f}, timecache "
        f"{tc_mpki:.3f}, partition {part_mpki:.3f}"
    )
    assert part_mpki > base_mpki
    assert part_mpki > tc_mpki
