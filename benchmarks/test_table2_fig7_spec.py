"""E3 — Table II (SPEC rows) and Figure 7.

Regenerates the paper's single-core pair sweep: 15 same-benchmark pairs
plus 9 mixed pairs time-sliced on one core, baseline vs TimeCache.
Printed in Table II's layout with the published numbers alongside.

Shape claims asserted (the substrate is a behavioral model, so absolute
numbers differ; see EXPERIMENTS.md):

* the mean overhead is small — the same order as the paper's 1.13%;
* TimeCache only ever adds time (normalized time >= 1 per row);
* MPKI grows under TimeCache (first accesses add misses), and the
  increase is small relative to baseline for high-MPKI workloads;
* the measured baseline-MPKI ordering correlates with the paper's
  Table II ordering (rank correlation).
"""

from scipy import stats as scipy_stats

from benchmarks.conftest import bench_instructions, run_once
from repro.analysis import render_table2, spec_pair_sweep
from repro.analysis.tables import summarize_overheads
from repro.workloads.mixes import (
    PAPER_TABLE2_SPEC,
    SPEC_MIXED_PAIRS,
    SPEC_SAME_PAIRS,
)

ALL_PAIRS = SPEC_SAME_PAIRS + SPEC_MIXED_PAIRS


def test_table2_and_fig7_spec_sweep(benchmark):
    results = run_once(
        benchmark,
        spec_pair_sweep,
        pairs=ALL_PAIRS,
        instructions=bench_instructions(),
    )
    print("\n[E3] Table II (SPEC) — measured vs paper")
    print(render_table2(results, paper=PAPER_TABLE2_SPEC))
    summary = summarize_overheads(results)
    print(
        f"\n[E3] geomean overhead {summary['geomean_overhead']:.4f} "
        f"(paper: 0.0113); max {summary['max_overhead']:.4f}; "
        f"bookkeeping share {summary['mean_bookkeeping_fraction']:.5f}"
    )

    # -- who wins: the defense costs time, never saves it ---------------
    assert all(r.normalized_time >= 0.999 for r in results)
    # -- by roughly what factor: ~1% mean, single digits worst-case -----
    assert summary["geomean_overhead"] < 0.03
    assert summary["max_overhead"] < 0.08
    # -- first accesses add misses: TimeCache MPKI >= baseline ----------
    grew = sum(
        1 for r in results if r.timecache.llc_mpki >= r.baseline.llc_mpki
    )
    assert grew >= len(results) - 2  # allow noise on near-zero rows
    # -- MPKI ordering matches the paper's Table II ---------------------
    ours = [r.baseline.llc_mpki for r in results]
    paper = [PAPER_TABLE2_SPEC[r.label][1] for r in results]
    rho, _ = scipy_stats.spearmanr(ours, paper)
    print(f"[E3] Spearman rank correlation with paper MPKI: {rho:.3f}")
    assert rho > 0.5
    # -- the high-MPKI group is the paper's high-MPKI group -------------
    by_label = {r.label: r for r in results}
    high = ["2Xleslie3d", "2Xmilc", "2Xlbm", "2Xsjeng"]
    low = ["2Xspecrand", "2Xnamd", "2Xsphinx3", "2Xcalculix"]
    min_high = min(by_label[l].baseline.llc_mpki for l in high)
    max_low = max(by_label[l].baseline.llc_mpki for l in low)
    assert min_high > max_low
