"""E6 — Figure 10: overhead sensitivity to LLC size.

Paper: with 2MB, 4MB, and 8MB LLCs the mean overhead falls from 1.13%
to 0.4% to 0.1% — "bigger caches have lower eviction rates for the same
workload, effectively fewer first accesses... the defense scales well
with larger caches."

At the model's 16x scale the sweep runs 128/256/512 KiB.  The assertion
is the paper's trend: mean overhead and first-access MPKI both shrink
monotonically as the LLC grows.
"""

from benchmarks.conftest import bench_instructions, run_once
from repro.analysis import llc_sensitivity_sweep, render_figure_series
from repro.common.units import geometric_mean

# Pairs whose combined footprints exceed the smallest swept size and
# approach the largest: eviction churn — and with it the recurring
# first-access misses the paper's trend is made of — varies across the
# sweep.  (A workload that never fits, or always fits, is insensitive to
# the sweep by construction.)
PAIRS = [
    ("wrf", "wrf"),
    ("perlbench", "perlbench"),
    ("h264ref", "h264ref"),
    ("milc", "milc"),
    ("lbm", "lbm"),
    ("astar", "astar"),
]

# The model's LLC scale factor is deeper here (x64) than the Table II
# runs (x16) so the sweep brackets the churn regime the way the paper's
# 2/4/8 MB sweep brackets SPEC working sets.
LLC_SIZES = (32, 64, 128)


def test_fig10_llc_size_sensitivity(benchmark):
    sweep = run_once(
        benchmark,
        llc_sensitivity_sweep,
        pairs=PAIRS,
        llc_sizes_kib=LLC_SIZES,
        instructions=bench_instructions(),
    )
    series = []
    fa_series = []
    for llc_kib in LLC_SIZES:
        results = sweep[llc_kib]
        mean = geometric_mean([r.normalized_time for r in results])
        mean_fa = sum(
            r.timecache.llc_first_access_mpki for r in results
        ) / len(results)
        series.append((f"{llc_kib}KiB (~{llc_kib // 16}MB paper-scale)", mean))
        fa_series.append((f"{llc_kib}KiB", mean_fa))
    print("\n[E6] Figure 10 — normalized time vs LLC size")
    print(render_figure_series("normalized execution time", series))
    print(render_figure_series("LLC first-access MPKI", fa_series))
    print("[E6] paper series: 2MB 1.0113, 4MB 1.004, 8MB 1.001")

    overheads = [value - 1.0 for _, value in series]
    fa_values = [value for _, value in fa_series]
    # The paper's trend: monotone shrink with LLC size (small tolerance
    # for scheduling noise between adjacent sizes).
    assert overheads[1] <= overheads[0] + 0.004
    assert overheads[2] <= overheads[1] + 0.004
    assert overheads[2] < overheads[0]
    # First-access misses — the defense's direct cost — shrink strictly.
    assert fa_values[1] < fa_values[0]
    assert fa_values[2] < fa_values[1]
