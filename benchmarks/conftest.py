"""Benchmark-suite configuration.

Every benchmark regenerates one of the paper's artifacts (a table or a
figure), prints it in the paper's layout, and asserts the paper's *shape*
claims — who wins, orderings, trends — rather than absolute numbers (the
substrate is a behavioral Python model, not the authors' gem5 testbed).

Scale knobs (environment):

* ``REPRO_BENCH_INSTRUCTIONS``  — instructions per SPEC process
  (default 250000; the checked-in EXPERIMENTS.md numbers used 400000).
* ``REPRO_PARSEC_INSTRUCTIONS`` — instructions per PARSEC thread
  (default 800000).

Lowering them gives a fast smoke run; raising them tightens the match.
"""

import os

import pytest


def bench_instructions() -> int:
    return int(os.environ.get("REPRO_BENCH_INSTRUCTIONS", "250000"))


def parsec_instructions() -> int:
    return int(os.environ.get("REPRO_PARSEC_INSTRUCTIONS", "800000"))


@pytest.fixture
def spec_instructions():
    return bench_instructions()


@pytest.fixture
def parsec_thread_instructions():
    return parsec_instructions()


def run_once(benchmark, fn, *args, **kwargs):
    """Run a heavy experiment exactly once under pytest-benchmark.

    Simulation experiments are deterministic and expensive; one round is
    both sufficient and honest (re-running would measure the same work).
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
