"""Ablations on the design choices DESIGN.md calls out.

* Save/restore vs reset-on-switch: Section V-B argues that dropping the
  s-bits at every switch "would be equivalent to flushing the cache on
  every context switch, which can impact performance heavily" — the
  ablation measures that gap.
* Timestamp width: narrower Tc counters roll over more often; each
  rollover conservatively clears all s-bits, adding first-access misses
  (Section VI-C) while preserving security.
* Comparator fidelity: the gate-level bit-serial scan and the vectorized
  fast path produce identical simulations (the fast path is a pure
  optimization, not a semantic change).
"""

from benchmarks.conftest import bench_instructions, run_once
from repro.analysis import run_spec_pair_experiment
from repro.common import scaled_experiment_config


def test_reset_on_switch_is_much_worse_than_save_restore(benchmark):
    def run():
        # A short quantum forces many switches so the save-vs-reset
        # distinction is exercised repeatedly.
        instructions = max(60_000, bench_instructions() // 2)
        config = scaled_experiment_config(num_cores=1, quantum_cycles=30_000)
        keep = run_spec_pair_experiment(
            config, "perlbench", "perlbench", instructions=instructions
        )
        drop = run_spec_pair_experiment(
            config.with_timecache(reset_sbits_on_switch=True),
            "perlbench",
            "perlbench",
            instructions=instructions,
        )
        return keep, drop

    keep, drop = run_once(benchmark, run)
    print(
        f"\n[ablation] save/restore overhead {keep.overhead:.4f} vs "
        f"reset-on-switch {drop.overhead:.4f} "
        f"(paper: reset == flushing the caching context per switch)"
    )
    assert drop.overhead > keep.overhead
    assert drop.timecache.llc_first_access_mpki > (
        keep.timecache.llc_first_access_mpki
    )


def test_narrow_timestamps_add_rollover_misses(benchmark):
    def run():
        instructions = max(60_000, bench_instructions() // 2)
        config = scaled_experiment_config(num_cores=1, quantum_cycles=30_000)
        wide = run_spec_pair_experiment(
            config, "gobmk", "gobmk", instructions=instructions
        )
        narrow = run_spec_pair_experiment(
            config.with_timecache(
                timestamp_bits=16  # rolls over every 65536 cycles
            ),
            "gobmk",
            "gobmk",
            instructions=instructions,
        )
        return wide, narrow

    wide, narrow = run_once(benchmark, run)
    wide_fa = wide.timecache.llc_first_access_mpki
    narrow_fa = narrow.timecache.llc_first_access_mpki
    print(
        f"\n[ablation] first-access MPKI: 32-bit Tc {wide_fa:.3f} vs "
        f"16-bit Tc {narrow_fa:.3f} (rollovers clear all s-bits)"
    )
    assert narrow_fa >= wide_fa
    assert narrow.timecache.stats.get("context_switch.rollover_resets", 0) > 0


def test_gate_level_comparator_equivalent_to_fast_path(benchmark):
    def run():
        instructions = 30_000
        fast = run_spec_pair_experiment(
            scaled_experiment_config(num_cores=1, quantum_cycles=20_000),
            "namd",
            "namd",
            instructions=instructions,
        )
        gate = run_spec_pair_experiment(
            scaled_experiment_config(
                num_cores=1, quantum_cycles=20_000
            ).with_timecache(gate_level_comparator=True),
            "namd",
            "namd",
            instructions=instructions,
        )
        return fast, gate

    fast, gate = run_once(benchmark, run)
    print(
        f"\n[ablation] comparator paths: fast {fast.timecache.cycles} "
        f"cycles vs gate-level {gate.timecache.cycles} cycles (identical)"
    )
    assert fast.timecache.cycles == gate.timecache.cycles
    assert fast.timecache.llc_mpki == gate.timecache.llc_mpki
