"""E7 — Section VI-D: s-bit save/restore overhead.

Paper arithmetic, reproduced exactly: one context's s-bit array for a
64KB cache copies in 2 cache-line-size (64B) transfers; an 8MB LLC takes
256.  The measured DMA constant (1.08us on a Xeon, = 2160 cycles at the
2GHz gem5 clock) is injected per context switch, and the resulting
bookkeeping is ~0.02% of runtime — a small fraction of the total 1.13%
overhead, which is dominated by first-access delays.

Also microbenchmarks the model's own save/restore path (a genuine
pytest-benchmark measurement: it is pure array work and repeatable).
"""

from benchmarks.conftest import bench_instructions, run_once
from repro.analysis import run_spec_pair_experiment
from repro.common import scaled_experiment_config
from repro.common.config import CacheConfig
from repro.common.units import KIB, MIB, cycles_from_us
from repro.core.timecache import TimeCacheSystem
from repro.memsys.cache import Cache


def test_transfer_count_arithmetic(benchmark):
    def compute():
        small = Cache(CacheConfig("L1", 64 * KIB, ways=4), [0], 2)
        big = Cache(CacheConfig("LLC", 8 * MIB, ways=16), [0], 20)
        return small.sbit_save_transfers(), big.sbit_save_transfers()

    small_transfers, big_transfers = run_once(benchmark, compute)
    print(
        f"\n[E7] transfers per save/restore: 64KB -> {small_transfers} "
        f"(paper: 2), 8MB -> {big_transfers} (paper: 256)"
    )
    assert small_transfers == 2
    assert big_transfers == 256


def test_paper_dma_constant_conversion(benchmark):
    cycles = run_once(benchmark, cycles_from_us, 1.08, 2.0)
    print(f"\n[E7] 1.08us @ 2GHz = {cycles} cycles per switch")
    assert cycles == 2160


def test_bookkeeping_is_tiny_share_of_overhead(benchmark):
    """Paper: 0.02-0.024% bookkeeping inside 1.13% total overhead —
    i.e. the s-bit copies are a small minority of the added time."""
    config = scaled_experiment_config(num_cores=1)
    result = run_once(
        benchmark,
        run_spec_pair_experiment,
        config,
        "wrf",
        "wrf",
        instructions=bench_instructions(),
    )
    total_overhead = result.overhead
    bookkeeping = result.bookkeeping_fraction
    print(
        f"\n[E7] total overhead {total_overhead:.4f}, bookkeeping share "
        f"of runtime {bookkeeping:.5f} (paper: ~0.0002 inside 0.0113)"
    )
    assert bookkeeping < 0.005  # well under half a percent of runtime
    if total_overhead > 0:
        # first-access delay dominates the added cycles
        assert bookkeeping < total_overhead


def test_save_restore_microbenchmark(benchmark):
    """Throughput of one full save+restore+comparator round trip on the
    scaled LLC — the operation a context switch performs."""
    system = TimeCacheSystem(scaled_experiment_config(num_cores=1))
    # warm some lines so the arrays are non-trivial
    for i in range(512):
        system.load(0, 0x100000 + i * 64, now=i * 250)
    engine = system.context_engine
    task = system.task_state(1)

    def round_trip():
        engine.save(task, ctx=0, now_full=system.clock.now + 1)
        return engine.restore(task, ctx=0, now_full=system.clock.now + 2)

    cost = benchmark(round_trip)
    print(
        f"\n[E7] modeled switch cost: dma {cost.dma_cycles} cycles + "
        f"comparator {cost.comparator_cycles} cycles"
    )
    assert cost.dma_cycles > 0
    assert cost.comparator_cycles > 0
