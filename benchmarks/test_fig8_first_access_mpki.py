"""E4 — Figure 8: delayed-access (first-access) MPKI per cache level.

Paper: "the last-level cache is expected to have a greater number of
first access misses compared to the L1 cache, as it is larger and
retains more shared content"; wrf and perlbench stand out because of
their larger shared instruction footprints; and running two high-MPKI
benchmarks together *lowers* their effective first accesses because
cache contention evicts the shared lines anyway.
"""

from benchmarks.conftest import bench_instructions, run_once
from repro.analysis import render_mpki_table, spec_pair_sweep

PAIRS = [
    ("specrand", "specrand"),
    ("wrf", "wrf"),
    ("perlbench", "perlbench"),
    ("namd", "namd"),
    ("gobmk", "gobmk"),
    ("h264ref", "h264ref"),
]


def test_fig8_first_access_mpki_per_level(benchmark):
    results = run_once(
        benchmark,
        spec_pair_sweep,
        pairs=PAIRS,
        instructions=bench_instructions(),
    )
    print("\n[E4] Figure 8 — first-access MPKI per level (TimeCache runs)")
    print(render_mpki_table(results))

    def fa(result, level):
        return result.timecache.level_mpki[level].first_access_misses

    # LLC retains more shared content than the L1s: more first accesses.
    llc_total = sum(fa(r, "LLC") for r in results)
    l1_total = sum(fa(r, "L1I") + fa(r, "L1D") for r in results)
    print(f"[E4] total fa-MPKI: LLC {llc_total:.3f} vs L1 {l1_total:.3f}")
    assert llc_total > l1_total

    # wrf and perlbench: the large-shared-instruction-footprint outliers.
    by_label = {r.label: r for r in results}
    baseline_group = ["2Xspecrand", "2Xnamd", "2Xh264ref", "2Xgobmk"]
    for outlier in ("2Xwrf", "2Xperlbench"):
        outlier_fa = fa(by_label[outlier], "LLC") + fa(by_label[outlier], "L1I")
        group_max = max(
            fa(by_label[l], "LLC") + fa(by_label[l], "L1I")
            for l in baseline_group
        )
        print(f"[E4] {outlier}: {outlier_fa:.3f} vs group max {group_max:.3f}")
        assert outlier_fa > group_max

    # Every level shows some first accesses in the time-sliced setting
    # (shared libc/kernel text flows through L1I too).
    assert any(fa(r, "L1I") > 0 for r in results)
