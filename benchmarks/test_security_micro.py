"""E1 — Section VI-A1 microbenchmark functionality evaluation.

Paper: the parent flushes a 256-line shared array, yields, the child
writes it, the parent performs timed reads.  "The attacker does not see
any hit with our defense simulation enabled" — and without it, every
reload hits.
"""

from benchmarks.conftest import run_once
from repro.attacks.flush_reload import run_microbenchmark_attack
from repro.common import scaled_experiment_config


def test_microbenchmark_baseline_fully_leaks(benchmark):
    config = scaled_experiment_config(num_cores=1).baseline()
    outcome = run_once(
        benchmark,
        run_microbenchmark_attack,
        config,
        shared_lines=256,
        sleep_cycles=300_000,
    )
    print(
        f"\n[E1 baseline] reload hits: {outcome.probe_hits}/"
        f"{outcome.probe_total} (hit fraction {outcome.hit_fraction:.2f})"
    )
    assert outcome.probe_total == 256
    assert outcome.probe_hits == 256  # the channel is fully open


def test_microbenchmark_timecache_blocks_everything(benchmark):
    config = scaled_experiment_config(num_cores=1)
    outcome = run_once(
        benchmark,
        run_microbenchmark_attack,
        config,
        shared_lines=256,
        sleep_cycles=300_000,
    )
    print(
        f"\n[E1 TimeCache] reload hits: {outcome.probe_hits}/"
        f"{outcome.probe_total} — paper: 'does not see any hit'"
    )
    assert outcome.probe_total == 256
    assert outcome.probe_hits == 0  # the paper's exact claim


def test_latency_distributions_separate_cleanly(benchmark):
    """The attacker's classification threshold sits between the two
    configurations' latency clouds: defense-on reloads are
    indistinguishable from misses."""
    config = scaled_experiment_config(num_cores=1)

    def both():
        base = run_microbenchmark_attack(
            config.baseline(), shared_lines=128, sleep_cycles=200_000
        )
        defended = run_microbenchmark_attack(
            config, shared_lines=128, sleep_cycles=200_000
        )
        return base, defended

    base, defended = run_once(benchmark, both)
    print(
        f"\n[E1 latencies] baseline max {max(base.latencies)} < "
        f"defended min {min(defended.latencies)}"
    )
    assert max(base.latencies) < min(defended.latencies)
