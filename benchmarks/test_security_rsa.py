"""E2 — Section VI-A2: the classic GnuPG RSA flush+reload attack.

Paper: the attack extracts the key on the baseline ("this attack was the
key demonstration for the flush+reload attack") and "our defense
successfully breaks the attack" — no cache hit is ever observed by the
attacker, since every timed access follows a flush and is therefore a
first access.
"""

from benchmarks.conftest import run_once
from repro.attacks.rsa import generate_key, run_rsa_attack
from repro.common import scaled_experiment_config

KEY = generate_key(seed=7, prime_bits=28)


def test_rsa_key_extraction_succeeds_on_baseline(benchmark):
    config = scaled_experiment_config(num_cores=2).baseline()
    result = run_once(benchmark, run_rsa_attack, config, key=KEY)
    print(
        f"\n[E2 baseline] key bits {len(KEY.d_bits)}, recovered "
        f"{len(result.recovered_bits)}, accuracy {result.accuracy:.3f}, "
        f"probe hits {result.probe_hits}/{result.probe_total}"
    )
    print(f"  true: {''.join(map(str, result.true_bits))}")
    print(f"  rec : {''.join(map(str, result.recovered_bits))}")
    assert result.ciphertext_ok
    assert result.key_recovered  # >= 90% of bits read correctly


def test_rsa_key_extraction_blocked_by_timecache(benchmark):
    config = scaled_experiment_config(num_cores=2)
    result = run_once(benchmark, run_rsa_attack, config, key=KEY)
    print(
        f"\n[E2 TimeCache] probe hits {result.probe_hits} "
        f"(paper: attacker never perceives a hit), recovered bits: "
        f"{len(result.recovered_bits)}"
    )
    assert result.ciphertext_ok  # encryption still correct under defense
    assert result.probe_hits == 0
    assert result.recovered_bits == []
    assert not result.key_recovered
