"""ASCII figure rendering for terminal output.

The paper's Figures 7, 9a, and 10 are bar/line charts; these helpers
render the same series as horizontal ASCII bars so the CLI, examples and
benchmark logs can show the *shape* at a glance without a plotting
dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple


def ascii_bars(
    title: str,
    series: Iterable[Tuple[str, float]],
    width: int = 50,
    baseline: float = 0.0,
    unit: str = "",
) -> str:
    """Horizontal bar chart of (label, value) pairs.

    ``baseline`` is subtracted before scaling — pass 1.0 for normalized
    execution times so the bars show *overhead* (the paper's Figure 7
    reads the same way: bars hovering just above 1.0).
    """
    rows: List[Tuple[str, float]] = list(series)
    if not rows:
        return f"{title}\n(no data)"
    deltas = [max(0.0, value - baseline) for _, value in rows]
    peak = max(deltas) or 1.0
    label_width = max(len(label) for label, _ in rows)
    lines = [title, "=" * len(title)]
    for (label, value), delta in zip(rows, deltas):
        bar = "#" * max(1, int(round(width * delta / peak))) if delta > 0 else ""
        lines.append(
            f"{label:<{label_width}} | {bar:<{width}} {value:.4f}{unit}"
        )
    return "\n".join(lines)


def figure7(results: Sequence) -> str:
    """Figure 7: normalized execution time per workload (bars above 1.0)."""
    series = [(r.label, r.normalized_time) for r in results]
    return ascii_bars(
        "Figure 7 — normalized execution time (TimeCache / baseline)",
        series,
        baseline=1.0,
    )


def figure9a(results: Sequence) -> str:
    """Figure 9a: PARSEC normalized execution time."""
    series = [(r.label, r.normalized_time) for r in results]
    return ascii_bars(
        "Figure 9a — PARSEC normalized execution time",
        series,
        baseline=1.0,
    )


def figure10(series: Sequence[Tuple[str, float]]) -> str:
    """Figure 10: mean normalized time vs LLC size."""
    return ascii_bars(
        "Figure 10 — overhead vs LLC size",
        series,
        baseline=1.0,
    )


def latency_histogram_ascii(
    title: str, latencies: Sequence[int], edges: Sequence[int], width: int = 40
) -> str:
    """Bucketized latency distribution (attack analysis helper)."""
    buckets = [0] * (len(edges) + 1)
    for value in latencies:
        for i, edge in enumerate(edges):
            if value <= edge:
                buckets[i] += 1
                break
        else:
            buckets[-1] += 1
    peak = max(buckets) or 1
    labels = [f"<= {edge}" for edge in edges] + [f"> {edges[-1]}"]
    label_width = max(len(label) for label in labels)
    lines = [title, "=" * len(title)]
    for label, count in zip(labels, buckets):
        bar = "#" * int(round(width * count / peak))
        lines.append(f"{label:<{label_width}} | {bar} {count}")
    return "\n".join(lines)
