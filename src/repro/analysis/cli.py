"""Command-line driver: regenerate the paper's artifacts from a shell.

Usage (also available as ``python -m repro``):

    python -m repro micro                  # Section VI-A1 microbenchmark
    python -m repro rsa                    # Section VI-A2 RSA extraction
    python -m repro table2 --pairs 6       # Table II / Figure 7 slice
    python -m repro fig8                   # first-access MPKI per level
    python -m repro fig9                   # PARSEC on 2 cores
    python -m repro fig10                  # LLC size sensitivity
    python -m repro attacks                # Section VII attack battery
    python -m repro faults --quick         # fault-injection detection matrix
    python -m repro bench --quick          # perf harness, BENCH_*.json

Each command prints the artifact in the paper's layout; ``--instructions``
scales simulation length (longer = tighter match, slower).  ``table2`` and
``export`` accept ``--resume CHECKPOINT.json`` to run under the resilient
sweep runner: failures are retried then recorded, completed experiments
are checkpointed, and a rerun with the same file picks up where it left
off.

``--jobs N`` fans the sweep commands out across ``N`` worker processes
(default: one per CPU; ``--jobs 1`` forces the serial path).  Results are
identical either way — see docs/internals.md §9.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.runner import (
    llc_sensitivity_sweep,
    parsec_sweep,
    spec_pair_sweep,
)
from repro.analysis.tables import (
    render_figure_series,
    render_mpki_table,
    render_table2,
    summarize_overheads,
)
from repro.common import scaled_experiment_config
from repro.common.units import geometric_mean
from repro.workloads.mixes import (
    PAPER_TABLE2_PARSEC,
    PAPER_TABLE2_SPEC,
    PARSEC_BENCHMARKS,
    SPEC_MIXED_PAIRS,
    SPEC_SAME_PAIRS,
)


def _cmd_micro(args: argparse.Namespace) -> int:
    from repro.attacks.flush_reload import run_microbenchmark_attack

    for label, config in (
        ("baseline", scaled_experiment_config().baseline()),
        ("TimeCache", scaled_experiment_config()),
    ):
        outcome = run_microbenchmark_attack(config, shared_lines=256)
        print(
            f"{label:<10} reload hits: {outcome.probe_hits}/"
            f"{outcome.probe_total}"
        )
    return 0


def _cmd_rsa(args: argparse.Namespace) -> int:
    from repro.attacks.rsa import generate_key, run_rsa_attack

    key = generate_key(seed=args.seed, prime_bits=28)
    print(f"{len(key.d_bits)}-bit secret exponent")
    for label, config in (
        ("baseline", scaled_experiment_config(num_cores=2).baseline()),
        ("TimeCache", scaled_experiment_config(num_cores=2)),
    ):
        result = run_rsa_attack(config, key=key)
        print(
            f"{label:<10} hits {result.probe_hits:5d}  recovered "
            f"{len(result.recovered_bits):3d} bits  accuracy "
            f"{result.accuracy:.1%}  key recovered: {result.key_recovered}"
        )
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    pairs = (SPEC_SAME_PAIRS + SPEC_MIXED_PAIRS)[: args.pairs or None]
    if args.resume:
        from repro.analysis.runner import resilient_spec_pair_sweep
        from repro.workloads.mixes import pair_label

        outcome = resilient_spec_pair_sweep(
            pairs=pairs,
            instructions=args.instructions,
            checkpoint_path=args.resume,
            jobs=args.jobs,
            engine=args.engine,
        )
        _report_sweep_outcome(outcome)
        labels = [pair_label(a, b) for a, b in pairs]
        results = outcome.ordered_results(labels)
        if not results:
            return 1
    else:
        results = spec_pair_sweep(
            pairs=pairs,
            instructions=args.instructions,
            jobs=args.jobs,
            engine=args.engine,
        )
    print(render_table2(results, paper=PAPER_TABLE2_SPEC))
    summary = summarize_overheads(results)
    print(f"\ngeomean overhead {summary['geomean_overhead']:.4f} (paper 0.0113)")
    return 0


def _report_sweep_outcome(outcome) -> None:
    if outcome.resumed:
        print(
            f"resumed {len(outcome.resumed)} completed experiment(s) "
            f"from checkpoint"
        )
    for failure in outcome.failures:
        print(
            f"FAILED {failure.label}: {failure.error_type}: "
            f"{failure.message} (after {failure.attempts} attempts)"
        )


def _cmd_fig8(args: argparse.Namespace) -> int:
    pairs = SPEC_SAME_PAIRS[: args.pairs or 6]
    results = spec_pair_sweep(
        pairs=pairs,
        instructions=args.instructions,
        jobs=args.jobs,
        engine=args.engine,
    )
    print(render_mpki_table(results))
    return 0


def _cmd_fig9(args: argparse.Namespace) -> int:
    benchmarks = PARSEC_BENCHMARKS[: args.pairs or None]
    results = parsec_sweep(
        benchmarks=benchmarks,
        instructions_per_thread=args.instructions,
        jobs=args.jobs,
        engine=args.engine,
    )
    print(render_table2(results, paper=PAPER_TABLE2_PARSEC))
    print()
    print(render_mpki_table(results))
    return 0


def _cmd_fig10(args: argparse.Namespace) -> int:
    pairs = [("wrf", "wrf"), ("perlbench", "perlbench"), ("milc", "milc")]
    sweep = llc_sensitivity_sweep(
        pairs=pairs,
        llc_sizes_kib=(32, 64, 128),
        instructions=args.instructions,
        jobs=args.jobs,
        engine=args.engine,
    )
    series = [
        (f"{kib}KiB", geometric_mean([r.normalized_time for r in results]))
        for kib, results in sweep.items()
    ]
    print(render_figure_series("normalized time vs LLC size", series))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.analysis.comparison import compare_defenses

    comparison = compare_defenses(
        scaled_experiment_config(num_cores=1, quantum_cycles=60_000),
        bench_a=args.bench,
        bench_b=args.bench,
        instructions=args.instructions,
    )
    print(comparison.render())
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.analysis.export import export_outcome, export_sweep

    pairs = (SPEC_SAME_PAIRS + SPEC_MIXED_PAIRS)[: args.pairs or 4]
    if args.resume:
        from repro.analysis.runner import resilient_spec_pair_sweep
        from repro.workloads.mixes import pair_label

        outcome = resilient_spec_pair_sweep(
            pairs=pairs,
            instructions=args.instructions,
            checkpoint_path=args.resume,
            jobs=args.jobs,
            engine=args.engine,
        )
        _report_sweep_outcome(outcome)
        labels = [pair_label(a, b) for a, b in pairs]
        path = export_outcome(outcome, labels, args.output)
        print(f"wrote {len(outcome.results)} results to {path}")
        return 0
    results = spec_pair_sweep(
        pairs=pairs,
        instructions=args.instructions,
        jobs=args.jobs,
        engine=args.engine,
    )
    path = export_sweep(results, args.output)
    print(f"wrote {len(results)} results to {path}")
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from repro.robustness import run_fault_campaign

    per_model = 3 if args.quick else args.injections
    matrix = run_fault_campaign(per_model=per_model, seed=args.seed)
    print(matrix.render())
    print(
        f"\n{matrix.total} injections: "
        f"{matrix.total - matrix.silent_total} detected or benign, "
        f"{matrix.silent_total} silent"
    )
    return 1 if matrix.silent_total else 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.analysis import bench

    if args.profile:
        paths = bench.profile_benchmarks(
            names=args.only or None,
            quick=args.quick,
            jobs=args.jobs,
            engine=args.engine,
            output_dir=args.output_dir,
        )
        for path in paths:
            print(f"wrote {path}")
        return 0
    results = bench.run_benchmarks(
        names=args.only or None,
        quick=args.quick,
        jobs=args.jobs,
        engine=args.engine,
    )
    paths = bench.write_results(results, args.output_dir)
    print(bench.render_results(results))
    for path in paths:
        print(f"wrote {path}")
    if args.write_baseline:
        print(f"wrote baseline {bench.write_baseline(results, args.write_baseline)}")
    if args.baseline:
        baseline = bench.load_baseline(args.baseline)
        regressions = bench.compare_to_baseline(
            results, baseline, threshold=args.threshold
        )
        if regressions:
            for message in regressions:
                print(f"REGRESSION {message}")
            if not args.warn_only:
                return 1
            print("(warn-only: not failing)")
        else:
            print(
                f"no regression vs {args.baseline} "
                f"(threshold {args.threshold:.0%})"
            )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TimeCache (ISCA 2021) reproduction - artifact driver",
    )
    parser.add_argument(
        "--instructions",
        type=int,
        default=150_000,
        help="instructions per simulated process/thread",
    )
    parser.add_argument("--seed", type=int, default=7)
    # Shared by every sweep-shaped command (anything embarrassingly
    # parallel); micro/rsa/compare/faults run single simulations.
    jobs_parent = argparse.ArgumentParser(add_help=False)
    jobs_parent.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for the sweep (default: one per CPU; "
        "1 = the exact serial path)",
    )
    jobs_parent.add_argument(
        "--engine",
        choices=("object", "fast"),
        default="object",
        help="simulation engine: 'object' is the reference model, 'fast' "
        "the struct-of-arrays engine (identical results, ~5x throughput)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("micro", help="Section VI-A1 microbenchmark")
    sub.add_parser("rsa", help="Section VI-A2 RSA key extraction")
    for name, help_text in (
        ("table2", "Table II / Figure 7 SPEC sweep"),
        ("fig8", "Figure 8 first-access MPKI per level"),
        ("fig9", "Figure 9 PARSEC sweep"),
        ("fig10", "Figure 10 LLC sensitivity"),
    ):
        p = sub.add_parser(name, help=help_text, parents=[jobs_parent])
        p.add_argument(
            "--pairs", type=int, default=0, help="limit the workload count"
        )
        if name == "table2":
            p.add_argument(
                "--resume",
                metavar="CHECKPOINT",
                default=None,
                help="run resiliently, checkpointing to (and resuming "
                "from) this JSON file",
            )
    compare = sub.add_parser(
        "compare", help="TimeCache vs partitioning on one pair"
    )
    compare.add_argument("--bench", default="perlbench")
    export = sub.add_parser(
        "export", help="run a sweep, write JSON results", parents=[jobs_parent]
    )
    export.add_argument("--output", default="results.json")
    export.add_argument("--pairs", type=int, default=0)
    export.add_argument(
        "--resume",
        metavar="CHECKPOINT",
        default=None,
        help="run resiliently, checkpointing to (and resuming from) "
        "this JSON file",
    )
    faults = sub.add_parser(
        "faults", help="fault-injection campaign against the defense"
    )
    faults.add_argument(
        "--injections",
        type=int,
        default=30,
        help="seeded injections per fault model",
    )
    faults.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: 3 injections per model",
    )
    bench = sub.add_parser(
        "bench",
        help="perf benchmark harness, writes BENCH_<name>.json",
        parents=[jobs_parent],
    )
    bench.add_argument(
        "--quick", action="store_true", help="smaller workloads, fewer runs"
    )
    bench.add_argument(
        "--only",
        action="append",
        metavar="NAME",
        help="run just this benchmark (repeatable)",
    )
    bench.add_argument(
        "--output-dir", default=".", help="where BENCH_<name>.json files go"
    )
    bench.add_argument(
        "--baseline",
        metavar="BASELINE.json",
        default=None,
        help="compare against this committed baseline; exit 1 on regression",
    )
    bench.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="relative slowdown that counts as a regression (default 0.20)",
    )
    bench.add_argument(
        "--warn-only",
        action="store_true",
        help="report regressions but exit 0 (for alien/noisy CI hardware)",
    )
    bench.add_argument(
        "--write-baseline",
        metavar="PATH",
        default=None,
        help="also write the results as a new baseline file",
    )
    bench.add_argument(
        "--profile",
        action="store_true",
        help="run each workload under cProfile and write "
        "BENCH_profile_<name>.pstats instead of timing it",
    )
    return parser


_COMMANDS = {
    "micro": _cmd_micro,
    "rsa": _cmd_rsa,
    "table2": _cmd_table2,
    "fig8": _cmd_fig8,
    "fig9": _cmd_fig9,
    "fig10": _cmd_fig10,
    "compare": _cmd_compare,
    "export": _cmd_export,
    "faults": _cmd_faults,
    "bench": _cmd_bench,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
