"""Command-line driver: regenerate the paper's artifacts from a shell.

Usage (also available as ``python -m repro``):

    python -m repro micro                  # Section VI-A1 microbenchmark
    python -m repro rsa                    # Section VI-A2 RSA extraction
    python -m repro table2 --pairs 6       # Table II / Figure 7 slice
    python -m repro fig8                   # first-access MPKI per level
    python -m repro fig9                   # PARSEC on 2 cores
    python -m repro fig10                  # LLC size sensitivity
    python -m repro attacks                # Section VII attack battery
    python -m repro faults --quick         # fault-injection detection matrix
    python -m repro chaos --quick          # orchestration chaos scorecard
    python -m repro bench --quick          # perf harness, BENCH_*.json
    python -m repro tournament --quick     # attack leakage scorecard
    python -m repro trace                  # traced flush+reload + manifest
    python -m repro obs summarize T.jsonl  # inspect a trace stream
    python -m repro obs top OBS_DIR        # live supervised-sweep view
    python -m repro obs flame --obs-dir D  # folded kernel/span flamegraph

Each command prints the artifact in the paper's layout; ``--instructions``
scales simulation length (longer = tighter match, slower).  ``table2``,
``fig8``, ``fig9`` and ``export`` accept ``--resume CHECKPOINT.json`` to
run under the resilient sweep runner: failures are retried then
quarantined with provenance, completed experiments are checkpointed, and
a rerun with the same file picks up where it left off.

``--jobs N`` fans the sweep commands out across ``N`` worker processes
(default: one per CPU; ``--jobs 1`` forces the serial path).  Results are
identical either way — see docs/internals.md §9.

Exit codes follow one contract across the sweep commands:

* ``0`` — full success, every cell produced a result;
* ``3`` (``EXIT_PARTIAL``) — the sweep finished but one or more cells
  were quarantined; the printed artifact carries explicit gap markers
  and a one-line quarantine summary names each FailureRecord file;
* ``1`` — fatal: nothing usable was produced (also the generic error
  exit for any uncaught :class:`~repro.common.errors.ReproError`).

``--quiet`` (global or per-command) suppresses progress chatter; the
paper artifacts themselves — tables, figures, attack outcomes — are
always printed.  Errors always go to stderr.
"""

from __future__ import annotations

import argparse
import sys
from collections import Counter
from pathlib import Path
from typing import List, Optional

from repro.analysis.runner import (
    llc_sensitivity_sweep,
    parsec_sweep,
    spec_pair_sweep,
)
from repro.analysis.tables import (
    render_figure_series,
    render_mpki_table,
    render_table2,
    summarize_overheads,
)
from repro.common import scaled_experiment_config
from repro.common.units import geometric_mean
from repro.obs.console import Console
from repro.workloads.mixes import (
    PAPER_TABLE2_PARSEC,
    PAPER_TABLE2_SPEC,
    PARSEC_BENCHMARKS,
    SPEC_MIXED_PAIRS,
    SPEC_SAME_PAIRS,
)

#: the sweep-command exit contract (see the module docstring)
EXIT_OK = 0
EXIT_FATAL = 1
EXIT_PARTIAL = 3


def _quarantine_dir_for(checkpoint_path: str) -> Path:
    """Where FailureRecords land for a resumable sweep: next to (and
    named after) its checkpoint file."""
    path = Path(checkpoint_path)
    return path.parent / (path.name + ".quarantine")


def _cmd_micro(args: argparse.Namespace) -> int:
    from repro.attacks.flush_reload import run_microbenchmark_attack

    for label, config in (
        ("baseline", scaled_experiment_config().baseline()),
        ("TimeCache", scaled_experiment_config()),
    ):
        outcome = run_microbenchmark_attack(config, shared_lines=256)
        args.console.result(
            f"{label:<10} reload hits: {outcome.probe_hits}/"
            f"{outcome.probe_total}"
        )
    return 0


def _cmd_rsa(args: argparse.Namespace) -> int:
    from repro.attacks.rsa import generate_key, run_rsa_attack

    key = generate_key(seed=args.seed, prime_bits=28)
    args.console.info(f"{len(key.d_bits)}-bit secret exponent")
    for label, config in (
        ("baseline", scaled_experiment_config(num_cores=2).baseline()),
        ("TimeCache", scaled_experiment_config(num_cores=2)),
    ):
        result = run_rsa_attack(config, key=key)
        args.console.result(
            f"{label:<10} hits {result.probe_hits:5d}  recovered "
            f"{len(result.recovered_bits):3d} bits  accuracy "
            f"{result.accuracy:.1%}  key recovered: {result.key_recovered}"
        )
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    pairs = (SPEC_SAME_PAIRS + SPEC_MIXED_PAIRS)[: args.pairs or None]
    if args.resume:
        from repro.analysis.runner import resilient_spec_pair_sweep
        from repro.workloads.mixes import pair_label

        outcome = resilient_spec_pair_sweep(
            pairs=pairs,
            instructions=args.instructions,
            checkpoint_path=args.resume,
            jobs=args.jobs,
            engine=args.engine,
            quarantine_dir=_quarantine_dir_for(args.resume),
            obs_dir=args.obs_dir,
        )
        status = _report_sweep_outcome(args.console, outcome)
        labels = [pair_label(a, b) for a, b in pairs]
        results = outcome.ordered_results(labels)
        if not results:
            return EXIT_FATAL
        gaps = [label for label in labels if label not in outcome.results]
    else:
        results = spec_pair_sweep(
            pairs=pairs,
            instructions=args.instructions,
            jobs=args.jobs,
            engine=args.engine,
        )
        status, gaps = EXIT_OK, []
    args.console.result(
        render_table2(results, paper=PAPER_TABLE2_SPEC, gaps=gaps)
    )
    summary = summarize_overheads(results)
    args.console.result(
        f"\ngeomean overhead {summary['geomean_overhead']:.4f} (paper 0.0113)"
    )
    return status


def _report_sweep_outcome(console: Console, outcome) -> int:
    """Narrate a resilient sweep's outcome; the return value is the
    command's exit status under the 0/3/1 contract (``EXIT_PARTIAL``
    when anything was quarantined, else ``EXIT_OK``)."""
    if outcome.resumed:
        console.info(
            f"resumed {len(outcome.resumed)} completed experiment(s) "
            f"from checkpoint"
        )
    for failure in outcome.failures:
        console.error(
            f"FAILED {failure.label}: {failure.error_type}: "
            f"{failure.message} (after {failure.attempts} attempts)"
        )
    if outcome.failures:
        where = ", ".join(
            f"{f.label} ({f.record_path or 'no record file'})"
            for f in outcome.failures
        )
        console.error(
            f"quarantined {len(outcome.failures)} job(s): {where}"
        )
        return EXIT_PARTIAL
    return EXIT_OK


def _cmd_fig8(args: argparse.Namespace) -> int:
    pairs = SPEC_SAME_PAIRS[: args.pairs or 6]
    if args.resume:
        from repro.analysis.runner import resilient_spec_pair_sweep
        from repro.workloads.mixes import pair_label

        outcome = resilient_spec_pair_sweep(
            pairs=pairs,
            instructions=args.instructions,
            checkpoint_path=args.resume,
            jobs=args.jobs,
            engine=args.engine,
            quarantine_dir=_quarantine_dir_for(args.resume),
            obs_dir=args.obs_dir,
        )
        status = _report_sweep_outcome(args.console, outcome)
        labels = [pair_label(a, b) for a, b in pairs]
        results = outcome.ordered_results(labels)
        if not results:
            return EXIT_FATAL
        gaps = [label for label in labels if label not in outcome.results]
    else:
        results = spec_pair_sweep(
            pairs=pairs,
            instructions=args.instructions,
            jobs=args.jobs,
            engine=args.engine,
        )
        status, gaps = EXIT_OK, []
    args.console.result(render_mpki_table(results, gaps=gaps))
    return status


def _cmd_fig9(args: argparse.Namespace) -> int:
    benchmarks = PARSEC_BENCHMARKS[: args.pairs or None]
    if args.resume:
        from repro.analysis.runner import resilient_parsec_sweep

        outcome = resilient_parsec_sweep(
            benchmarks=benchmarks,
            instructions_per_thread=args.instructions,
            checkpoint_path=args.resume,
            jobs=args.jobs,
            engine=args.engine,
            quarantine_dir=_quarantine_dir_for(args.resume),
            obs_dir=args.obs_dir,
        )
        status = _report_sweep_outcome(args.console, outcome)
        results = outcome.ordered_results(list(benchmarks))
        if not results:
            return EXIT_FATAL
        gaps = [b for b in benchmarks if b not in outcome.results]
    else:
        results = parsec_sweep(
            benchmarks=benchmarks,
            instructions_per_thread=args.instructions,
            jobs=args.jobs,
            engine=args.engine,
        )
        status, gaps = EXIT_OK, []
    args.console.result(
        render_table2(results, paper=PAPER_TABLE2_PARSEC, gaps=gaps)
    )
    args.console.result("")
    args.console.result(render_mpki_table(results, gaps=gaps))
    return status


def _cmd_fig10(args: argparse.Namespace) -> int:
    pairs = [("wrf", "wrf"), ("perlbench", "perlbench"), ("milc", "milc")]
    sweep = llc_sensitivity_sweep(
        pairs=pairs,
        llc_sizes_kib=(32, 64, 128),
        instructions=args.instructions,
        jobs=args.jobs,
        engine=args.engine,
    )
    series = [
        (f"{kib}KiB", geometric_mean([r.normalized_time for r in results]))
        for kib, results in sweep.items()
    ]
    args.console.result(render_figure_series("normalized time vs LLC size", series))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.analysis.comparison import compare_defenses

    comparison = compare_defenses(
        scaled_experiment_config(num_cores=1, quantum_cycles=60_000),
        bench_a=args.bench,
        bench_b=args.bench,
        instructions=args.instructions,
    )
    args.console.result(comparison.render())
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.analysis.export import export_outcome, export_sweep

    pairs = (SPEC_SAME_PAIRS + SPEC_MIXED_PAIRS)[: args.pairs or 4]
    if args.resume:
        from repro.analysis.runner import resilient_spec_pair_sweep
        from repro.workloads.mixes import pair_label

        outcome = resilient_spec_pair_sweep(
            pairs=pairs,
            instructions=args.instructions,
            checkpoint_path=args.resume,
            jobs=args.jobs,
            engine=args.engine,
            quarantine_dir=_quarantine_dir_for(args.resume),
            obs_dir=args.obs_dir,
        )
        status = _report_sweep_outcome(args.console, outcome)
        labels = [pair_label(a, b) for a, b in pairs]
        path = export_outcome(outcome, labels, args.output)
        args.console.result(f"wrote {len(outcome.results)} results to {path}")
        return status
    results = spec_pair_sweep(
        pairs=pairs,
        instructions=args.instructions,
        jobs=args.jobs,
        engine=args.engine,
    )
    path = export_sweep(results, args.output)
    args.console.result(f"wrote {len(results)} results to {path}")
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from repro.robustness import run_fault_campaign

    per_model = 3 if args.quick else args.injections
    matrix = run_fault_campaign(per_model=per_model, seed=args.seed)
    args.console.result(matrix.render())
    args.console.result(
        f"\n{matrix.total} injections: "
        f"{matrix.total - matrix.silent_total} detected or benign, "
        f"{matrix.silent_total} silent"
    )
    return 1 if matrix.silent_total else 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Orchestration-level chaos campaign: kill/hang workers, corrupt
    checkpoint bytes, inject IO errors — all from a seeded plan — and
    score how the robustness layer coped.  Exit 1 if anything was
    *silent* (wrong data with no recorded error); quarantined-but-loud
    failures are the system working as designed, so they exit 0."""
    from repro.robustness.chaos import DEFAULT_QUICK_COUNTS, run_chaos_campaign

    console = args.console
    counts = None
    if args.injections is not None:
        from repro.robustness.chaos import CHAOS_MODELS

        counts = {model: args.injections for model in CHAOS_MODELS}
    elif args.quick:
        counts = dict(DEFAULT_QUICK_COUNTS)
    scorecard = run_chaos_campaign(
        seed=args.seed,
        counts=counts,
        jobs=args.jobs or 2,
        workdir=args.workdir,
    )
    console.result(scorecard.render())
    console.result(
        f"\n{scorecard.total} injections (seed {scorecard.seed}): "
        f"{sum(scorecard.recovered.values())} recovered, "
        f"{sum(scorecard.quarantined.values())} quarantined loudly, "
        f"{scorecard.silent_total} silent"
    )
    if args.output:
        from repro.robustness import safeio

        path = safeio.write_json_atomic(scorecard.to_dict(), args.output)
        console.info(f"wrote {path}")
    return EXIT_FATAL if scorecard.silent_total else EXIT_OK


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.analysis import bench

    console = args.console
    if args.profile:
        paths = bench.profile_benchmarks(
            names=args.only or None,
            quick=args.quick,
            jobs=args.jobs,
            engine=args.engine,
            output_dir=args.output_dir,
        )
        for path in paths:
            console.info(f"wrote {path}")
        return 0
    results = bench.run_benchmarks(
        names=args.only or None,
        quick=args.quick,
        jobs=args.jobs,
        engine=args.engine,
    )
    paths = bench.write_results(results, args.output_dir)
    console.result(bench.render_results(results))
    for path in paths:
        console.info(f"wrote {path}")
    if args.write_baseline:
        console.info(
            f"wrote baseline {bench.write_baseline(results, args.write_baseline)}"
        )
    if args.baseline:
        baseline = bench.load_baseline(args.baseline)
        regressions = bench.compare_to_baseline(
            results, baseline, threshold=args.threshold
        )
        if regressions:
            for message in regressions:
                console.error(f"REGRESSION {message}")
            if not args.warn_only:
                return 1
            console.info("(warn-only: not failing)")
        else:
            console.info(
                f"no regression vs {args.baseline} "
                f"(threshold {args.threshold:.0%})"
            )
    return 0


def _cmd_tournament(args: argparse.Namespace) -> int:
    """Attack tournament: every attack × every registered defense ×
    engine, scored as a statistical distinguishability game
    (AUC/CI/MI), written
    to a SECURITY.json scorecard.  ``--baseline`` gates enforcing-ly:
    unlike the perf gate, leakage scores are simulated-deterministic, so
    any drift is a code change.  Exit contract: 1 on gate failure or
    nothing scored, 3 when cells were quarantined, else 0."""
    from repro.analysis import tournament as tm
    from repro.analysis.runner import write_run_manifest

    console = args.console
    engines = tm.ENGINES if args.engine == "both" else (args.engine,)
    seed_count = args.seeds or (1 if args.quick else 2)
    seeds = tuple(args.seed + i for i in range(seed_count))
    n_boot = args.boot or (200 if args.quick else 500)
    try:
        outcome = tm.run_tournament(
            attacks=args.attacks or None,
            engines=engines,
            seeds=seeds,
            quick=args.quick,
            jobs=args.jobs,
            n_boot=n_boot,
            checkpoint_path=args.resume,
            quarantine_dir=_quarantine_dir_for(args.resume) if args.resume else None,
            obs_dir=args.obs_dir,
        )
    except ValueError as exc:  # unknown attack name
        console.error(str(exc))
        return EXIT_FATAL
    status = _report_sweep_outcome(console, outcome.sweep)
    if not outcome.cells:
        return EXIT_FATAL
    console.result(tm.render_scorecard(outcome))
    params = {
        "quick": args.quick,
        "seeds": list(seeds),
        "n_boot": n_boot,
        "engines": list(engines),
        "defenses": list(tm.DEFENSES),
        "attacks": list(args.attacks or tm.ATTACKS),
    }
    path = tm.write_scorecard(outcome, args.output, params=params)
    console.info(f"wrote {path}")
    write_run_manifest(
        Path(str(args.output) + ".manifest.json"),
        command=["repro"] + args.argv,
        config=tm.cell_config("flush_reload", "timecache", engines[0], seeds[0]),
        seed=seeds[0],
        artifacts=[Path(args.output)],
        extra={"cells": len(outcome.cells), "gaps": len(outcome.sweep.failures)},
    )
    if args.update_baseline:
        if not outcome.complete:
            console.error(
                "refusing to write a baseline with quarantined cells — "
                "a gap would silently exempt that attack from the gate"
            )
            return EXIT_FATAL
        bpath = tm.write_security_baseline(
            outcome, args.update_baseline, params=params
        )
        console.info(f"wrote baseline {bpath}")
    if args.baseline:
        baseline = tm.load_security_baseline(args.baseline)
        waived: List[str] = []
        failures = tm.compare_to_security_baseline(
            outcome.cells, baseline, tolerance=args.tolerance, waived=waived
        )
        for message in waived:
            console.info(f"KNOWN BOUNDARY {message}")
        if failures:
            for message in failures:
                console.error(f"SECURITY REGRESSION {message}")
            return EXIT_FATAL
        console.info(
            f"security gate passed vs {args.baseline} "
            f"(tolerance {args.tolerance:.2f})"
        )
    return status


def _cmd_compare_defenses(args: argparse.Namespace) -> int:
    """The defense zoo head-to-head: every attack × every registered
    defense × engine for leakage, plus a SPEC-pair overhead cell per
    (defense, engine), joined into one DEFENSE_MATRIX.json artifact.
    Exit contract: 1 when nothing was scored, 3 when cells were
    quarantined, else 0."""
    from repro.analysis import defense_matrix as dm
    from repro.analysis import tournament as tm
    from repro.analysis.runner import write_run_manifest
    from repro.defenses import defense_names

    console = args.console
    engines = tm.ENGINES if args.engine == "both" else (args.engine,)
    defenses = args.defenses or None
    seed_count = args.seeds or 1
    seeds = tuple(args.seed + i for i in range(seed_count))
    n_boot = args.boot or (200 if args.quick else 500)
    try:
        outcome = dm.run_defense_matrix(
            attacks=args.attacks or None,
            engines=engines,
            defenses=defenses,
            seeds=seeds,
            quick=args.quick,
            jobs=args.jobs,
            n_boot=n_boot,
            checkpoint_path=args.resume,
            quarantine_dir=_quarantine_dir_for(args.resume)
            if args.resume
            else None,
            obs_dir=args.obs_dir,
        )
    except ValueError as exc:  # unknown attack name
        console.error(str(exc))
        return EXIT_FATAL
    status = _report_sweep_outcome(console, outcome.sweep)
    if not outcome.cells:
        return EXIT_FATAL
    console.result(dm.render_matrix(outcome))
    params = {
        "quick": args.quick,
        "seeds": list(seeds),
        "n_boot": n_boot,
        "engines": list(engines),
        "defenses": list(defenses or defense_names()),
        "attacks": list(args.attacks or tm.ATTACKS),
    }
    path = dm.write_matrix(outcome, args.output, params=params)
    console.info(f"wrote {path}")
    write_run_manifest(
        Path(str(args.output) + ".manifest.json"),
        command=["repro"] + args.argv,
        config=tm.cell_config(
            (args.attacks or list(tm.ATTACKS))[0],
            (defenses or defense_names())[0],
            engines[0],
            seeds[0],
        ),
        seed=seeds[0],
        artifacts=[Path(args.output)],
        extra={"cells": len(outcome.cells), "gaps": len(outcome.sweep.failures)},
    )
    return status


def _cmd_trace(args: argparse.Namespace) -> int:
    """Run a traced flush+reload and leave a self-describing artifact
    directory: trace.jsonl (the event stream), trace.perfetto.json (load
    it in ui.perfetto.dev or chrome://tracing), and manifest.json."""
    from repro.analysis.runner import write_run_manifest
    from repro.attacks.flush_reload import run_microbenchmark_attack
    from repro.obs import JsonlSink, Tracer, read_events, write_chrome_trace

    console = args.console
    config = scaled_experiment_config(seed=args.seed, engine=args.engine)
    if args.baseline:
        config = config.baseline()
    out_dir = Path(args.output_dir)
    trace_path = out_dir / "trace.jsonl"
    perfetto_path = out_dir / "trace.perfetto.json"
    manifest_path = out_dir / "manifest.json"

    sink = JsonlSink(trace_path)
    tracer = Tracer(sink)
    tracer.trace_all_accesses = args.all_accesses
    outcome = run_microbenchmark_attack(
        config,
        shared_lines=args.lines,
        tracer=tracer,
        sample_every=args.sample_every,
    )
    tracer.close()
    console.info(f"{sink.emitted} events")
    write_chrome_trace(read_events(trace_path), perfetto_path)
    manifest = write_run_manifest(
        manifest_path,
        command=["repro"] + args.argv,
        config=config,
        artifacts=[trace_path, perfetto_path],
        extra={
            "events": sink.emitted,
            "probe_hits": outcome.probe_hits,
            "probe_total": outcome.probe_total,
        },
    )
    console.result(
        f"reload hits: {outcome.probe_hits}/{outcome.probe_total} "
        f"({'baseline' if args.baseline else 'TimeCache'}, {args.engine})"
    )
    for path in (trace_path, perfetto_path, manifest_path):
        console.result(f"wrote {path}")
    console.info(f"config sha256 {manifest.config_sha256[:12]}")
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    """Dispatch ``repro obs <subcommand>``."""
    return {
        "summarize": _cmd_obs_summarize,
        "flame": _cmd_obs_flame,
        "top": _cmd_obs_top,
    }[args.obs_command](args)


def _cmd_obs_summarize(args: argparse.Namespace) -> int:
    from repro.obs import read_events_tolerant, write_chrome_trace

    console = args.console
    events, torn = read_events_tolerant(args.trace)
    if torn:
        console.error(
            f"WARNING: skipped {torn} torn trailing line in {args.trace} "
            f"(crash-truncated write)"
        )
    if not events:
        console.error(f"no events in {args.trace}")
        return 1
    # Drop detection from the tracer's monotone seq counter (one counter
    # per tracer, shared across srcs): a first seq above zero means the
    # head of the stream never reached the file (a RingBufferSink that
    # overflowed and shed its oldest events); a seq range wider than the
    # event count means mid-stream drops.  Duplicate seqs mean several
    # tracers were merged into one file — gaps are unattributable then,
    # so the analysis stands down rather than cry wolf.
    seqs = sorted(event.seq for event in events)
    dropped_total = 0
    if len(set(seqs)) == len(seqs):
        head = seqs[0]
        gaps = (seqs[-1] - seqs[0] + 1) - len(seqs)
        dropped_total = max(head, 0) + max(gaps, 0)
        if head > 0:
            console.error(
                f"WARNING: first seq is {head} — {head} event(s) dropped "
                f"before the stream start (ring-buffer overflow?)"
            )
        if gaps > 0:
            console.error(
                f"WARNING: {gaps} event(s) missing mid-stream "
                f"(seq gaps — sink drops?)"
            )
    by_kind = Counter(event.kind for event in events)
    t_lo = min(event.ts for event in events)
    t_hi = max(event.ts for event in events)
    lines = [
        f"{len(events)} events over {t_hi - t_lo} simulated cycles "
        f"({args.trace})"
    ]
    for kind in sorted(by_kind):
        lines.append(f"  {by_kind[kind]:>8} {kind}")
    # pair phase.begin/end into spans (per context, LIFO for nesting)
    open_spans: dict = {}
    spans = []
    for event in events:
        key = (event.ctx, event.args.get("name"))
        if event.kind == "phase.begin":
            open_spans.setdefault(key, []).append(event.ts)
        elif event.kind == "phase.end" and open_spans.get(key):
            spans.append((event.args.get("name"), open_spans[key].pop(), event.ts))
    if spans:
        lines.append("phases:")
        for name, start, end in spans:
            lines.append(f"  {name:<12} [{start}, {end}]  {end - start} cycles")
    console.result("\n".join(lines))
    if args.perfetto:
        write_chrome_trace(events, args.perfetto)
        console.info(f"wrote {args.perfetto}")
    return EXIT_PARTIAL if (torn or dropped_total) else 0


def _cmd_obs_flame(args: argparse.Namespace) -> int:
    """Folded-stack flamegraph lines from a sweep's merged obs shards.

    The output is the standard ``stack;path value`` format consumed by
    flamegraph.pl / speedscope / inferno; values are span self-time in
    microseconds, summed across every worker shard, with the kernel-phase
    accumulators appearing under a synthetic ``kernel;<phase>`` root.
    """
    from repro.obs.shards import list_shards, merged_folded_stacks
    from repro.obs.spans import folded_to_lines

    console = args.console
    if not list_shards(args.obs_dir):
        console.error(f"no obs shards under {args.obs_dir}")
        return EXIT_FATAL
    folded = merged_folded_stacks(args.obs_dir)
    if not folded:
        console.error(f"shards under {args.obs_dir} carry no spans")
        return EXIT_FATAL
    text = "\n".join(folded_to_lines(folded))
    if args.out:
        Path(args.out).write_text(text + "\n")
        console.info(f"wrote {args.out} ({len(folded)} stacks)")
    else:
        console.result(text)
    return 0


def _render_obs_top(console: Console, obs_dir: str) -> Optional[str]:
    """One frame of the live sweep view; returns the heartbeat status
    (None when no heartbeat has been written yet)."""
    from repro.obs.shards import list_shards, load_shard, read_heartbeat

    hb = read_heartbeat(obs_dir)
    if hb is None:
        console.result(f"no heartbeat under {obs_dir} (sweep not started?)")
        return None
    quarantined = hb.get("quarantined", 0)
    if isinstance(quarantined, list):
        quarantined = len(quarantined)
    lines = [
        f"sweep {hb.get('status', '?'):<8} "
        f"done {hb.get('done', 0)}/{hb.get('total', 0)}  "
        f"failed {hb.get('failed', 0)}  "
        f"quarantined {quarantined}"
    ]
    for slot in hb.get("in_flight", []):
        lines.append(
            f"  RUN  {slot.get('label', '?'):<24} attempt "
            f"{slot.get('attempt', 1)}  {slot.get('age_s', 0.0):6.1f}s  "
            f"pid {slot.get('pid', '?')}"
        )
    for path in list_shards(obs_dir):
        try:
            shard = load_shard(path)
        except Exception:
            continue  # partially-written shard; next frame will see it
        counts = shard.get("counters", {})
        phases = shard.get("kernel_phases", {})
        state = "ok" if shard.get("ok", True) else "FAILED"
        lines.append(
            f"  {state:<4} {shard.get('label', path.stem):<24} "
            f"counters {len(counts)}  kernel windows "
            f"{phases.get('windows', 0)}  attempt {shard.get('attempt', 1)}"
        )
    console.result("\n".join(lines))
    return str(hb.get("status", ""))


def _cmd_obs_top(args: argparse.Namespace) -> int:
    """Live console view of a supervised sweep from its heartbeat file
    and whatever worker shards have landed so far."""
    import time as _time

    console = args.console
    status = _render_obs_top(console, args.obs_dir)
    if args.once:
        return 0 if status is not None else EXIT_FATAL
    while status != "done":
        _time.sleep(args.interval)
        console.result("")
        status = _render_obs_top(console, args.obs_dir)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TimeCache (ISCA 2021) reproduction - artifact driver",
    )
    parser.add_argument(
        "--instructions",
        type=int,
        default=150_000,
        help="instructions per simulated process/thread",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--quiet",
        action="store_true",
        default=False,
        help="suppress progress output (artifacts and errors still print)",
    )
    # --quiet is also accepted after the subcommand; SUPPRESS keeps the
    # global value when the per-command flag is absent.
    quiet_parent = argparse.ArgumentParser(add_help=False)
    quiet_parent.add_argument(
        "--quiet", action="store_true", default=argparse.SUPPRESS,
        help=argparse.SUPPRESS,
    )
    # Shared by every sweep-shaped command (anything embarrassingly
    # parallel); micro/rsa/compare/faults run single simulations.
    jobs_parent = argparse.ArgumentParser(add_help=False)
    jobs_parent.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for the sweep (default: one per CPU; "
        "1 = the exact serial path)",
    )
    jobs_parent.add_argument(
        "--engine",
        choices=("object", "fast"),
        default="object",
        help="simulation engine: 'object' is the reference model, 'fast' "
        "the struct-of-arrays engine (identical results, ~5x throughput)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser(
        "micro", help="Section VI-A1 microbenchmark", parents=[quiet_parent]
    )
    sub.add_parser(
        "rsa", help="Section VI-A2 RSA key extraction", parents=[quiet_parent]
    )
    for name, help_text in (
        ("table2", "Table II / Figure 7 SPEC sweep"),
        ("fig8", "Figure 8 first-access MPKI per level"),
        ("fig9", "Figure 9 PARSEC sweep"),
        ("fig10", "Figure 10 LLC sensitivity"),
    ):
        p = sub.add_parser(
            name, help=help_text, parents=[jobs_parent, quiet_parent]
        )
        p.add_argument(
            "--pairs", type=int, default=0, help="limit the workload count"
        )
        if name in ("table2", "fig8", "fig9"):
            p.add_argument(
                "--resume",
                metavar="CHECKPOINT",
                default=None,
                help="run resiliently, checkpointing to (and resuming "
                "from) this JSON file; quarantined cells land in "
                "CHECKPOINT.quarantine/ and the command exits 3",
            )
            p.add_argument(
                "--obs-dir",
                metavar="DIR",
                default=None,
                help="with --resume and --jobs >= 2: write per-worker "
                "obs shards, a heartbeat, and a merged Perfetto trace + "
                "counters JSON under DIR (see 'repro obs top/flame')",
            )
    compare = sub.add_parser(
        "compare",
        help="TimeCache vs partitioning on one pair",
        parents=[quiet_parent],
    )
    compare.add_argument("--bench", default="perlbench")
    export = sub.add_parser(
        "export",
        help="run a sweep, write JSON results",
        parents=[jobs_parent, quiet_parent],
    )
    export.add_argument("--output", default="results.json")
    export.add_argument("--pairs", type=int, default=0)
    export.add_argument(
        "--resume",
        metavar="CHECKPOINT",
        default=None,
        help="run resiliently, checkpointing to (and resuming from) "
        "this JSON file",
    )
    export.add_argument(
        "--obs-dir",
        metavar="DIR",
        default=None,
        help="with --resume and --jobs >= 2: write obs shards and a "
        "merged trace under DIR",
    )
    faults = sub.add_parser(
        "faults",
        help="fault-injection campaign against the defense",
        parents=[quiet_parent],
    )
    faults.add_argument(
        "--injections",
        type=int,
        default=30,
        help="seeded injections per fault model",
    )
    faults.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: 3 injections per model",
    )
    chaos = sub.add_parser(
        "chaos",
        help="orchestration chaos campaign: kill/hang/corrupt/io_error "
        "against the sweep layer, prints a resilience scorecard",
        parents=[quiet_parent],
    )
    chaos.add_argument(
        "--quick",
        action="store_true",
        help="the CI mix: >=50 seeded injections across all four models",
    )
    chaos.add_argument(
        "--injections",
        type=int,
        default=None,
        metavar="N",
        help="N injections per chaos model (overrides --quick)",
    )
    chaos.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker slots for the sabotaged mini-sweeps (default 2)",
    )
    chaos.add_argument(
        "--output",
        metavar="SCORECARD.json",
        default=None,
        help="also write the scorecard as JSON (crash-safely)",
    )
    chaos.add_argument(
        "--workdir",
        default=None,
        help="keep campaign artifacts here instead of a temp dir",
    )
    bench = sub.add_parser(
        "bench",
        help="perf benchmark harness, writes BENCH_<name>.json",
        parents=[jobs_parent, quiet_parent],
    )
    bench.add_argument(
        "--quick", action="store_true", help="smaller workloads, fewer runs"
    )
    bench.add_argument(
        "--only",
        action="append",
        metavar="NAME",
        help="run just this benchmark (repeatable)",
    )
    bench.add_argument(
        "--output-dir", default=".", help="where BENCH_<name>.json files go"
    )
    bench.add_argument(
        "--baseline",
        metavar="BASELINE.json",
        default=None,
        help="compare against this committed baseline; exit 1 on regression",
    )
    bench.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="relative slowdown that counts as a regression (default 0.20)",
    )
    bench.add_argument(
        "--warn-only",
        action="store_true",
        help="report regressions but exit 0 (for alien/noisy CI hardware)",
    )
    bench.add_argument(
        "--write-baseline",
        metavar="PATH",
        default=None,
        help="also write the results as a new baseline file",
    )
    bench.add_argument(
        "--profile",
        action="store_true",
        help="run each workload under cProfile and write "
        "BENCH_profile_<name>.pstats instead of timing it",
    )
    tournament = sub.add_parser(
        "tournament",
        help="attack tournament: statistical leakage scorecard "
        "(SECURITY.json) with an enforcing --baseline gate",
        parents=[quiet_parent],
    )
    tournament.add_argument(
        "--quick",
        action="store_true",
        help="CI mode: fewer rounds/seeds/bootstrap replicates",
    )
    tournament.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="supervised worker processes for the cell matrix "
        "(default: one per CPU; 1 = the serial path)",
    )
    tournament.add_argument(
        "--engine",
        choices=("object", "fast", "both"),
        default="both",
        help="which engine(s) to score (default: both)",
    )
    tournament.add_argument(
        "--attacks",
        action="append",
        metavar="NAME",
        help="score just this attack (repeatable; default: all)",
    )
    tournament.add_argument(
        "--seeds",
        type=int,
        default=None,
        metavar="N",
        help="pool latencies over N seeds starting at --seed "
        "(default: 1 quick, 2 full)",
    )
    tournament.add_argument(
        "--boot",
        type=int,
        default=None,
        metavar="N",
        help="bootstrap replicates per cell (default: 200 quick, 500 full)",
    )
    tournament.add_argument(
        "--output",
        default="SECURITY.json",
        help="scorecard path (default SECURITY.json)",
    )
    tournament.add_argument(
        "--baseline",
        metavar="BASELINE.json",
        default=None,
        help="enforce the security gate against this committed baseline; "
        "exit 1 on any regression",
    )
    tournament.add_argument(
        "--tolerance",
        type=float,
        default=0.05,
        help="AUC-separation headroom above the baseline before a "
        "defense-on cell counts as a regression (default 0.05)",
    )
    tournament.add_argument(
        "--update-baseline",
        metavar="PATH",
        default=None,
        help="also write these scores as a new baseline (refused when "
        "any cell was quarantined)",
    )
    tournament.add_argument(
        "--resume",
        metavar="CHECKPOINT",
        default=None,
        help="checkpoint scored cells to (and resume from) this JSON "
        "file; quarantined cells land in CHECKPOINT.quarantine/",
    )
    tournament.add_argument(
        "--obs-dir",
        metavar="DIR",
        default=None,
        help="with --jobs >= 2: write per-worker obs shards and a merged "
        "Perfetto trace + counters JSON under DIR",
    )
    compare_defenses = sub.add_parser(
        "compare-defenses",
        help="defense zoo head-to-head: overhead vs leakage matrix over "
        "every registered defense (DEFENSE_MATRIX.json)",
        parents=[quiet_parent],
    )
    compare_defenses.add_argument(
        "--quick",
        action="store_true",
        help="CI mode: fewer rounds/replicates, shorter overhead runs",
    )
    compare_defenses.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="supervised worker processes for the cell matrix "
        "(default: one per CPU; 1 = the serial path)",
    )
    compare_defenses.add_argument(
        "--engine",
        choices=("object", "fast", "both"),
        default="both",
        help="which engine(s) to score (default: both)",
    )
    compare_defenses.add_argument(
        "--attacks",
        action="append",
        metavar="NAME",
        help="score just this attack (repeatable; default: all)",
    )
    compare_defenses.add_argument(
        "--defenses",
        action="append",
        metavar="NAME",
        help="score just this defense (repeatable; default: every "
        "registered defense)",
    )
    compare_defenses.add_argument(
        "--seeds",
        type=int,
        default=None,
        metavar="N",
        help="pool latencies over N seeds starting at --seed (default 1)",
    )
    compare_defenses.add_argument(
        "--boot",
        type=int,
        default=None,
        metavar="N",
        help="bootstrap replicates per cell (default: 200 quick, 500 full)",
    )
    compare_defenses.add_argument(
        "--output",
        default="DEFENSE_MATRIX.json",
        help="matrix artifact path (default DEFENSE_MATRIX.json)",
    )
    compare_defenses.add_argument(
        "--resume",
        metavar="CHECKPOINT",
        default=None,
        help="checkpoint scored cells to (and resume from) this JSON "
        "file; quarantined cells land in CHECKPOINT.quarantine/",
    )
    compare_defenses.add_argument(
        "--obs-dir",
        metavar="DIR",
        default=None,
        help="with --jobs >= 2: write per-worker obs shards and a merged "
        "Perfetto trace + counters JSON under DIR",
    )
    trace = sub.add_parser(
        "trace",
        help="traced flush+reload: trace.jsonl + Perfetto file + manifest",
        parents=[quiet_parent],
    )
    trace.add_argument(
        "--output-dir",
        default="trace_out",
        help="directory for trace.jsonl / trace.perfetto.json / manifest.json",
    )
    trace.add_argument(
        "--lines", type=int, default=64, help="shared lines to flush and probe"
    )
    trace.add_argument(
        "--engine", choices=("object", "fast"), default="object"
    )
    trace.add_argument(
        "--baseline",
        action="store_true",
        help="trace the undefended baseline instead of TimeCache",
    )
    trace.add_argument(
        "--sample-every",
        type=int,
        default=20_000,
        help="metrics.sample cadence in simulated cycles (0 disables)",
    )
    trace.add_argument(
        "--all-accesses",
        action="store_true",
        help="emit an access.result event for every access (verbose)",
    )
    obs = sub.add_parser(
        "obs", help="inspect observability artifacts", parents=[quiet_parent]
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    summarize = obs_sub.add_parser(
        "summarize",
        help="summarize a trace.jsonl event stream",
        parents=[quiet_parent],
    )
    summarize.add_argument("trace", help="path to a trace.jsonl file")
    summarize.add_argument(
        "--perfetto",
        metavar="OUT.json",
        default=None,
        help="also export a Chrome trace-event file",
    )
    flame = obs_sub.add_parser(
        "flame",
        help="folded flamegraph stacks from a sweep's merged obs shards",
        parents=[quiet_parent],
    )
    flame.add_argument(
        "--obs-dir",
        required=True,
        metavar="DIR",
        help="the --obs-dir a supervised sweep wrote its shards to",
    )
    flame.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="write the folded stacks here instead of stdout "
        "(feed to flamegraph.pl / speedscope / inferno)",
    )
    top = obs_sub.add_parser(
        "top",
        help="live view of a running supervised sweep (heartbeat + shards)",
        parents=[quiet_parent],
    )
    top.add_argument(
        "obs_dir", metavar="OBS_DIR",
        help="the --obs-dir of the sweep to watch",
    )
    top.add_argument(
        "--once", action="store_true",
        help="print one frame and exit instead of polling until done",
    )
    top.add_argument(
        "--interval", type=float, default=2.0,
        help="seconds between frames (default 2)",
    )
    return parser


_COMMANDS = {
    "micro": _cmd_micro,
    "rsa": _cmd_rsa,
    "table2": _cmd_table2,
    "fig8": _cmd_fig8,
    "fig9": _cmd_fig9,
    "fig10": _cmd_fig10,
    "compare": _cmd_compare,
    "export": _cmd_export,
    "faults": _cmd_faults,
    "chaos": _cmd_chaos,
    "bench": _cmd_bench,
    "tournament": _cmd_tournament,
    "compare-defenses": _cmd_compare_defenses,
    "trace": _cmd_trace,
    "obs": _cmd_obs,
}


def main(argv: Optional[List[str]] = None) -> int:
    from repro.common.errors import ReproError

    args = build_parser().parse_args(argv)
    args.console = Console(quiet=args.quiet)
    args.argv = list(argv) if argv is not None else sys.argv[1:]
    try:
        return _COMMANDS[args.command](args)
    except ReproError as error:
        # Fatal under the exit contract: nothing usable was produced.
        args.console.error(f"fatal: {type(error).__name__}: {error}")
        return EXIT_FATAL


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
