"""Text renderers that print rows/series like the paper's artifacts."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.experiment import ExperimentResult
from repro.common.units import geometric_mean


def render_table2(
    results: Sequence[ExperimentResult],
    paper: Optional[Mapping[str, Tuple[float, float, float]]] = None,
    gaps: Sequence[str] = (),
) -> str:
    """Table II layout: workload, normalized time, baseline/TimeCache MPKI.

    When ``paper`` is given, the published numbers are printed alongside
    the measured ones for the EXPERIMENTS.md comparison.  ``gaps`` lists
    workloads that produced no result (quarantined by the resilient
    runner): each gets an explicit placeholder row and the geomean is
    flagged as partial, so a degraded table can never pass for a
    complete one.
    """
    lines: List[str] = []
    header = (
        f"{'Workload':<18} {'Overhead':>9} {'MPKI base':>10} {'MPKI tc':>9}"
    )
    if paper:
        header += f"   {'paper-ovh':>9} {'paper-base':>10} {'paper-tc':>9}"
    lines.append(header)
    lines.append("-" * len(header))
    for result in results:
        row = (
            f"{result.label:<18} {result.normalized_time:>9.4f} "
            f"{result.baseline.llc_mpki:>10.4f} "
            f"{result.timecache.llc_mpki:>9.4f}"
        )
        if paper and result.label in paper:
            p = paper[result.label]
            row += f"   {p[0]:>9.4f} {p[1]:>10.4f} {p[2]:>9.4f}"
        lines.append(row)
    for label in gaps:
        lines.append(
            f"{label:<18} {'--':>9} {'--':>10} {'--':>9}   [quarantined]"
        )
    ratios = [r.normalized_time for r in results]
    if ratios:
        lines.append("-" * len(header))
        geomean_label = "geomean*" if gaps else "geomean"
        lines.append(
            f"{geomean_label:<18} {geometric_mean(ratios):>9.4f}"
        )
    if gaps:
        lines.append(
            f"* partial: {len(results)} of {len(results) + len(gaps)} "
            f"workloads (gaps quarantined, excluded from the geomean)"
        )
    return "\n".join(lines)


def render_mpki_table(
    results: Sequence[ExperimentResult], gaps: Sequence[str] = ()
) -> str:
    """Figure 8/9b layout: first-access MPKI per cache level.

    ``gaps`` lists quarantined workloads; they render as explicit
    placeholder rows (see :func:`render_table2`).
    """
    lines: List[str] = []
    header = (
        f"{'Workload':<18} {'L1I fa-MPKI':>12} {'L1D fa-MPKI':>12} "
        f"{'LLC fa-MPKI':>12}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for result in results:
        tc = result.timecache.level_mpki
        lines.append(
            f"{result.label:<18} "
            f"{tc['L1I'].first_access_misses:>12.4f} "
            f"{tc['L1D'].first_access_misses:>12.4f} "
            f"{tc['LLC'].first_access_misses:>12.4f}"
        )
    for label in gaps:
        lines.append(
            f"{label:<18} {'--':>12} {'--':>12} {'--':>12}   [quarantined]"
        )
    return "\n".join(lines)


def render_figure_series(
    title: str, series: Iterable[Tuple[str, float]], unit: str = ""
) -> str:
    """A labeled one-dimensional series (Figure 7/9a/10 style)."""
    lines = [title, "-" * len(title)]
    for label, value in series:
        lines.append(f"{label:<22} {value:>10.4f} {unit}")
    return "\n".join(lines)


def summarize_overheads(results: Sequence[ExperimentResult]) -> Dict[str, float]:
    """Aggregate metrics the paper headlines."""
    ratios = [r.normalized_time for r in results]
    book = [r.bookkeeping_fraction for r in results]
    return {
        "geomean_normalized_time": geometric_mean(ratios) if ratios else 1.0,
        "geomean_overhead": (geometric_mean(ratios) - 1.0) if ratios else 0.0,
        "mean_bookkeeping_fraction": sum(book) / len(book) if book else 0.0,
        "max_overhead": max((r - 1.0 for r in ratios), default=0.0),
    }
