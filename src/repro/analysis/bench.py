"""Perf benchmark harness: time the hot paths, gate regressions.

``repro bench`` times a handful of representative workloads and writes
one ``BENCH_<name>.json`` per workload (median over repeated runs plus
machine metadata), giving the repository a perf trajectory that CI can
watch.  The workloads:

* ``single_config``     — one baseline-vs-TimeCache SPEC pair experiment
  (the unit of every sweep);
* ``comparator``        — the gate-level ``compare_sram`` scan vs the
  vectorized ``fast_compare`` over the same timestamp array;
* ``hierarchy_access``  — raw access throughput through the modeled
  L1/LLC hierarchy with TimeCache enabled;
* ``sweep_parallel``    — a small SPEC pair sweep at ``--jobs 1`` vs
  ``--jobs N``, recording the process-pool speedup.

Comparison mode (``--baseline PATH``) loads a committed baseline (see
``benchmarks/perf/BASELINE.json``) and *fails* — returns regressions —
when any shared workload's median exceeds the baseline by more than
``threshold`` (default 20%).  Hosted CI runners have noisy, alien
hardware, so the perf-smoke job runs the comparison warn-only; the
comparison logic itself is strict and unit-tested.
"""

from __future__ import annotations

import os
import platform
import statistics
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

BENCH_SCHEMA = 1
#: relative slowdown vs baseline that counts as a regression
DEFAULT_THRESHOLD = 0.20


@dataclass
class BenchResult:
    """Timing for one benchmark workload."""

    name: str
    runs: List[float]
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def median_s(self) -> float:
        return statistics.median(self.runs)

    def to_dict(self, meta: Optional[Mapping] = None) -> Dict:
        payload: Dict = {
            "schema": BENCH_SCHEMA,
            "kind": "bench_result",
            "name": self.name,
            "median_s": self.median_s,
            "runs": list(self.runs),
            "extra": dict(self.extra),
        }
        if meta is not None:
            payload["meta"] = dict(meta)
        return payload


def machine_metadata() -> Dict:
    """Where a measurement came from — medians are only comparable
    against a baseline taken on similar hardware."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "taken_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }


def _time_runs(fn: Callable[[], object], repeats: int) -> List[float]:
    runs: List[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        runs.append(time.perf_counter() - start)
    return runs


# --------------------------------------------------------------------------
# workloads


def bench_single_config(quick: bool = False) -> BenchResult:
    """One SPEC pair experiment — the unit of work every sweep repeats."""
    from repro.analysis.experiment import run_spec_pair_experiment
    from repro.common.config import scaled_experiment_config

    instructions = 4_000 if quick else 40_000
    config = scaled_experiment_config(num_cores=1, llc_kib=32, seed=0xBEEF)
    runs = _time_runs(
        lambda: run_spec_pair_experiment(
            config, "wrf", "wrf", instructions=instructions, seed=0xBEEF
        ),
        repeats=3 if quick else 5,
    )
    return BenchResult(
        name="single_config",
        runs=runs,
        extra={"instructions": float(instructions)},
    )


def bench_comparator(quick: bool = False) -> BenchResult:
    """Gate-level bit-serial scan vs the vectorized functional path.

    The headline number (``runs``) times ``fast_compare`` — the path the
    experiments take on every context switch; ``extra`` records the
    gate-level ``compare_sram`` median over the same array and the
    resulting speedup.
    """
    from repro.core.comparator import BitSerialComparator
    from repro.core.timestamp import TimestampDomain

    words = 4_096 if quick else 16_384
    domain = TimestampDomain(bits=16)
    comparator = BitSerialComparator(domain)
    rng = np.random.default_rng(0xC0FFEE)
    tc_values = rng.integers(0, domain.modulus, size=words, dtype=np.int64)
    ts = int(domain.modulus // 2)
    repeats = 5 if quick else 9

    fast_runs = _time_runs(lambda: comparator.fast_compare(tc_values, ts), repeats)
    sram_runs = _time_runs(
        lambda: comparator.compare_values(tc_values, ts), repeats
    )
    fast_median = statistics.median(fast_runs)
    sram_median = statistics.median(sram_runs)
    return BenchResult(
        name="comparator",
        runs=fast_runs,
        extra={
            "words": float(words),
            "sram_median_s": sram_median,
            "fast_median_s": fast_median,
            "fast_speedup": sram_median / fast_median if fast_median else 0.0,
        },
    )


def bench_hierarchy_access(quick: bool = False) -> BenchResult:
    """Raw access throughput through the modeled hierarchy."""
    from repro.common.rng import DeterministicRng
    from repro.core.timecache import TimeCacheSystem
    from repro.memsys.hierarchy import AccessKind
    from repro.robustness.campaign import campaign_config

    accesses = 20_000 if quick else 100_000
    system = TimeCacheSystem(campaign_config(seed=7))
    line_bytes = system.config.hierarchy.line_bytes
    rng = DeterministicRng(7)
    pool = [0x10000 + i * line_bytes for i in range(256)]
    addrs = [rng.choice(pool) for _ in range(accesses)]

    def drive() -> None:
        now = 0
        for addr in addrs:
            result = system.access(0, addr, AccessKind.LOAD, now=now)
            now += max(1, result.latency)

    runs = _time_runs(drive, repeats=3 if quick else 5)
    return BenchResult(
        name="hierarchy_access",
        runs=runs,
        extra={
            "accesses": float(accesses),
            "accesses_per_s": accesses / statistics.median(runs),
        },
    )


def bench_sweep_parallel(
    quick: bool = False, jobs: Optional[int] = None
) -> BenchResult:
    """A small SPEC pair sweep serially vs across the process pool.

    ``runs`` times the parallel sweep; ``extra`` records the serial
    median and the speedup — the number the tentpole exists to move.
    """
    from repro.analysis.parallel import resolve_jobs
    from repro.analysis.runner import spec_pair_sweep

    workers = resolve_jobs(jobs)
    pairs = [("wrf", "wrf"), ("milc", "milc"), ("perlbench", "perlbench"),
             ("gobmk", "gobmk")]
    instructions = 8_000 if quick else 40_000
    repeats = 1 if quick else 3

    serial_runs = _time_runs(
        lambda: spec_pair_sweep(pairs=pairs, instructions=instructions, jobs=1),
        repeats,
    )
    parallel_runs = _time_runs(
        lambda: spec_pair_sweep(
            pairs=pairs, instructions=instructions, jobs=workers
        ),
        repeats,
    )
    serial_median = statistics.median(serial_runs)
    parallel_median = statistics.median(parallel_runs)
    return BenchResult(
        name="sweep_parallel",
        runs=parallel_runs,
        extra={
            "pairs": float(len(pairs)),
            "instructions": float(instructions),
            "jobs": float(workers),
            "serial_median_s": serial_median,
            "parallel_median_s": parallel_median,
            "speedup": serial_median / parallel_median if parallel_median else 0.0,
        },
    )


#: name -> workload; iteration order is execution order
BENCHMARKS: Dict[str, Callable[..., BenchResult]] = {
    "single_config": bench_single_config,
    "comparator": bench_comparator,
    "hierarchy_access": bench_hierarchy_access,
    "sweep_parallel": bench_sweep_parallel,
}


def run_benchmarks(
    names: Optional[Sequence[str]] = None,
    quick: bool = False,
    jobs: Optional[int] = None,
) -> Dict[str, BenchResult]:
    """Run the named workloads (all by default), in registry order."""
    selected = list(BENCHMARKS) if not names else list(names)
    unknown = [n for n in selected if n not in BENCHMARKS]
    if unknown:
        raise ValueError(
            f"unknown benchmark(s) {unknown}; known: {sorted(BENCHMARKS)}"
        )
    results: Dict[str, BenchResult] = {}
    for name in selected:
        fn = BENCHMARKS[name]
        if name == "sweep_parallel":
            results[name] = fn(quick=quick, jobs=jobs)
        else:
            results[name] = fn(quick=quick)
    return results


def write_results(
    results: Mapping[str, BenchResult],
    output_dir: Union[str, Path] = ".",
) -> List[Path]:
    """Write one ``BENCH_<name>.json`` per result; returns the paths."""
    from repro.analysis.export import save_json

    meta = machine_metadata()
    out = Path(output_dir)
    paths: List[Path] = []
    for name, result in results.items():
        paths.append(save_json(result.to_dict(meta), out / f"BENCH_{name}.json"))
    return paths


# --------------------------------------------------------------------------
# baseline comparison


def baseline_payload(results: Mapping[str, BenchResult]) -> Dict:
    return {
        "schema": BENCH_SCHEMA,
        "kind": "bench_baseline",
        "meta": machine_metadata(),
        "benches": {
            name: {"median_s": result.median_s, "extra": dict(result.extra)}
            for name, result in results.items()
        },
    }


def write_baseline(
    results: Mapping[str, BenchResult], path: Union[str, Path]
) -> Path:
    """Persist the current medians as the committed baseline."""
    from repro.analysis.export import save_json

    return save_json(baseline_payload(results), path)


def load_baseline(path: Union[str, Path]) -> Dict[str, float]:
    """Baseline medians keyed by bench name."""
    import json

    with open(path) as handle:
        payload = json.load(handle)
    if payload.get("kind") != "bench_baseline":
        raise ValueError(f"{path}: not a bench baseline file")
    return {
        name: float(entry["median_s"])
        for name, entry in payload.get("benches", {}).items()
    }


def compare_to_baseline(
    results: Mapping[str, BenchResult],
    baseline: Mapping[str, float],
    threshold: float = DEFAULT_THRESHOLD,
) -> List[str]:
    """Regression messages for every shared bench that got slower.

    A bench regresses when ``current > baseline * (1 + threshold)``.
    Benches present on only one side are ignored (new benches must not
    fail the gate retroactively).  An empty list means the gate passes.
    """
    regressions: List[str] = []
    for name, result in results.items():
        base = baseline.get(name)
        if base is None or base <= 0:
            continue
        ratio = result.median_s / base
        if ratio > 1.0 + threshold:
            regressions.append(
                f"{name}: {result.median_s:.4f}s vs baseline {base:.4f}s "
                f"({ratio:.2f}x, threshold {1.0 + threshold:.2f}x)"
            )
    return regressions


def render_results(results: Mapping[str, BenchResult]) -> str:
    """One line per bench: median plus the most interesting extras."""
    lines = []
    for name, result in results.items():
        extras = ""
        if "speedup" in result.extra:
            extras = f"  speedup {result.extra['speedup']:.2f}x"
        elif "fast_speedup" in result.extra:
            extras = f"  fast_speedup {result.extra['fast_speedup']:.1f}x"
        elif "accesses_per_s" in result.extra:
            extras = f"  {result.extra['accesses_per_s']:,.0f} accesses/s"
        lines.append(
            f"{name:<18} median {result.median_s:.4f}s over "
            f"{len(result.runs)} run(s){extras}"
        )
    return "\n".join(lines)
