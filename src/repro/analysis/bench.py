"""Perf benchmark harness: time the hot paths, gate regressions.

``repro bench`` times a handful of representative workloads and writes
one ``BENCH_<name>.json`` per workload (median over repeated runs plus
machine metadata), giving the repository a perf trajectory that CI can
watch.  The workloads:

* ``single_config``     — one baseline-vs-TimeCache SPEC pair experiment
  (the unit of every sweep);
* ``comparator``        — the gate-level ``compare_sram`` scan vs the
  vectorized ``fast_compare`` over the same timestamp array;
* ``hierarchy_access``  — raw access throughput through the modeled
  L1/LLC hierarchy with TimeCache enabled;
* ``hierarchy_access_batched`` — ``access_batch`` throughput over the
  hot/cold reference trace, with the same trace driven scalar recorded
  alongside (``batch_speedup``);
* ``hierarchy_access_traced`` — the same access trace under the
  observability layer: no tracer, a disabled tracer (the production
  default, gated at <5% overhead), and an enabled tracer streaming
  JSONL;
* ``fill_kernel``       — a cold sweep of distinct lines through
  ``access_batch``: every access is a miss + fill, so the median times
  the batched fill path end to end (events/s in ``extra``);
* ``evict_kernel``      — the same sweep against a warmed hierarchy:
  every fill must evict a victim first, timing victim selection +
  eviction bookkeeping at steady state;
* ``sbit_miss_kernel``  — context switch to a fresh task, then re-touch
  an L1-resident working set: every access is a first-access s-bit miss
  on a resident line (TimeCache's signature event), timing the batched
  s-bit miss-resolution cohort;
* ``sweep_parallel``    — a small SPEC pair sweep at ``--jobs 1`` vs
  ``--jobs N``, recording the process-pool speedup.

The engine-shaped workloads (``single_config``, ``hierarchy_access``,
``hierarchy_access_batched``, ``sweep_parallel``) accept
``engine="object"|"fast"`` and, under the
fast engine, record under a ``_fast``-suffixed name so a baseline file
holds one entry per engine.  A workload can also *decline* to produce a
number — ``sweep_parallel`` on a single-CPU machine reports
``skipped: insufficient_cpus`` instead of a meaningless median — and
skipped entries are ignored on both sides of the baseline comparison.

Comparison mode (``--baseline PATH``) loads a committed baseline (see
``benchmarks/perf/BASELINE.json``) and *fails* — returns regressions —
when any shared workload's median exceeds the baseline by more than
``threshold`` (default 20%).  Hosted CI runners have noisy, alien
hardware, so the perf-smoke job runs the comparison warn-only; the
comparison logic itself is strict and unit-tested.
"""

from __future__ import annotations

import os
import platform
import statistics
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

BENCH_SCHEMA = 1
#: relative slowdown vs baseline that counts as a regression
DEFAULT_THRESHOLD = 0.20
#: workloads that take an ``engine=`` keyword and get a ``_fast`` suffix
ENGINE_AWARE = (
    "single_config",
    "hierarchy_access",
    "hierarchy_access_batched",
    "hierarchy_access_traced",
    "fill_kernel",
    "evict_kernel",
    "sbit_miss_kernel",
    "sweep_parallel",
)


@dataclass
class BenchResult:
    """Timing for one benchmark workload.

    ``skipped`` holds a machine-readable reason when the workload could
    not produce a meaningful number on this host (``runs`` is empty and
    ``median_s`` reads 0.0); baseline comparison ignores such entries.
    """

    name: str
    runs: List[float]
    extra: Dict[str, float] = field(default_factory=dict)
    skipped: Optional[str] = None

    @property
    def median_s(self) -> float:
        return statistics.median(self.runs) if self.runs else 0.0

    def to_dict(self, meta: Optional[Mapping] = None) -> Dict:
        payload: Dict = {
            "schema": BENCH_SCHEMA,
            "kind": "bench_result",
            "name": self.name,
            "median_s": self.median_s,
            "runs": list(self.runs),
            "extra": dict(self.extra),
        }
        if self.skipped:
            payload["skipped"] = self.skipped
        if meta is not None:
            payload["meta"] = dict(meta)
        return payload


def machine_metadata() -> Dict:
    """Where a measurement came from — medians are only comparable
    against a baseline taken on similar hardware."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "taken_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }


def _time_runs(fn: Callable[[], object], repeats: int) -> List[float]:
    runs: List[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        runs.append(time.perf_counter() - start)
    return runs


# --------------------------------------------------------------------------
# workloads


def bench_single_config(quick: bool = False, engine: str = "object") -> BenchResult:
    """One SPEC pair experiment — the unit of work every sweep repeats."""
    from repro.analysis.experiment import run_spec_pair_experiment
    from repro.common.config import scaled_experiment_config

    instructions = 4_000 if quick else 40_000
    config = scaled_experiment_config(
        num_cores=1, llc_kib=32, seed=0xBEEF, engine=engine
    )
    runs = _time_runs(
        lambda: run_spec_pair_experiment(
            config, "wrf", "wrf", instructions=instructions, seed=0xBEEF
        ),
        repeats=3 if quick else 5,
    )
    return BenchResult(
        name="single_config",
        runs=runs,
        extra={"instructions": float(instructions)},
    )


def bench_comparator(quick: bool = False) -> BenchResult:
    """Gate-level bit-serial scan vs the vectorized functional path.

    The headline number (``runs``) times ``fast_compare`` — the path the
    experiments take on every context switch; ``extra`` records the
    gate-level ``compare_sram`` median over the same array and the
    resulting speedup.
    """
    from repro.core.comparator import BitSerialComparator
    from repro.core.timestamp import TimestampDomain

    words = 4_096 if quick else 16_384
    domain = TimestampDomain(bits=16)
    comparator = BitSerialComparator(domain)
    rng = np.random.default_rng(0xC0FFEE)
    tc_values = rng.integers(0, domain.modulus, size=words, dtype=np.int64)
    ts = int(domain.modulus // 2)
    repeats = 5 if quick else 9

    fast_runs = _time_runs(lambda: comparator.fast_compare(tc_values, ts), repeats)
    sram_runs = _time_runs(
        lambda: comparator.compare_values(tc_values, ts), repeats
    )
    fast_median = statistics.median(fast_runs)
    sram_median = statistics.median(sram_runs)
    return BenchResult(
        name="comparator",
        runs=fast_runs,
        extra={
            "words": float(words),
            "sram_median_s": sram_median,
            "fast_median_s": fast_median,
            "fast_speedup": sram_median / fast_median if fast_median else 0.0,
        },
    )


def bench_hierarchy_access(
    quick: bool = False, engine: str = "object"
) -> BenchResult:
    """Raw access throughput through the modeled hierarchy."""
    import dataclasses

    from repro.common.rng import DeterministicRng
    from repro.core.timecache import TimeCacheSystem
    from repro.memsys.hierarchy import AccessKind
    from repro.robustness.campaign import campaign_config

    accesses = 20_000 if quick else 100_000
    config = campaign_config(seed=7)
    if engine != config.hierarchy.engine:
        config = dataclasses.replace(
            config,
            hierarchy=dataclasses.replace(config.hierarchy, engine=engine),
        )
    system = TimeCacheSystem(config)
    line_bytes = system.config.hierarchy.line_bytes
    rng = DeterministicRng(7)
    pool = [0x10000 + i * line_bytes for i in range(256)]
    addrs = [rng.choice(pool) for _ in range(accesses)]
    # Drive the hierarchy entry point directly so the measurement is the
    # per-access engine path, not the facade's clock bookkeeping.
    access = system.hierarchy.access
    load = AccessKind.LOAD

    def drive() -> None:
        now = 0
        for addr in addrs:
            latency = access(0, addr, load, now).latency
            now += latency if latency > 0 else 1

    runs = _time_runs(drive, repeats=3 if quick else 5)
    return BenchResult(
        name="hierarchy_access",
        runs=runs,
        extra={
            "accesses": float(accesses),
            "accesses_per_s": accesses / statistics.median(runs),
        },
    )


def bench_hierarchy_access_batched(
    quick: bool = False, engine: str = "object"
) -> BenchResult:
    """Batched-run throughput through the modeled hierarchy.

    Drives the shared hot/cold reference trace (99.5% of loads over 8
    hot lines — the cache-friendly regime real workload phases spend
    most of their time in, and the one the batched path exists for)
    through ``access_batch`` in one run per repeat.  ``extra`` records
    the *same trace* driven through the scalar ``access`` loop and the
    resulting ``batch_speedup``, so the number is honest about what
    batching buys on identical work.  The miss-heavy uniform trace of
    ``hierarchy_access`` is deliberately left to the scalar arm.
    """
    import dataclasses

    from repro.analysis.runner import hot_cold_reference_trace
    from repro.core.timecache import TimeCacheSystem
    from repro.memsys.hierarchy import AccessKind
    from repro.robustness.campaign import campaign_config

    accesses = 20_000 if quick else 100_000
    config = campaign_config(seed=7)
    if engine != config.hierarchy.engine:
        config = dataclasses.replace(
            config,
            hierarchy=dataclasses.replace(config.hierarchy, engine=engine),
        )
    addrs = hot_cold_reference_trace(
        accesses, line_bytes=config.hierarchy.line_bytes, seed=7
    )
    load = AccessKind.LOAD
    repeats = 3 if quick else 5

    def drive_batched() -> None:
        system = TimeCacheSystem(config)
        system.hierarchy.access_batch(0, addrs, load, now=0, advance=0)

    def drive_scalar() -> None:
        system = TimeCacheSystem(config)
        access = system.hierarchy.access
        now = 0
        for addr in addrs:
            now += access(0, addr, load, now).latency

    runs = _time_runs(drive_batched, repeats)
    scalar_runs = _time_runs(drive_scalar, repeats)
    median = statistics.median(runs)
    scalar_median = statistics.median(scalar_runs)
    return BenchResult(
        name="hierarchy_access_batched",
        runs=runs,
        extra={
            "accesses": float(accesses),
            "accesses_per_s": accesses / median,
            "scalar_median_s": scalar_median,
            "batch_speedup": scalar_median / median if median else 0.0,
        },
    )


def bench_hierarchy_access_traced(
    quick: bool = False, engine: str = "object"
) -> BenchResult:
    """Tracing overhead on the raw-access hot path.

    Drives the ``hierarchy_access`` trace through three systems: no
    tracer at all, a *disabled* tracer (the production default — it
    attaches nothing, so the hot path must be untouched), and an
    *enabled* tracer streaming JSONL to a temp file.  Repeats are
    interleaved across the arms so clock drift and thermal noise hit
    all three equally.  ``runs`` (the baseline-gated number) times the
    disabled arm; ``extra`` records the three medians plus min-based
    overhead ratios — ``overhead_disabled`` is locked under 5% by
    ``tests/obs/test_bench_traced.py``.
    """
    import dataclasses
    import tempfile

    from repro.common.rng import DeterministicRng
    from repro.core.timecache import TimeCacheSystem
    from repro.memsys.hierarchy import AccessKind
    from repro.obs.sinks import JsonlSink
    from repro.obs.tracer import Tracer
    from repro.robustness.campaign import campaign_config

    accesses = 20_000 if quick else 100_000
    config = campaign_config(seed=7)
    if engine != config.hierarchy.engine:
        config = dataclasses.replace(
            config,
            hierarchy=dataclasses.replace(config.hierarchy, engine=engine),
        )

    def build_drive(tracer: Optional[Tracer] = None) -> Callable[[], None]:
        system = TimeCacheSystem(config)
        if tracer is not None:
            tracer.attach(system)
        line_bytes = system.config.hierarchy.line_bytes
        rng = DeterministicRng(7)
        pool = [0x10000 + i * line_bytes for i in range(256)]
        addrs = [rng.choice(pool) for _ in range(accesses)]
        access = system.hierarchy.access
        load = AccessKind.LOAD

        def drive() -> None:
            now = 0
            for addr in addrs:
                latency = access(0, addr, load, now).latency
                now += latency if latency > 0 else 1

        return drive

    repeats = 3 if quick else 5
    with tempfile.TemporaryDirectory() as tmp:
        sink = JsonlSink(Path(tmp) / "bench_trace.jsonl")
        enabled_tracer = Tracer(sink)
        arms = [
            ("plain", build_drive(), []),
            ("disabled", build_drive(Tracer(enabled=False)), []),
            ("enabled", build_drive(enabled_tracer), []),
        ]
        for _, drive, _runs in arms:  # warm-up: fills + first misses
            drive()
        for _ in range(repeats):
            for _, drive, runs in arms:
                start = time.perf_counter()
                drive()
                runs.append(time.perf_counter() - start)
        events = float(sink.emitted)
        enabled_tracer.close()
    plain_runs, disabled_runs, enabled_runs = (arm[2] for arm in arms)
    return BenchResult(
        name="hierarchy_access_traced",
        runs=disabled_runs,
        extra={
            "accesses": float(accesses),
            "plain_median_s": statistics.median(plain_runs),
            "disabled_median_s": statistics.median(disabled_runs),
            "enabled_median_s": statistics.median(enabled_runs),
            # min-over-min is the noise-robust overhead estimator: the
            # fastest observed run is the one least disturbed by the OS
            "overhead_disabled": min(disabled_runs) / min(plain_runs) - 1.0,
            "overhead_enabled": min(enabled_runs) / min(plain_runs) - 1.0,
            "events": events,
        },
    )


def _kernel_bench_setup(engine: str, l1_kib: int = 4, llc_kib: int = 128):
    """System factory + AccessKind for the kernel-level microbenches."""
    from repro.common.config import scaled_experiment_config
    from repro.core.timecache import TimeCacheSystem
    from repro.memsys.hierarchy import AccessKind

    config = scaled_experiment_config(
        l1_kib=l1_kib, llc_kib=llc_kib, seed=7, engine=engine
    )
    line = config.hierarchy.line_bytes
    return (lambda: TimeCacheSystem(config)), line, AccessKind.LOAD


def _timed_batches(make_system, addrs, load, repeats, warm_passes=0):
    """Time ``access_batch`` over ``addrs`` on a fresh system per repeat,
    optionally warming the hierarchy with untimed passes first."""
    runs: List[float] = []
    for _ in range(repeats):
        system = make_system()
        for _ in range(warm_passes):
            system.hierarchy.access_batch(0, addrs, load, now=0, advance=0)
        start = time.perf_counter()
        system.hierarchy.access_batch(0, addrs, load, now=0, advance=0)
        runs.append(time.perf_counter() - start)
    return runs


def _kernel_phase_extra(make_system, addrs, load, warm_passes=0):
    """Per-phase time breakdown from one extra *untimed* instrumented pass.

    Runs the same batch once more on a fresh system with a
    :class:`~repro.obs.spans.PhaseAccumulator` attached, so the timed
    runs above stay uninstrumented while the result still records where
    the kernel spends its time.  Keys are flattened into ``extra`` as
    ``phase_<name>_s`` / ``phase_share_<name>`` floats.
    """
    from repro.obs.spans import PhaseAccumulator

    system = make_system()
    for _ in range(warm_passes):
        system.hierarchy.access_batch(0, addrs, load, now=0, advance=0)
    acc = PhaseAccumulator()
    system.hierarchy.kernel_profiler = acc
    system.hierarchy.access_batch(0, addrs, load, now=0, advance=0)
    system.hierarchy.kernel_profiler = None
    summary = acc.summary()
    extra: Dict[str, float] = {
        "phase_total_s": summary["total_ns"] / 1e9,
    }
    for phase, ns in summary["phase_ns"].items():
        extra[f"phase_{phase}_s"] = ns / 1e9
    for phase, share in summary["phase_share"].items():
        extra[f"phase_share_{phase}"] = round(share, 4)
    for key in ("windows", "events", "cuts", "replans"):
        extra[f"phase_{key}"] = float(summary[key])
    if "plan_events_per_s" in summary:
        extra["plan_events_per_s"] = summary["plan_events_per_s"]
    return extra


def bench_fill_kernel(quick: bool = False, engine: str = "object") -> BenchResult:
    """Batched miss + fill throughput: a cold sweep of distinct lines.

    Every access is an L1 miss that fills both levels (the pool fits
    the LLC, so the sweep exercises the vectorized fill kernel, not
    the LLC-capacity scalar boundary).  ``events_per_s`` is the
    kernel-level number the vectorized fill path is gated on.
    """
    make_system, line, load = _kernel_bench_setup(engine, llc_kib=1024)
    events = 4_000 if quick else 12_000
    addrs = [i * line for i in range(events)]
    runs = _timed_batches(
        make_system, addrs, load, repeats=5 if quick else 9
    )
    median = statistics.median(runs)
    extra = {
        "events": float(events),
        "events_per_s": events / median if median else 0.0,
    }
    extra.update(_kernel_phase_extra(make_system, addrs, load))
    return BenchResult(name="fill_kernel", runs=runs, extra=extra)


def bench_evict_kernel(quick: bool = False, engine: str = "object") -> BenchResult:
    """Batched L1 eviction throughput: a working set that fits the LLC
    but overflows the L1 many times over, driven at steady state.

    The hierarchy is warmed with an untimed pass first, so every timed
    access is an L1 miss whose fill has to select a victim and evict it
    (victim rehearsal, dirty/counter bookkeeping, tag maintenance)
    before re-installing the line from an LLC hit.
    """
    make_system, line, load = _kernel_bench_setup(engine)
    events = 20_000 if quick else 100_000
    pool = 1_500
    addrs = [((i * 131) % pool) * line for i in range(events)]
    runs = _timed_batches(
        make_system, addrs, load, repeats=3 if quick else 5, warm_passes=1
    )
    median = statistics.median(runs)
    extra = {
        "events": float(events),
        "events_per_s": events / median if median else 0.0,
    }
    extra.update(_kernel_phase_extra(make_system, addrs, load, warm_passes=1))
    return BenchResult(name="evict_kernel", runs=runs, extra=extra)


def bench_sbit_miss_kernel(
    quick: bool = False, engine: str = "object"
) -> BenchResult:
    """Batched s-bit first-access-miss throughput.

    A working set resident in a large L1 is re-touched right after a
    context switch to a brand-new task: the tags all hit but every
    s-bit is clear, so each access is TimeCache's forced first-access
    miss on a resident line — the event the defense makes ubiquitous
    and the batched cohort path exists for.  Each timed run performs
    several switch + full-sweep rounds.
    """
    make_system, line, load = _kernel_bench_setup(engine, l1_kib=64, llc_kib=256)
    lines_resident = 768
    rounds = 4 if quick else 16
    addrs = [i * line for i in range(lines_resident)]
    events = lines_resident * rounds
    repeats = 3 if quick else 5
    runs: List[float] = []
    for _ in range(repeats):
        system = make_system()
        # warm: fill the working set into L1 for task 0
        out = system.hierarchy.access_batch(0, addrs, load, now=0, advance=0)
        now = out.now
        task = 0
        start = time.perf_counter()
        for _ in range(rounds):
            task += 1
            cost = system.context_switch(task - 1, task, 0, now)
            now += cost.dma_cycles
            out = system.hierarchy.access_batch(0, addrs, load, now=now, advance=0)
            now = out.now
        runs.append(time.perf_counter() - start)
    median = statistics.median(runs)
    return BenchResult(
        name="sbit_miss_kernel",
        runs=runs,
        extra={
            "events": float(events),
            "rounds": float(rounds),
            "events_per_s": events / median if median else 0.0,
        },
    )


def bench_sweep_parallel(
    quick: bool = False, jobs: Optional[int] = None, engine: str = "object"
) -> BenchResult:
    """A small SPEC pair sweep serially vs across the process pool.

    ``runs`` times the parallel sweep; ``extra`` records the serial
    median and the speedup — the number the tentpole exists to move.
    On a single-CPU machine (or with one worker) a process pool cannot
    beat the serial path, so the bench reports
    ``skipped: insufficient_cpus`` rather than a meaningless speedup.
    """
    from repro.analysis.parallel import resolve_jobs
    from repro.analysis.runner import spec_pair_sweep

    workers = resolve_jobs(jobs)
    cpus = os.cpu_count() or 1
    if cpus < 2 or workers < 2:
        return BenchResult(
            name="sweep_parallel",
            runs=[],
            extra={"cpus": float(cpus), "jobs": float(workers)},
            skipped="insufficient_cpus",
        )
    pairs = [("wrf", "wrf"), ("milc", "milc"), ("perlbench", "perlbench"),
             ("gobmk", "gobmk")]
    instructions = 8_000 if quick else 40_000
    repeats = 1 if quick else 3

    serial_runs = _time_runs(
        lambda: spec_pair_sweep(
            pairs=pairs, instructions=instructions, jobs=1, engine=engine
        ),
        repeats,
    )
    parallel_runs = _time_runs(
        lambda: spec_pair_sweep(
            pairs=pairs, instructions=instructions, jobs=workers, engine=engine
        ),
        repeats,
    )
    serial_median = statistics.median(serial_runs)
    parallel_median = statistics.median(parallel_runs)
    return BenchResult(
        name="sweep_parallel",
        runs=parallel_runs,
        extra={
            "pairs": float(len(pairs)),
            "instructions": float(instructions),
            "jobs": float(workers),
            "serial_median_s": serial_median,
            "parallel_median_s": parallel_median,
            "speedup": serial_median / parallel_median if parallel_median else 0.0,
        },
    )


#: name -> workload; iteration order is execution order
BENCHMARKS: Dict[str, Callable[..., BenchResult]] = {
    "single_config": bench_single_config,
    "comparator": bench_comparator,
    "hierarchy_access": bench_hierarchy_access,
    "hierarchy_access_batched": bench_hierarchy_access_batched,
    "hierarchy_access_traced": bench_hierarchy_access_traced,
    "fill_kernel": bench_fill_kernel,
    "evict_kernel": bench_evict_kernel,
    "sbit_miss_kernel": bench_sbit_miss_kernel,
    "sweep_parallel": bench_sweep_parallel,
}


def _validate_names(names: Optional[Sequence[str]]) -> List[str]:
    selected = list(BENCHMARKS) if not names else list(names)
    unknown = [n for n in selected if n not in BENCHMARKS]
    if unknown:
        raise ValueError(
            f"unknown benchmark(s) {unknown}; known: {sorted(BENCHMARKS)}"
        )
    return selected


def _bench_kwargs(name: str, quick: bool, jobs: Optional[int], engine: str) -> Dict:
    kwargs: Dict = {"quick": quick}
    if name == "sweep_parallel":
        kwargs["jobs"] = jobs
    if name in ENGINE_AWARE:
        kwargs["engine"] = engine
    return kwargs


def _result_name(name: str, engine: str) -> str:
    return f"{name}_fast" if engine == "fast" and name in ENGINE_AWARE else name


def run_benchmarks(
    names: Optional[Sequence[str]] = None,
    quick: bool = False,
    jobs: Optional[int] = None,
    engine: str = "object",
) -> Dict[str, BenchResult]:
    """Run the named workloads (all by default), in registry order.

    With ``engine="fast"`` the engine-aware workloads run against the
    struct-of-arrays engine and record under ``<name>_fast`` so the two
    engines keep separate baseline entries.
    """
    results: Dict[str, BenchResult] = {}
    for name in _validate_names(names):
        result = BENCHMARKS[name](**_bench_kwargs(name, quick, jobs, engine))
        result.name = _result_name(name, engine)
        results[result.name] = result
    return results


def profile_benchmarks(
    names: Optional[Sequence[str]] = None,
    quick: bool = False,
    jobs: Optional[int] = None,
    engine: str = "object",
    output_dir: Union[str, Path] = ".",
) -> List[Path]:
    """Run each workload once under cProfile; write the stats dumps.

    One ``BENCH_profile_<name>.pstats`` per workload, loadable with
    ``python -m pstats`` or ``snakeviz`` — so hot-path work starts from
    measurements instead of guesses.  Profiled runs are slower than
    timed ones; they do not produce ``BenchResult`` timings.
    """
    import cProfile

    out = Path(output_dir)
    paths: List[Path] = []
    for name in _validate_names(names):
        fn = BENCHMARKS[name]
        kwargs = _bench_kwargs(name, quick, jobs, engine)
        profiler = cProfile.Profile()
        profiler.enable()
        try:
            fn(**kwargs)
        finally:
            profiler.disable()
        path = out / f"BENCH_profile_{_result_name(name, engine)}.pstats"
        profiler.dump_stats(path)
        paths.append(path)
    return paths


def write_results(
    results: Mapping[str, BenchResult],
    output_dir: Union[str, Path] = ".",
) -> List[Path]:
    """Write one ``BENCH_<name>.json`` per result; returns the paths."""
    from repro.analysis.export import save_json

    meta = machine_metadata()
    out = Path(output_dir)
    paths: List[Path] = []
    for name, result in results.items():
        paths.append(save_json(result.to_dict(meta), out / f"BENCH_{name}.json"))
    return paths


# --------------------------------------------------------------------------
# baseline comparison


def _baseline_entry(result: BenchResult) -> Dict:
    entry: Dict = {"median_s": result.median_s, "extra": dict(result.extra)}
    if result.skipped:
        entry["skipped"] = result.skipped
    return entry


def baseline_payload(results: Mapping[str, BenchResult]) -> Dict:
    return {
        "schema": BENCH_SCHEMA,
        "kind": "bench_baseline",
        "meta": machine_metadata(),
        "benches": {
            name: _baseline_entry(result) for name, result in results.items()
        },
    }


def write_baseline(
    results: Mapping[str, BenchResult], path: Union[str, Path]
) -> Path:
    """Persist the current medians as the committed baseline."""
    from repro.analysis.export import save_json

    return save_json(baseline_payload(results), path)


def load_baseline(path: Union[str, Path]) -> Dict[str, float]:
    """Baseline medians keyed by bench name.

    Entries recorded as skipped (or with a zero median, which is what a
    skipped bench serializes as) carry no timing information and are
    dropped, so they can never anchor a regression comparison.
    """
    import json

    with open(path) as handle:
        payload = json.load(handle)
    if payload.get("kind") != "bench_baseline":
        raise ValueError(f"{path}: not a bench baseline file")
    return {
        name: float(entry["median_s"])
        for name, entry in payload.get("benches", {}).items()
        if not entry.get("skipped") and float(entry.get("median_s", 0.0)) > 0
    }


def compare_to_baseline(
    results: Mapping[str, BenchResult],
    baseline: Mapping[str, float],
    threshold: float = DEFAULT_THRESHOLD,
) -> List[str]:
    """Regression messages for every shared bench that got slower.

    A bench regresses when ``current > baseline * (1 + threshold)``.
    Benches present on only one side are ignored (new benches must not
    fail the gate retroactively).  An empty list means the gate passes.
    """
    regressions: List[str] = []
    for name, result in results.items():
        if result.skipped:
            continue
        base = baseline.get(name)
        if base is None or base <= 0:
            continue
        ratio = result.median_s / base
        if ratio > 1.0 + threshold:
            regressions.append(
                f"{name}: {result.median_s:.4f}s vs baseline {base:.4f}s "
                f"({ratio:.2f}x, threshold {1.0 + threshold:.2f}x)"
            )
    return regressions


def render_results(results: Mapping[str, BenchResult]) -> str:
    """One line per bench: median plus the most interesting extras."""
    lines = []
    for name, result in results.items():
        if result.skipped:
            lines.append(f"{name:<18} skipped ({result.skipped})")
            continue
        extras = ""
        if "speedup" in result.extra:
            extras = f"  speedup {result.extra['speedup']:.2f}x"
        elif "fast_speedup" in result.extra:
            extras = f"  fast_speedup {result.extra['fast_speedup']:.1f}x"
        elif "accesses_per_s" in result.extra:
            extras = f"  {result.extra['accesses_per_s']:,.0f} accesses/s"
        elif "events_per_s" in result.extra:
            extras = f"  {result.extra['events_per_s']:,.0f} events/s"
        lines.append(
            f"{name:<18} median {result.median_s:.4f}s over "
            f"{len(result.runs)} run(s){extras}"
        )
        if "phase_total_s" in result.extra:
            from repro.obs.spans import KERNEL_PHASES

            parts = []
            for phase in KERNEL_PHASES:
                share = result.extra.get(f"phase_share_{phase}", 0.0)
                if share:
                    parts.append(f"{phase} {share:.0%}")
            if parts:
                lines.append(
                    f"  phases ({result.extra['phase_total_s']:.4f}s): "
                    + "  ".join(parts)
                )
        speedup = result.extra.get("batch_speedup")
        if speedup is not None and speedup < 1.0:
            lines.append(
                f"  !! {name}: batching is SLOWER than the scalar loop "
                f"(batch_speedup {speedup:.2f}x) — known cost on the "
                f"object engine, see benchmarks/perf/README.md"
            )
    return "\n".join(lines)
