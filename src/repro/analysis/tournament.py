"""The attack tournament: every attack vs. every defense, scored statistically.

The repo's attacks each ship a demo entry point that answers "did this
run leak?" with a per-attack threshold.  The tournament replaces that
with the evaluation CacheBar popularized and the paper's security claim
actually needs: run each attack twice — once with the victim performing
its secret-dependent activity (the *positive* arm) and once with the
victim scheduled but inactive (the *negative* arm) — and score how well
the attacker's probe-latency distribution distinguishes the two
(:mod:`repro.security.stats`: folded ROC/AUC with a bootstrap confidence
interval, plus mutual information in bits per probe).

A *cell* is one ``(attack, defense, engine)`` triple; the full matrix is
every attack module × every registered defense (:mod:`repro.defenses`)
× {object, fast}.  Cells run
as :class:`~repro.analysis.parallel.SweepJob`\\ s under the supervised
executor (PR 6), so a hung or crashing attack is killed, retried, and at
worst quarantined without taking the tournament down, and the
checkpoint/``--resume`` path makes an interrupted tournament cheap to
finish.  The scorecard (``SECURITY.json``) and the committed baseline
(``benchmarks/security/BASELINE.json``) are crash-safe safeio documents.

Because probe latencies are *simulated* cycle counts, every score is a
pure function of (config, seeds, bootstrap seed) — identical on any
host.  That is what lets CI enforce the security gate strictly, where
the perf gate must stay warn-only on noisy runners: a separation change
is a code change, never runner weather.

Gate semantics (:func:`compare_to_security_baseline`):

* **defense regression** — a defense-on cell whose AUC-separation CI
  *lower* bound rises more than ``tolerance`` above the baseline's
  recorded separation: the defense got confidently more distinguishable;
* **sanity direction** — a defense-off cell that the baseline records as
  leaking whose CI *upper* bound falls below the leak cutoff: the attack
  stopped working without any defense, i.e. the harness (or simulator)
  broke and the defended numbers are no longer evidence of anything.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.analysis.bench import machine_metadata
from repro.analysis.parallel import SweepJob, derive_job_seed
from repro.common.config import SimConfig, scaled_experiment_config
from repro.common.errors import LeakageStatsError
from repro.defenses import defense_names, get_defense, is_control_defense
from repro.robustness import safeio
from repro.robustness.resilience import Checkpoint, SweepOutcome
from repro.robustness.supervisor import SupervisedSweepExecutor
from repro.security.stats import LEAK_AUC_CUTOFF, score_populations

SECURITY_SCHEMA = 1
#: defense-on separation may rise this far above the baseline before the
#: gate calls it a regression (absolute AUC points, compared against the
#: CI lower bound so bootstrap wobble cannot trip it)
DEFAULT_TOLERANCE = 0.05
#: deterministic root for per-cell bootstrap seeds
BOOT_SEED_ROOT = 0x51A7
ENGINES = ("object", "fast")


def __getattr__(name: str):
    # The defense axis is the registry, read at use time so defenses
    # registered after import still slot into the matrix.  Exposed under
    # the historical ``DEFENSES`` name for every existing caller.
    if name == "DEFENSES":
        return tuple(defense_names())
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

#: a collector returns (negative-arm latencies, positive-arm latencies)
Collector = Callable[[SimConfig, int, bool], Tuple[List[int], List[int]]]


# --------------------------------------------------------------------------
# per-attack collectors
#
# Each runs the attack's two arms under one config and returns the raw
# probe-latency populations.  The positive arm is the victim doing its
# secret-dependent work; the negative arm keeps the victim scheduled
# (same contention, same context switches) but inactive, so the only
# difference between the populations is the secret-dependent activity
# itself.  ``quick`` trades sample count for wall-clock; the bootstrap
# interval keeps quick verdicts honest about their extra uncertainty.
# --------------------------------------------------------------------------


def _collect_flush_reload(
    config: SimConfig, seed: int, quick: bool
) -> Tuple[List[int], List[int]]:
    from repro.attacks.flush_reload import run_microbenchmark_attack

    lines = 32 if quick else 64
    kwargs = dict(
        shared_lines=lines, sleep_cycles=60_000, batched=True
    )
    pos = run_microbenchmark_attack(
        config, victim_repetitions=2, **kwargs
    ).latencies
    neg = run_microbenchmark_attack(
        config, victim_repetitions=0, **kwargs
    ).latencies
    return neg, pos


def _collect_prime_probe(
    config: SimConfig, seed: int, quick: bool
) -> Tuple[List[int], List[int]]:
    from repro.attacks.prime_probe import run_prime_probe

    rounds = 4 if quick else 8
    pos = run_prime_probe(config, victim_active=True, rounds=rounds).latencies
    neg = run_prime_probe(config, victim_active=False, rounds=rounds).latencies
    return neg, pos


def _collect_flush_flush(
    config: SimConfig, seed: int, quick: bool
) -> Tuple[List[int], List[int]]:
    from repro.attacks.flush_flush import run_flush_flush

    rounds = 8 if quick else 16
    pos = run_flush_flush(config, victim_touches=True, rounds=rounds).latencies
    neg = run_flush_flush(config, victim_touches=False, rounds=rounds).latencies
    return neg, pos


def _collect_evict_time(
    config: SimConfig, seed: int, quick: bool
) -> Tuple[List[int], List[int]]:
    from repro.attacks.evict_time import run_evict_time

    # evict+time measures the *victim's* round duration.  Each run
    # interleaves flushed and clean rounds and concatenates the two
    # lists (flushed first); the flushed rounds are where the secret
    # shows, so the game compares the flushed half of a victim that
    # uses the line against the flushed half of one that does not.
    rounds = 6 if quick else 10
    pos_out = run_evict_time(config, victim_uses_line=True, rounds=rounds)
    neg_out = run_evict_time(config, victim_uses_line=False, rounds=rounds)
    return neg_out.latencies[:rounds], pos_out.latencies[:rounds]


def _collect_evict_reload(
    config: SimConfig, seed: int, quick: bool
) -> Tuple[List[int], List[int]]:
    from repro.attacks.evict_reload import run_evict_reload

    # Same victim both arms (it always touches line 5); the arms differ
    # in what the attacker monitors — the secret line vs. a line the
    # victim never touches — mirroring how a real spy localizes secret
    # accesses by comparing monitored addresses.
    rounds = 4 if quick else 8
    pos = run_evict_reload(
        config, secret_indices=(5,), rounds=rounds, monitored_line=5
    ).latencies
    neg = run_evict_reload(
        config, secret_indices=(5,), rounds=rounds, monitored_line=9
    ).latencies
    return neg, pos


def _collect_lru(
    config: SimConfig, seed: int, quick: bool
) -> Tuple[List[int], List[int]]:
    from repro.attacks.lru_attack import run_lru_attack

    rounds = 6 if quick else 10
    pos = run_lru_attack(config, victim_touches=True, rounds=rounds).latencies
    neg = run_lru_attack(config, victim_touches=False, rounds=rounds).latencies
    return neg, pos


def _collect_coherence(
    config: SimConfig, seed: int, quick: bool
) -> Tuple[List[int], List[int]]:
    from repro.attacks.coherence_attack import run_invalidate_transfer

    rounds = 6 if quick else 10
    pos = run_invalidate_transfer(
        config, victim_touches=True, rounds=rounds
    ).latencies
    neg = run_invalidate_transfer(
        config, victim_touches=False, rounds=rounds
    ).latencies
    return neg, pos


def _collect_smt(
    config: SimConfig, seed: int, quick: bool
) -> Tuple[List[int], List[int]]:
    from repro.attacks.smt import run_smt_flush_reload

    rounds = 2 if quick else 4
    kwargs = dict(shared_lines=16, rounds=rounds)
    pos = run_smt_flush_reload(config, victim_active=True, **kwargs).latencies
    neg = run_smt_flush_reload(config, victim_active=False, **kwargs).latencies
    return neg, pos


def _collect_spectre(
    config: SimConfig, seed: int, quick: bool
) -> Tuple[List[int], List[int]]:
    from repro.attacks.spectre import PROBE_LINES, run_spectre_covert_channel

    # One run is its own game: the gadget touches exactly one of 256
    # probe lines, so the secret line's reloads are the positive
    # population and the other 255 lines' are the negative one.
    secret = 0x5A
    rounds = 3 if quick else 5
    result = run_spectre_covert_channel(
        config, secret=secret, rounds=rounds, wait_cycles=15_000
    )
    pos = [
        lat
        for i, lat in enumerate(result.latencies)
        if i % PROBE_LINES == secret
    ]
    neg = [
        lat
        for i, lat in enumerate(result.latencies)
        if i % PROBE_LINES != secret
    ]
    return neg, pos


def _collect_keystroke(
    config: SimConfig, seed: int, quick: bool
) -> Tuple[List[int], List[int]]:
    from repro.attacks.keystroke import run_keystroke_attack

    # The poll stream labels itself: a poll is a positive observation
    # when it is the first one able to complete after a true key press —
    # the attacker reflushes each round, so only that poll can observe
    # the handler fetch; everything else samples the idle distribution.
    presses = 6 if quick else 10
    poll_period = 2_000
    result = run_keystroke_attack(
        config, presses=presses, poll_period=poll_period, seed=seed
    )
    window = poll_period + 600  # one poll round plus the handler burst
    pos: List[int] = []
    neg: List[int] = []
    for t, lat in result.probe_log:
        near_press = any(
            0 <= t - press <= window for press in result.true_press_times
        )
        (pos if near_press else neg).append(lat)
    return neg, pos


def _collect_rsa(
    config: SimConfig, seed: int, quick: bool
) -> Tuple[List[int], List[int]]:
    from repro.attacks.rsa import generate_key, run_rsa_attack

    key = generate_key(seed=seed or 1, prime_bits=12 if quick else 14)
    kwargs = dict(
        key=key,
        ifetches_per_call=8,
        work_per_call=1_200,
        max_steps=10_000_000,
    )
    pos = run_rsa_attack(config, victim_signs=True, **kwargs).latencies
    neg = run_rsa_attack(config, victim_signs=False, **kwargs).latencies
    return neg, pos


# --------------------------------------------------------------------------
# the registry
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class AttackSpec:
    """One attack module's entry in the tournament.

    ``cores`` and ``smt`` shape the machine the cell runs on (coherence
    and the cross-core channels need two hardware contexts; the SMT
    channel needs two hyperthreads on one core).
    """

    name: str
    collect: Collector
    cores: int = 1
    smt: bool = False
    #: the attack times the *victim's own* activity rather than probing a
    #: shared line, so per-line first-access defenses cannot close it —
    #: a known boundary recorded on the baseline cell, not a regression.
    self_timing: bool = False


#: every attack module in src/repro/attacks/, in scorecard order
ATTACKS: Dict[str, AttackSpec] = {
    spec.name: spec
    for spec in (
        AttackSpec("flush_reload", _collect_flush_reload),
        AttackSpec("prime_probe", _collect_prime_probe),
        AttackSpec("flush_flush", _collect_flush_flush),
        AttackSpec("evict_time", _collect_evict_time, self_timing=True),
        AttackSpec("evict_reload", _collect_evict_reload),
        AttackSpec("lru", _collect_lru),
        AttackSpec("coherence", _collect_coherence, cores=2),
        AttackSpec("smt", _collect_smt, smt=True),
        AttackSpec("spectre", _collect_spectre, cores=2),
        AttackSpec("keystroke", _collect_keystroke, cores=2),
        AttackSpec("rsa", _collect_rsa, cores=2),
    )
}


def cell_label(attack: str, defense: str, engine: str) -> str:
    return f"{attack}|{defense}|{engine}"


def cell_config(
    attack: str, defense: str, engine: str, seed: int
) -> SimConfig:
    """The scaled-down machine one cell runs on.

    Small caches and a short quantum keep a cell in the milliseconds
    while preserving the reuse behavior the channels ride on; the
    ``defense`` arm is applied by the registered plugin's
    :meth:`~repro.defenses.base.Defense.configure` transform.
    """
    spec = ATTACKS[attack]
    config = scaled_experiment_config(
        num_cores=spec.cores,
        llc_kib=32,
        quantum_cycles=60_000,
        seed=seed,
        engine=engine,
    )
    if spec.smt:
        config = dataclasses.replace(
            config,
            hierarchy=dataclasses.replace(
                config.hierarchy, threads_per_core=2
            ),
        )
        config.validate()
    return get_defense(defense).configure(config)


def run_tournament_cell(
    attack: str,
    defense: str,
    engine: str,
    seeds: Sequence[int],
    quick: bool = False,
    n_boot: int = 500,
) -> Dict:
    """Worker body for one cell: collect both arms, score them.

    Module-level and argument-picklable so the supervised executor can
    run cells in worker processes.  Latency populations are pooled
    across ``seeds``; the bootstrap seed derives from the cell label so
    the score is reproducible regardless of which worker ran the cell.
    """
    if defense not in defense_names():
        raise LeakageStatsError(f"unknown defense arm {defense!r}")
    spec = ATTACKS[attack]
    neg: List[int] = []
    pos: List[int] = []
    for seed in seeds:
        config = cell_config(attack, defense, engine, seed)
        seed_neg, seed_pos = spec.collect(config, seed, quick)
        neg.extend(seed_neg)
        pos.extend(seed_pos)
    label = cell_label(attack, defense, engine)
    score = score_populations(
        neg, pos, n_boot=n_boot, seed=derive_job_seed(BOOT_SEED_ROOT, label)
    )
    return {
        "attack": attack,
        "defense": defense,
        "engine": engine,
        "label": label,
        "seeds": list(seeds),
        **score,
    }


# --------------------------------------------------------------------------
# the tournament driver
# --------------------------------------------------------------------------


@dataclass
class TournamentOutcome:
    """Scored cells keyed by label, plus what could not be scored."""

    cells: Dict[str, Dict]
    sweep: SweepOutcome
    labels: List[str]

    @property
    def complete(self) -> bool:
        return not self.sweep.failures


def tournament_jobs(
    attacks: Optional[Sequence[str]] = None,
    engines: Sequence[str] = ENGINES,
    defenses: Optional[Sequence[str]] = None,
    seeds: Sequence[int] = (7,),
    quick: bool = False,
    n_boot: int = 500,
) -> List[SweepJob]:
    """The cell matrix as supervised sweep jobs, in scorecard order.

    ``defenses=None`` means every registered defense, read from the
    registry at call time so late registrations still slot in.
    """
    if defenses is None:
        defenses = defense_names()
    names = list(ATTACKS) if attacks is None else list(attacks)
    unknown = [n for n in names if n not in ATTACKS]
    if unknown:
        raise ValueError(
            f"unknown attack(s) {unknown}; known: {sorted(ATTACKS)}"
        )
    jobs: List[SweepJob] = []
    for name in names:
        for defense in defenses:
            for engine in engines:
                label = cell_label(name, defense, engine)
                jobs.append(
                    SweepJob(
                        label=label,
                        fn=run_tournament_cell,
                        args=(name, defense, engine, tuple(seeds)),
                        kwargs={"quick": quick, "n_boot": n_boot},
                        provenance={
                            "seed": seeds[0] if seeds else None,
                            "engine": engine,
                        },
                    )
                )
    return jobs


def run_tournament(
    attacks: Optional[Sequence[str]] = None,
    engines: Sequence[str] = ENGINES,
    defenses: Optional[Sequence[str]] = None,
    seeds: Sequence[int] = (7,),
    quick: bool = False,
    jobs: Optional[int] = None,
    n_boot: int = 500,
    checkpoint_path: Optional[Union[str, Path]] = None,
    quarantine_dir: Optional[Union[str, Path]] = None,
    tracer=None,
    deadline_s: Optional[float] = 120.0,
    on_event: Optional[Callable[[str, str], None]] = None,
    obs_dir: Optional[Union[str, Path]] = None,
) -> TournamentOutcome:
    """Run the cell matrix under the supervised executor.

    A checkpoint path makes the run resumable (completed cells are
    loaded, not re-run); a quarantine directory gives each poisoned cell
    a standalone failure record.  Cell results are plain dicts, so the
    checkpoint serialization is the identity.
    """
    sweep_jobs = tournament_jobs(
        attacks,
        engines=engines,
        defenses=defenses,
        seeds=seeds,
        quick=quick,
        n_boot=n_boot,
    )
    checkpoint = None
    if checkpoint_path is not None:
        checkpoint = Checkpoint(
            checkpoint_path, serialize=lambda c: c, deserialize=lambda c: c
        )
        checkpoint.load()
    if tracer is not None and tracer.enabled:
        tracer.emit(
            "tournament.begin",
            src="tournament",
            args={"cells": len(sweep_jobs), "quick": quick},
        )
    executor = SupervisedSweepExecutor(
        jobs,
        checkpoint=checkpoint,
        quarantine_dir=quarantine_dir,
        deadline_s=deadline_s,
        tracer=tracer,
        on_event=on_event,
        obs_dir=obs_dir,
    )
    outcome = executor.run(sweep_jobs)
    labels = [job.label for job in sweep_jobs]
    cells = {
        label: outcome.results[label]
        for label in labels
        if label in outcome.results
    }
    if tracer is not None and tracer.enabled:
        for label, cell in cells.items():
            tracer.emit(
                "tournament.cell",
                src="tournament",
                args={
                    "label": label,
                    "separation": cell["separation"],
                    "mi_bits": cell["mi_bits"],
                    "leak": cell["leak"],
                },
            )
        tracer.emit(
            "tournament.end",
            src="tournament",
            args={
                "scored": len(cells),
                "quarantined": len(outcome.failures),
            },
        )
    return TournamentOutcome(cells=cells, sweep=outcome, labels=labels)


# --------------------------------------------------------------------------
# scorecard + baseline artifacts
# --------------------------------------------------------------------------


def scorecard_payload(
    outcome: TournamentOutcome, params: Optional[Mapping] = None
) -> Dict:
    """The ``SECURITY.json`` document: every scored cell plus the gaps."""
    return {
        "schema": SECURITY_SCHEMA,
        "kind": "security_scorecard",
        "meta": machine_metadata(),
        "params": dict(params or {}),
        "cells": {label: dict(cell) for label, cell in outcome.cells.items()},
        "gaps": [record.label for record in outcome.sweep.failures],
    }


def write_scorecard(
    outcome: TournamentOutcome,
    path: Union[str, Path],
    params: Optional[Mapping] = None,
) -> Path:
    return safeio.write_json_atomic(
        scorecard_payload(outcome, params), Path(path)
    )


def load_scorecard(path: Union[str, Path]) -> Dict:
    return safeio.read_json_verified(
        path,
        expected_kind="security_scorecard",
        expected_schema=SECURITY_SCHEMA,
    )


def _baseline_cell(cell: Mapping) -> Dict:
    """The fields a committed baseline needs to anchor the gate.

    A ``known_boundary`` flag marks cells where the attack self-times the
    victim (see :attr:`AttackSpec.self_timing`) under a non-control
    defense: the leak is a documented limitation of per-line first-access
    defenses, so the gate reports but never fails on those cells.
    """
    base = {
        "separation": cell["separation"],
        "ci_low": cell["ci_low"],
        "ci_high": cell["ci_high"],
        "mi_bits": cell["mi_bits"],
        "leak": cell["leak"],
    }
    spec = ATTACKS.get(cell.get("attack", ""))
    if (
        spec is not None
        and spec.self_timing
        and not is_control_defense(cell.get("defense", ""))
    ):
        base["known_boundary"] = True
    return base


def baseline_payload(
    outcome: TournamentOutcome, params: Optional[Mapping] = None
) -> Dict:
    return {
        "schema": SECURITY_SCHEMA,
        "kind": "security_baseline",
        "meta": machine_metadata(),
        "params": dict(params or {}),
        "cells": {
            label: _baseline_cell(cell)
            for label, cell in outcome.cells.items()
        },
    }


def write_security_baseline(
    outcome: TournamentOutcome,
    path: Union[str, Path],
    params: Optional[Mapping] = None,
) -> Path:
    return safeio.write_json_atomic(
        baseline_payload(outcome, params), Path(path)
    )


def load_security_baseline(path: Union[str, Path]) -> Dict[str, Dict]:
    payload = safeio.read_json_verified(
        path,
        expected_kind="security_baseline",
        expected_schema=SECURITY_SCHEMA,
    )
    return {
        label: dict(cell)
        for label, cell in payload.get("cells", {}).items()
    }


def compare_to_security_baseline(
    cells: Mapping[str, Mapping],
    baseline: Mapping[str, Mapping],
    tolerance: float = DEFAULT_TOLERANCE,
    leak_cutoff: float = LEAK_AUC_CUTOFF,
    waived: Optional[List[str]] = None,
) -> List[str]:
    """Gate messages; empty means the gate passes.

    Two failure directions (see module docstring): a defense-on cell
    (any non-control registered defense) confidently more distinguishable
    than the baseline recorded, and a control cell that stopped leaking
    when the baseline says it should.  Cells present on only one side are
    ignored, so adding an attack or a defense cannot retroactively fail
    the gate.

    Baseline cells flagged ``known_boundary`` (self-timing attacks under
    a defense that cannot close them) are exempt from the
    defense-regression direction; they are still measured and, when a
    ``waived`` list is supplied, reported there — never silently dropped.
    """
    failures: List[str] = []
    for label, cell in cells.items():
        base = baseline.get(label)
        if base is None:
            continue
        if not is_control_defense(cell["defense"]):
            allowed = float(base["separation"]) + tolerance
            if float(cell["ci_low"]) > allowed:
                message = (
                    f"{label}: defense regression — AUC separation CI low "
                    f"{cell['ci_low']:.3f} exceeds baseline "
                    f"{base['separation']:.3f} + tolerance {tolerance:.2f}"
                )
                if base.get("known_boundary"):
                    if waived is not None:
                        waived.append(f"{message} [known boundary, waived]")
                else:
                    failures.append(message)
        elif base.get("leak"):
            if float(cell["ci_high"]) < leak_cutoff:
                failures.append(
                    f"{label}: sanity failure — undefended attack no longer "
                    f"leaks (CI high {cell['ci_high']:.3f} < leak cutoff "
                    f"{leak_cutoff:.2f}); the harness, not the defense, "
                    f"changed"
                )
    return failures


def render_scorecard(outcome: TournamentOutcome) -> str:
    """One line per cell: separation [CI], MI, verdict."""
    lines = []
    for label in outcome.labels:
        cell = outcome.cells.get(label)
        if cell is None:
            lines.append(f"{label:<40} [quarantined]")
            continue
        verdict = "LEAK" if cell["leak"] else "safe"
        lines.append(
            f"{label:<40} sep {cell['separation']:.3f} "
            f"[{cell['ci_low']:.3f}, {cell['ci_high']:.3f}]  "
            f"mi {cell['mi_bits']:.3f}b  {verdict}"
        )
    return "\n".join(lines)
