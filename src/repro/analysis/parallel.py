"""Parallel execution of sweep jobs across a process pool.

Every paper sweep is embarrassingly parallel: each (workload,
configuration) cell is an independent deterministic simulation.  This
module turns a sequence of such cells into near-linear wall-clock
speedup with ``concurrent.futures.ProcessPoolExecutor`` while keeping
every guarantee the serial resilient runner
(:mod:`repro.robustness.resilience`) makes:

* **determinism** — a job's result depends only on its arguments (each
  simulation seeds its own :class:`~repro.common.rng.DeterministicRng`
  from its config), so execution order cannot perturb results.  As a
  belt-and-braces measure each worker also reseeds the *global*
  ``random`` and ``numpy`` generators from a child seed derived via
  :func:`derive_job_seed`, so even code that accidentally reached for a
  global RNG would stay reproducible per job;
* **ordered reassembly** — jobs complete out of order but the returned
  :class:`~repro.robustness.resilience.SweepOutcome` lists results,
  failures, and resumed labels in submission order, exactly as the
  serial runner would;
* **retry/backoff** — each job retries inside its worker process with
  the same exponential-backoff schedule as the serial path, and a job
  that exhausts its retries becomes a
  :class:`~repro.robustness.resilience.FailureRecord` (child exceptions
  are flattened to ``(type name, message)`` strings in the worker, so
  nothing depends on an exception class being picklable);
* **checkpoint/resume** — the parent process is the single checkpoint
  writer; it records each completion as it arrives.  Because the
  checkpoint JSON is written with sorted keys, the final file is
  byte-identical no matter the completion order, and ``--jobs 1`` vs
  ``--jobs N`` produce the same bytes.

``jobs == 1`` does not build a pool at all: it delegates to
:func:`~repro.robustness.resilience.run_resilient_jobs`, preserving
today's serial path bit for bit.
"""

from __future__ import annotations

import os
import random
import time
from concurrent.futures import as_completed, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import SweepExecutionError
from repro.common.rng import DeterministicRng
from repro.obs.tracer import Tracer
from repro.robustness.resilience import (
    Checkpoint,
    FailureRecord,
    SweepOutcome,
    format_exception,
    run_resilient_jobs,
)

#: resilient-runner callback events mapped onto trace event kinds
_SWEEP_EVENT_KINDS = {
    "ok": "sweep.job_done",
    "failed": "sweep.job_failed",
    "resumed": "sweep.job_resumed",
}


def default_jobs() -> int:
    """The default worker count: every CPU the machine offers."""
    return os.cpu_count() or 1


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: ``None`` means all CPUs, floors at 1."""
    if jobs is None:
        return default_jobs()
    return max(1, int(jobs))


def derive_job_seed(base_seed: int, label: str) -> int:
    """Deterministic child seed for one job, keyed by its label.

    Uses :meth:`DeterministicRng.fork` (stable crc32 derivation), so the
    seed a job gets depends only on ``(base_seed, label)`` — never on
    worker identity, submission order, or ``PYTHONHASHSEED``.
    """
    return DeterministicRng(base_seed).fork(label).seed


@dataclass(frozen=True)
class SweepJob:
    """One picklable sweep cell: a module-level callable plus arguments.

    Process pools pickle jobs into workers, so ``fn`` must be an
    importable top-level function — closures (what the serial runner's
    thunks are) cannot cross the boundary.
    """

    label: str
    fn: Callable[..., object]
    args: Tuple = ()
    kwargs: Dict = field(default_factory=dict)
    #: optional provenance stamped onto a FailureRecord if this job is
    #: quarantined (keys: seed, engine, config_sha256, batch_window,
    #: manifest_id) — see FailureRecord.apply_provenance
    provenance: Dict = field(default_factory=dict)

    def run(self) -> object:
        return self.fn(*self.args, **self.kwargs)

    def thunk(self) -> Callable[[], object]:
        """The serial runner's job shape (for the ``jobs == 1`` path)."""
        return self.run


@dataclass
class _Attempt:
    """What a worker sends back: a result or a flattened failure."""

    label: str
    ok: bool
    result: object = None
    attempts: int = 1
    error_type: str = ""
    message: str = ""
    duration_s: float = 0.0
    traceback: str = ""


def _execute_job(
    job: SweepJob, retries: int, backoff_s: float, child_seed: int
) -> _Attempt:
    """Worker-side body: deterministic seeding, then retry with backoff.

    Runs inside the pool process.  Exceptions are flattened to strings
    here so the parent never needs to unpickle an arbitrary exception
    class (some carry keyword-only constructors that break pickling).
    """
    random.seed(child_seed)
    try:
        import numpy as _np

        _np.random.seed(child_seed & 0xFFFFFFFF)
    except ImportError:  # pragma: no cover - numpy is a hard dep today
        pass
    error: Optional[BaseException] = None
    attempts = 0
    started = time.perf_counter()
    for attempt in range(retries + 1):
        attempts = attempt + 1
        if attempt:
            time.sleep(backoff_s * 2 ** (attempt - 1))
        try:
            result = job.run()
        except Exception as exc:  # noqa: BLE001 - mirrors the serial runner
            error = exc
            continue
        return _Attempt(
            label=job.label,
            ok=True,
            result=result,
            attempts=attempts,
            duration_s=time.perf_counter() - started,
        )
    assert error is not None
    return _Attempt(
        label=job.label,
        ok=False,
        attempts=attempts,
        error_type=type(error).__name__,
        message=str(error),
        duration_s=time.perf_counter() - started,
        traceback=format_exception(error),
    )


class ParallelSweepExecutor:
    """Run sweep jobs across ``jobs`` worker processes.

    The contract (documented in docs/internals.md §9):

    * results/failures/resumed come back in submission order;
    * the parent is the only checkpoint writer, recording completions as
      they arrive — a killed run resumes from whatever finished;
    * a worker that dies outright (OOM-kill, segfault) surfaces as a
      ``FailureRecord`` whose ``error_type`` names the pool error; it is
      never silently dropped;
    * ``jobs == 1`` delegates to the serial resilient runner unchanged.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        *,
        retries: int = 2,
        backoff_s: float = 0.5,
        checkpoint: Optional[Checkpoint] = None,
        on_event: Optional[Callable[[str, str], None]] = None,
        base_seed: int = 0,
        tracer: Optional["Tracer"] = None,
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        self.retries = retries
        self.backoff_s = backoff_s
        self.checkpoint = checkpoint
        self.on_event = on_event
        self.base_seed = base_seed
        #: observability (repro.obs): the parent process emits
        #: sweep.begin/job_done/job_failed/job_resumed/heartbeat/end so a
        #: long sweep's progress is visible from its trace file.  Workers
        #: never touch the tracer — only completions crossing back into
        #: the parent do.
        self.tracer = tracer
        self._total = 0
        self._completed = 0
        self._failed = 0

    def _notify(self, label: str, event: str) -> None:
        if self.on_event is not None:
            self.on_event(label, event)

    def _emit(self, kind: str, **args: object) -> None:
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.emit(kind, src="sweep", args=args)

    def _job_event(self, label: str, event: str, **extra: object) -> None:
        """Fan one job completion out to the callback and the tracer."""
        self._notify(label, event)
        kind = _SWEEP_EVENT_KINDS.get(event)
        if kind is None:
            return
        self._completed += 1
        if event == "failed":
            self._failed += 1
        self._emit(kind, label=label, **extra)
        self._emit(
            "sweep.heartbeat",
            done=self._completed,
            total=self._total,
            failed=self._failed,
        )

    def run(self, sweep_jobs: Sequence[SweepJob]) -> SweepOutcome:
        """Run every job; never raises for job failures (they become
        :class:`FailureRecord` entries, as in the serial runner)."""
        labels = [job.label for job in sweep_jobs]
        if len(set(labels)) != len(labels):
            raise ValueError("sweep job labels must be unique")
        self._total = len(sweep_jobs)
        self._completed = 0
        self._failed = 0
        self._emit("sweep.begin", n_jobs=len(sweep_jobs), workers=self.jobs)
        if self.jobs == 1:
            outcome = run_resilient_jobs(
                [(job.label, job.thunk()) for job in sweep_jobs],
                retries=self.retries,
                backoff_s=self.backoff_s,
                checkpoint=self.checkpoint,
                on_event=self._job_event,
            )
        else:
            outcome = self._run_pool(sweep_jobs)
        self._emit(
            "sweep.end",
            ok=len(outcome.results),
            failed=len(outcome.failures),
            resumed=len(outcome.resumed),
        )
        return outcome

    def _run_pool(self, sweep_jobs: Sequence[SweepJob]) -> SweepOutcome:
        checkpoint = self.checkpoint
        resumed: Dict[str, object] = {}
        if checkpoint is not None:
            checkpoint.load()
            for job in sweep_jobs:
                prior = checkpoint.result_for(job.label)
                if prior is not None:
                    resumed[job.label] = prior
        pending = [job for job in sweep_jobs if job.label not in resumed]
        attempts: Dict[str, _Attempt] = {}
        if pending:
            with ProcessPoolExecutor(max_workers=self.jobs) as pool:
                futures = {
                    pool.submit(
                        _execute_job,
                        job,
                        self.retries,
                        self.backoff_s,
                        derive_job_seed(self.base_seed, job.label),
                    ): job
                    for job in pending
                }
                for future in as_completed(futures):
                    job = futures[future]
                    try:
                        attempt = future.result()
                    except Exception as exc:  # pool/worker death, not job code
                        attempt = _Attempt(
                            label=job.label,
                            ok=False,
                            attempts=1,
                            error_type=type(exc).__name__,
                            message=str(exc),
                        )
                    attempts[attempt.label] = attempt
                    # Parent-side single-writer checkpointing, in
                    # completion order; sorted-keys JSON makes the final
                    # file independent of that order.
                    if attempt.ok:
                        if checkpoint is not None:
                            checkpoint.record_success(attempt.label, attempt.result)
                        self._job_event(
                            attempt.label,
                            "ok",
                            attempts=attempt.attempts,
                            duration_s=round(attempt.duration_s, 6),
                        )
                    else:
                        if checkpoint is not None:
                            checkpoint.record_failure(
                                _attempt_failure(attempt, job)
                            )
                        self._job_event(
                            attempt.label,
                            "failed",
                            attempts=attempt.attempts,
                            error_type=attempt.error_type,
                            duration_s=round(attempt.duration_s, 6),
                        )
        # Ordered reassembly: submission order, exactly like the serial
        # runner's outcome (resumed labels included).
        outcome = SweepOutcome()
        for job in sweep_jobs:
            if job.label in resumed:
                outcome.results[job.label] = resumed[job.label]
                outcome.resumed.append(job.label)
                self._job_event(job.label, "resumed")
                continue
            attempt = attempts[job.label]
            if attempt.ok:
                outcome.results[job.label] = attempt.result
            else:
                outcome.failures.append(_attempt_failure(attempt, job))
        return outcome

    def map(self, sweep_jobs: Sequence[SweepJob]) -> List[object]:
        """Run jobs and return results in submission order, raising
        :class:`SweepExecutionError` if any job failed — the parallel
        analogue of a plain (non-resilient) serial sweep."""
        outcome = self.run(sweep_jobs)
        if outcome.failures:
            first = outcome.failures[0]
            raise SweepExecutionError(
                f"{len(outcome.failures)} of {len(sweep_jobs)} sweep jobs "
                f"failed; first: {first.label}: {first.error_type}: "
                f"{first.message}"
            )
        return outcome.ordered_results([job.label for job in sweep_jobs])


def _attempt_failure(
    attempt: _Attempt, job: Optional[SweepJob] = None
) -> FailureRecord:
    record = FailureRecord(
        label=attempt.label,
        attempts=attempt.attempts,
        error_type=attempt.error_type,
        message=attempt.message,
        traceback=attempt.traceback,
    )
    if job is not None:
        record.apply_provenance(job.provenance)
    return record


def run_sweep_jobs(
    sweep_jobs: Sequence[SweepJob],
    jobs: Optional[int] = None,
    **executor_kwargs,
) -> SweepOutcome:
    """One-call convenience over :class:`ParallelSweepExecutor`."""
    return ParallelSweepExecutor(jobs, **executor_kwargs).run(sweep_jobs)
