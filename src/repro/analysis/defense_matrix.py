"""The ``repro compare-defenses`` matrix: overhead vs. leakage, head to head.

The tournament (:mod:`repro.analysis.tournament`) answers "does attack X
still work under defense Y?"; the bench harness answers "what does the
simulator cost?".  Neither answers the question a defense paper actually
argues about: *what do you pay for what you get*.  This module joins the
two — every attack × every registered defense (:mod:`repro.defenses`) ×
both engines for the leakage axis, plus one SPEC-pair workload per
(defense, engine) for the overhead axis — into a single artifact
(``DEFENSE_MATRIX.json``) and one rendered table.

Every cell runs as a :class:`~repro.analysis.parallel.SweepJob` under the
supervised executor, so the matrix inherits the tournament's crash
handling: a hung defense is killed and quarantined without taking the
matrix down, and the checkpoint/``--resume`` path makes an interrupted
run cheap to finish.

Determinism contract: leakage scores and the overhead cells' simulated
cycle counts are pure functions of (config, seeds) — identical on any
host and any ``--jobs`` fan-out.  Wall-clock fields (``wall_s``,
``acc_per_s``) are runner weather, carried for context but excluded from
any equality check; the determinism smoke test pins exactly the
deterministic subset.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Union

import time

from repro.analysis.bench import machine_metadata
from repro.analysis.parallel import SweepJob
from repro.analysis.tournament import ATTACKS, ENGINES, tournament_jobs
from repro.common.config import scaled_experiment_config
from repro.defenses import defense_names, get_defense, is_control_defense
from repro.robustness import safeio
from repro.robustness.resilience import Checkpoint, SweepOutcome
from repro.robustness.supervisor import SupervisedSweepExecutor

MATRIX_SCHEMA = 1
#: the SPEC pair the overhead arm times (same-benchmark pair keeps the
#: contention story simple: two tenants fighting over one working set)
OVERHEAD_BENCH = "wrf"
#: fields of an overhead cell that are pure functions of the config —
#: the determinism smoke test compares exactly these
OVERHEAD_DETERMINISTIC_FIELDS = (
    "kind",
    "defense",
    "engine",
    "label",
    "sim_cycles",
    "control_cycles",
    "slowdown",
    "instructions",
)


def overhead_label(defense: str, engine: str) -> str:
    return f"overhead|{defense}|{engine}"


def _control_defense_name() -> str:
    """The registered control arm the overhead axis normalizes against."""
    for name in defense_names():
        if is_control_defense(name):
            return name
    raise LookupError("no control defense registered")


def run_overhead_cell(
    defense: str, engine: str, instructions: int, seed: int
) -> Dict:
    """Worker body for one overhead cell (module-level, picklable).

    Runs the same SPEC pair under ``defense`` and under the registered
    control, on identical geometry, and reports the simulated slowdown
    (deterministic) plus this run's wall throughput (weather).
    """
    from repro.analysis.comparison import _run_workload

    def build(name: str):
        base = scaled_experiment_config(
            num_cores=1,
            llc_kib=32,
            quantum_cycles=60_000,
            seed=seed,
            engine=engine,
        )
        config = get_defense(name).configure(base)
        get_defense(name).check_engine(config)
        return config

    start = time.perf_counter()
    run = _run_workload(
        build(defense), OVERHEAD_BENCH, OVERHEAD_BENCH, instructions, seed
    )
    wall_s = time.perf_counter() - start
    control = _run_workload(
        build(_control_defense_name()),
        OVERHEAD_BENCH,
        OVERHEAD_BENCH,
        instructions,
        seed,
    )
    slowdown = (
        run.cycles / control.cycles if control.cycles else 1.0
    )
    return {
        "kind": "overhead",
        "defense": defense,
        "engine": engine,
        "label": overhead_label(defense, engine),
        "sim_cycles": run.cycles,
        "control_cycles": control.cycles,
        "slowdown": slowdown,
        "instructions": instructions,
        "wall_s": wall_s,
        "acc_per_s": (run.instructions / wall_s) if wall_s > 0 else 0.0,
    }


def matrix_jobs(
    attacks: Optional[Sequence[str]] = None,
    engines: Sequence[str] = ENGINES,
    defenses: Optional[Sequence[str]] = None,
    seeds: Sequence[int] = (7,),
    quick: bool = False,
    n_boot: int = 500,
    overhead_instructions: Optional[int] = None,
) -> List[SweepJob]:
    """Leakage cells (the tournament matrix) + one overhead cell per
    (defense, engine), in presentation order."""
    if defenses is None:
        defenses = defense_names()
    if overhead_instructions is None:
        overhead_instructions = 8_000 if quick else 60_000
    jobs = tournament_jobs(
        attacks,
        engines=engines,
        defenses=defenses,
        seeds=seeds,
        quick=quick,
        n_boot=n_boot,
    )
    seed = seeds[0] if seeds else 7
    for defense in defenses:
        for engine in engines:
            jobs.append(
                SweepJob(
                    label=overhead_label(defense, engine),
                    fn=run_overhead_cell,
                    args=(defense, engine, overhead_instructions, seed),
                    kwargs={},
                    provenance={"seed": seed, "engine": engine},
                )
            )
    return jobs


@dataclass
class MatrixOutcome:
    """Every scored cell keyed by label, plus what could not be scored."""

    cells: Dict[str, Dict]
    sweep: SweepOutcome
    labels: List[str]
    attacks: List[str]
    defenses: List[str]
    engines: List[str]

    @property
    def complete(self) -> bool:
        return not self.sweep.failures


def run_defense_matrix(
    attacks: Optional[Sequence[str]] = None,
    engines: Sequence[str] = ENGINES,
    defenses: Optional[Sequence[str]] = None,
    seeds: Sequence[int] = (7,),
    quick: bool = False,
    jobs: Optional[int] = None,
    n_boot: int = 500,
    overhead_instructions: Optional[int] = None,
    checkpoint_path: Optional[Union[str, Path]] = None,
    quarantine_dir: Optional[Union[str, Path]] = None,
    deadline_s: Optional[float] = 120.0,
    on_event: Optional[Callable[[str, str], None]] = None,
    obs_dir: Optional[Union[str, Path]] = None,
) -> MatrixOutcome:
    """Run the full matrix under the supervised executor.

    Cell results are plain dicts, so the checkpoint serialization is the
    identity and a ``--resume`` run loads completed cells untouched.
    """
    if defenses is None:
        defenses = defense_names()
    attack_names = list(ATTACKS) if attacks is None else list(attacks)
    sweep_jobs = matrix_jobs(
        attacks,
        engines=engines,
        defenses=defenses,
        seeds=seeds,
        quick=quick,
        n_boot=n_boot,
        overhead_instructions=overhead_instructions,
    )
    checkpoint = None
    if checkpoint_path is not None:
        checkpoint = Checkpoint(
            checkpoint_path, serialize=lambda c: c, deserialize=lambda c: c
        )
        checkpoint.load()
    executor = SupervisedSweepExecutor(
        jobs,
        checkpoint=checkpoint,
        quarantine_dir=quarantine_dir,
        deadline_s=deadline_s,
        on_event=on_event,
        obs_dir=obs_dir,
    )
    outcome = executor.run(sweep_jobs)
    labels = [job.label for job in sweep_jobs]
    cells = {
        label: outcome.results[label]
        for label in labels
        if label in outcome.results
    }
    return MatrixOutcome(
        cells=cells,
        sweep=outcome,
        labels=labels,
        attacks=attack_names,
        defenses=list(defenses),
        engines=list(engines),
    )


# --------------------------------------------------------------------------
# the artifact
# --------------------------------------------------------------------------


def matrix_payload(
    outcome: MatrixOutcome, params: Optional[Mapping] = None
) -> Dict:
    """The ``DEFENSE_MATRIX.json`` document."""
    return {
        "schema": MATRIX_SCHEMA,
        "kind": "defense_matrix",
        "meta": machine_metadata(),
        "params": dict(params or {}),
        "axes": {
            "attacks": outcome.attacks,
            "defenses": outcome.defenses,
            "engines": outcome.engines,
        },
        "cells": {label: dict(cell) for label, cell in outcome.cells.items()},
        "gaps": [record.label for record in outcome.sweep.failures],
    }


def write_matrix(
    outcome: MatrixOutcome,
    path: Union[str, Path],
    params: Optional[Mapping] = None,
) -> Path:
    return safeio.write_json_atomic(matrix_payload(outcome, params), Path(path))


def load_matrix(path: Union[str, Path]) -> Dict:
    return safeio.read_json_verified(
        path, expected_kind="defense_matrix", expected_schema=MATRIX_SCHEMA
    )


def render_matrix(outcome: MatrixOutcome) -> str:
    """Rows = defense × engine; columns = slowdown, then one AUC
    separation per attack.  ``*`` marks a leaking cell, ``^`` a leaking
    cell on an attack the defense is documented not to close (see
    :attr:`~repro.analysis.tournament.AttackSpec.self_timing`)."""
    col = 10
    header = (
        f"{'defense':<16} {'engine':<7} {'slowdown':>9}  "
        + " ".join(f"{name[:col]:>{col}}" for name in outcome.attacks)
    )
    lines = [
        "defense matrix — overhead vs leakage "
        "(AUC separation; * leak, ^ known boundary)",
        header,
        "-" * len(header),
    ]
    for defense in outcome.defenses:
        for engine in outcome.engines:
            over = outcome.cells.get(overhead_label(defense, engine))
            slowdown = (
                f"{over['slowdown']:>9.4f}" if over else f"{'—':>9}"
            )
            row = [f"{defense:<16} {engine:<7} {slowdown} "]
            for attack in outcome.attacks:
                cell = outcome.cells.get(f"{attack}|{defense}|{engine}")
                if cell is None:
                    row.append(f"{'—':>{col}}")
                    continue
                mark = " "
                if cell["leak"]:
                    spec = ATTACKS.get(attack)
                    boundary = (
                        spec is not None
                        and spec.self_timing
                        and not is_control_defense(defense)
                    )
                    mark = "^" if boundary else "*"
                row.append(f"{cell['separation']:>{col - 1}.3f}{mark}")
            lines.append(" ".join(row))
    return "\n".join(lines)
