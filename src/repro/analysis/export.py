"""Structured (JSON) export of experiment results.

Downstream users want machine-readable output, not just the paper-layout
text tables: this module serializes :class:`ExperimentResult` sweeps and
:class:`DefenseComparison` reports into plain dict/JSON form with a
stable schema, and can write a whole artifact bundle to a directory.

Schema (version 1)::

    {
      "schema": 1,
      "kind": "spec_sweep" | "parsec_sweep" | "llc_sweep" | "comparison",
      "results": [ {label, normalized_time, overhead, baseline: {...},
                    timecache: {...}}, ... ]
    }
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Mapping, Sequence, Union

from repro.analysis.comparison import DefenseComparison
from repro.analysis.experiment import ExperimentResult, LevelMpki, SingleRun
from repro.robustness.resilience import SweepOutcome

SCHEMA_VERSION = 1


def run_to_dict(run: SingleRun) -> Dict:
    return {
        "cycles": run.cycles,
        "instructions": run.instructions,
        "context_switches": run.context_switches,
        "switch_bookkeeping_cycles": run.switch_bookkeeping_cycles,
        "llc_mpki": run.llc_mpki,
        "levels": {
            name: {
                "mpki": level.misses,
                "first_access_mpki": level.first_access_misses,
            }
            for name, level in run.level_mpki.items()
        },
    }


def result_to_dict(result: ExperimentResult) -> Dict:
    return {
        "label": result.label,
        "normalized_time": result.normalized_time,
        "overhead": result.overhead,
        "bookkeeping_fraction": result.bookkeeping_fraction,
        "baseline": run_to_dict(result.baseline),
        "timecache": run_to_dict(result.timecache),
    }


def run_from_dict(payload: Mapping) -> SingleRun:
    """Rebuild a :class:`SingleRun` from its serialized form.

    Inverse of :func:`run_to_dict` up to the raw ``stats`` counters,
    which are not serialized (the schema keeps only the derived
    metrics); a reconstructed run has an empty ``stats`` dict.
    """
    return SingleRun(
        cycles=int(payload["cycles"]),
        instructions=int(payload["instructions"]),
        context_switches=int(payload["context_switches"]),
        switch_bookkeeping_cycles=int(payload["switch_bookkeeping_cycles"]),
        level_mpki={
            name: LevelMpki(
                name,
                misses=float(level["mpki"]),
                first_access_misses=float(level["first_access_mpki"]),
            )
            for name, level in payload.get("levels", {}).items()
        },
    )


def result_from_dict(payload: Mapping) -> ExperimentResult:
    """Rebuild an :class:`ExperimentResult`; inverse of
    :func:`result_to_dict` (the normalized/overhead fields are derived
    properties and need no restoring)."""
    return ExperimentResult(
        label=payload["label"],
        baseline=run_from_dict(payload["baseline"]),
        timecache=run_from_dict(payload["timecache"]),
    )


def sweep_to_dict(
    results: Sequence[ExperimentResult], kind: str = "spec_sweep"
) -> Dict:
    return {
        "schema": SCHEMA_VERSION,
        "kind": kind,
        "results": [result_to_dict(r) for r in results],
    }


def outcome_to_dict(
    outcome: SweepOutcome,
    labels: Sequence[str],
    kind: str = "spec_sweep",
) -> Dict:
    """Serialize a resilient sweep outcome: results in ``labels`` order
    plus the failure records and resumed labels.

    The payload is a superset of :func:`sweep_to_dict`'s, so existing
    loaders keep working; because results are reassembled in label order
    the bytes are identical whether the sweep ran serially or across a
    process pool.
    """
    payload = sweep_to_dict(outcome.ordered_results(labels), kind=kind)
    payload["failures"] = [f.to_dict() for f in outcome.failures]
    payload["resumed"] = sorted(outcome.resumed)
    # Explicit gap markers: labels that produced no result.  A partial
    # export names what is missing instead of silently shrinking.
    payload["gaps"] = [
        label for label in labels if label not in outcome.results
    ]
    return payload


def export_outcome(
    outcome: SweepOutcome,
    labels: Sequence[str],
    path: Union[str, Path],
    kind: str = "spec_sweep",
) -> Path:
    """One-call export of a resilient sweep outcome."""
    return save_json(outcome_to_dict(outcome, labels, kind=kind), path)


def comparison_to_dict(comparison: DefenseComparison) -> Dict:
    return {
        "schema": SCHEMA_VERSION,
        "kind": "comparison",
        "workload": comparison.workload,
        "defenses": {
            name: {
                "normalized_time": comparison.normalized_time(name),
                "overhead": comparison.overhead(name),
                "secure": report.secure,
                "attack_hits": report.attack_hits,
                "attack_probes": report.attack_probes,
                "run": run_to_dict(report.run),
            }
            for name, report in comparison.reports.items()
        },
    }


def save_json(payload: Mapping, path: Union[str, Path]) -> Path:
    """Write a payload as pretty-printed JSON; returns the path.

    Writes crash-safely (atomic temp+fsync+rename, content checksum,
    rotated ``.bak``) via :mod:`repro.robustness.safeio` — every JSON
    artifact the repo publishes survives a kill mid-write.
    """
    from repro.robustness import safeio

    return safeio.write_json_atomic(payload, path)


def load_json(path: Union[str, Path]) -> Dict:
    """Load an exported payload, verifying its checksum when present.

    Schema mismatch and corruption both raise ``ValueError``
    (:class:`~repro.common.errors.CheckpointCorruptionError` is a
    subclass, so historic callers keep working).
    """
    from repro.robustness import safeio

    return safeio.read_json_verified(path, expected_schema=SCHEMA_VERSION)


def export_sweep(
    results: Sequence[ExperimentResult],
    path: Union[str, Path],
    kind: str = "spec_sweep",
) -> Path:
    """One-call sweep export."""
    return save_json(sweep_to_dict(results, kind=kind), path)


def summarize_json(payload: Mapping) -> Dict[str, float]:
    """Aggregate a loaded sweep payload (geomean etc.) without rerunning."""
    from repro.common.units import geometric_mean

    ratios: List[float] = [
        r["normalized_time"] for r in payload.get("results", [])
    ]
    if not ratios:
        return {"count": 0}
    return {
        "count": len(ratios),
        "geomean_normalized_time": geometric_mean(ratios),
        "max_overhead": max(r - 1.0 for r in ratios),
    }
