"""Defense comparison: TimeCache vs the partitioning baseline.

Section VIII argues partitioning-based defenses (Catalyst, Apparition,
DAWG, PLcache) pay 4-12% for security that TimeCache provides at ~1%.
This module runs the same workload under three configurations —
undefended baseline, TimeCache, and CAT-style partitioning with
flush-on-switch — plus the reuse-attack microbenchmark under each, so
one call produces both columns of the comparison: does the attack still
work, and what does the defense cost?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.experiment import SingleRun, _collect_run
from repro.attacks.flush_reload import run_microbenchmark_attack
from repro.common.config import SimConfig
from repro.os.kernel import Kernel
from repro.workloads.spec import build_spec_pair


@dataclass
class DefenseReport:
    """One defense's cost and security outcome on one workload."""

    name: str
    run: SingleRun
    attack_hits: int
    attack_probes: int

    @property
    def secure(self) -> bool:
        return self.attack_hits == 0


@dataclass
class DefenseComparison:
    """Baseline + every defense, over identical work."""

    workload: str
    reports: Dict[str, DefenseReport]

    def normalized_time(self, name: str) -> float:
        base = self.reports["baseline"].run.cycles
        if base == 0:
            return 1.0
        return self.reports[name].run.cycles / base

    def overhead(self, name: str) -> float:
        return self.normalized_time(name) - 1.0

    def render(self) -> str:
        lines = [
            f"defense comparison — {self.workload}",
            f"{'defense':<14} {'norm. time':>10} {'LLC MPKI':>9} "
            f"{'attack':>14}",
        ]
        lines.append("-" * len(lines[-1]))
        for name, report in self.reports.items():
            attack = (
                "leaks" if report.attack_hits else "blocked"
            ) if name != "baseline" else f"{report.attack_hits} hits"
            lines.append(
                f"{name:<14} {self.normalized_time(name):>10.4f} "
                f"{report.run.llc_mpki:>9.4f} {attack:>14}"
            )
        return "\n".join(lines)


def _run_workload(config: SimConfig, bench_a, bench_b, instructions, seed):
    kernel = Kernel(config)
    build_spec_pair(kernel, bench_a, bench_b, instructions, seed=seed)
    summary = kernel.run()
    return _collect_run(kernel, summary)


def compare_defenses(
    config: SimConfig,
    bench_a: str = "perlbench",
    bench_b: str = "perlbench",
    instructions: int = 120_000,
    partition_domains: int = 2,
    seed: int = 0xBEEF,
) -> DefenseComparison:
    """Run baseline / TimeCache / partitioning over the same pair.

    ``config`` should be a TimeCache-enabled configuration; the other two
    are derived from it so geometry and workloads match exactly.
    """
    configs: List = [
        ("baseline", config.baseline()),
        ("timecache", config),
        ("partition", config.with_partitioning(domains=partition_domains)),
    ]
    reports: Dict[str, DefenseReport] = {}
    for name, cfg in configs:
        run = _run_workload(cfg, bench_a, bench_b, instructions, seed)
        attack = run_microbenchmark_attack(
            cfg, shared_lines=64, sleep_cycles=50_000
        )
        reports[name] = DefenseReport(
            name=name,
            run=run,
            attack_hits=attack.probe_hits,
            attack_probes=attack.probe_total,
        )
    from repro.workloads.mixes import pair_label

    return DefenseComparison(pair_label(bench_a, bench_b), reports)
