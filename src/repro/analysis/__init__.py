"""Experiment harness: regenerate the paper's tables and figures.

* :mod:`repro.analysis.experiment` — run one workload under baseline and
  TimeCache configurations and compute normalized execution time, MPKI,
  and first-access MPKI per cache level;
* :mod:`repro.analysis.tables` — text renderers that print rows/series
  in the same layout as the paper's Table II and Figures 7-10;
* :mod:`repro.analysis.runner` — the sweep drivers the benchmark suite
  calls (SPEC pair sweeps, the PARSEC sweep, the LLC-size sensitivity
  sweep).
"""

from repro.analysis.experiment import (
    ExperimentResult,
    LevelMpki,
    run_parsec_experiment,
    run_spec_pair_experiment,
)
from repro.analysis.comparison import (
    DefenseComparison,
    DefenseReport,
    compare_defenses,
)
from repro.analysis.export import (
    comparison_to_dict,
    export_sweep,
    load_json,
    result_to_dict,
    save_json,
    summarize_json,
    sweep_to_dict,
)
from repro.analysis.figures import ascii_bars, figure7, figure9a, figure10
from repro.analysis.parallel import (
    ParallelSweepExecutor,
    SweepJob,
    derive_job_seed,
    run_sweep_jobs,
)
from repro.analysis.runner import (
    llc_sensitivity_sweep,
    parsec_sweep,
    resilient_parsec_sweep,
    resilient_spec_pair_sweep,
    spec_pair_sweep,
)
from repro.analysis.tables import (
    render_figure_series,
    render_mpki_table,
    render_table2,
)

__all__ = [
    "DefenseComparison",
    "DefenseReport",
    "ExperimentResult",
    "LevelMpki",
    "ParallelSweepExecutor",
    "SweepJob",
    "derive_job_seed",
    "resilient_parsec_sweep",
    "resilient_spec_pair_sweep",
    "run_sweep_jobs",
    "ascii_bars",
    "compare_defenses",
    "comparison_to_dict",
    "export_sweep",
    "load_json",
    "result_to_dict",
    "save_json",
    "summarize_json",
    "sweep_to_dict",
    "figure7",
    "figure9a",
    "figure10",
    "llc_sensitivity_sweep",
    "parsec_sweep",
    "render_figure_series",
    "render_mpki_table",
    "render_table2",
    "run_parsec_experiment",
    "run_spec_pair_experiment",
    "spec_pair_sweep",
]
