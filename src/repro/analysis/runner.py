"""Sweep drivers used by the benchmark suite.

Each function regenerates one of the paper's artifacts end to end and
returns structured results; the benchmark files print them with the
:mod:`repro.analysis.tables` renderers and assert the paper's *shape*
claims (who wins, orderings, trends).

Every sweep takes ``jobs``: ``1`` (the default) runs the exact serial
path, any other value fans the independent simulation cells out across
a process pool via :class:`repro.analysis.parallel.ParallelSweepExecutor`
(``None`` means one worker per CPU).  Serial and parallel runs of the
same sweep produce identical results — each cell is a deterministic
function of its arguments — which `tests/analysis/test_parallel.py`
locks in byte-for-byte on the exported tables and checkpoints.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.experiment import (
    ExperimentJob,
    ExperimentResult,
    SimulationBudget,
    run_experiment_job,
    run_parsec_experiment,
    run_spec_pair_experiment,
)
from repro.analysis.parallel import ParallelSweepExecutor, SweepJob
from repro.common.config import SimConfig, scaled_experiment_config
from repro.obs.manifest import config_fingerprint
from repro.robustness.resilience import (
    Checkpoint,
    SweepOutcome,
    run_resilient_jobs,
)
from repro.robustness.supervisor import SupervisedSweepExecutor
from repro.workloads.mixes import (
    PARSEC_BENCHMARKS,
    SPEC_MIXED_PAIRS,
    SPEC_SAME_PAIRS,
    pair_label,
)


def _sweep_provenance(config: SimConfig, seed: int) -> Dict[str, object]:
    """Per-job provenance stamped onto FailureRecords by the supervised
    executor: enough to re-run (and blame) one quarantined cell."""
    from repro.memsys.fastengine import FastHierarchy

    engine = config.hierarchy.engine
    return {
        "seed": seed,
        "engine": engine,
        "config_sha256": config_fingerprint(config),
        "batch_window": (
            FastHierarchy._BATCH_WINDOW_MAX if engine == "fast" else None
        ),
    }


def _spec_pair_jobs(
    config: SimConfig,
    pairs: Sequence[Tuple[str, str]],
    instructions: int,
    seed: int,
    budget: Optional[SimulationBudget] = None,
    label_prefix: str = "",
) -> List[SweepJob]:
    """Picklable job list for a SPEC pair sweep (one cell per pair)."""
    provenance = _sweep_provenance(config, seed)
    jobs: List[SweepJob] = []
    for a, b in pairs:
        label = label_prefix + pair_label(a, b)
        spec = ExperimentJob(
            kind="spec_pair",
            label=label,
            config=config,
            args=(a, b),
            kwargs={"instructions": instructions, "seed": seed, "budget": budget},
        )
        jobs.append(
            SweepJob(
                label=label,
                fn=run_experiment_job,
                args=(spec,),
                provenance=dict(provenance),
            )
        )
    return jobs


def _parsec_jobs(
    config: SimConfig,
    benchmarks: Sequence[str],
    instructions_per_thread: int,
    seed: int,
    budget: Optional[SimulationBudget] = None,
) -> List[SweepJob]:
    """Picklable job list for a PARSEC sweep (one cell per benchmark)."""
    provenance = _sweep_provenance(config, seed)
    jobs: List[SweepJob] = []
    for bench in benchmarks:
        spec = ExperimentJob(
            kind="parsec",
            label=bench,
            config=config,
            args=(bench,),
            kwargs={
                "instructions_per_thread": instructions_per_thread,
                "seed": seed,
                "budget": budget,
            },
        )
        jobs.append(
            SweepJob(
                label=bench,
                fn=run_experiment_job,
                args=(spec,),
                provenance=dict(provenance),
            )
        )
    return jobs


def spec_pair_sweep(
    pairs: Sequence[Tuple[str, str]] = tuple(SPEC_SAME_PAIRS + SPEC_MIXED_PAIRS),
    instructions: int = 120_000,
    llc_kib: int = 128,
    seed: int = 0xBEEF,
    jobs: Optional[int] = 1,
    engine: str = "object",
) -> List[ExperimentResult]:
    """The Table II / Figure 7 / Figure 8 sweep (single core, pairs)."""
    config = scaled_experiment_config(
        num_cores=1, llc_kib=llc_kib, seed=seed, engine=engine
    )
    if jobs == 1:
        return [
            run_spec_pair_experiment(
                config, a, b, instructions=instructions, seed=seed
            )
            for a, b in pairs
        ]
    executor = ParallelSweepExecutor(jobs, retries=0, base_seed=seed)
    results = executor.map(_spec_pair_jobs(config, pairs, instructions, seed))
    return list(results)  # type: ignore[arg-type]


def parsec_sweep(
    benchmarks: Sequence[str] = tuple(PARSEC_BENCHMARKS),
    instructions_per_thread: int = 1_000_000,
    llc_kib: int = 128,
    seed: int = 0xFACE,
    jobs: Optional[int] = 1,
    engine: str = "object",
) -> List[ExperimentResult]:
    """The Figure 9 / Table II PARSEC sweep (2 threads on 2 cores)."""
    config = scaled_experiment_config(
        num_cores=2, llc_kib=llc_kib, seed=seed, engine=engine
    )
    if jobs == 1:
        return [
            run_parsec_experiment(
                config, b, instructions_per_thread=instructions_per_thread, seed=seed
            )
            for b in benchmarks
        ]
    executor = ParallelSweepExecutor(jobs, retries=0, base_seed=seed)
    results = executor.map(
        _parsec_jobs(config, benchmarks, instructions_per_thread, seed)
    )
    return list(results)  # type: ignore[arg-type]


def llc_sensitivity_sweep(
    pairs: Sequence[Tuple[str, str]],
    llc_sizes_kib: Sequence[int] = (128, 256, 512),
    instructions: int = 120_000,
    seed: int = 0xBEEF,
    jobs: Optional[int] = 1,
    engine: str = "object",
) -> Dict[int, List[ExperimentResult]]:
    """The Figure 10 sweep: the same pairs at growing LLC sizes.

    The paper's 2/4/8 MB sweep maps to 128/256/512 KiB at the model's
    16x scale factor; the claim under test is the monotone shrink of the
    mean overhead with LLC size.  With ``jobs != 1`` every (size, pair)
    cell runs concurrently — the whole grid is one flat job list.
    """
    results: Dict[int, List[ExperimentResult]] = {}
    if jobs == 1:
        for llc_kib in llc_sizes_kib:
            config = scaled_experiment_config(
                num_cores=1, llc_kib=llc_kib, seed=seed, engine=engine
            )
            results[llc_kib] = [
                run_spec_pair_experiment(
                    config, a, b, instructions=instructions, seed=seed
                )
                for a, b in pairs
            ]
        return results
    all_jobs: List[SweepJob] = []
    for llc_kib in llc_sizes_kib:
        config = scaled_experiment_config(
            num_cores=1, llc_kib=llc_kib, seed=seed, engine=engine
        )
        all_jobs.extend(
            _spec_pair_jobs(
                config, pairs, instructions, seed, label_prefix=f"{llc_kib}KiB/"
            )
        )
    executor = ParallelSweepExecutor(jobs, retries=0, base_seed=seed)
    flat = executor.map(all_jobs)
    per_size = len(pairs)
    for i, llc_kib in enumerate(llc_sizes_kib):
        results[llc_kib] = list(flat[i * per_size : (i + 1) * per_size])  # type: ignore[arg-type]
    return results


def _result_checkpoint(
    checkpoint_path: Optional[Union[str, Path]]
) -> Optional[Checkpoint]:
    if checkpoint_path is None:
        return None
    from repro.analysis.export import result_from_dict, result_to_dict

    return Checkpoint(
        checkpoint_path, serialize=result_to_dict, deserialize=result_from_dict
    )


def resilient_spec_pair_sweep(
    pairs: Sequence[Tuple[str, str]] = tuple(SPEC_SAME_PAIRS + SPEC_MIXED_PAIRS),
    instructions: int = 120_000,
    llc_kib: int = 128,
    seed: int = 0xBEEF,
    budget: Optional[SimulationBudget] = None,
    checkpoint_path: Optional[Union[str, Path]] = None,
    retries: int = 2,
    backoff_s: float = 0.5,
    jobs: Optional[int] = 1,
    engine: str = "object",
    deadline_s: Optional[float] = None,
    quarantine_dir: Optional[Union[str, Path]] = None,
    manifest_id: str = "",
    obs_dir: Optional[Union[str, Path]] = None,
) -> SweepOutcome:
    """:func:`spec_pair_sweep` under the resilient runner.

    A pair that crashes or exceeds ``budget`` is retried with backoff and
    ultimately becomes a ``FailureRecord`` instead of sinking the sweep;
    ``checkpoint_path`` enables resume — completed pairs are loaded, not
    re-simulated, and previously failed pairs get a fresh chance.  With
    ``jobs != 1`` the pairs run under the supervised executor
    (:class:`~repro.robustness.supervisor.SupervisedSweepExecutor`):
    one worker process per in-flight pair with heartbeat monitoring, so
    a crashed worker is detected and rescheduled and (with
    ``deadline_s``) a hung worker is killed at the deadline.  Poison
    pairs are quarantined with full provenance under ``quarantine_dir``.
    Retry/checkpoint/resume semantics and the results themselves are
    identical to the serial path.
    """
    config = scaled_experiment_config(
        num_cores=1, llc_kib=llc_kib, seed=seed, engine=engine
    )

    if jobs == 1:

        def job(a: str, b: str):
            return lambda: run_spec_pair_experiment(
                config, a, b, instructions=instructions, seed=seed, budget=budget
            )

        serial_jobs = [(pair_label(a, b), job(a, b)) for a, b in pairs]
        return run_resilient_jobs(
            serial_jobs,
            retries=retries,
            backoff_s=backoff_s,
            checkpoint=_result_checkpoint(checkpoint_path),
        )
    executor = SupervisedSweepExecutor(
        jobs,
        retries=retries,
        backoff_s=backoff_s,
        deadline_s=deadline_s,
        checkpoint=_result_checkpoint(checkpoint_path),
        base_seed=seed,
        quarantine_dir=quarantine_dir,
        manifest_id=manifest_id,
        obs_dir=obs_dir,
    )
    return executor.run(_spec_pair_jobs(config, pairs, instructions, seed, budget))


def resilient_parsec_sweep(
    benchmarks: Sequence[str] = tuple(PARSEC_BENCHMARKS),
    instructions_per_thread: int = 1_000_000,
    llc_kib: int = 128,
    seed: int = 0xFACE,
    budget: Optional[SimulationBudget] = None,
    checkpoint_path: Optional[Union[str, Path]] = None,
    retries: int = 2,
    backoff_s: float = 0.5,
    jobs: Optional[int] = 1,
    engine: str = "object",
    deadline_s: Optional[float] = None,
    quarantine_dir: Optional[Union[str, Path]] = None,
    manifest_id: str = "",
    obs_dir: Optional[Union[str, Path]] = None,
) -> SweepOutcome:
    """:func:`parsec_sweep` under the resilient runner (see
    :func:`resilient_spec_pair_sweep` for the failure and supervision
    semantics)."""
    config = scaled_experiment_config(
        num_cores=2, llc_kib=llc_kib, seed=seed, engine=engine
    )

    if jobs == 1:

        def job(bench: str):
            return lambda: run_parsec_experiment(
                config,
                bench,
                instructions_per_thread=instructions_per_thread,
                seed=seed,
                budget=budget,
            )

        serial_jobs = [(bench, job(bench)) for bench in benchmarks]
        return run_resilient_jobs(
            serial_jobs,
            retries=retries,
            backoff_s=backoff_s,
            checkpoint=_result_checkpoint(checkpoint_path),
        )
    executor = SupervisedSweepExecutor(
        jobs,
        retries=retries,
        backoff_s=backoff_s,
        deadline_s=deadline_s,
        checkpoint=_result_checkpoint(checkpoint_path),
        base_seed=seed,
        quarantine_dir=quarantine_dir,
        manifest_id=manifest_id,
        obs_dir=obs_dir,
    )
    return executor.run(
        _parsec_jobs(config, benchmarks, instructions_per_thread, seed, budget)
    )


def single_config(
    llc_kib: int = 128, num_cores: int = 1, engine: str = "object"
) -> SimConfig:
    """Convenience for examples/tests wanting the standard experiment
    configuration."""
    return scaled_experiment_config(
        num_cores=num_cores, llc_kib=llc_kib, engine=engine
    )


def hot_cold_reference_trace(
    accesses: int,
    hot_lines: int = 8,
    hot_fraction: float = 0.995,
    pool_lines: int = 256,
    line_bytes: int = 64,
    seed: int = 7,
) -> Sequence[int]:
    """A deterministic hot/cold load trace (addresses, line-granular).

    ``hot_fraction`` of the accesses land on ``hot_lines`` distinct
    lines, the rest on a ``pool_lines``-line cold pool — the
    cache-friendly regime real workload phases spend most of their time
    in (and the one the batched access path exists for).  Shared by the
    ``hierarchy_access_batched`` bench arm and the batched-replay
    sweeps so both measure the same stream.

    The trace comes back as an ``array('q')``: it indexes and iterates
    as plain Python ints for the scalar loops, but the fast engine's
    ``access_batch`` ingests it zero-copy through the buffer protocol
    instead of boxing 10^5 list elements into an int64 array per call.
    """
    from array import array

    from repro.common.rng import DeterministicRng

    rng = DeterministicRng(seed)
    base = 0x10000
    # The hot set is one consecutive block (a hot buffer): consecutive
    # lines round-robin across cache sets, so the block spreads evenly
    # instead of gambling on random set collisions that would turn the
    # hot set itself into a thrashing workload.
    start = rng.randint(0, pool_lines - hot_lines)
    hots = [base + (start + i) * line_bytes for i in range(hot_lines)]
    trace = array("q")
    for _ in range(accesses):
        if rng.random() < hot_fraction:
            trace.append(hots[rng.randint(0, hot_lines - 1)])
        else:
            trace.append(base + rng.randint(0, pool_lines - 1) * line_bytes)
    return trace


def batched_replay_run(
    accesses: int = 8_000,
    engine: str = "fast",
    batch: bool = True,
    seed: int = 7,
    hot_fraction: float = 0.995,
) -> Dict[str, object]:
    """One batched-replay cell: the hot/cold trace through one system.

    Drives :func:`hot_cold_reference_trace` into a campaign-sized
    :class:`~repro.core.timecache.TimeCacheSystem` via
    :func:`repro.cpu.tracing.replay_ops` (``batch=False`` replays the
    identical stream scalar).  Deterministic in its arguments and
    picklable, so sweeps can fan cells across the process pool; scalar
    and batched runs of the same cell must produce identical summaries
    — the equivalence tests lock that in across ``--jobs N``.
    """
    import dataclasses

    from repro.core.timecache import TimeCacheSystem
    from repro.cpu.isa import Load
    from repro.cpu.tracing import replay_ops
    from repro.robustness.campaign import campaign_config

    config = campaign_config(seed=seed)
    if engine != config.hierarchy.engine:
        config = dataclasses.replace(
            config,
            hierarchy=dataclasses.replace(config.hierarchy, engine=engine),
        )
    system = TimeCacheSystem(config)
    trace = hot_cold_reference_trace(
        accesses,
        hot_fraction=hot_fraction,
        line_bytes=config.hierarchy.line_bytes,
        seed=seed,
    )
    results, now = replay_ops(
        system, (Load(addr) for addr in trace), batch=batch
    )
    levels: Dict[str, int] = {}
    for result in results:
        levels[result.level] = levels.get(result.level, 0) + 1
    return {
        "accesses": len(results),
        "levels": levels,
        "first_accesses": sum(1 for r in results if r.first_access),
        "total_latency": sum(r.latency for r in results),
        "final_now": now,
        "stats": system.stats_snapshot(),
    }


def batched_replay_sweep(
    cells: int = 4,
    accesses: int = 8_000,
    engine: str = "fast",
    batch: bool = True,
    jobs: Optional[int] = 1,
    seed: int = 7,
) -> List[Dict[str, object]]:
    """A sweep of independent batched-replay cells (one seed per cell).

    ``jobs=1`` runs the exact serial path; anything else fans the cells
    across the process pool, same contract as the other sweeps: the
    result list is identical either way.
    """
    if jobs == 1:
        return [
            batched_replay_run(accesses, engine, batch, seed + i)
            for i in range(cells)
        ]
    executor = ParallelSweepExecutor(jobs, retries=0, base_seed=seed)
    sweep_jobs = [
        SweepJob(
            label=f"replay{i}",
            fn=batched_replay_run,
            args=(accesses, engine, batch, seed + i),
        )
        for i in range(cells)
    ]
    return list(executor.map(sweep_jobs))  # type: ignore[arg-type]


def write_run_manifest(
    path: Union[str, Path],
    *,
    command: Sequence[str],
    config: SimConfig,
    seed: Optional[int] = None,
    artifacts: Sequence[Union[str, Path]] = (),
    extra: Optional[Dict[str, object]] = None,
):
    """Write a :class:`~repro.obs.manifest.RunManifest` for one run.

    The CLI calls this after every artifact-producing command so each
    output directory is self-describing: the exact config (and its
    hash), the seed, engine, git state, and a checksummed index of the
    files the run produced.  Returns the manifest object.
    """
    from repro.obs.manifest import RunManifest

    manifest = RunManifest.build(
        command=list(command),
        config=config,
        seed=seed,
        artifacts=artifacts,
        extra=extra,
    )
    manifest.write(path)
    return manifest
