"""Sweep drivers used by the benchmark suite.

Each function regenerates one of the paper's artifacts end to end and
returns structured results; the benchmark files print them with the
:mod:`repro.analysis.tables` renderers and assert the paper's *shape*
claims (who wins, orderings, trends).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.experiment import (
    ExperimentResult,
    SimulationBudget,
    run_parsec_experiment,
    run_spec_pair_experiment,
)
from repro.common.config import SimConfig, scaled_experiment_config
from repro.robustness.resilience import (
    Checkpoint,
    SweepOutcome,
    run_resilient_jobs,
)
from repro.workloads.mixes import (
    PARSEC_BENCHMARKS,
    SPEC_MIXED_PAIRS,
    SPEC_SAME_PAIRS,
)


def spec_pair_sweep(
    pairs: Sequence[Tuple[str, str]] = tuple(SPEC_SAME_PAIRS + SPEC_MIXED_PAIRS),
    instructions: int = 120_000,
    llc_kib: int = 128,
    seed: int = 0xBEEF,
) -> List[ExperimentResult]:
    """The Table II / Figure 7 / Figure 8 sweep (single core, pairs)."""
    config = scaled_experiment_config(num_cores=1, llc_kib=llc_kib, seed=seed)
    return [
        run_spec_pair_experiment(config, a, b, instructions=instructions, seed=seed)
        for a, b in pairs
    ]


def parsec_sweep(
    benchmarks: Sequence[str] = tuple(PARSEC_BENCHMARKS),
    instructions_per_thread: int = 1_000_000,
    llc_kib: int = 128,
    seed: int = 0xFACE,
) -> List[ExperimentResult]:
    """The Figure 9 / Table II PARSEC sweep (2 threads on 2 cores)."""
    config = scaled_experiment_config(num_cores=2, llc_kib=llc_kib, seed=seed)
    return [
        run_parsec_experiment(
            config, b, instructions_per_thread=instructions_per_thread, seed=seed
        )
        for b in benchmarks
    ]


def llc_sensitivity_sweep(
    pairs: Sequence[Tuple[str, str]],
    llc_sizes_kib: Sequence[int] = (128, 256, 512),
    instructions: int = 120_000,
    seed: int = 0xBEEF,
) -> Dict[int, List[ExperimentResult]]:
    """The Figure 10 sweep: the same pairs at growing LLC sizes.

    The paper's 2/4/8 MB sweep maps to 128/256/512 KiB at the model's
    16x scale factor; the claim under test is the monotone shrink of the
    mean overhead with LLC size.
    """
    results: Dict[int, List[ExperimentResult]] = {}
    for llc_kib in llc_sizes_kib:
        config = scaled_experiment_config(num_cores=1, llc_kib=llc_kib, seed=seed)
        results[llc_kib] = [
            run_spec_pair_experiment(
                config, a, b, instructions=instructions, seed=seed
            )
            for a, b in pairs
        ]
    return results


def _result_checkpoint(
    checkpoint_path: Optional[Union[str, Path]]
) -> Optional[Checkpoint]:
    if checkpoint_path is None:
        return None
    from repro.analysis.export import result_from_dict, result_to_dict

    return Checkpoint(
        checkpoint_path, serialize=result_to_dict, deserialize=result_from_dict
    )


def resilient_spec_pair_sweep(
    pairs: Sequence[Tuple[str, str]] = tuple(SPEC_SAME_PAIRS + SPEC_MIXED_PAIRS),
    instructions: int = 120_000,
    llc_kib: int = 128,
    seed: int = 0xBEEF,
    budget: Optional[SimulationBudget] = None,
    checkpoint_path: Optional[Union[str, Path]] = None,
    retries: int = 2,
    backoff_s: float = 0.5,
) -> SweepOutcome:
    """:func:`spec_pair_sweep` under the resilient runner.

    A pair that crashes or exceeds ``budget`` is retried with backoff and
    ultimately becomes a ``FailureRecord`` instead of sinking the sweep;
    ``checkpoint_path`` enables resume — completed pairs are loaded, not
    re-simulated, and previously failed pairs get a fresh chance.
    """
    from repro.workloads.mixes import pair_label

    config = scaled_experiment_config(num_cores=1, llc_kib=llc_kib, seed=seed)

    def job(a: str, b: str):
        return lambda: run_spec_pair_experiment(
            config, a, b, instructions=instructions, seed=seed, budget=budget
        )

    jobs = [(pair_label(a, b), job(a, b)) for a, b in pairs]
    return run_resilient_jobs(
        jobs,
        retries=retries,
        backoff_s=backoff_s,
        checkpoint=_result_checkpoint(checkpoint_path),
    )


def resilient_parsec_sweep(
    benchmarks: Sequence[str] = tuple(PARSEC_BENCHMARKS),
    instructions_per_thread: int = 1_000_000,
    llc_kib: int = 128,
    seed: int = 0xFACE,
    budget: Optional[SimulationBudget] = None,
    checkpoint_path: Optional[Union[str, Path]] = None,
    retries: int = 2,
    backoff_s: float = 0.5,
) -> SweepOutcome:
    """:func:`parsec_sweep` under the resilient runner (see
    :func:`resilient_spec_pair_sweep` for the failure semantics)."""
    config = scaled_experiment_config(num_cores=2, llc_kib=llc_kib, seed=seed)

    def job(bench: str):
        return lambda: run_parsec_experiment(
            config,
            bench,
            instructions_per_thread=instructions_per_thread,
            seed=seed,
            budget=budget,
        )

    jobs = [(bench, job(bench)) for bench in benchmarks]
    return run_resilient_jobs(
        jobs,
        retries=retries,
        backoff_s=backoff_s,
        checkpoint=_result_checkpoint(checkpoint_path),
    )


def single_config(llc_kib: int = 128, num_cores: int = 1) -> SimConfig:
    """Convenience for examples/tests wanting the standard experiment
    configuration."""
    return scaled_experiment_config(num_cores=num_cores, llc_kib=llc_kib)
