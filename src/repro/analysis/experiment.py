"""Run one workload under baseline and TimeCache, compare.

The paper's primary metrics, computed here for every experiment:

* **normalized execution time** — cycles with TimeCache / cycles without,
  over the identical instruction stream (Figures 7, 9a, 10);
* **LLC MPKI** baseline vs TimeCache (Table II);
* **first-access MPKI per cache level** (Figures 8 and 9b);
* context-switch bookkeeping share of the added cycles (Section VI-D).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.common.config import SimConfig
from repro.common.units import mpki
from repro.os.kernel import Kernel, RunSummary
from repro.workloads.parsec import build_parsec_workload
from repro.workloads.spec import build_spec_pair


@dataclass(frozen=True)
class SimulationBudget:
    """Watchdog limits for one simulation.

    Exceeding either raises :class:`~repro.common.errors.SimulationTimeout`
    (a hard error the resilient sweep runner records), unlike the kernel's
    ``max_steps`` which truncates silently.  ``None`` disables a limit.
    """

    wall_clock_s: Optional[float] = None
    max_instructions: Optional[int] = None


@dataclass(frozen=True)
class LevelMpki:
    """Per-cache-level miss statistics for one run."""

    name: str
    misses: float
    first_access_misses: float

    @property
    def total(self) -> float:
        return self.misses + self.first_access_misses


@dataclass
class SingleRun:
    """Raw outputs of one simulation (one configuration)."""

    cycles: int
    instructions: int
    context_switches: int
    level_mpki: Dict[str, LevelMpki] = field(default_factory=dict)
    switch_bookkeeping_cycles: int = 0
    stats: Dict[str, int] = field(default_factory=dict)

    @property
    def llc_mpki(self) -> float:
        level = self.level_mpki.get("LLC")
        return level.total if level else 0.0

    @property
    def llc_first_access_mpki(self) -> float:
        level = self.level_mpki.get("LLC")
        return level.first_access_misses if level else 0.0


@dataclass
class ExperimentResult:
    """Baseline-vs-TimeCache comparison for one workload."""

    label: str
    baseline: SingleRun
    timecache: SingleRun

    @property
    def normalized_time(self) -> float:
        """Execution time with TimeCache / without (Figure 7's metric)."""
        if self.baseline.cycles == 0:
            return 1.0
        return self.timecache.cycles / self.baseline.cycles

    @property
    def overhead(self) -> float:
        return self.normalized_time - 1.0

    @property
    def bookkeeping_fraction(self) -> float:
        """Share of total TimeCache cycles spent on s-bit save/restore —
        the paper reports ~0.02% of runtime."""
        if self.timecache.cycles == 0:
            return 0.0
        return self.timecache.switch_bookkeeping_cycles / self.timecache.cycles


def _collect_run(kernel: Kernel, summary: RunSummary) -> SingleRun:
    hierarchy = kernel.system.hierarchy
    instructions = summary.total_instructions
    levels: Dict[str, LevelMpki] = {}

    def merge(name: str, caches) -> None:
        # Demand misses exclude cold (compulsory) misses: at the model's
        # scaled instruction counts the cold floor would swamp low-MPKI
        # benchmarks, while at the paper's 1e9 instructions it vanishes.
        misses = sum(
            c.stats.get("misses") - c.stats.get("cold_misses") for c in caches
        )
        first = sum(c.stats.get("first_access_misses") for c in caches)
        levels[name] = LevelMpki(
            name,
            misses=mpki(max(0, misses), instructions),
            first_access_misses=mpki(first, instructions),
        )

    merge("L1I", hierarchy.l1i)
    merge("L1D", hierarchy.l1d)
    merge("LLC", [hierarchy.llc])

    switches = summary.context_switches
    bookkeeping = switches * kernel.config.timecache.sbit_dma_cycles
    if not kernel.config.timecache.enabled:
        bookkeeping = 0
    return SingleRun(
        cycles=summary.makespan,
        instructions=instructions,
        context_switches=switches,
        level_mpki=levels,
        switch_bookkeeping_cycles=bookkeeping,
        stats=kernel.system.stats_snapshot(),
    )


def _run_configured(
    config: SimConfig,
    build: Callable[[Kernel], object],
    budget: Optional[SimulationBudget] = None,
) -> SingleRun:
    kernel = Kernel(config)
    build(kernel)
    if budget is None:
        summary = kernel.run()
    else:
        summary = kernel.run(
            wall_clock_budget_s=budget.wall_clock_s,
            instruction_budget=budget.max_instructions,
        )
    return _collect_run(kernel, summary)


def run_spec_pair_experiment(
    config: SimConfig,
    bench_a: str,
    bench_b: str,
    instructions: int = 120_000,
    seed: int = 0xBEEF,
    budget: Optional[SimulationBudget] = None,
) -> ExperimentResult:
    """One Table II SPEC row: the pair under baseline and TimeCache.

    Both configurations replay the identical deterministic instruction
    streams (same seed), so the cycle ratio isolates the defense's cost.
    ``budget`` arms the simulation watchdog for both runs.
    """
    from repro.workloads.mixes import pair_label

    def build(kernel: Kernel) -> None:
        build_spec_pair(kernel, bench_a, bench_b, instructions, seed=seed)

    base = _run_configured(config.baseline(), build, budget)
    defended = _run_configured(config, build, budget)
    return ExperimentResult(pair_label(bench_a, bench_b), base, defended)


def run_parsec_experiment(
    config: SimConfig,
    bench: str,
    instructions_per_thread: int = 1_000_000,
    seed: int = 0xFACE,
    budget: Optional[SimulationBudget] = None,
) -> ExperimentResult:
    """One Table II PARSEC row: 2 threads on 2 cores, both configurations."""

    def build(kernel: Kernel) -> None:
        build_parsec_workload(kernel, bench, instructions_per_thread, seed=seed)

    base = _run_configured(config.baseline(), build, budget)
    defended = _run_configured(config, build, budget)
    return ExperimentResult(bench, base, defended)


#: experiment kinds a process-pool job may name (see ExperimentJob)
_EXPERIMENT_KINDS: Dict[str, Callable[..., ExperimentResult]] = {
    "spec_pair": run_spec_pair_experiment,
    "parsec": run_parsec_experiment,
}


@dataclass(frozen=True)
class ExperimentJob:
    """A picklable description of one experiment cell.

    The parallel sweep executor ships jobs into worker processes by
    pickling; a closure over a config (the serial runner's thunk shape)
    cannot cross that boundary, but this spec — a kind name, a label,
    a config, and plain arguments — can.  ``run`` dispatches to the
    matching ``run_*_experiment`` function in this module.
    """

    kind: str
    label: str
    config: SimConfig
    args: Tuple = ()
    kwargs: Dict = field(default_factory=dict)

    def run(self) -> ExperimentResult:
        try:
            fn = _EXPERIMENT_KINDS[self.kind]
        except KeyError:
            raise ValueError(
                f"unknown experiment kind {self.kind!r}; expected one of "
                f"{sorted(_EXPERIMENT_KINDS)}"
            ) from None
        return fn(self.config, *self.args, **self.kwargs)


def run_experiment_job(job: ExperimentJob) -> ExperimentResult:
    """Module-level pool entry point: run one :class:`ExperimentJob`."""
    return job.run()
