"""Configuration dataclasses for the simulator and the TimeCache defense.

Two canonical configurations are provided:

* :func:`paper_table1_gem5_config` — the paper's Table I gem5 setup
  (TimingSimpleCPU @ 2 GHz, 32K L1I/L1D, 2M LLC).  Useful for documentation
  and for the space-overhead arithmetic of Section VI-D, which depends only
  on cache geometry.
* :func:`scaled_experiment_config` — the configuration the benchmark
  harness actually simulates.  A pure-Python behavioral model runs ~1e5-1e6
  operations per experiment (gem5 ran 1e9 instructions), so caches are
  scaled down proportionally to keep working-set:cache ratios — and hence
  miss behavior — representative.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.common.errors import ConfigError
from repro.common.units import KIB, MIB, cycles_from_us, is_power_of_two


@dataclass(frozen=True)
class LatencyConfig:
    """Access latencies (cycles) for each memory level.

    Values approximate a TimingSimpleCPU-style blocking hierarchy: what
    matters for both attacks and overhead shapes is the *separation*
    between the levels, not the absolute numbers.
    """

    l1_hit: int = 2
    l2_hit: int = 20
    dram: int = 200
    #: extra cycles to pull a modified line out of another core's L1
    #: (cache-to-cache transfer; exploited by Section VII-B attacks)
    remote_transfer: int = 15
    #: extra cycles for a dirty-line writeback on eviction
    writeback: int = 10
    #: latency observed by a clflush that finds the line cached
    flush_cached: int = 40
    #: latency of a clflush that aborts early because the line is absent
    flush_uncached: int = 12

    def validate(self) -> None:
        if not (0 < self.l1_hit < self.l2_hit < self.dram):
            raise ConfigError(
                "latencies must satisfy 0 < l1_hit < l2_hit < dram, got "
                f"{self.l1_hit}/{self.l2_hit}/{self.dram}"
            )
        if self.remote_transfer < 0:
            raise ConfigError("remote_transfer cannot be negative")
        if self.flush_uncached >= self.flush_cached:
            raise ConfigError(
                "clflush on a cached line must be slower than on an absent "
                f"line ({self.flush_cached} vs {self.flush_uncached})"
            )


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and policy of a single cache level."""

    name: str
    size_bytes: int
    ways: int
    line_bytes: int = 64
    replacement: str = "lru"  # lru | fifo | random | tree-plru

    def validate(self) -> None:
        if self.line_bytes <= 0 or not is_power_of_two(self.line_bytes):
            raise ConfigError(f"{self.name}: line size must be a power of two")
        if self.ways <= 0:
            raise ConfigError(f"{self.name}: ways must be positive")
        if self.size_bytes % (self.ways * self.line_bytes) != 0:
            raise ConfigError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"ways*line ({self.ways}*{self.line_bytes})"
            )
        if not is_power_of_two(self.num_sets):
            raise ConfigError(
                f"{self.name}: set count {self.num_sets} must be a power of two"
            )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.ways * self.line_bytes)

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes


@dataclass(frozen=True)
class TimeCacheConfig:
    """Parameters of the TimeCache defense itself."""

    #: master switch — False simulates the unmodified baseline cache
    enabled: bool = True
    #: FTM (First Time Miss, Ramkrishnan et al.) comparison mode: detect
    #: first accesses via per-*core* presence bits at the LLC only, with
    #: no save/restore across context switches.  The related-work design
    #: the paper's threat model subsumes: it blocks cross-core reuse but
    #: not same-core time-slicing or SMT siblings.  Mutually exclusive
    #: with ``enabled``.
    ftm_mode: bool = False
    #: width of the per-line Tc timestamp (paper: 32)
    timestamp_bits: int = 32
    #: cycles per context switch spent on the s-bit DMA save+restore
    #: (paper: 1.08 us on a Xeon; converted at the configured clock)
    sbit_dma_cycles: int = 2160
    #: use the gate-level bit-serial comparator (slow, faithful) instead of
    #: the vectorized functional equivalent.  Both are property-tested to
    #: agree; experiments default to the fast path.
    gate_level_comparator: bool = False
    #: make clflush constant-time (Section VII-C mitigation)
    constant_time_flush: bool = False
    #: on a first access, wait for a DRAM response even when a lower cache
    #: level could answer (Section VII-B coherence-attack hardening)
    dram_latency_on_first_access: bool = False
    #: ablation: drop saved s-bits at every switch instead of save/restore
    #: (equivalent in effect to flushing the caching context every switch)
    reset_sbits_on_switch: bool = False
    #: Section VI-C scaling option: cap simultaneous sharers per line
    #: (limited-pointer directory, O(k log n) instead of O(n) bits).
    #: 0 = full bit-vector.  Overflow evicts a sharer's visibility,
    #: which costs extra first accesses but never leaks.  A context
    #: restore may transiently exceed the cap; it is re-enforced on the
    #: next s-bit insertion.
    max_sharers: int = 0

    def validate(self) -> None:
        if self.timestamp_bits < 2 or self.timestamp_bits > 64:
            raise ConfigError(
                f"timestamp_bits must be in [2, 64], got {self.timestamp_bits}"
            )
        if self.sbit_dma_cycles < 0:
            raise ConfigError("sbit_dma_cycles cannot be negative")
        if self.max_sharers < 0:
            raise ConfigError("max_sharers cannot be negative")
        if self.ftm_mode and self.enabled:
            raise ConfigError(
                "FTM is a comparison baseline; enable it or TimeCache, "
                "not both"
            )


@dataclass(frozen=True)
class HierarchyConfig:
    """Geometry of the whole memory hierarchy."""

    num_cores: int = 1
    threads_per_core: int = 1
    #: next-line prefetch into the L1s on demand-miss fills.  Prefetches
    #: run on behalf of the requesting hardware context and set only its
    #: s-bit, so they never extend another context's visibility — the
    #: first-access discipline is preserved (tested).
    next_line_prefetch: bool = False
    #: which simulation engine services accesses:
    #: * ``"object"`` — the reference model (CacheLine objects, one
    #:   CacheSet per set); every feature, every replacement policy.
    #: * ``"fast"``   — struct-of-arrays hot path
    #:   (:mod:`repro.memsys.fastengine`), semantics-identical and
    #:   differentially fuzzed against the object engine, ~an order of
    #:   magnitude faster; supports the lru/fifo/random policies.
    engine: str = "object"
    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig("L1I", 32 * KIB, ways=4)
    )
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig("L1D", 32 * KIB, ways=4)
    )
    llc: CacheConfig = field(
        default_factory=lambda: CacheConfig("LLC", 2 * MIB, ways=16)
    )
    latency: LatencyConfig = field(default_factory=LatencyConfig)

    def validate(self) -> None:
        if self.num_cores <= 0:
            raise ConfigError("num_cores must be positive")
        if self.threads_per_core <= 0:
            raise ConfigError("threads_per_core must be positive")
        if self.engine not in ("object", "fast"):
            raise ConfigError(
                f"engine must be 'object' or 'fast', got {self.engine!r}"
            )
        for cache in (self.l1i, self.l1d, self.llc):
            cache.validate()
        if self.l1i.line_bytes != self.llc.line_bytes or (
            self.l1d.line_bytes != self.llc.line_bytes
        ):
            raise ConfigError("all cache levels must share one line size")
        if self.llc.size_bytes < self.l1d.size_bytes:
            raise ConfigError("LLC smaller than L1D breaks inclusion")
        self.latency.validate()

    @property
    def num_hw_contexts(self) -> int:
        return self.num_cores * self.threads_per_core

    @property
    def line_bytes(self) -> int:
        return self.llc.line_bytes


@dataclass(frozen=True)
class PartitionConfig:
    """The comparison baseline: CAT-style way partitioning + flush.

    Models the class of defenses the paper positions TimeCache against
    (Section VIII-B: Catalyst/Apparition on Intel CAT, DAWG): each
    security domain may *fill* only its own subset of LLC ways, and —
    Apparition-style — a domain's ways plus the core-private caches are
    flushed when it is scheduled out.  Secure against reuse attacks, but
    at the cost of reduced effective cache and lost locality per switch.
    """

    enabled: bool = False
    #: number of security domains the LLC ways are split across
    domains: int = 2

    def validate(self) -> None:
        if self.domains < 1:
            raise ConfigError("partition domains must be >= 1")


@dataclass(frozen=True)
class SimConfig:
    """Top-level simulation configuration."""

    hierarchy: HierarchyConfig = field(default_factory=HierarchyConfig)
    timecache: TimeCacheConfig = field(default_factory=TimeCacheConfig)
    partition: PartitionConfig = field(default_factory=PartitionConfig)
    #: registered defense plugin to attach (see :mod:`repro.defenses`).
    #: Empty string = legacy wiring: no plugin is consulted and the
    #: ``timecache``/``partition`` blocks alone decide the machine —
    #: every pre-zoo construction site keeps its exact behavior.
    defense: str = ""
    clock_ghz: float = 2.0
    #: scheduler quantum, in cycles
    quantum_cycles: int = 50_000
    #: fixed (non-s-bit) cost of a context switch, in cycles
    context_switch_cycles: int = 400
    #: per-context TLB entries (0 disables translation-cost modeling;
    #: the paper's evaluation, and the calibrated defaults, run without)
    tlb_entries: int = 0
    #: page-table walk cost charged on a TLB miss, in cycles
    tlb_walk_cycles: int = 30
    seed: int = 0xC0FFEE

    def validate(self) -> None:
        self.hierarchy.validate()
        self.timecache.validate()
        self.partition.validate()
        if self.partition.enabled and self.timecache.enabled:
            raise ConfigError(
                "way partitioning is the comparison baseline; enable "
                "either it or TimeCache, not both"
            )
        if self.partition.enabled and (
            self.hierarchy.llc.ways < self.partition.domains
        ):
            raise ConfigError("fewer LLC ways than partition domains")
        if self.clock_ghz <= 0:
            raise ConfigError("clock_ghz must be positive")
        if self.quantum_cycles <= 0:
            raise ConfigError("quantum_cycles must be positive")
        if self.context_switch_cycles < 0:
            raise ConfigError("context_switch_cycles cannot be negative")
        if self.tlb_entries < 0 or self.tlb_walk_cycles < 0:
            raise ConfigError("TLB parameters cannot be negative")

    def with_defense(self, name: str) -> "SimConfig":
        """Reshape into the named registered defense's machine (and stamp
        ``defense`` so the system attaches its runtime hooks)."""
        from repro.defenses import get_defense  # registry imports config

        return get_defense(name).configure(self)

    def with_partitioning(self, domains: int = 2) -> "SimConfig":
        """The CAT+flush comparison baseline (TimeCache off)."""
        return replace(
            self.baseline(),
            partition=PartitionConfig(enabled=True, domains=domains),
        )

    def with_timecache(self, **changes: object) -> "SimConfig":
        """Return a copy with TimeCache parameters replaced."""
        return replace(self, timecache=replace(self.timecache, **changes))

    def baseline(self) -> "SimConfig":
        """Return the same configuration with the defense disabled."""
        return self.with_timecache(enabled=False)


def paper_table1_real_config() -> Tuple[str, ...]:
    """The paper's Table I *real processor* row, for documentation/tests."""
    return (
        "Core: i7-7700, 3304.125 MHz",
        "L1D, L1I, L2, LLC cache: 32K, 32K, 256K, 8192K",
    )


def paper_table1_gem5_config() -> SimConfig:
    """The paper's Table I gem5 row: 2 GHz, 32K L1I/L1D, 2M LLC."""
    cfg = SimConfig(
        hierarchy=HierarchyConfig(
            num_cores=1,
            threads_per_core=1,
            l1i=CacheConfig("L1I", 32 * KIB, ways=4),
            l1d=CacheConfig("L1D", 32 * KIB, ways=4),
            llc=CacheConfig("LLC", 2 * MIB, ways=16),
        ),
        clock_ghz=2.0,
    )
    cfg.validate()
    return cfg


def scaled_experiment_config(
    num_cores: int = 1,
    llc_kib: int = 128,
    l1_kib: int = 4,
    quantum_cycles: int = 400_000,
    seed: int = 0xC0FFEE,
    sbit_dma_cycles: Optional[int] = None,
    engine: str = "object",
) -> SimConfig:
    """Down-scaled configuration used by the benchmark harness.

    Cache sizes shrink by ~16x relative to Table I because the Python model
    executes ~1e5-1e6 operations per run instead of gem5's 1e9
    instructions; the workload generators shrink their footprints by the
    same factor, preserving miss behavior.

    ``sbit_dma_cycles`` defaults to the paper's 1.08 us at the configured
    2 GHz clock, scaled down with the LLC size (the DMA moves the s-bit
    array, whose size is proportional to the number of lines).
    """
    if sbit_dma_cycles is None:
        full = cycles_from_us(1.08, 2.0)
        sbit_dma_cycles = max(1, int(full * (llc_kib * KIB) / (2 * MIB)))
    cfg = SimConfig(
        hierarchy=HierarchyConfig(
            num_cores=num_cores,
            threads_per_core=1,
            engine=engine,
            l1i=CacheConfig("L1I", l1_kib * KIB, ways=4),
            l1d=CacheConfig("L1D", l1_kib * KIB, ways=4),
            llc=CacheConfig("LLC", llc_kib * KIB, ways=8),
        ),
        timecache=TimeCacheConfig(sbit_dma_cycles=sbit_dma_cycles),
        clock_ghz=2.0,
        quantum_cycles=quantum_cycles,
        seed=seed,
    )
    cfg.validate()
    return cfg
