"""Exception hierarchy for the TimeCache reproduction.

A single root (:class:`ReproError`) lets callers catch everything the
library raises deliberately, while the subclasses keep failure categories
distinguishable in tests.
"""


class ReproError(Exception):
    """Root of all exceptions deliberately raised by :mod:`repro`."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value."""


class SimulationError(ReproError):
    """The simulator reached a state that violates its own invariants."""


class InvariantViolation(SimulationError):
    """A TimeCache security or structural invariant was observed broken.

    Raised by the robustness layer's invariant checker; carries enough
    diagnostic context (cache, slot, hardware context, task, detail) to
    localize the violating state without a debugger.
    """

    def __init__(
        self,
        detail: str,
        *,
        invariant: str = "",
        cache: str = "",
        set_idx: int = -1,
        way: int = -1,
        ctx: int = -1,
        task: object = None,
    ) -> None:
        self.invariant = invariant
        self.cache = cache
        self.set_idx = set_idx
        self.way = way
        self.ctx = ctx
        self.task = task
        where = ""
        if cache:
            where = f" [{cache} set={set_idx} way={way} ctx={ctx} task={task}]"
        super().__init__(f"{invariant or 'invariant'}: {detail}{where}")


class SimulationTimeout(ReproError):
    """A simulation exceeded its wall-clock or instruction budget."""


class SweepExecutionError(ReproError):
    """A non-resilient parallel sweep had at least one failed job.

    Raised by :meth:`repro.analysis.parallel.ParallelSweepExecutor.map`
    after every job has finished, so one bad cell cannot abort its
    siblings mid-flight; the message names the first failure.
    """


class FaultInjectionError(ReproError):
    """The fault injector itself was misused or could not inject."""


class CheckpointError(ReproError):
    """A persisted JSON artifact (checkpoint, baseline, manifest) could
    not be written or read back."""


class CheckpointCorruptionError(CheckpointError, ValueError):
    """A persisted JSON artifact failed integrity validation.

    Also a :class:`ValueError`, because pre-existing callers treat "this
    file is not what it claims to be" that way (e.g. the checkpoint
    loader's historic contract).

    Raised by :mod:`repro.robustness.safeio` when a file is truncated,
    fails its content checksum, carries an unsupported schema version,
    or is not the kind of document the caller expected — *and* no valid
    rotated backup could stand in for it.  Carries the path and the
    per-candidate reasons so an operator can see exactly what was tried.
    """

    def __init__(self, path: object, *, reasons: object = ()) -> None:
        self.path = path
        self.reasons = list(reasons)
        detail = "; ".join(str(r) for r in self.reasons) or "corrupt"
        super().__init__(f"{path}: {detail}")


class WorkerHungError(ReproError):
    """A supervised sweep worker exceeded its deadline and was killed.

    Never escapes :class:`repro.robustness.supervisor.SupervisedSweepExecutor`
    — it is the ``error_type`` recorded on the attempt so hangs are
    distinguishable from crashes in failure records and scorecards.
    """


class WorkerCrashError(ReproError):
    """A supervised sweep worker process died without delivering a result
    (killed, OOM, segfault).  Recorded, like :class:`WorkerHungError`,
    as an attempt outcome rather than raised through the sweep."""


class CalibrationError(ReproError):
    """Attacker-side calibration produced unusable latency populations.

    Raised when the measured cached and uncached populations are empty,
    degenerate, or overlap — a threshold derived from them could not
    classify hits and misses reliably, so downstream attack results
    would be meaningless rather than merely noisy.  Carries the measured
    boundary values for diagnostics.
    """

    def __init__(
        self,
        detail: str,
        *,
        cached_max: object = None,
        uncached_min: object = None,
    ) -> None:
        self.cached_max = cached_max
        self.uncached_min = uncached_min
        bounds = ""
        if cached_max is not None or uncached_min is not None:
            bounds = f" (cached_max={cached_max}, uncached_min={uncached_min})"
        super().__init__(f"{detail}{bounds}")


class LeakageStatsError(ReproError):
    """Leakage scoring was handed unusable latency populations.

    Raised by :mod:`repro.security.stats` when a distinguishability score
    (ROC/AUC, mutual information, bootstrap interval) is requested over
    an empty or one-class sample set — a number computed from such input
    would be an artifact of the harness, not a property of the channel,
    so the tournament quarantines the cell instead of recording it.
    """


class SchedulerError(ReproError):
    """An OS-layer scheduling operation was invalid (e.g. unknown process)."""


class ProgramError(ReproError):
    """A simulated program yielded an operation the CPU cannot execute."""
