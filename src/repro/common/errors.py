"""Exception hierarchy for the TimeCache reproduction.

A single root (:class:`ReproError`) lets callers catch everything the
library raises deliberately, while the subclasses keep failure categories
distinguishable in tests.
"""


class ReproError(Exception):
    """Root of all exceptions deliberately raised by :mod:`repro`."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value."""


class SimulationError(ReproError):
    """The simulator reached a state that violates its own invariants."""


class SchedulerError(ReproError):
    """An OS-layer scheduling operation was invalid (e.g. unknown process)."""


class ProgramError(ReproError):
    """A simulated program yielded an operation the CPU cannot execute."""
