"""Unit helpers: sizes, time/cycle conversions, and simple aggregates."""

from __future__ import annotations

import math
from typing import Iterable, Sequence

KIB = 1024
MIB = 1024 * KIB


def cycles_from_ns(nanoseconds: float, clock_ghz: float) -> int:
    """Convert a wall-clock duration in nanoseconds to CPU cycles.

    The paper injects measured wall-clock constants (e.g. the 1.08 us DMA
    transfer for s-bit save/restore) into a simulator with a known clock;
    this helper performs the same conversion.
    """
    if clock_ghz <= 0:
        raise ValueError(f"clock_ghz must be positive, got {clock_ghz}")
    return int(round(nanoseconds * clock_ghz))


def cycles_from_us(microseconds: float, clock_ghz: float) -> int:
    """Convert microseconds to CPU cycles (see :func:`cycles_from_ns`)."""
    return cycles_from_ns(microseconds * 1000.0, clock_ghz)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean, as used by the paper for overhead aggregation.

    Raises ``ValueError`` on empty input or non-positive entries, both of
    which indicate a harness bug rather than a legitimate measurement.
    """
    if not values:
        raise ValueError("geometric_mean of empty sequence")
    total = 0.0
    for v in values:
        if v <= 0:
            raise ValueError(f"geometric_mean requires positive values, got {v}")
        total += math.log(v)
    return math.exp(total / len(values))


def mpki(events: int, instructions: int) -> float:
    """Events (e.g. misses) per thousand instructions.

    Returns 0.0 for a zero-instruction run rather than raising: partial
    statistics snapshots taken before any instruction retires are legal.
    """
    if instructions <= 0:
        return 0.0
    return 1000.0 * events / instructions


def pretty_size(num_bytes: int) -> str:
    """Human-readable size string (``32K``, ``2M``) matching paper notation."""
    if num_bytes % MIB == 0:
        return f"{num_bytes // MIB}M"
    if num_bytes % KIB == 0:
        return f"{num_bytes // KIB}K"
    return f"{num_bytes}B"


def is_power_of_two(value: int) -> bool:
    """True when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def checked_mean(values: Iterable[float]) -> float:
    """Arithmetic mean that raises on empty input instead of NaN."""
    seq = list(values)
    if not seq:
        raise ValueError("mean of empty sequence")
    return sum(seq) / len(seq)
