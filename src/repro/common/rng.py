"""Deterministic random number generation for reproducible experiments.

Every stochastic component (workload generators, address randomization,
attack jitter) draws from a :class:`DeterministicRng` seeded from the
experiment configuration, so a given configuration always produces the
same trace, the same misses, and the same measured overheads.
"""

from __future__ import annotations

import random
import zlib
from typing import List, Sequence, TypeVar

T = TypeVar("T")


class DeterministicRng:
    """Thin wrapper over :class:`random.Random` with derived sub-streams.

    ``fork(name)`` derives an independent generator from the parent seed and
    a label, so adding a new consumer of randomness does not perturb the
    streams other components see — a property plain shared ``Random`` use
    does not have.
    """

    __slots__ = ("_seed", "_rng")

    def __init__(self, seed: int = 0xC0FFEE) -> None:
        self._seed = seed
        self._rng = random.Random(seed)

    @property
    def seed(self) -> int:
        return self._seed

    def fork(self, name: str) -> "DeterministicRng":
        """Derive an independent, reproducible sub-stream keyed by ``name``.

        Uses a *stable* hash (crc32), not Python's ``hash()``: string
        hashing is randomized per interpreter process (PYTHONHASHSEED),
        which would make experiments reproducible only within one
        process, not across runs.
        """
        derived = zlib.crc32(f"{self._seed}/{name}".encode()) ^ (
            self._seed << 16
        )
        return DeterministicRng(derived & 0xFFFFFFFFFFFF)

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in the inclusive range [lo, hi]."""
        return self._rng.randint(lo, hi)

    def random(self) -> float:
        return self._rng.random()

    def choice(self, seq: Sequence[T]) -> T:
        return self._rng.choice(seq)

    def shuffle(self, seq: List[T]) -> None:
        self._rng.shuffle(seq)

    def sample(self, seq: Sequence[T], k: int) -> List[T]:
        return self._rng.sample(seq, k)

    def geometric(self, p: float) -> int:
        """Number of failures before the first success, ``p`` in (0, 1].

        Used by the stack-distance locality model in the workload
        generators.
        """
        if not 0.0 < p <= 1.0:
            raise ValueError(f"geometric parameter must be in (0, 1], got {p}")
        count = 0
        while self._rng.random() >= p:
            count += 1
            if count > 1_000_000:  # pathological p ~ 0 guard
                break
        return count

    def zipf_index(self, n: int, skew: float = 1.0) -> int:
        """Index in [0, n) drawn from a (truncated) Zipf-like distribution.

        Implemented by inverse-transform over the harmonic weights; cheap
        enough for workload generation at the scales we simulate.
        """
        if n <= 0:
            raise ValueError("zipf_index needs n >= 1")
        # Rejection-free approximate sampling: draw u and walk the CDF.
        # For the small n used by workload phase selection this is fine.
        weights = [1.0 / ((i + 1) ** skew) for i in range(n)]
        total = sum(weights)
        u = self._rng.random() * total
        acc = 0.0
        for i, w in enumerate(weights):
            acc += w
            if u <= acc:
                return i
        return n - 1
