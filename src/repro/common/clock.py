"""Global simulation clock.

The whole simulation shares one monotonically non-decreasing cycle counter.
Cache-line fill timestamps (``Tc``) and context-switch timestamps (``Ts``)
are both snapshots of this clock, truncated to the configured timestamp
width by :mod:`repro.core.timestamp`.
"""

from __future__ import annotations


class GlobalClock:
    """A monotonically non-decreasing cycle counter.

    Cores advance their *local* time independently (a blocking CPU model);
    the global clock tracks the frontier used for timestamping cache fills.
    ``advance_to`` never moves backwards, which keeps ``Tc`` assignment
    monotone even when cores are stepped out of order.
    """

    __slots__ = ("_now",)

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise ValueError(f"clock cannot start negative, got {start}")
        self._now = start

    @property
    def now(self) -> int:
        """Current global cycle count (untruncated, unbounded int)."""
        return self._now

    def tick(self, cycles: int = 1) -> int:
        """Advance the clock by ``cycles`` and return the new time."""
        if cycles < 0:
            raise ValueError(f"cannot tick backwards by {cycles}")
        self._now += cycles
        return self._now

    def advance_to(self, when: int) -> int:
        """Move the clock to ``when`` if that is in the future; no-op else."""
        if when > self._now:
            self._now = when
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GlobalClock(now={self._now})"
