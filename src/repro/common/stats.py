"""Lightweight statistics primitives used across the simulator.

Each simulated component owns a :class:`StatGroup`; the experiment harness
(:mod:`repro.analysis`) reads the groups after a run to build the paper's
tables and figures.  Everything is plain counters — there is no sampling
and no loss of precision.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple


class Counter:
    """A named monotone counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover
        return f"Counter({self.name}={self.value})"


class _HotCounter(Counter):
    """A pre-bound counter handle for hot paths.

    ``StatGroup.counter(name)`` costs a dict lookup (and on the first call
    a string-keyed insert) per record; at millions of cache accesses per
    run that dominates.  A hot counter is fetched **once** at component
    construction time and incremented with plain attribute arithmetic.

    To keep ``snapshot()`` byte-identical with the lazy protocol — where a
    counter appears only once something created it — the handle registers
    itself in its group on the *first* increment and then drops the back
    reference, so the steady-state ``add()`` is one ``None`` check away
    from a bare ``self.value += amount``.
    """

    __slots__ = ("_group",)

    def __init__(self, name: str, group: "StatGroup") -> None:
        super().__init__(name)
        self._group = group

    def add(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount
        if self._group is not None:
            self._group._adopt(self)
            self._group = None


class RatioStat:
    """A numerator/denominator pair reported as a ratio (e.g. hit rate)."""

    __slots__ = ("name", "numerator", "denominator")

    def __init__(self, name: str) -> None:
        self.name = name
        self.numerator = 0
        self.denominator = 0

    def record(self, hit: bool) -> None:
        self.denominator += 1
        if hit:
            self.numerator += 1

    @property
    def ratio(self) -> float:
        if self.denominator == 0:
            return 0.0
        return self.numerator / self.denominator

    def reset(self) -> None:
        self.numerator = 0
        self.denominator = 0


class Histogram:
    """A fixed-bucket histogram for latency distributions.

    Buckets are defined by their (inclusive) upper edges; one overflow
    bucket catches everything beyond the last edge.  Attack analysis uses
    this to classify accesses into hit/miss latency classes.
    """

    def __init__(self, name: str, edges: Iterable[int]) -> None:
        self.name = name
        self.edges: Tuple[int, ...] = tuple(sorted(edges))
        if not self.edges:
            raise ValueError("histogram needs at least one bucket edge")
        self.counts: List[int] = [0] * (len(self.edges) + 1)
        self.total = 0
        self.sum = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None

    def record(self, value: int) -> None:
        self.total += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for i, edge in enumerate(self.edges):
            if value <= edge:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def fraction_at_or_below(self, edge: int) -> float:
        """Fraction of samples in buckets whose edge is <= ``edge``."""
        if self.total == 0:
            return 0.0
        covered = sum(
            c for e, c in zip(self.edges, self.counts) if e <= edge
        )
        return covered / self.total

    def reset(self) -> None:
        self.counts = [0] * (len(self.edges) + 1)
        self.total = 0
        self.sum = 0
        self.min = None
        self.max = None


class StatGroup:
    """A named collection of counters/ratios/histograms.

    Components create stats lazily through :meth:`counter` etc., so the
    harness can snapshot whatever exists without a fixed schema.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._counters: Dict[str, Counter] = {}
        #: hot counters handed out but not yet incremented — invisible to
        #: snapshot() until their first add(), like lazy counters are
        #: invisible until the first counter() call
        self._pending_hot: Dict[str, _HotCounter] = {}
        self._ratios: Dict[str, RatioStat] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        existing = self._counters.get(name)
        if existing is not None:
            return existing
        # Adopt a pending hot counter so explicit counter() calls keep
        # their create-at-zero semantics and both handles stay one object.
        hot = self._pending_hot.pop(name, None)
        created = hot if hot is not None else Counter(name)
        self._counters[name] = created
        return created

    def bound_counter(self, name: str) -> Counter:
        """A counter handle for hot paths: fetch once, then ``add()`` with
        no per-call dict or string work.  Snapshot visibility matches the
        lazy protocol — the counter appears on first increment."""
        existing = self._counters.get(name)
        if existing is not None:
            return existing
        pending = self._pending_hot.get(name)
        if pending is None:
            pending = _HotCounter(name, self)
            self._pending_hot[name] = pending
        return pending

    def _adopt(self, counter: "_HotCounter") -> None:
        self._counters[counter.name] = counter
        self._pending_hot.pop(counter.name, None)

    def ratio(self, name: str) -> RatioStat:
        if name not in self._ratios:
            self._ratios[name] = RatioStat(name)
        return self._ratios[name]

    def histogram(self, name: str, edges: Iterable[int]) -> Histogram:
        if name not in self._histograms:
            self._histograms[name] = Histogram(name, edges)
        return self._histograms[name]

    def get(self, name: str) -> int:
        """Value of a counter, 0 if it was never created."""
        counter = self._counters.get(name)
        return counter.value if counter else 0

    def snapshot(self) -> Dict[str, int]:
        """All counter values keyed as ``group.counter``."""
        return {
            f"{self.name}.{name}": c.value
            for name, c in sorted(self._counters.items())
        }

    def reset(self) -> None:
        for c in self._counters.values():
            c.reset()
        for r in self._ratios.values():
            r.reset()
        for h in self._histograms.values():
            h.reset()

    def __repr__(self) -> str:  # pragma: no cover
        return f"StatGroup({self.name}, {self.snapshot()})"
