"""Shared infrastructure: clocks, configuration, RNG, statistics, units.

Everything in :mod:`repro.common` is substrate-neutral — it knows nothing
about caches or TimeCache specifically.  The simulator core
(:mod:`repro.memsys`), the contribution (:mod:`repro.core`), the OS layer
(:mod:`repro.os`) and the attack/workload layers all build on it.
"""

from repro.common.clock import GlobalClock
from repro.common.config import (
    CacheConfig,
    HierarchyConfig,
    LatencyConfig,
    SimConfig,
    TimeCacheConfig,
    paper_table1_gem5_config,
    paper_table1_real_config,
    scaled_experiment_config,
)
from repro.common.errors import (
    CalibrationError,
    ConfigError,
    ReproError,
    SchedulerError,
    SimulationError,
)
from repro.common.rng import DeterministicRng
from repro.common.stats import Counter, Histogram, RatioStat, StatGroup
from repro.common.units import (
    KIB,
    MIB,
    cycles_from_ns,
    cycles_from_us,
    geometric_mean,
    mpki,
)

__all__ = [
    "CacheConfig",
    "CalibrationError",
    "ConfigError",
    "Counter",
    "DeterministicRng",
    "GlobalClock",
    "HierarchyConfig",
    "Histogram",
    "KIB",
    "LatencyConfig",
    "MIB",
    "RatioStat",
    "ReproError",
    "SchedulerError",
    "SimConfig",
    "SimulationError",
    "StatGroup",
    "TimeCacheConfig",
    "cycles_from_ns",
    "cycles_from_us",
    "geometric_mean",
    "mpki",
    "paper_table1_gem5_config",
    "paper_table1_real_config",
    "scaled_experiment_config",
]
