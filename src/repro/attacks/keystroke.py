"""Keystroke-timing recovery through a shared library (§II-B).

The paper cites cache attacks that "leak keystrokes from another
process" (Wang et al., NDSS'19): every key press runs the same input-
handler code in a shared library, so an attacker polling that code line
with flush+reload sees a hit at each press and recovers the *timing* of
keystrokes — enough for classic inter-keystroke-interval password
inference.

The simulation: a victim "editor" executes the shared handler at
irregular (deterministic, seeded) intervals; the attacker polls.  The
outcome compares the recovered event times against the ground-truth
press times.  Under TimeCache the attacker observes no hits and recovers
no timeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.attacks.base import hit_threshold
from repro.common.config import SimConfig
from repro.common.errors import ConfigError
from repro.common.rng import DeterministicRng
from repro.cpu.isa import Compute, Exit, Fence, Flush, Ifetch, Load, Rdtsc
from repro.cpu.program import Program, ProgramGen
from repro.os.kernel import Kernel

LIB_BASE = 0x300000
HANDLER_LINE = 2  # offset of the key-press handler inside the shared lib
LIB_LINES = 8


@dataclass
class KeystrokeResult:
    """Ground truth vs recovered key-press timeline."""

    true_press_times: List[int]
    recovered_times: List[int]
    probe_hits: int
    probe_total: int
    match_tolerance: int
    matched: int = field(default=0)
    #: every poll as (probe timestamp, measured latency) — the raw
    #: observation stream, so distribution-level scoring can label each
    #: probe by its distance from a true press instead of re-deriving
    #: events from the thresholded hit times.
    probe_log: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def recall(self) -> float:
        """Fraction of true presses with a recovered event nearby."""
        if not self.true_press_times:
            return 0.0
        return self.matched / len(self.true_press_times)

    @property
    def timeline_recovered(self) -> bool:
        return self.recall >= 0.8


def run_keystroke_attack(
    config: SimConfig,
    presses: int = 10,
    min_gap: int = 20_000,
    max_gap: int = 60_000,
    poll_period: int = 2_000,
    seed: int = 0x5EED,
) -> KeystrokeResult:
    """Recover a victim's key-press timeline on a 2-core machine.

    The attacker polls the handler line every ``poll_period`` cycles;
    recovered events are the poll timestamps that observed a hit,
    de-duplicated per press window.
    """
    if config.hierarchy.num_hw_contexts < 2:
        raise ConfigError("the keystroke attack needs two hardware contexts")
    kernel = Kernel(config)
    line_bytes = config.hierarchy.line_bytes
    lib = kernel.phys.allocate_segment(
        "libinput.text", LIB_LINES * line_bytes, content_key="libinput-1.0"
    )
    attacker_proc = kernel.create_process("spy")
    victim_proc = kernel.create_process("editor")
    attacker_proc.address_space.map_segment(lib, LIB_BASE)
    victim_proc.address_space.map_segment(lib, LIB_BASE)
    handler_addr = LIB_BASE + HANDLER_LINE * line_bytes
    threshold = hit_threshold(config)

    rng = DeterministicRng(seed)
    gaps = [rng.randint(min_gap, max_gap) for _ in range(presses)]
    true_press_times: List[int] = []
    hit_times: List[int] = []
    probe_log: List[Tuple[int, int]] = []
    total_probes = [0]

    def victim() -> ProgramGen:
        elapsed = 0
        for gap in gaps:
            # idle between keystrokes (user thinking time)
            yield Compute(gap)
            elapsed += gap
            t = yield Rdtsc()
            true_press_times.append(t)
            # the key-press handler: a burst through the shared code
            for _ in range(24):
                yield Ifetch(handler_addr)
                yield Compute(8)
        yield Exit()

    def attacker() -> ProgramGen:
        while True:
            yield Flush(handler_addr)
            yield Compute(poll_period)
            t0 = yield Rdtsc()
            yield Fence()
            yield Load(handler_addr)
            yield Fence()
            t1 = yield Rdtsc()
            total_probes[0] += 1
            probe_log.append((t1, t1 - t0 - 3))
            if (t1 - t0 - 3) < threshold:
                hit_times.append(t1)

    victim_task = victim_proc.spawn(Program("editor", victim), affinity=1)
    spy_task = attacker_proc.spawn(Program("spy", attacker), affinity=0)
    kernel.submit(spy_task)
    kernel.submit(victim_task)
    kernel.run(
        max_steps=20_000_000, stop_when=lambda k: k.task_done(victim_task)
    )

    # Cluster consecutive hit polls into one recovered press event.
    recovered: List[int] = []
    for t in hit_times:
        if not recovered or t - recovered[-1] > 3 * poll_period:
            recovered.append(t)

    tolerance = 4 * poll_period
    matched = 0
    for press in true_press_times:
        if any(abs(press - r) <= tolerance + 400 for r in recovered):
            matched += 1
    return KeystrokeResult(
        true_press_times=true_press_times,
        recovered_times=recovered,
        probe_hits=len(hit_times),
        probe_total=total_probes[0],
        match_tolerance=tolerance,
        matched=matched,
        probe_log=probe_log,
    )
