"""Prime+probe: the contention attack outside TimeCache's threat model.

The attacker primes an LLC set with its own lines, lets the victim run,
then probes its own lines: a slow probe means the victim displaced one,
revealing the *set* (not the line) the victim touched.  No shared memory
is involved, so TimeCache deliberately does not defend it — the paper
positions randomizing caches (CEASER, ScatterCache) as the complementary
defense and notes TimeCache composes with them.

We keep the attack here to demonstrate that threat-model boundary in the
test suite: prime+probe succeeds in the baseline *and* under TimeCache.
"""

from __future__ import annotations

from typing import List

from repro.attacks.base import AttackOutcome, SharedArrayScenario
from repro.common.config import SimConfig
from repro.cpu.isa import Compute, Exit, Fence, Load, Rdtsc, SleepOp
from repro.cpu.program import Program, ProgramGen
from repro.os.vm import Segment

PRIME_BASE = 0x6000000
VICTIM_PRIVATE_BASE = 0x7000000


def run_prime_probe(
    config: SimConfig,
    victim_active: bool = True,
    rounds: int = 4,
    wait_cycles: int = 20_000,
) -> AttackOutcome:
    """Prime an LLC set, let the victim run, probe for displacement.

    The victim touches a *private* (unshared) line that maps to the
    attacker's primed set when ``victim_active``; the attacker's probe
    latency reveals the contention.  ``extra['detected']`` reports
    whether the attacker saw any displaced line.
    """
    scenario = SharedArrayScenario(config, shared_lines=8)
    kernel = scenario.kernel
    llc = kernel.system.hierarchy.llc
    line_bytes = scenario.line_bytes
    line_shift = line_bytes.bit_length() - 1

    # Attacker's prime pool: enough private lines to cover one set.
    pool_lines = llc.num_sets * (llc.ways + 2)
    prime_seg: Segment = kernel.phys.allocate_segment(
        "prime_pool", pool_lines * line_bytes
    )
    scenario.attacker_proc.address_space.map_segment(prime_seg, PRIME_BASE)

    # Victim private working line, not shared with the attacker.
    victim_seg = kernel.phys.allocate_segment(
        "victim_private", llc.num_sets * line_bytes * 2
    )
    scenario.victim_proc.address_space.map_segment(victim_seg, VICTIM_PRIVATE_BASE)

    # Find the set the victim's secret line maps to, then the attacker's
    # congruent lines for that set.
    victim_vaddr = VICTIM_PRIVATE_BASE
    victim_paddr = scenario.victim_proc.address_space.translate(victim_vaddr)
    target_set = llc.set_index(victim_paddr >> line_shift)
    prime_lines: List[int] = []
    for i in range(pool_lines):
        vaddr = PRIME_BASE + i * line_bytes
        paddr = scenario.attacker_proc.address_space.translate(vaddr)
        if llc.set_index(paddr >> line_shift) == target_set:
            prime_lines.append(vaddr)
            if len(prime_lines) == llc.ways:
                break

    latencies: List[int] = []

    def attacker() -> ProgramGen:
        for _ in range(rounds):
            for vaddr in prime_lines:  # prime
                yield Load(vaddr)
            yield SleepOp(wait_cycles)
            for vaddr in prime_lines:  # probe
                t0 = yield Rdtsc()
                yield Fence()
                yield Load(vaddr)
                yield Fence()
                t1 = yield Rdtsc()
                latencies.append(t1 - t0 - 3)
        yield Exit()

    def victim() -> ProgramGen:
        for _ in range(rounds * 8):
            if victim_active:
                yield Load(victim_vaddr)
            yield Compute(wait_cycles // 8)
        yield Exit()

    scenario.launch(
        Program("prime_probe", attacker), Program("pp_victim", victim)
    )
    scenario.run()
    misses = sum(1 for lat in latencies if not scenario.classify(lat))
    return AttackOutcome(
        probe_hits=len(latencies) - misses,
        probe_total=len(latencies),
        latencies=latencies,
        extra={"detected": misses > 0, "displaced_probes": misses},
    )
