"""Victim programs whose memory accesses depend on a secret.

These are the generic victims the reuse attacks monitor: a process whose
access *pattern* over shared lines is indexed by secret data, so an
attacker who learns which shared lines were touched learns the secret.
(The RSA victim, whose secret-dependent footprint is instruction fetches
into a shared library, lives in :mod:`repro.attacks.rsa`.)
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.cpu.isa import Compute, Exit, Load, Op, Store
from repro.cpu.program import Program, ProgramGen


def writer_victim(
    line_vaddr: Callable[[int], int],
    num_lines: int,
    repetitions: int = 4,
) -> Program:
    """The Section VI-A1 microbenchmark victim: writes the whole shared
    array repeatedly, pulling every line into the cache."""

    def factory() -> ProgramGen:
        for _ in range(repetitions):
            for i in range(num_lines):
                yield Store(line_vaddr(i))
        yield Exit()

    return Program("writer_victim", factory)


def secret_indexed_victim(
    line_vaddr: Callable[[int], int],
    secret_indices: Sequence[int],
    touches_per_index: int = 8,
    think_cycles: int = 200,
) -> Program:
    """A victim that touches exactly the shared lines named by its secret.

    Models a lookup-table cipher or any data store where the address
    stream is keyed by confidential input: an attacker who learns the set
    of touched lines recovers ``secret_indices``.
    """

    def factory() -> ProgramGen:
        for index in secret_indices:
            for _ in range(touches_per_index):
                yield Load(line_vaddr(index))
            yield Compute(think_cycles)
        yield Exit()

    return Program("secret_indexed_victim", factory)


def periodic_victim(
    make_round: Callable[[int], Iterable[Op]],
    rounds: int,
) -> Program:
    """A victim executing ``rounds`` secret-dependent rounds.

    ``make_round(r)`` emits the ops of round ``r`` — used by the
    evict+time attack, where the attacker measures the victim's total
    runtime rather than probing lines."""

    def factory() -> ProgramGen:
        for r in range(rounds):
            for op in make_round(r):
                yield op
        yield Exit()

    return Program("periodic_victim", factory)


def idle_victim(cycles: int = 1000) -> Program:
    """A victim that computes without touching the shared lines — the
    control case: a correct attack must report *no* activity."""

    def factory() -> ProgramGen:
        yield Compute(cycles)
        yield Exit()

    return Program("idle_victim", factory)
