"""Same-core hyperthread (SMT) attacks.

The paper's threat model explicitly covers an attacker "running on the
same core, on another hyperthread, or on another core."  On an SMT core
the attacker and victim share even the L1 caches, so the reuse channel
is available at the *fastest* cache level — and TimeCache's s-bits are
per *hardware context*, so the sibling hyperthread's first access is
delayed exactly like a cross-core one.

This module runs flush+reload between two hyperthreads of one physical
core (``threads_per_core = 2``).
"""

from __future__ import annotations

from typing import List

from repro.attacks.base import AttackOutcome, hit_threshold
from repro.common.config import SimConfig
from repro.common.errors import ConfigError
from repro.cpu.isa import Compute, Exit, Fence, Flush, Load, Rdtsc, Store
from repro.cpu.program import Program, ProgramGen
from repro.os.kernel import Kernel

SHARED_BASE = 0x100000


def run_smt_flush_reload(
    config: SimConfig,
    shared_lines: int = 32,
    rounds: int = 4,
    wait_cycles: int = 10_000,
    victim_active: bool = True,
) -> AttackOutcome:
    """Flush+reload between sibling hyperthreads sharing L1 and LLC.

    Requires ``threads_per_core >= 2``.  The attacker runs on hardware
    context 0, the victim on context 1 — the same physical core, so both
    contexts share L1I/L1D.  Baseline: the attacker's reload after the
    victim's store hits in the *L1* (the sharpest possible signal).
    TimeCache: every reload is a first access.

    ``victim_active=False`` keeps the sibling thread resident but idle
    (pure compute, never touching the shared buffer) — the control arm
    of the distinguishability game the tournament scores.
    """
    if config.hierarchy.threads_per_core < 2:
        raise ConfigError("SMT attack needs threads_per_core >= 2")
    kernel = Kernel(config)
    line_bytes = config.hierarchy.line_bytes
    segment = kernel.phys.allocate_segment(
        "smt_shared", shared_lines * line_bytes
    )
    attacker_proc = kernel.create_process("smt_attacker")
    victim_proc = kernel.create_process("smt_victim")
    attacker_proc.address_space.map_segment(segment, SHARED_BASE)
    victim_proc.address_space.map_segment(segment, SHARED_BASE)
    threshold = hit_threshold(config)
    latencies: List[int] = []

    def attacker() -> ProgramGen:
        for _ in range(rounds):
            for i in range(shared_lines):
                yield Flush(SHARED_BASE + i * line_bytes)
            yield Compute(wait_cycles)
            for i in range(shared_lines):
                t0 = yield Rdtsc()
                yield Fence()
                yield Load(SHARED_BASE + i * line_bytes)
                yield Fence()
                t1 = yield Rdtsc()
                latencies.append(t1 - t0 - 3)
        yield Exit()

    def victim() -> ProgramGen:
        # The sibling thread continuously works on the shared buffer —
        # or, in the control arm, burns the same cycles without it.
        for _ in range(rounds * 4):
            if victim_active:
                for i in range(shared_lines):
                    yield Store(SHARED_BASE + i * line_bytes)
            yield Compute(wait_cycles // 4)
        yield Exit()

    ta = attacker_proc.spawn(Program("smt_spy", attacker), affinity=0)
    tv = victim_proc.spawn(Program("smt_victim", victim), affinity=1)
    kernel.submit(ta)
    kernel.submit(tv)
    kernel.run(stop_when=lambda k: k.task_done(ta), max_steps=10_000_000)
    hits = sum(1 for lat in latencies if lat < threshold)
    return AttackOutcome(
        probe_hits=hits, probe_total=len(latencies), latencies=latencies
    )
