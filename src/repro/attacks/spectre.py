"""Spectre-style leak through the reuse covert channel (Section VIII).

Spectre variants leak *speculatively* loaded secrets through a
conventional cache covert channel — the paper's argument is that "by
breaking conventional cache attacks, we also prevent speculative side
channel leaks", because the transmit end of every Spectre attack is
exactly the flush+reload reuse channel TimeCache eliminates.

The blocking CPU model has no speculation engine, so the *transient*
part is modeled explicitly: the victim gadget performs the squashed
bounds-violating access as a microarchitectural-only load (its value is
discarded — precisely what a mispredicted path does to the cache).  The
secret byte indexes a 256-line shared probe array; the attacker recovers
the byte with flush+reload over the array.

Under TimeCache the attacker's reloads are all first accesses: the
covert channel's receive end reads nothing, so the speculative leak
dies at transmission — the paper's Section VIII claim, end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.attacks.base import hit_threshold
from repro.common.config import SimConfig
from repro.common.errors import ConfigError
from repro.cpu.isa import Compute, Exit, Fence, Flush, Load, Rdtsc
from repro.cpu.program import Program, ProgramGen
from repro.os.kernel import Kernel

PROBE_BASE = 0x800000
PROBE_LINES = 256


@dataclass
class SpectreResult:
    """Outcome of the Spectre-style covert-channel run."""

    secret: int
    recovered: Optional[int]
    probe_hits: int
    latencies: List[int]

    @property
    def leaked(self) -> bool:
        return self.recovered == self.secret


def run_spectre_covert_channel(
    config: SimConfig,
    secret: int = 0x5A,
    rounds: int = 3,
    wait_cycles: int = 40_000,
) -> SpectreResult:
    """Leak one secret byte through a speculatively-touched shared line.

    Attacker on context 0 flushes the 256-line probe array and waits; the
    victim on context 1 executes the gadget (the transient, value-
    discarding load of ``probe[secret * 64]``); the attacker reloads all
    256 lines and takes the hit index as the secret byte.
    """
    if not 0 <= secret < PROBE_LINES:
        raise ConfigError(f"secret byte out of range: {secret}")
    if config.hierarchy.num_hw_contexts < 2:
        raise ConfigError("the Spectre demo needs two hardware contexts")
    kernel = Kernel(config)
    line_bytes = config.hierarchy.line_bytes
    probe = kernel.phys.allocate_segment(
        "spectre_probe", PROBE_LINES * line_bytes, content_key="shared-probe"
    )
    attacker_proc = kernel.create_process("spectre_attacker")
    victim_proc = kernel.create_process("spectre_victim")
    attacker_proc.address_space.map_segment(probe, PROBE_BASE)
    victim_proc.address_space.map_segment(probe, PROBE_BASE)
    threshold = hit_threshold(config)
    latencies: List[int] = []
    hit_votes: List[int] = []

    def attacker() -> ProgramGen:
        for _ in range(rounds):
            for i in range(PROBE_LINES):
                yield Flush(PROBE_BASE + i * line_bytes)
            yield Compute(wait_cycles)
            for i in range(PROBE_LINES):
                t0 = yield Rdtsc()
                yield Fence()
                yield Load(PROBE_BASE + i * line_bytes)
                yield Fence()
                t1 = yield Rdtsc()
                latency = t1 - t0 - 3
                latencies.append(latency)
                if latency < threshold:
                    hit_votes.append(i)
        yield Exit()

    def victim_gadget() -> ProgramGen:
        # if (x < bounds) { y = probe[secret_byte * line]; }  -- with a
        # mispredicted branch: the load executes transiently and its
        # value is squashed, but the line is now cached.
        while True:
            yield Compute(wait_cycles // 8)
            yield Load(PROBE_BASE + secret * line_bytes)  # transient load
            # (squash: the architectural result is discarded)

    ta = attacker_proc.spawn(Program("spectre_recv", attacker), affinity=0)
    tv = victim_proc.spawn(
        Program("spectre_gadget", victim_gadget),
        affinity=1 if config.hierarchy.num_hw_contexts > 1 else 0,
    )
    kernel.submit(ta)
    kernel.submit(tv)
    kernel.run(stop_when=lambda k: k.task_done(ta), max_steps=20_000_000)

    recovered: Optional[int] = None
    if hit_votes:
        recovered = max(set(hit_votes), key=hit_votes.count)
    return SpectreResult(
        secret=secret,
        recovered=recovered,
        probe_hits=len(hit_votes),
        latencies=latencies,
    )
