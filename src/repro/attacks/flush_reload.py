"""Flush+reload attacks (Yarom & Falkner style).

Two entry points:

* :func:`run_microbenchmark_attack` — the paper's Section VI-A1
  functionality microbenchmark: a parent process flushes a 256-line
  shared memory-mapped array and sleeps; the child writes the array; the
  parent wakes and performs timed reads.  In the baseline every read is
  a hit (a fully leaking channel); with TimeCache the parent must see
  **zero** hits.

* :func:`run_spy_flush_reload` — a spy that recovers which shared lines a
  secret-indexed victim touched, demonstrating information recovery (not
  just raw hits) and its elimination under the defense.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

from repro.attacks.base import (
    AttackOutcome,
    SharedArrayScenario,
    timed_probe_run,
)
from repro.attacks.victim import secret_indexed_victim, writer_victim
from repro.common.config import SimConfig
from repro.cpu.isa import Exit, Fence, Flush, Load, Rdtsc, SleepOp
from repro.cpu.program import Program, ProgramGen
from repro.obs.tracer import Tracer


def _timed_probe(vaddr: int, latencies: List[int]) -> ProgramGen:
    """rdtsc-fenced timed load, like the real attack's measurement stanza."""
    t0 = yield Rdtsc()
    yield Fence()
    yield Load(vaddr)
    yield Fence()
    t1 = yield Rdtsc()
    # subtract the two fence cycles and the rdtsc cycle from the window
    latencies.append(t1 - t0 - 3)


def run_microbenchmark_attack(
    config: SimConfig,
    shared_lines: int = 256,
    victim_repetitions: int = 4,
    sleep_cycles: int = 200_000,
    tracer: Optional[Tracer] = None,
    sample_every: int = 0,
    batched: bool = False,
) -> AttackOutcome:
    """The Section VI-A1 parent/child microbenchmark.

    Returns the parent's probe outcome; ``AttackOutcome.probe_hits`` is
    the number of successful (hit-latency) reloads.  With a ``tracer``
    the flush/wait/probe phases are emitted as simulated-time spans.
    ``batched=True`` issues the probe sweep as one :class:`AccessRun`
    instead of per-line rdtsc stanzas — same traffic, same recorded
    latencies, one batched operation.
    """
    scenario = SharedArrayScenario(
        config,
        shared_lines=shared_lines,
        tracer=tracer,
        sample_every=sample_every,
    )
    latencies: List[int] = []

    def parent_program() -> ProgramGen:
        with scenario.phase("flush"):
            for i in range(shared_lines):
                yield Flush(scenario.line_vaddr(i))
        with scenario.phase("wait"):
            yield SleepOp(sleep_cycles)
        with scenario.phase("probe"):
            if batched:
                yield from timed_probe_run(
                    [scenario.line_vaddr(i) for i in range(shared_lines)],
                    latencies,
                )
            else:
                for i in range(shared_lines):
                    yield from _timed_probe(scenario.line_vaddr(i), latencies)
        yield Exit()

    victim = writer_victim(
        scenario.line_vaddr, shared_lines, repetitions=victim_repetitions
    )
    scenario.launch(Program("flush_reload_parent", parent_program), victim)
    scenario.run()
    hits = sum(1 for lat in latencies if scenario.classify(lat))
    return AttackOutcome(
        probe_hits=hits, probe_total=len(latencies), latencies=latencies
    )


def run_spy_flush_reload(
    config: SimConfig,
    secret_indices: Sequence[int],
    shared_lines: int = 64,
    rounds: int = 6,
    wait_cycles: int = 30_000,
    tracer: Optional[Tracer] = None,
    sample_every: int = 0,
    batched: bool = False,
) -> AttackOutcome:
    """A spy recovering the victim's secret line set.

    The spy repeatedly flushes every monitored line, yields the CPU to
    let the victim run, then probes.  ``extra['recovered']`` holds the
    set of line indices the spy believes the victim touched; in the
    baseline it equals ``set(secret_indices)``, under TimeCache it must
    be empty.  ``batched=True`` probes each round with one
    :class:`AccessRun` instead of per-line rdtsc stanzas.
    """
    scenario = SharedArrayScenario(
        config,
        shared_lines=shared_lines,
        tracer=tracer,
        sample_every=sample_every,
    )
    latencies: List[int] = []
    recovered: Set[int] = set()

    def spy() -> ProgramGen:
        for _ in range(rounds):
            with scenario.phase("flush"):
                for i in range(shared_lines):
                    yield Flush(scenario.line_vaddr(i))
            with scenario.phase("wait"):
                yield SleepOp(wait_cycles)
            with scenario.phase("probe"):
                if batched:
                    before = len(latencies)
                    yield from timed_probe_run(
                        [scenario.line_vaddr(i) for i in range(shared_lines)],
                        latencies,
                    )
                    for i in range(shared_lines):
                        if scenario.classify(latencies[before + i]):
                            recovered.add(i)
                else:
                    for i in range(shared_lines):
                        before = len(latencies)
                        yield from _timed_probe(
                            scenario.line_vaddr(i), latencies
                        )
                        if scenario.classify(latencies[before]):
                            recovered.add(i)
        yield Exit()

    victim = secret_indexed_victim(
        scenario.line_vaddr, list(secret_indices) * rounds
    )
    scenario.launch(Program("flush_reload_spy", spy), victim)
    scenario.run()
    hits = sum(1 for lat in latencies if scenario.classify(lat))
    return AttackOutcome(
        probe_hits=hits,
        probe_total=len(latencies),
        latencies=latencies,
        extra={
            "recovered": recovered,
            "secret": set(secret_indices),
            "exact_recovery": recovered == set(secret_indices),
        },
    )
