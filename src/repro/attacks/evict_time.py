"""Evict+time on shared memory (Section VII-D).

The attacker flushes a shared line and times the *victim's* execution: if
the victim uses the line, the flush adds a miss to its critical path.
The paper notes the attack "remains noisy and less practical unless the
attacker communicates with the victim to trigger and time a specific
access" — so the simulation models exactly that strongest case: a
request/response pattern where the attacker (client) triggers one victim
(server) round at a time and observes its duration.

On a single core the trigger is a ``sched_yield`` handshake: attacker
optionally flushes, yields; the victim runs one round and yields back.
The victim's round duration (rdtsc-bracketed, preemption-free) is what a
client would observe as response latency.

TimeCache does not remove this channel — the victim's own misses are real
work, and no reuse of another process's cache fill is involved.  The
channel only reveals *whether the victim uses the line at all*, not the
per-access reuse signal flush+reload provides.
"""

from __future__ import annotations

from typing import List

from repro.attacks.base import AttackOutcome, SharedArrayScenario
from repro.common.config import SimConfig
from repro.cpu.isa import Compute, Exit, Flush, Load, Rdtsc, YieldOp
from repro.cpu.program import Program, ProgramGen


def run_evict_time(
    config: SimConfig,
    victim_uses_line: bool = True,
    rounds: int = 6,
    monitored_line: int = 2,
    victim_round_cycles: int = 4_000,
) -> AttackOutcome:
    """Alternate flushed/clean victim rounds; compare their durations.

    ``extra['slowdown']`` is mean(flushed round) - mean(clean round); a
    positive value when the victim uses the line is the leak.
    """
    scenario = SharedArrayScenario(config, shared_lines=8)
    target = scenario.line_vaddr(monitored_line)
    flushed_rounds: List[int] = []
    clean_rounds: List[int] = []

    def attacker() -> ProgramGen:
        for r in range(rounds * 2):
            if r % 2 == 0:
                yield Flush(target)
            yield YieldOp()  # trigger: let the victim run one round
        yield Exit()

    def victim() -> ProgramGen:
        for r in range(rounds * 2):
            t0 = yield Rdtsc()
            if victim_uses_line:
                yield Load(target)
            yield Compute(victim_round_cycles)
            t1 = yield Rdtsc()
            (flushed_rounds if r % 2 == 0 else clean_rounds).append(t1 - t0)
            yield YieldOp()
        yield Exit()

    scenario.launch(
        Program("evict_time", attacker), Program("et_victim", victim)
    )
    scenario.run()
    mean_flushed = sum(flushed_rounds) / max(1, len(flushed_rounds))
    mean_clean = sum(clean_rounds) / max(1, len(clean_rounds))
    slowdown = mean_flushed - mean_clean
    return AttackOutcome(
        probe_hits=int(slowdown > config.hierarchy.latency.l2_hit),
        probe_total=1,
        latencies=flushed_rounds + clean_rounds,
        extra={
            "slowdown": slowdown,
            "mean_flushed": mean_flushed,
            "mean_clean": mean_clean,
        },
    )
