"""LRU-state attack (Section VII-A, after Xiong & Szefer).

The attacker builds an eviction set for the LLC set holding a shared line
``l``, accesses ``l`` and then ``w-1`` congruent lines (so ``l`` is the
LRU candidate), waits for the victim, and finally accesses one more
congruent line to force an eviction.  If the victim touched ``l`` in the
window, the LRU refresh spares it and the attacker's timed re-access of
``l`` hits; otherwise ``l`` was the victim of the forced eviction and the
re-access misses.

TimeCache does **not** close this channel — the attacker touched ``l``
itself, so its s-bit is set and a surviving line hits legitimately.  The
paper assigns this (like every eviction-set attack) to randomizing-cache
defenses; this module exists to demonstrate that boundary.
"""

from __future__ import annotations

from typing import List

from repro.attacks.base import AttackOutcome, SharedArrayScenario
from repro.common.config import SimConfig
from repro.common.errors import SimulationError
from repro.cpu.isa import Compute, Exit, Fence, Load, Rdtsc, SleepOp
from repro.cpu.program import Program, ProgramGen

LRU_POOL_BASE = 0x5000000


def run_lru_attack(
    config: SimConfig,
    victim_touches: bool = True,
    rounds: int = 6,
    wait_cycles: int = 10_000,
    monitored_line: int = 0,
) -> AttackOutcome:
    """One monitored shared line, LRU-forced eviction, timed re-access.

    ``probe_hits`` counts rounds where the re-access hit — i.e. rounds
    the attacker concludes the victim touched the line.
    """
    scenario = SharedArrayScenario(config, shared_lines=4)
    kernel = scenario.kernel
    llc = kernel.system.hierarchy.llc
    line_bytes = scenario.line_bytes
    line_shift = line_bytes.bit_length() - 1
    target = scenario.line_vaddr(monitored_line)
    target_paddr = scenario.attacker_proc.address_space.translate(target)
    target_set = llc.set_index(target_paddr >> line_shift)

    pool_lines = llc.num_sets * (llc.ways + 4)
    segment = kernel.phys.allocate_segment(
        "lru_pool", pool_lines * line_bytes
    )
    scenario.attacker_proc.address_space.map_segment(segment, LRU_POOL_BASE)
    congruent: List[int] = []
    for i in range(pool_lines):
        vaddr = LRU_POOL_BASE + i * line_bytes
        paddr = scenario.attacker_proc.address_space.translate(vaddr)
        if llc.set_index(paddr >> line_shift) == target_set:
            congruent.append(vaddr)
            if len(congruent) == llc.ways:
                break
    if len(congruent) < llc.ways:
        raise SimulationError("could not build the LRU eviction set")

    latencies: List[int] = []

    def attacker() -> ProgramGen:
        for _ in range(rounds):
            yield Load(target)  # l becomes MRU, attacker s-bit set
            for vaddr in congruent[:-1]:  # fill w-1 ways; l is now LRU
                yield Load(vaddr)
            yield SleepOp(wait_cycles)  # victim window
            yield Load(congruent[-1])  # force one eviction in the set
            t0 = yield Rdtsc()
            yield Fence()
            yield Load(target)
            yield Fence()
            t1 = yield Rdtsc()
            latencies.append(t1 - t0 - 3)
        yield Exit()

    def victim() -> ProgramGen:
        for _ in range(rounds * 4):
            if victim_touches:
                yield Load(target)
            yield Compute(wait_cycles // 4)
        yield Exit()

    scenario.launch(Program("lru_attack", attacker), Program("lru_victim", victim))
    scenario.run()
    hits = sum(1 for lat in latencies if scenario.classify(lat))
    return AttackOutcome(
        probe_hits=hits, probe_total=len(latencies), latencies=latencies
    )
