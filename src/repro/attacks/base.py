"""Shared scaffolding for the attack programs.

Every attack in the paper has the same skeleton: an attacker process and a
victim process (or thread) that share some physical memory and some level
of cache, with the attacker classifying timed accesses into "hit" and
"miss" latency classes.  :class:`SharedArrayScenario` builds that skeleton
on a :class:`~repro.os.kernel.Kernel`; :func:`hit_threshold` derives the
hit/miss classification boundary from the configured latencies, mirroring
how the paper measures cached/uncached access times on the real machine
to pick its threshold.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import ContextManager, List, Optional, Sequence

from repro.common.config import SimConfig
from repro.cpu.isa import AccessRun
from repro.cpu.program import Program, ProgramGen
from repro.obs.tracer import Tracer
from repro.os.kernel import Kernel
from repro.os.process import Process, Task
from repro.os.vm import Segment


def hit_threshold(config: SimConfig) -> int:
    """Latency below which an access is classified as a cache hit.

    Picked between the slowest cache-hit path (an LLC hit reached through
    an L1 miss, plus a remote transfer) and the DRAM path, the same way
    the paper calibrates its threshold from measured cached/uncached
    access times.
    """
    lat = config.hierarchy.latency
    slowest_hit = lat.l1_hit + lat.l2_hit + lat.remote_transfer
    return (slowest_hit + lat.dram) // 2


def timed_probe_run(
    vaddrs: Sequence[int], latencies: List[int]
) -> ProgramGen:
    """Probe a run of lines as one batched :class:`AccessRun`.

    The batched analogue of a per-line rdtsc-fenced probe loop: the
    hierarchy sees the identical load sequence, but the probe latencies
    come from the run's per-access results instead of counter deltas.
    The recorded values match the scalar probe stanza exactly — that
    stanza's ``t1 - t0 - 3`` window retains one residual issue cycle on
    top of the pure access latency, so one is added here too, keeping
    hit/miss classification identical across the two probe styles.
    """
    results = yield AccessRun(list(vaddrs))
    latencies.extend(r.latency + 1 for r in results)


#: folded-AUC separation above which :meth:`AttackOutcome.verdict` calls
#: the channel leaky.  Deliberately below the tournament's 0.6 cutoff:
#: a single-run verdict has no bootstrap interval backing it, so it errs
#: toward flagging (it replaces the old "any hit at all" rule, which was
#: an implicit cutoff of barely-above-0.5).
DEFAULT_AUC_LEAK_CUTOFF = 0.55


@dataclass
class AttackOutcome:
    """Generic result of a probe-based attack run.

    ``probe_hits``/``probe_total`` count probes classified as hits; a
    reuse attack "succeeds" when hits reveal victim activity, so the
    defended system should drive ``probe_hits`` to zero.  ``latencies``
    keeps the raw measurements for distribution checks, and attacks that
    run a victim-inactive control arm record its measurements in
    ``control_latencies`` so the leak verdict can compare the two
    distributions instead of trusting a threshold.
    """

    probe_hits: int
    probe_total: int
    latencies: List[int] = field(default_factory=list)
    extra: dict = field(default_factory=dict)
    control_latencies: List[int] = field(default_factory=list)

    @property
    def hit_fraction(self) -> float:
        if self.probe_total == 0:
            return 0.0
        return self.probe_hits / self.probe_total

    def leak_auc(self) -> float:
        """Folded AUC separating this run from a victim-inactive null.

        With a recorded control arm this is the real two-sample statistic
        (:func:`repro.security.stats.auc_separation` between
        ``control_latencies`` and ``latencies``).  Without one, the null
        is the implied all-miss distribution a defended run should
        produce, against which a run whose hit fraction is ``h``
        separates with AUC ``0.5 + h/2`` — hits sit strictly below the
        threshold, misses at or above it, ties split — so the old
        threshold counts still map onto the same 0.5–1.0 scale.
        """
        if self.control_latencies:
            from repro.security.stats import auc_separation

            return auc_separation(self.control_latencies, self.latencies)
        if self.probe_total == 0:
            return 0.5
        return 0.5 * (1.0 + self.hit_fraction)

    def verdict(self, cutoff: float = DEFAULT_AUC_LEAK_CUTOFF) -> bool:
        """Statistical leak verdict: does :meth:`leak_auc` clear ``cutoff``?"""
        return self.leak_auc() > cutoff

    @property
    def leaked(self) -> bool:
        """Removed alias for :meth:`verdict` (deprecation completed).

        Historically ``probe_hits > 0``, then a deprecated forward to the
        statistical verdict.  The deprecation cycle is over: accessing it
        raises so stale callers fail loudly instead of silently using the
        old single-threshold semantics.
        """
        raise AttributeError(
            "AttackOutcome.leaked was removed after its deprecation "
            "cycle; use AttackOutcome.verdict() (statistical AUC "
            "verdict) or AttackOutcome.leak_auc() instead"
        )


class SharedArrayScenario:
    """An attacker and a victim process sharing one mapped segment.

    The segment models the shared software stack: a memory-mapped file, a
    shared library, or deduplicated pages.  Both processes map it at the
    same virtual base (convenient, not required — the caches are
    physically indexed).
    """

    SHARED_BASE = 0x100000

    def __init__(
        self,
        config: SimConfig,
        shared_lines: int = 256,
        attacker_ctx: int = 0,
        victim_ctx: int = 0,
        tracer: Optional[Tracer] = None,
        sample_every: int = 0,
    ) -> None:
        self.config = config
        self.kernel = Kernel(config)
        #: optional observability: an enabled tracer hooks the kernel's
        #: system and scheduler, and phase() emits attack-phase spans;
        #: ``sample_every`` > 0 additionally attaches a MetricsSampler at
        #: that cadence (simulated cycles), emitting metrics.sample events.
        self.tracer = tracer
        self.sampler = None
        if tracer is not None and tracer.enabled:
            tracer.attach_kernel(self.kernel)
            if sample_every > 0:
                from repro.obs.sampler import MetricsSampler

                self.sampler = MetricsSampler(
                    self.kernel.system, sample_every, tracer
                ).attach()
        self.line_bytes = config.hierarchy.line_bytes
        self.shared_lines = shared_lines
        self.attacker_ctx = attacker_ctx
        self.victim_ctx = victim_ctx
        self.segment: Segment = self.kernel.phys.allocate_segment(
            "shared", shared_lines * self.line_bytes
        )
        self.attacker_proc: Process = self.kernel.create_process("attacker")
        self.victim_proc: Process = self.kernel.create_process("victim")
        self.attacker_proc.address_space.map_segment(self.segment, self.SHARED_BASE)
        self.victim_proc.address_space.map_segment(self.segment, self.SHARED_BASE)
        self.threshold = hit_threshold(config)

    def line_vaddr(self, index: int) -> int:
        """Virtual address of the ``index``-th shared line (both spaces)."""
        if not 0 <= index < self.shared_lines:
            raise ValueError(f"shared line index {index} out of range")
        return self.SHARED_BASE + index * self.line_bytes

    def launch(
        self,
        attacker: Program,
        victim: Program,
        extra_victims: Optional[List[Program]] = None,
    ) -> "SharedArrayScenario":
        """Spawn and submit the attacker and victim tasks."""
        self.attacker_task: Task = self.attacker_proc.spawn(
            attacker, affinity=self.attacker_ctx
        )
        self.victim_task: Task = self.victim_proc.spawn(
            victim, affinity=self.victim_ctx
        )
        self.kernel.submit(self.attacker_task)
        self.kernel.submit(self.victim_task)
        for i, program in enumerate(extra_victims or []):
            task = self.victim_proc.spawn(program, affinity=self.victim_ctx)
            self.kernel.submit(task)
        return self

    def run(self, **kwargs: object) -> None:
        self.kernel.run(**kwargs)

    def run_until_victim_exits(self, max_steps: int = 20_000_000) -> None:
        """Run until the victim finishes (looping attackers stop then)."""
        self.kernel.run(
            max_steps=max_steps,
            stop_when=lambda k: k.task_done(self.victim_task),
        )

    def phase(self, name: str) -> ContextManager[None]:
        """An attack-phase span (flush, wait, probe) in simulated time.

        Use inside a program generator: the begin/end events are emitted
        as the block is entered and left during stepping, so they carry
        the simulated timestamps of the phase boundaries.  A no-op
        context when no (enabled) tracer is attached.
        """
        if self.tracer is not None and self.tracer.enabled:
            return self.tracer.span(name, src="attack", ctx=self.attacker_ctx)
        return nullcontext()

    def classify(self, latency: int) -> bool:
        """True when the latency reads as a cache hit."""
        return latency < self.threshold
