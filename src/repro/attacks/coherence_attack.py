"""Coherence attacks across cores (Section VII-B).

*Invalidate+transfer* (Irazoqui et al.): the attacker flushes a shared
line (invalidating it everywhere), waits, and reloads.  If the victim on
another core touched the line, the reload is serviced from the shared
LLC / a remote cache — much faster than DRAM — revealing the access.

The E-vs-S variant additionally distinguishes whether the remote copy was
*modified* (a cache-to-cache transfer has its own latency signature).

TimeCache closes both: the attacker's reload is a first access, and on
the first-access path the hierarchy releases the response only at DRAM
latency even when a cache or a remote owner could answer sooner
(``max(dram, transfer)`` — see
:meth:`repro.memsys.hierarchy.MemoryHierarchy._access_llc`).
"""

from __future__ import annotations

from typing import List

from repro.attacks.base import AttackOutcome, SharedArrayScenario
from repro.common.config import SimConfig
from repro.common.errors import ConfigError
from repro.cpu.isa import Compute, Exit, Fence, Flush, Load, Rdtsc, SleepOp, Store
from repro.cpu.program import Program, ProgramGen


def run_invalidate_transfer(
    config: SimConfig,
    victim_touches: bool = True,
    victim_writes: bool = False,
    rounds: int = 6,
    wait_cycles: int = 15_000,
    monitored_line: int = 1,
) -> AttackOutcome:
    """Cross-core invalidate+transfer on one shared line.

    Requires a 2-core configuration (attacker on context 0, victim on
    context 1).  ``victim_writes`` selects the E-vs-S flavor where the
    victim dirties the line in its private L1 so the attacker's reload
    needs a cache-to-cache transfer in the baseline.
    """
    if config.hierarchy.num_hw_contexts < 2:
        raise ConfigError("invalidate+transfer needs two hardware contexts")
    scenario = SharedArrayScenario(
        config, shared_lines=8, attacker_ctx=0, victim_ctx=1
    )
    target = scenario.line_vaddr(monitored_line)
    latencies: List[int] = []

    def attacker_program() -> ProgramGen:
        for _ in range(rounds):
            yield Flush(target)
            yield SleepOp(wait_cycles)
            t0 = yield Rdtsc()
            yield Fence()
            yield Load(target)
            yield Fence()
            t1 = yield Rdtsc()
            latencies.append(t1 - t0 - 3)
        yield Exit()

    def victim() -> ProgramGen:
        for _ in range(rounds * 4):
            if victim_touches:
                if victim_writes:
                    yield Store(target)
                else:
                    yield Load(target)
            yield Compute(wait_cycles // 4)
        yield Exit()

    scenario.launch(
        Program("invalidate_transfer", attacker_program),
        Program("coherence_victim", victim),
    )
    scenario.run()
    hits = sum(1 for lat in latencies if scenario.classify(lat))
    return AttackOutcome(
        probe_hits=hits, probe_total=len(latencies), latencies=latencies
    )
