"""Cache side-channel attacks from the paper, as simulated programs.

Reuse attacks on shared software (the paper's target):

* :mod:`repro.attacks.flush_reload` — flush+reload, including the
  Section VI-A1 microbenchmark (parent/child over a 256-line shared
  array);
* :mod:`repro.attacks.evict_reload` — the clflush-free variant using an
  eviction set;
* :mod:`repro.attacks.rsa` — the classic GnuPG RSA key extraction via
  flush+reload on the square/multiply/reduce functions (Section VI-A2).

Other attacks discussed in Section VII:

* :mod:`repro.attacks.flush_flush` — timing ``clflush`` itself;
* :mod:`repro.attacks.evict_time` — evicting a shared line and timing
  the victim;
* :mod:`repro.attacks.lru_attack` — leaking through LRU replacement
  state;
* :mod:`repro.attacks.coherence_attack` — invalidate+transfer across
  cores;
* :mod:`repro.attacks.prime_probe` — the contention attack TimeCache
  explicitly does *not* target (randomizing caches do), kept here to
  demonstrate the threat-model boundary.

Shared scaffolding lives in :mod:`repro.attacks.base` and the victim
programs in :mod:`repro.attacks.victim`.
"""

from repro.attacks.base import (
    AttackOutcome,
    SharedArrayScenario,
    hit_threshold,
)
from repro.attacks.calibration import (
    CalibrationResult,
    calibrate_hit_threshold,
)
from repro.attacks.coherence_attack import run_invalidate_transfer
from repro.attacks.evict_reload import run_evict_reload
from repro.attacks.evict_time import run_evict_time
from repro.attacks.flush_flush import run_flush_flush
from repro.attacks.flush_reload import (
    run_microbenchmark_attack,
    run_spy_flush_reload,
)
from repro.attacks.keystroke import KeystrokeResult, run_keystroke_attack
from repro.attacks.lru_attack import run_lru_attack
from repro.attacks.prime_probe import run_prime_probe
from repro.attacks.rsa import RsaAttackResult, run_rsa_attack
from repro.attacks.smt import run_smt_flush_reload
from repro.attacks.spectre import SpectreResult, run_spectre_covert_channel

__all__ = [
    "AttackOutcome",
    "CalibrationResult",
    "KeystrokeResult",
    "RsaAttackResult",
    "run_keystroke_attack",
    "SharedArrayScenario",
    "calibrate_hit_threshold",
    "hit_threshold",
    "run_evict_reload",
    "run_evict_time",
    "run_flush_flush",
    "run_invalidate_transfer",
    "run_lru_attack",
    "run_microbenchmark_attack",
    "run_prime_probe",
    "run_rsa_attack",
    "run_smt_flush_reload",
    "run_spectre_covert_channel",
    "run_spy_flush_reload",
    "SpectreResult",
]
