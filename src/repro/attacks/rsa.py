"""The classic GnuPG RSA key-extraction attack via flush+reload (§VI-A2).

The victim performs RSA exponentiation with the left-to-right
square-and-multiply algorithm, exactly the control-flow structure of the
GnuPG implementation the original flush+reload paper attacked: every
exponent bit executes ``square`` then ``reduce``; a **1** bit additionally
executes ``multiply`` then ``reduce``.  The three functions live on
distinct cache lines of a *shared library* segment mapped into both the
victim's and the attacker's address spaces.

The attacker runs concurrently on another core sharing the LLC.  In a
loop it flushes the three function lines, waits, and performs timed
reloads.  In the baseline, a reload hit means the victim fetched that
function since the last flush; the temporal pattern of ``square`` and
``multiply`` hits spells out the key bits.  Under TimeCache the attacker
never observes a hit (its reload is always a *first access*), so no bits
are recovered — the paper's headline security demonstration.

The victim's arithmetic is real: it computes ``pow(message, d, n)`` with
explicit square/multiply/reduce steps, and the attack harness verifies
the result against Python's ``pow`` — the side channel rides on genuine
secret-dependent control flow, not a scripted access pattern.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.attacks.base import hit_threshold
from repro.common.config import SimConfig
from repro.common.errors import ConfigError
from repro.common.rng import DeterministicRng
from repro.cpu.isa import Compute, Exit, Fence, Flush, Ifetch, Load, Rdtsc
from repro.cpu.program import Program, ProgramGen
from repro.os.kernel import Kernel


# ----------------------------------------------------------------------
# Key generation (small but real RSA)
# ----------------------------------------------------------------------
def _is_prime(n: int) -> bool:
    if n < 2:
        return False
    for p in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        if n % p == 0:
            return n == p
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def _random_prime(rng: DeterministicRng, bits: int) -> int:
    while True:
        candidate = rng.randint(1 << (bits - 1), (1 << bits) - 1) | 1
        if _is_prime(candidate):
            return candidate


@dataclass(frozen=True)
class RsaKey:
    """A small RSA key pair (toy sizes keep the simulation fast; the
    side channel depends only on the bit pattern of ``d``)."""

    n: int
    e: int
    d: int

    @property
    def d_bits(self) -> List[int]:
        return [int(b) for b in bin(self.d)[2:]]


def generate_key(seed: int = 1, prime_bits: int = 32) -> RsaKey:
    """Deterministic RSA key generation (Miller-Rabin primes, e=65537)."""
    rng = DeterministicRng(seed)
    e = 65537
    while True:
        p = _random_prime(rng, prime_bits)
        q = _random_prime(rng, prime_bits)
        if p == q:
            continue
        phi = (p - 1) * (q - 1)
        if math.gcd(e, phi) != 1:
            continue
        d = pow(e, -1, phi)
        if d.bit_length() >= prime_bits:  # avoid degenerate short keys
            return RsaKey(n=p * q, e=e, d=d)


# ----------------------------------------------------------------------
# The attack
# ----------------------------------------------------------------------
@dataclass
class RsaAttackResult:
    """Everything the harness needs to judge the attack."""

    true_bits: List[int]
    recovered_bits: List[int]
    probe_hits: int
    probe_total: int
    samples: List[Tuple[int, bool, bool, bool]] = field(default_factory=list)
    #: raw reload latencies in probe order (three per sample — square,
    #: multiply, reduce), for distribution-level leakage scoring.
    latencies: List[int] = field(default_factory=list)
    ciphertext_ok: bool = False
    #: core-local cycles the victim's signing took (for comparing the
    #: constant-time mitigation's cost against the normal victim)
    victim_cycles: int = 0

    @property
    def accuracy(self) -> float:
        """Fraction of key bits recovered correctly (0.0 when nothing was
        recovered at all)."""
        if not self.recovered_bits:
            return 0.0
        n = min(len(self.true_bits), len(self.recovered_bits))
        matches = sum(
            1 for i in range(n) if self.true_bits[i] == self.recovered_bits[i]
        )
        return matches / len(self.true_bits)

    @property
    def key_recovered(self) -> bool:
        """The paper's success criterion, conservatively: most bits read
        out correctly."""
        return self.accuracy >= 0.9


#: function layout inside the shared "libgcrypt" text segment, in lines.
#: Functions are separated by padding lines like real code layout.
_SQUARE_LINE = 0
_MULTIPLY_LINE = 4
_REDUCE_LINE = 8
_LIB_LINES = 12

_LIB_BASE = 0x200000


def run_rsa_attack(
    config: SimConfig,
    key: Optional[RsaKey] = None,
    message: int = 0x1234567,
    ifetches_per_call: int = 16,
    work_per_call: int = 2500,
    attacker_wait: int = 200,
    max_steps: int = 30_000_000,
    constant_time_victim: bool = False,
    victim_signs: bool = True,
) -> RsaAttackResult:
    """Run the full attack on a 2-core machine (attacker ctx0, victim ctx1).

    Returns recovered-vs-true bits; in the baseline configuration the
    recovery accuracy exceeds 90%, with TimeCache enabled the attacker
    sees zero probe hits and recovers nothing.

    ``constant_time_victim`` applies the software mitigation the paper
    contrasts with (Section VIII-C): the victim executes the multiply
    path for *every* exponent bit, discarding the result on clear bits.
    The fetch pattern becomes key-independent — but the signing pays the
    full multiply cost on every bit, the "significant performance
    penalty" of constant-time transformations.

    ``victim_signs=False`` runs the control arm of the
    distinguishability game: the victim stays scheduled and burns the
    same per-bit compute budget but never fetches the library lines, so
    the attacker's probe latencies sample the no-signing distribution.
    """
    if config.hierarchy.num_hw_contexts < 2:
        raise ConfigError("the RSA attack needs two hardware contexts")
    if key is None:
        key = generate_key()
    kernel = Kernel(config)
    line_bytes = config.hierarchy.line_bytes

    library = kernel.phys.allocate_segment(
        "libgcrypt.text", _LIB_LINES * line_bytes, content_key="libgcrypt-1.4"
    )
    attacker_proc = kernel.create_process("attacker")
    victim_proc = kernel.create_process("gpg")
    attacker_proc.address_space.map_segment(library, _LIB_BASE)
    victim_proc.address_space.map_segment(library, _LIB_BASE)

    square_addr = _LIB_BASE + _SQUARE_LINE * line_bytes
    multiply_addr = _LIB_BASE + _MULTIPLY_LINE * line_bytes
    reduce_addr = _LIB_BASE + _REDUCE_LINE * line_bytes
    probe_addrs = (square_addr, multiply_addr, reduce_addr)

    # ------------------------------------------------------------------
    # Victim: genuine square-and-multiply over the secret exponent, with
    # each step's instruction fetches hitting the shared library lines.
    # ------------------------------------------------------------------
    result_box = {}

    def victim_program() -> ProgramGen:
        def call(fn_addr: int) -> ProgramGen:
            # Real code fetches instructions continuously while it runs,
            # so spread the function's fetches across its whole duration —
            # a burst-then-silence pattern would let fetches fall into the
            # attacker's blind window between probe and next flush.
            chunk = max(1, work_per_call // ifetches_per_call)
            for _ in range(ifetches_per_call):
                yield Ifetch(fn_addr)
                yield Compute(chunk)

        acc = 1
        for bit in key.d_bits:
            if not victim_signs:
                # Control arm: same schedule occupancy, no library use.
                yield Compute(2 * work_per_call)
                continue
            yield from call(square_addr)  # acc = acc^2
            acc = acc * acc
            yield from call(reduce_addr)  # acc mod n
            acc %= key.n
            if constant_time_victim:
                # Always-multiply transformation: same fetches and same
                # arithmetic on every bit; the product is kept only when
                # the bit is set.
                yield from call(multiply_addr)
                product = acc * message
                yield from call(reduce_addr)
                product %= key.n
                acc = product if bit else acc
            elif bit:
                yield from call(multiply_addr)  # acc *= m
                acc = acc * message
                yield from call(reduce_addr)
                acc %= key.n
        result_box["ciphertext"] = acc
        yield Exit()

    # ------------------------------------------------------------------
    # Attacker: flush the three lines, wait, timed reload of each.
    # ------------------------------------------------------------------
    threshold = hit_threshold(config)
    samples: List[Tuple[int, bool, bool, bool]] = []
    latencies: List[int] = []

    def attacker_program() -> ProgramGen:
        while True:
            for addr in probe_addrs:
                yield Flush(addr)
            yield Compute(attacker_wait)
            stamp = yield Rdtsc()
            hits = []
            for addr in probe_addrs:
                t0 = yield Rdtsc()
                yield Fence()
                yield Load(addr)
                yield Fence()
                t1 = yield Rdtsc()
                latency = t1 - t0 - 3
                latencies.append(latency)
                hits.append(latency < threshold)
            samples.append((stamp, hits[0], hits[1], hits[2]))

    attacker_task = attacker_proc.spawn(
        Program("fr_spy", attacker_program), affinity=0
    )
    victim_task = victim_proc.spawn(
        Program("gpg_sign", victim_program), affinity=1
    )
    kernel.submit(attacker_task)
    kernel.submit(victim_task)
    kernel.run(
        max_steps=max_steps, stop_when=lambda k: k.task_done(victim_task)
    )

    recovered = decode_key_bits(samples)
    probe_hits = sum(h0 + h1 + h2 for _, h0, h1, h2 in samples)
    return RsaAttackResult(
        true_bits=key.d_bits,
        recovered_bits=recovered,
        probe_hits=probe_hits,
        probe_total=3 * len(samples),
        samples=samples,
        latencies=latencies,
        ciphertext_ok=result_box.get("ciphertext") == pow(message, key.d, key.n),
        victim_cycles=victim_task.cycles,
    )


def decode_key_bits(
    samples: List[Tuple[int, bool, bool, bool]], gap_tolerance: int = 1
) -> List[int]:
    """Recover exponent bits from (time, square, multiply, reduce) samples.

    Square hits are clustered into *square events* (one per exponent
    bit); a bit is decoded as 1 when any multiply hit falls between two
    consecutive square events — the decoding rule of the original
    flush+reload attack.
    """
    square_idx = [i for i, s in enumerate(samples) if s[1]]
    if not square_idx:
        return []
    # Cluster square-hit samples separated by <= gap_tolerance gaps.
    events: List[Tuple[int, int]] = []  # (first_sample, last_sample)
    start = prev = square_idx[0]
    for i in square_idx[1:]:
        if i - prev <= gap_tolerance + 1:
            prev = i
        else:
            events.append((start, prev))
            start = prev = i
    events.append((start, prev))

    bits: List[int] = []
    for k, (_, last) in enumerate(events):
        window_end = events[k + 1][0] if k + 1 < len(events) else len(samples)
        saw_multiply = any(
            samples[i][2] for i in range(last + 1, window_end)
        )
        bits.append(1 if saw_multiply else 0)
    return bits
