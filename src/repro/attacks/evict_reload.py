"""Evict+reload: flush+reload without ``clflush``.

When the attacker cannot execute ``clflush`` (e.g. from a sandbox), it
evicts the shared target line by filling the line's LLC set with its own
private data (an *eviction set*), then reloads the target after the
victim runs.  TimeCache breaks the reload exactly as it breaks
flush+reload: after the victim refills the line, the attacker's reload is
a first access.

The eviction-set construction here uses the attacker's own mapped pages
whose physical line addresses collide with the target's LLC set — the
same congruence search a real attacker performs with large pages or
timing probes.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.attacks.base import AttackOutcome, SharedArrayScenario
from repro.common.config import SimConfig
from repro.common.errors import SimulationError
from repro.cpu.isa import Exit, Fence, Load, Rdtsc, SleepOp
from repro.cpu.program import Program, ProgramGen
from repro.os.process import Process


PRIVATE_BASE = 0x4000000


def build_eviction_set(
    scenario: SharedArrayScenario,
    attacker: Process,
    target_vaddr: int,
    extra_ways: int = 1,
) -> List[int]:
    """Attacker-virtual addresses whose lines collide with the target's
    LLC set; ``ways + extra_ways`` of them, enough to force the target
    out under LRU."""
    llc = scenario.kernel.system.hierarchy.llc
    line_bytes = scenario.line_bytes
    target_paddr = scenario.attacker_proc.address_space.translate(target_vaddr)
    target_set = llc.set_index(target_paddr >> llc.config.line_bytes.bit_length() - 1)

    pool_lines = llc.num_sets * (llc.ways + extra_ways + 2)
    segment = scenario.kernel.phys.allocate_segment(
        "attacker_private_pool", pool_lines * line_bytes
    )
    attacker.address_space.map_segment(segment, PRIVATE_BASE)

    wanted = llc.ways + extra_ways
    eviction_set: List[int] = []
    for i in range(pool_lines):
        vaddr = PRIVATE_BASE + i * line_bytes
        paddr = attacker.address_space.translate(vaddr)
        line = paddr >> (line_bytes.bit_length() - 1)
        if llc.set_index(line) == target_set:
            eviction_set.append(vaddr)
            if len(eviction_set) == wanted:
                return eviction_set
    raise SimulationError(
        f"could only find {len(eviction_set)}/{wanted} congruent lines"
    )


def run_evict_reload(
    config: SimConfig,
    secret_indices: Sequence[int] = (5,),
    shared_lines: int = 32,
    rounds: int = 4,
    wait_cycles: int = 20_000,
    monitored_line: int = None,
) -> AttackOutcome:
    """Monitor one shared line via evict+reload.

    The attacker monitors ``monitored_line`` (default: the victim's first
    secret line); the victim touches its secret lines each round.
    ``probe_hits`` counts reload hits on the monitored line (baseline:
    one per round when the victim touches it, zero when it does not;
    TimeCache: always zero).
    """
    scenario = SharedArrayScenario(config, shared_lines=shared_lines)
    if monitored_line is None:
        monitored_line = secret_indices[0]
    target = scenario.line_vaddr(monitored_line)
    eviction_set = build_eviction_set(scenario, scenario.attacker_proc, target)
    latencies: List[int] = []

    def attacker() -> ProgramGen:
        for _ in range(rounds):
            # evict: walk the congruent set twice so LRU definitely cycles
            for _rep in range(2):
                for vaddr in eviction_set:
                    yield Load(vaddr)
            yield SleepOp(wait_cycles)
            t0 = yield Rdtsc()
            yield Fence()
            yield Load(target)
            yield Fence()
            t1 = yield Rdtsc()
            latencies.append(t1 - t0 - 3)
        yield Exit()

    def victim_program() -> ProgramGen:
        # Touch the secret lines once per attacker round, sleeping in
        # between so activity spans the whole attack (a long-running
        # victim, like a crypto daemon handling periodic requests).
        for _ in range(rounds):
            for index in secret_indices:
                for _rep in range(8):
                    yield Load(scenario.line_vaddr(index))
            yield SleepOp(wait_cycles)
        yield Exit()

    victim = Program("er_victim", victim_program)
    scenario.launch(Program("evict_reload", attacker), victim)
    scenario.run()
    hits = sum(1 for lat in latencies if scenario.classify(lat))
    return AttackOutcome(
        probe_hits=hits, probe_total=len(latencies), latencies=latencies
    )
