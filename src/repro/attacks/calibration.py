"""Attacker-side threshold calibration (Section VI-A2's methodology).

The paper: "We calculate the time required for a cached and uncached
access on the experimental real machine and set that as the threshold
for the cache hit."  A real attacker does the same with rdtsc-bracketed
probes on memory it controls; this module performs that measurement
*inside the simulation* — timed accesses by an actual calibration
program, not a peek at the latency configuration — and derives the
threshold from the two observed latency populations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.common.config import SimConfig
from repro.common.errors import CalibrationError
from repro.cpu.isa import Exit, Fence, Flush, Load, Rdtsc
from repro.cpu.program import Program, ProgramGen
from repro.os.kernel import Kernel


@dataclass(frozen=True)
class CalibrationResult:
    """Measured hit/miss latency populations and the derived threshold."""

    cached_latencies: List[int]
    uncached_latencies: List[int]

    @property
    def cached_max(self) -> int:
        return max(self.cached_latencies)

    @property
    def uncached_min(self) -> int:
        return min(self.uncached_latencies)

    @property
    def threshold(self) -> int:
        """Midpoint between the slowest hit and the fastest miss."""
        return (self.cached_max + self.uncached_min) // 2

    @property
    def separable(self) -> bool:
        """Whether the two populations do not overlap (they must, for
        flush+reload to classify reliably)."""
        return self.cached_max < self.uncached_min

    def validate(self) -> "CalibrationResult":
        """Raise :class:`CalibrationError` unless a usable threshold exists.

        Empty populations (the calibration program never ran) and
        overlapping or touching populations (``cached_max >=
        uncached_min`` — a latency value that could be either class)
        both make the midpoint threshold meaningless; failing loudly
        here beats an attack harness silently classifying noise.
        """
        if not self.cached_latencies or not self.uncached_latencies:
            raise CalibrationError(
                "calibration produced an empty latency population "
                f"({len(self.cached_latencies)} cached, "
                f"{len(self.uncached_latencies)} uncached probes)"
            )
        if not self.separable:
            raise CalibrationError(
                "cached and uncached latency populations overlap; "
                "no threshold can separate hits from misses",
                cached_max=self.cached_max,
                uncached_min=self.uncached_min,
            )
        return self


def calibrate_hit_threshold(
    config: SimConfig, probes: int = 32, ctx: int = 0
) -> CalibrationResult:
    """Measure cached vs uncached access time the way an attacker would.

    Runs a calibration program on a fresh machine: for each probe line it
    measures an uncached access (after a flush) and then a cached
    re-access, both rdtsc-bracketed and fenced.  Raises
    :class:`~repro.common.errors.CalibrationError` when the measured
    populations are empty or inseparable (no midpoint threshold could
    classify reliably) — e.g. under a configuration whose DRAM latency
    does not dominate the hit paths.
    """
    kernel = Kernel(config)
    process = kernel.create_process("calibrator")
    line_bytes = config.hierarchy.line_bytes
    segment = kernel.phys.allocate_segment(
        "calibration_buffer", probes * line_bytes
    )
    base = 0x900000
    process.address_space.map_segment(segment, base)
    cached: List[int] = []
    uncached: List[int] = []

    def program() -> ProgramGen:
        for i in range(probes):
            addr = base + i * line_bytes
            yield Flush(addr)
            t0 = yield Rdtsc()
            yield Fence()
            yield Load(addr)  # guaranteed uncached
            yield Fence()
            t1 = yield Rdtsc()
            uncached.append(t1 - t0 - 3)
            t0 = yield Rdtsc()
            yield Fence()
            yield Load(addr)  # guaranteed cached (just loaded)
            yield Fence()
            t1 = yield Rdtsc()
            cached.append(t1 - t0 - 3)
        yield Exit()

    task = process.spawn(Program("calibrate", program), affinity=ctx)
    kernel.submit(task)
    kernel.run()
    return CalibrationResult(
        cached_latencies=cached, uncached_latencies=uncached
    ).validate()
