"""Flush+flush (Gruss et al.): timing ``clflush`` instead of a reload.

``clflush`` completes faster when the line is *not* cached (it aborts
early), so flushing a shared line twice with a victim window in between
reveals whether the victim touched it — without the attacker ever loading
the line, which defeats reload-based defenses.

Section VII-C's mitigation is to make ``clflush`` constant-time
(performing a dummy writeback when the line is absent);
``TimeCacheConfig.constant_time_flush`` enables exactly that, and this
attack observes the channel disappear.
"""

from __future__ import annotations

from typing import List

from repro.attacks.base import AttackOutcome, SharedArrayScenario
from repro.attacks.victim import idle_victim, secret_indexed_victim
from repro.common.config import SimConfig
from repro.cpu.isa import Exit, Fence, Flush, Rdtsc, SleepOp
from repro.cpu.program import Program, ProgramGen


def run_flush_flush(
    config: SimConfig,
    victim_touches: bool = True,
    rounds: int = 8,
    wait_cycles: int = 15_000,
    monitored_line: int = 3,
) -> AttackOutcome:
    """Time the second flush of a shared line around a victim window.

    A "hit" is a flush whose latency indicates the line was cached (the
    victim touched it).  With ``constant_time_flush`` every flush takes
    the same time, so the classification threshold can never separate the
    two cases.
    """
    scenario = SharedArrayScenario(config, shared_lines=16)
    target = scenario.line_vaddr(monitored_line)
    lat_cfg = config.hierarchy.latency
    # Threshold between the uncached-abort latency and the cached latency.
    flush_threshold = (lat_cfg.flush_uncached + lat_cfg.flush_cached) / 2.0
    latencies: List[int] = []

    def attacker() -> ProgramGen:
        yield Flush(target)  # establish the flushed state
        for _ in range(rounds):
            yield SleepOp(wait_cycles)
            t0 = yield Rdtsc()
            yield Fence()
            yield Flush(target)
            yield Fence()
            t1 = yield Rdtsc()
            latencies.append(t1 - t0 - 3)
        yield Exit()

    if victim_touches:
        victim = secret_indexed_victim(
            scenario.line_vaddr, [monitored_line] * rounds * 4
        )
    else:
        victim = idle_victim(cycles=wait_cycles * rounds)
    scenario.launch(Program("flush_flush", attacker), victim)
    scenario.run()
    hits = sum(1 for lat in latencies if lat > flush_threshold)
    return AttackOutcome(
        probe_hits=hits,
        probe_total=len(latencies),
        latencies=latencies,
        extra={"flush_threshold": flush_threshold},
    )
