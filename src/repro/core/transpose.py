"""Functional model of the transposed 8-T SRAM timestamp array (Figure 5).

The paper stores the per-line ``Tc`` timestamps (and the s-bits) in a
separate SRAM array built from 8-T multi-access cells, readable through
two interfaces:

* the **transpose interface** — one whole word (a line's timestamp or its
  s-bit row) per access; used during normal cache operation when a fill
  writes a new Tc or an access reads/sets an s-bit;
* the **regular bit-line interface** — one *bit position across all
  words* per access; used at context switches for the bit-serial,
  timestamp-parallel comparison, and for bulk s-bit saves/restores.

The model stores the array as a (bits x words) boolean matrix so the two
interfaces are literally row and column slices, and it counts accesses per
interface so tests can assert that a whole-cache comparison costs one
regular-interface access per timestamp bit — the paper's key latency
claim.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import SimulationError
from repro.common.stats import StatGroup


class TransposeSram:
    """A (bits x words) bit matrix with word-wise and bit-slice access."""

    def __init__(self, words: int, bits: int) -> None:
        if words <= 0:
            raise SimulationError(f"words must be positive, got {words}")
        if bits <= 0:
            raise SimulationError(f"bits must be positive, got {bits}")
        self.words = words
        self.bits = bits
        #: row i holds bit position i (MSB = row 0) of every word
        self._array = np.zeros((bits, words), dtype=bool)
        self.stats = StatGroup("transpose_sram")

    # ------------------------------------------------------------------
    # Transpose interface: whole-word access (normal cache operation)
    # ------------------------------------------------------------------
    def write_word(self, word_idx: int, value: int) -> None:
        """Store ``value`` into word ``word_idx`` (a cache fill writing Tc)."""
        self._check_word(word_idx)
        if not 0 <= value < (1 << self.bits):
            raise SimulationError(
                f"value {value} does not fit in {self.bits} bits"
            )
        for i in range(self.bits):
            self._array[i, word_idx] = bool((value >> (self.bits - 1 - i)) & 1)
        self.stats.counter("word_writes").add()

    def read_word(self, word_idx: int) -> int:
        """Read word ``word_idx`` through the transpose interface."""
        self._check_word(word_idx)
        self.stats.counter("word_reads").add()
        value = 0
        for i in range(self.bits):
            value = (value << 1) | int(self._array[i, word_idx])
        return value

    # ------------------------------------------------------------------
    # Regular bit-line interface: one bit position across all words
    # ------------------------------------------------------------------
    def read_bit_slice(self, bit_idx: int) -> np.ndarray:
        """Bit ``bit_idx`` (0 = MSB) of every word, as a bool vector.

        One call models one cycle of the bit-serial comparison: all
        bitlines are sensed in parallel.
        """
        self._check_bit(bit_idx)
        self.stats.counter("bit_slice_reads").add()
        return self._array[bit_idx].copy()

    def write_bit_slice(self, bit_idx: int, values: np.ndarray) -> None:
        """Write a full bit position (bulk s-bit restore path)."""
        self._check_bit(bit_idx)
        if values.shape != (self.words,):
            raise SimulationError(
                f"bit slice shape {values.shape} != ({self.words},)"
            )
        self._array[bit_idx] = values.astype(bool)
        self.stats.counter("bit_slice_writes").add()

    # ------------------------------------------------------------------
    # Bulk helpers used to mirror a cache's Tc array into the model
    # ------------------------------------------------------------------
    def load_words(self, values: np.ndarray) -> None:
        """Load a flat vector of ``words`` integers (e.g. a cache's Tc
        array) into the matrix in transposed form."""
        flat = np.asarray(values, dtype=np.int64).reshape(-1)
        if flat.shape != (self.words,):
            raise SimulationError(
                f"expected {self.words} words, got {flat.shape}"
            )
        if flat.min(initial=0) < 0 or (
            flat.max(initial=0) >= (1 << self.bits)
        ):
            raise SimulationError(f"values do not fit in {self.bits} bits")
        for i in range(self.bits):
            self._array[i] = ((flat >> (self.bits - 1 - i)) & 1).astype(bool)

    def dump_words(self) -> np.ndarray:
        """The stored words as a flat int64 vector (test helper)."""
        out = np.zeros(self.words, dtype=np.int64)
        for i in range(self.bits):
            out = (out << 1) | self._array[i].astype(np.int64)
        return out

    def _check_word(self, word_idx: int) -> None:
        if not 0 <= word_idx < self.words:
            raise SimulationError(f"word index {word_idx} out of range")

    def _check_bit(self, bit_idx: int) -> None:
        if not 0 <= bit_idx < self.bits:
            raise SimulationError(f"bit index {bit_idx} out of range")
