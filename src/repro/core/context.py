"""Context-switch engine: save, restore, and comparator-update s-bits.

This is the hardware/software hand-off of Sections IV-C and V-B.  At a
CR3 change (a context switch in the OS layer):

1. software saves the outgoing task's s-bit columns from every cache its
   hardware context shares, stamped with the full current time (``Ts``);
2. software restores the incoming task's saved columns (all-zero for a
   new task, for a task migrating to a different core, or under the
   ``reset_sbits_on_switch`` ablation);
3. hardware repairs staleness: for each cache, every slot whose truncated
   fill time ``Tc`` exceeds the truncated ``Ts`` has the incoming
   context's s-bit cleared — via the bit-serial comparator;
4. if a timestamp rollover occurred between the save and now, all s-bits
   are conservatively cleared instead (Section VI-C).

The engine also accounts the cost: the paper measured 1.08 us for a DMA
save/restore of an LLC-sized s-bit array and injected that constant per
switch into gem5; :class:`SwitchCost` carries the same constant (from
``TimeCacheConfig.sbit_dma_cycles``) plus the comparator's bits+2 cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.common.config import TimeCacheConfig
from repro.common.stats import StatGroup
from repro.core.comparator import BitSerialComparator
from repro.core.sbits import SavedCachingContext, TaskCachingState
from repro.core.timestamp import TimestampDomain
from repro.core.transpose import TransposeSram
from repro.memsys.cache import Cache
from repro.memsys.hierarchy import MemoryHierarchy


@dataclass(frozen=True)
class SwitchCost:
    """Cycles a context switch spends on TimeCache bookkeeping."""

    dma_cycles: int
    comparator_cycles: int
    rollover_reset: bool

    @property
    def total(self) -> int:
        return self.dma_cycles + self.comparator_cycles


class ContextSwitchEngine:
    """Drives the s-bit save/restore protocol against a hierarchy."""

    def __init__(self, hierarchy: MemoryHierarchy, config: TimeCacheConfig) -> None:
        self.hierarchy = hierarchy
        self.config = config
        self.domain = TimestampDomain(config.timestamp_bits)
        self.comparator = BitSerialComparator(self.domain)
        self.stats = StatGroup("context_switch")
        #: narrow fault-injection seams (repro.robustness).  ``save_filter``
        #: sees every snapshot before it is recorded and may replace it or
        #: return None to drop the save (the task keeps its previous one).
        #: ``restore_filter`` sees the snapshot about to be restored
        #: (possibly None) and may substitute another — e.g. a stale clone
        #: with a forged Ts.  Both default to no-ops.
        self.save_filter: Optional[
            Callable[
                [TaskCachingState, int, SavedCachingContext],
                Optional[SavedCachingContext],
            ]
        ] = None
        self.restore_filter: Optional[
            Callable[
                [TaskCachingState, int, Optional[SavedCachingContext], int],
                Optional[SavedCachingContext],
            ]
        ] = None

    # ------------------------------------------------------------------
    def save(self, task: TaskCachingState, ctx: int, now_full: int) -> None:
        """Snapshot the outgoing task's s-bits and stamp Ts (software)."""
        if not self.config.enabled:
            return
        if self.config.reset_sbits_on_switch:
            # Ablation: drop the caching context entirely.  Equivalent in
            # effect to flushing the task's view of the cache per switch.
            task.record_save(SavedCachingContext(ts_full=now_full))
            self._clear_all(ctx)
            return
        context = SavedCachingContext(ts_full=now_full)
        for cache in self.hierarchy.caches_for_ctx(ctx):
            context.sbits_by_cache[cache.name] = cache.save_sbits(ctx)
        if self.save_filter is not None:
            filtered = self.save_filter(task, ctx, context)
            if filtered is None:
                self.stats.counter("dropped_saves").add()
                return
            context = filtered
        task.record_save(context)
        self.stats.counter("saves").add()

    def restore(self, task: TaskCachingState, ctx: int, now_full: int) -> SwitchCost:
        """Restore the incoming task's s-bits and repair staleness.

        Returns the modeled bookkeeping cost; the caller (scheduler)
        charges it to the incoming task.
        """
        if not self.config.enabled:
            return SwitchCost(0, 0, False)
        self.stats.counter("restores").add()
        saved = task.saved
        if self.restore_filter is not None:
            saved = self.restore_filter(task, ctx, saved, now_full)
        caches = self.hierarchy.caches_for_ctx(ctx)
        rollover = False
        if saved is not None and self.domain.rolled_over_between(
            saved.ts_full, now_full
        ):
            rollover = True
            self.stats.counter("rollover_resets").add()

        comparator_cycles = 0
        for cache in caches:
            saved_bits = saved.bits_for(cache) if (saved and not rollover) else None
            cache.restore_sbits(ctx, saved_bits)
            if saved_bits is None:
                # Nothing restored (new task, migration, rollover, or the
                # reset ablation): the column is already all-clear and the
                # comparator scan would clear nothing.
                continue
            comparator_cycles += self._comparator_update(
                cache, ctx, saved.ts_full
            )
        dma = self.config.sbit_dma_cycles
        return SwitchCost(dma, comparator_cycles, rollover)

    # ------------------------------------------------------------------
    def _comparator_update(self, cache: Cache, ctx: int, ts_full: int) -> int:
        """Clear the context's s-bits where ``Tc > Ts`` (hardware).

        ``ts_full`` is passed through untruncated: the comparator owns
        the one truncation into the Tc domain.  (A second truncation
        here would be idempotent today, but two truncation points means
        two places a rollover-boundary bug can hide — the comparator's
        interface is the full preemption time.)
        """
        flat_tc = cache.tc.reshape(-1)
        if self.config.gate_level_comparator:
            result = self.comparator.compare_values(flat_tc, ts_full)
        else:
            result = self.comparator.fast_compare(flat_tc, ts_full)
        mask = result.reset_mask.reshape(cache.tc.shape)
        cleared = cache.clear_sbits_where(ctx, mask)
        self.stats.counter("sbits_cleared_by_comparator").add(cleared)
        return result.cycles

    def _clear_all(self, ctx: int) -> None:
        for cache in self.hierarchy.caches_for_ctx(ctx):
            cache.clear_all_sbits(ctx)

    # ------------------------------------------------------------------
    def build_transposed_view(self, cache: Cache) -> TransposeSram:
        """The cache's Tc array as the hardware's transposed SRAM (used by
        fidelity tests and the gate-level demo in the examples)."""
        sram = TransposeSram(words=cache.tc.size, bits=self.domain.bits)
        sram.load_words(cache.tc.reshape(-1))
        return sram

    def save_restore_transfers(self) -> List[int]:
        """Per-cache 64-byte transfer counts for one save or restore
        (the Section VI-D arithmetic: 2 for a 64KB L1, 256 for 8MB)."""
        return [
            cache.sbit_save_transfers()
            for cache in self.hierarchy.all_caches()
        ]
