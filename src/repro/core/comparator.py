"""Bit-serial, timestamp-parallel comparison logic (Figure 6).

At a context switch the restored s-bits are stale: any line (re)filled
after the process's preemption time ``Ts`` must have its s-bit cleared.
The paper compares the per-line fill time ``Tc`` against ``Ts`` for *all*
lines simultaneously in time linear in the timestamp width, by scanning
the transposed timestamp array one bit position per cycle (MSB first)
through a small peripheral circuit on every bitline:

* a **greater latch** that captures ``Tc > Ts`` — set when the current Tc
  bit is 1, the Ts bit is 0, and the comparison has not already stopped;
* a **stop latch** that captures ``Tc < Ts`` — set when the current Tc
  bit is 0 and the Ts bit is 1 — whose output gates the greater latch so
  later bit positions cannot flip an already-decided comparison;
* ``Ts`` sits in a shift register, shifting one bit per cycle to feed
  every bitline's peripheral simultaneously.

After the scan, lines whose greater latch is set get their s-bit (for the
resuming hardware context) written to 0 through the enabled bitline
drivers.

:class:`BitSerialComparator` simulates exactly that circuit and also
offers the vectorized functional equivalent (`numpy` ``tc > ts``); the
test suite property-checks that the two agree for every width.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.core.timestamp import TimestampDomain
from repro.core.transpose import TransposeSram


@dataclass(frozen=True)
class ComparatorResult:
    """Outcome of one whole-array comparison.

    ``reset_mask`` is True for every word whose ``Tc > Ts`` — exactly the
    s-bits the hardware clears.  ``cycles`` is the modeled latency: one
    per timestamp bit for the scan, plus one to pre-clear the latches and
    one for the final s-bit write.
    """

    reset_mask: np.ndarray
    cycles: int


class BitSerialComparator:
    """Gate-level model of the Figure 6 bitline peripheral."""

    def __init__(self, domain: TimestampDomain) -> None:
        self.domain = domain
        #: narrow fault-injection seam (repro.robustness): when set, the
        #: reset mask of every comparison passes through this filter
        #: before the s-bit clears are applied.  Models dropped or
        #: spurious comparator clears without monkeypatching.
        self.reset_mask_filter: Optional[
            Callable[[np.ndarray], np.ndarray]
        ] = None

    def _filtered(self, mask: np.ndarray) -> np.ndarray:
        if self.reset_mask_filter is not None:
            mask = self.reset_mask_filter(mask)
        return mask

    def compare_sram(self, sram: TransposeSram, ts: int) -> ComparatorResult:
        """Scan a transposed timestamp array against ``Ts``.

        Simulates the SR latches bit by bit; the returned cycle count is
        ``bits + 2`` regardless of the number of words — the paper's
        constant-time-in-lines claim.  ``ts`` may be a full (untruncated)
        time; the scan compares against its truncation.  The comparison
        is strictly ``Tc > Ts``: a line filled in the same cycle as the
        preemption (``Tc == Ts``) keeps its s-bit — when neither latch
        fires on any bit position the line is left alone.
        """
        bits = self.domain.bits
        if sram.bits != bits:
            raise ValueError(
                f"SRAM width {sram.bits} != timestamp width {bits}"
            )
        ts_bits = self.domain.to_bits_msb_first(self.domain.truncate(ts))
        words = sram.words
        # Latch reset cycle: both SR latches cleared on every bitline.
        greater = np.zeros(words, dtype=bool)  # left latch: Tc > Ts
        stop = np.zeros(words, dtype=bool)  # right latch: Tc < Ts
        cycles = 1
        for i in range(bits):
            tc_bit = sram.read_bit_slice(i)  # 'b' input, all bitlines
            ts_bit = bool(ts_bits[i])  # 'a' input from the shift register
            if ts_bit:
                # stop latch: a AND (not b) — Tc smaller, comparison over.
                stop |= ~tc_bit & ~greater
            else:
                # greater latch: b AND (not a) AND (not stop_q)
                greater |= tc_bit & ~stop
            cycles += 1
        # One cycle to drive 0 into the s-bits of flagged bitlines.
        cycles += 1
        return ComparatorResult(reset_mask=self._filtered(greater), cycles=cycles)

    def compare_values(self, tc_values: np.ndarray, ts: int) -> ComparatorResult:
        """Run the gate-level scan over a plain vector of Tc values."""
        flat = np.asarray(tc_values, dtype=np.int64).reshape(-1)
        sram = TransposeSram(words=len(flat), bits=self.domain.bits)
        sram.load_words(flat)
        return self.compare_sram(sram, ts)

    def fast_compare(self, tc_values: np.ndarray, ts: int) -> ComparatorResult:
        """Vectorized functional equivalent: unsigned ``Tc > Ts``.

        Produces the same mask as :meth:`compare_values` (property-tested)
        and the same modeled cycle count; experiments use this path so a
        context switch does not cost Python-level per-bit loops.  Like
        the gate-level scan, the comparison is strict — ``Tc == Ts``
        keeps the s-bit.
        """
        ts_trunc = self.domain.truncate(ts)
        flat = np.asarray(tc_values, dtype=np.int64).reshape(-1)
        mask = flat > ts_trunc
        return ComparatorResult(
            reset_mask=self._filtered(mask), cycles=self.domain.bits + 2
        )
