"""The paper's contribution: TimeCache.

This package implements the mechanisms of Sections IV and V on top of the
:mod:`repro.memsys` substrate:

* :mod:`repro.core.timestamp` — the finite-width Tc/Ts timestamp domain
  with rollover semantics (Section VI-C).
* :mod:`repro.core.transpose` — the 8-T transposed SRAM array holding the
  per-line timestamps and s-bits (Figure 5).
* :mod:`repro.core.comparator` — the bit-serial, timestamp-parallel
  comparison logic (Figure 6), modeled at gate level (two SR latches and
  two AND gates per bitline, a shift register for Ts) and property-tested
  against plain unsigned ``Tc > Ts``.
* :mod:`repro.core.sbits` — the saved per-process caching context
  (software side of the s-bit save/restore).
* :mod:`repro.core.context` — the context-switch engine that saves,
  restores, and comparator-updates s-bits, with the paper's DMA cost
  model (Section VI-D).
* :mod:`repro.core.timecache` — :class:`TimeCacheSystem`, the public
  facade that the CPU/OS layers (and library users) drive.
"""

from repro.core.comparator import BitSerialComparator, ComparatorResult
from repro.core.context import ContextSwitchEngine, SwitchCost
from repro.core.sbits import SavedCachingContext, TaskCachingState
from repro.core.timecache import TimeCacheSystem
from repro.core.timestamp import TimestampDomain
from repro.core.transpose import TransposeSram

__all__ = [
    "BitSerialComparator",
    "ComparatorResult",
    "ContextSwitchEngine",
    "SavedCachingContext",
    "SwitchCost",
    "TaskCachingState",
    "TimeCacheSystem",
    "TimestampDomain",
    "TransposeSram",
]
