"""Finite-width timestamp domain with rollover semantics (Section VI-C).

Hardware stores per-line fill times ``Tc`` truncated to a configurable
width (the paper uses 32 bits; tests use tiny widths to exercise
rollover).  Software keeps the *full* preemption time for each process, so
rollover between preemption and resumption can be detected exactly — the
paper's rule set is:

* preempted before / resumed after a rollover → conservatively reset
  **all** s-bits (newer lines may carry smaller, wrapped Tc values);
* running across a rollover → nothing to do, s-bits are already live;
* no rollover in between → compare truncated values; pre-rollover lines
  with large stale Tc may cause *unnecessary* resets, which is a
  performance artifact, never a correctness problem.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError


@dataclass(frozen=True)
class TimestampDomain:
    """Arithmetic over ``bits``-wide wrapping timestamps."""

    bits: int

    def __post_init__(self) -> None:
        if not 2 <= self.bits <= 64:
            raise ConfigError(f"timestamp width must be in [2, 64], got {self.bits}")

    @property
    def modulus(self) -> int:
        return 1 << self.bits

    @property
    def mask(self) -> int:
        return self.modulus - 1

    def truncate(self, full_time: int) -> int:
        """The ``bits`` low-order bits of a full cycle count — what the
        hardware timestamp SRAM actually stores."""
        if full_time < 0:
            raise ValueError(f"time cannot be negative, got {full_time}")
        return full_time & self.mask

    def epoch(self, full_time: int) -> int:
        """Which rollover period a full cycle count falls in."""
        if full_time < 0:
            raise ValueError(f"time cannot be negative, got {full_time}")
        return full_time >> self.bits

    def rolled_over_between(self, earlier_full: int, later_full: int) -> bool:
        """True when at least one rollover happened in (earlier, later].

        Software evaluates this at process resumption with the saved full
        preemption time and the current full time; hardware only ever sees
        truncated values.
        """
        if later_full < earlier_full:
            raise ValueError(
                f"later time {later_full} precedes earlier time {earlier_full}"
            )
        return self.epoch(later_full) != self.epoch(earlier_full)

    def contains(self, value: int) -> bool:
        """Whether ``value`` is representable in this domain — the
        structural invariant every stored Tc must satisfy (the robustness
        checker flags out-of-range values as corruption)."""
        return 0 <= value <= self.mask

    def next_epoch_start(self, full_time: int) -> int:
        """The first full cycle count after ``full_time`` whose epoch
        differs — i.e. the next rollover boundary.  The fault injector's
        rollover-stress model parks preemption times just before this and
        resumption times at/after it to force the Section VI-C
        conservative-reset path."""
        return (self.epoch(full_time) + 1) << self.bits

    def compare_truncated(self, tc: int, ts: int) -> bool:
        """The hardware predicate: unsigned ``tc > ts`` on truncated values.

        This is exactly what the bit-serial comparator computes; callers
        must have handled rollover (see :meth:`rolled_over_between`)
        before trusting the result.
        """
        if not 0 <= tc <= self.mask:
            raise ValueError(f"tc {tc} out of range for {self.bits}-bit domain")
        if not 0 <= ts <= self.mask:
            raise ValueError(f"ts {ts} out of range for {self.bits}-bit domain")
        return tc > ts

    def to_bits_msb_first(self, value: int) -> list:
        """Bit expansion, MSB first — the order the shift register feeds
        the comparison logic."""
        if not 0 <= value <= self.mask:
            raise ValueError(f"value {value} out of range for {self.bits} bits")
        return [(value >> (self.bits - 1 - i)) & 1 for i in range(self.bits)]
