"""The public facade: :class:`TimeCacheSystem`.

Bundles the substrate (clock, hierarchy) with the contribution (context
engine) behind one object that the CPU layer, the OS layer, examples and
tests all drive.  Construct one from a :class:`~repro.common.config.SimConfig`
— with ``timecache.enabled`` True for the defended system or False for the
baseline — and issue accesses, flushes, and context switches.

Quickstart::

    from repro.common import scaled_experiment_config
    from repro.core import TimeCacheSystem
    from repro.memsys import AccessKind

    system = TimeCacheSystem(scaled_experiment_config())
    r = system.access(ctx=0, addr=0x1000, kind=AccessKind.LOAD, now=0)
    assert r.level == "DRAM"          # cold miss
    r = system.access(ctx=0, addr=0x1000, kind=AccessKind.LOAD, now=300)
    assert r.level == "L1"            # warm hit
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.common.clock import GlobalClock
from repro.common.config import SimConfig
from repro.common.errors import ConfigError
from repro.common.rng import DeterministicRng
from repro.core.context import ContextSwitchEngine, SwitchCost
from repro.core.sbits import TaskCachingState
from repro.memsys.hierarchy import (
    AccessKind,
    AccessResult,
    BatchResult,
    KindsArg,
    MemoryHierarchy,
)
from repro.obs.spans import current_session


class TimeCacheSystem:
    """A complete simulated machine: hierarchy + TimeCache + clock."""

    def __init__(self, config: SimConfig) -> None:
        config.validate()
        self.config = config
        self.clock = GlobalClock()
        self.rng = DeterministicRng(config.seed)
        if config.hierarchy.engine == "fast":
            from repro.memsys.fastengine import FastHierarchy

            hierarchy_cls = FastHierarchy
        else:
            hierarchy_cls = MemoryHierarchy
        self.hierarchy = hierarchy_cls(
            config.hierarchy,
            timecache=config.timecache,
            clock=self.clock,
            rng=self.rng.fork("hierarchy"),
        )
        if config.partition.enabled:
            self.hierarchy.enable_partitioning(config.partition.domains)
        self.context_engine = ContextSwitchEngine(self.hierarchy, config.timecache)
        #: attached defense plugin (:mod:`repro.defenses`) and its
        #: per-system state.  ``config.defense == ""`` (every legacy
        #: construction site) leaves both None and every hot path on its
        #: pre-zoo branch; the "timecache"/"baseline" plugins are pure
        #: config transforms, so attaching them changes nothing either.
        self.defense = None
        self.defense_state = None
        #: address remap installed by a defense (copy-on-access): maps a
        #: hardware context to a constant offset folded into every
        #: address at this facade, before the hierarchy is entered.
        self._addr_offset: Optional[Callable[[int], int]] = None
        if config.defense:
            from repro.defenses import get_defense

            self.defense = get_defense(config.defense)
            self.defense.check_engine(config)
            listeners_before = len(self.hierarchy.pre_access_listeners) + len(
                self.hierarchy.post_access_listeners
            )
            self.defense_state = self.defense.attach(self)
            attached_listeners = (
                len(self.hierarchy.pre_access_listeners)
                + len(self.hierarchy.post_access_listeners)
                - listeners_before
            )
            if (
                attached_listeners
                and config.hierarchy.engine == "fast"
                and self.defense.fast_engine == "kernel"
            ):
                raise ConfigError(
                    f"defense {config.defense!r} attaches per-access hooks, "
                    f"which the fast engine's in-kernel batched path cannot "
                    f"honor; declare fast_engine='scalar' (announced scalar "
                    f"fallback) or fall back to engine='object'"
                )
        self._task_state: Dict[int, TaskCachingState] = {}
        #: partitioning baseline: security domain per task id (assigned
        #: round-robin on first sight, like CLOS assignment per process)
        self._task_domain: Dict[int, int] = {}
        #: observation hooks (repro.robustness): called after every
        #: completed context switch as ``(outgoing, incoming, ctx, now)``.
        #: The invariant checker scans here; the fault injector uses the
        #: same point as its deterministic trigger.
        self.switch_listeners: List[
            Callable[[Optional[int], int, int, int], None]
        ] = []
        #: observability hook (repro.obs): a Tracer attached via
        #: ``Tracer.attach`` sets itself here.  Unlike switch_listeners it
        #: receives the computed :class:`SwitchCost`, so the event stream
        #: carries DMA/comparator cycles and the rollover flash-clear.
        self.obs_tracer = None
        # Profiling sessions install process-globally (sweep jobs build
        # their systems many layers below the code that turned profiling
        # on); construction is the one moment both sides are in scope.
        # Without a session this is one None check — the hot paths keep
        # their ``kernel_profiler is None`` branch untouched.
        _session = current_session()
        if _session is not None:
            _session.attach_system(self)

    # ------------------------------------------------------------------
    # Memory operations (thin passthroughs with the shared clock)
    # ------------------------------------------------------------------
    def access(
        self, ctx: int, addr: int, kind: AccessKind, now: Optional[int] = None
    ) -> AccessResult:
        """One blocking memory access; ``now`` defaults to the global clock."""
        when = self.clock.now if now is None else now
        if self._addr_offset is not None:
            addr += self._addr_offset(ctx)
        return self.hierarchy.access(ctx, addr, kind, when)

    def access_batch(
        self,
        ctx: int,
        addrs,
        kinds: KindsArg = AccessKind.LOAD,
        now: Optional[int] = None,
        advance: int = 1,
        nows=None,
    ) -> BatchResult:
        """A run of same-context accesses in one call.

        Semantically identical to calling :meth:`access` in a loop with
        the blocking-CPU time rule (see
        :meth:`~repro.memsys.hierarchy.MemoryHierarchy.access_batch`);
        on the fast engine the run executes vectorized.  ``now`` defaults
        to the global clock.  Context switches and flushes are batch
        boundaries — issue them between calls.
        """
        when = self.clock.now if now is None else now
        if self._addr_offset is not None:
            offset = self._addr_offset(ctx)
            if offset:
                # One context per batch, so the remap is a constant shift
                # — the fast engine's batched kernels stay eligible.
                addrs = [int(addr) + offset for addr in addrs]
        return self.hierarchy.access_batch(
            ctx, addrs, kinds, now=when, advance=advance, nows=nows
        )

    def load(self, ctx: int, addr: int, now: Optional[int] = None) -> AccessResult:
        return self.access(ctx, addr, AccessKind.LOAD, now)

    def store(self, ctx: int, addr: int, now: Optional[int] = None) -> AccessResult:
        return self.access(ctx, addr, AccessKind.STORE, now)

    def ifetch(self, ctx: int, addr: int, now: Optional[int] = None) -> AccessResult:
        return self.access(ctx, addr, AccessKind.IFETCH, now)

    def flush(self, ctx: int, addr: int, now: Optional[int] = None) -> AccessResult:
        """clflush the line holding ``addr`` from every level.

        Under an address-remapping defense the flush targets the issuing
        tenant's own copy — no tenant can flush another's.
        """
        when = self.clock.now if now is None else now
        if self._addr_offset is not None:
            addr += self._addr_offset(ctx)
        return self.hierarchy.flush(ctx, addr, when)

    # ------------------------------------------------------------------
    # Task caching-context management (what the OS calls at CR3 changes)
    # ------------------------------------------------------------------
    def task_state(self, task_id: int) -> TaskCachingState:
        if task_id not in self._task_state:
            self._task_state[task_id] = TaskCachingState(task_id)
        return self._task_state[task_id]

    def context_switch(
        self,
        outgoing_task: Optional[int],
        incoming_task: int,
        ctx: int,
        now: Optional[int] = None,
    ) -> SwitchCost:
        """Switch hardware context ``ctx`` between two tasks.

        Saves the outgoing task's s-bits (if any task was running),
        restores the incoming task's, runs the timestamp comparator, and
        returns the bookkeeping cost the scheduler should charge.
        """
        when = self.clock.now if now is None else now
        self.clock.advance_to(when)
        if self.config.partition.enabled:
            cost = self._partition_switch(outgoing_task, incoming_task, ctx)
        else:
            if outgoing_task is not None:
                self.context_engine.save(
                    self.task_state(outgoing_task), ctx, when
                )
            cost = self.context_engine.restore(
                self.task_state(incoming_task), ctx, when
            )
        if self.defense is not None:
            extra = self.defense.on_context_switch(
                self, outgoing_task, incoming_task, ctx, when
            )
            if extra is not None:
                from repro.defenses import merge_switch_costs

                cost = merge_switch_costs(cost, extra)
        for listener in self.switch_listeners:
            listener(outgoing_task, incoming_task, ctx, when)
        if self.obs_tracer is not None:
            self.obs_tracer.on_context_switch(
                outgoing_task, incoming_task, ctx, when, cost
            )
        return cost

    def _partition_switch(
        self, outgoing_task: Optional[int], incoming_task: int, ctx: int
    ) -> SwitchCost:
        """The comparison baseline's switch path (Apparition-style):
        flush the outgoing domain's LLC ways and the core's private
        caches, then program the incoming task's domain into the context.
        The flush cost is charged like the s-bit DMA would be."""
        hierarchy = self.hierarchy
        flushed = 0
        if outgoing_task is not None:
            out_domain = self._domain_for(outgoing_task)
            in_domain = self._domain_for(incoming_task)
            if out_domain != in_domain:
                flushed += hierarchy.flush_domain_ways(out_domain)
                flushed += hierarchy.flush_private_caches(
                    hierarchy.core_of_ctx(ctx)
                )
        hierarchy.set_domain(ctx, self._domain_for(incoming_task))
        # ~1 cycle per flushed line of tag-walk cost, as a flat estimate.
        return SwitchCost(
            dma_cycles=flushed, comparator_cycles=0, rollover_reset=False
        )

    def _domain_for(self, task_id: int) -> int:
        if task_id not in self._task_domain:
            self._task_domain[task_id] = (
                len(self._task_domain) % self.config.partition.domains
            )
        return self._task_domain[task_id]

    # ------------------------------------------------------------------
    @property
    def timecache_enabled(self) -> bool:
        return self.config.timecache.enabled

    def stats_snapshot(self) -> Dict[str, int]:
        """All counters from every cache plus the context engine."""
        merged: Dict[str, int] = {}
        for cache in self.hierarchy.all_caches():
            merged.update(cache.stats.snapshot())
        merged.update(self.hierarchy.stats.snapshot())
        merged.update(self.hierarchy.dram.stats.snapshot())
        merged.update(self.context_engine.stats.snapshot())
        return merged
