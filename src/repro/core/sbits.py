"""The software side of the s-bit protocol: saved per-task caching contexts.

At preemption, trusted software (the OS in this reproduction, Section IV-C)
snapshots the departing task's s-bit column from every cache its hardware
context shares, together with the full preemption time ``Ts``.  The
snapshot is *positional* — one bit per (set, way) slot, not per tag —
because that is what the hardware array holds; staleness is repaired at
restore time by the timestamp comparator.

The snapshot is keyed by the *physical cache* it came from.  If a task is
later rescheduled onto a different core, its saved L1 bits describe a
different cache and must not be restored there; the context-switch engine
falls back to an all-clear column in that case (safe: extra first-access
misses, never extra hits).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.memsys.cache import Cache


@dataclass
class SavedCachingContext:
    """One task's saved s-bits across cache levels, plus its Ts."""

    #: full (untruncated) cycle time of the save — software keeps full
    #: precision so rollover between save and restore is detected exactly
    ts_full: int
    #: cache name -> (sets, ways) bool array of s-bits
    sbits_by_cache: Dict[str, np.ndarray] = field(default_factory=dict)

    def bits_for(self, cache: Cache) -> Optional[np.ndarray]:
        """The saved column for ``cache``, or None if never saved from it."""
        return self.sbits_by_cache.get(cache.name)

    def clone(self, ts_full: Optional[int] = None) -> "SavedCachingContext":
        """An independent deep copy, optionally restamped with a new Ts.

        The robustness layer uses this to model corrupted context-switch
        state (a stale snapshot replayed with a forged preemption time);
        cloning keeps the injected snapshot decoupled from the live one.
        """
        return SavedCachingContext(
            ts_full=self.ts_full if ts_full is None else ts_full,
            sbits_by_cache={
                name: array.copy() for name, array in self.sbits_by_cache.items()
            },
        )

    def total_bytes(self) -> int:
        """Kernel memory the snapshot occupies (1 bit per slot, rounded
        up per cache) — the Section VI-D space cost."""
        total = 0
        for array in self.sbits_by_cache.values():
            total += (array.size + 7) // 8
        return total


class TaskCachingState:
    """Mutable per-task TimeCache state owned by the OS layer.

    A freshly created task has no saved context: the paper specifies that
    a new process is scheduled with both Ts and s-bits reset, which the
    context-switch engine realizes by restoring all-zero columns.
    """

    def __init__(self, task_id: int) -> None:
        self.task_id = task_id
        self.saved: Optional[SavedCachingContext] = None
        #: number of save/restore round trips, for bookkeeping stats
        self.switch_count = 0

    def record_save(self, context: SavedCachingContext) -> None:
        self.saved = context
        self.switch_count += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ts = self.saved.ts_full if self.saved else None
        return f"TaskCachingState(task={self.task_id}, ts={ts})"
