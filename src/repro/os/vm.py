"""Virtual memory: physical pages, segments, and address spaces.

The reuse attacks the paper targets exist *because* distinct processes
map the same physical memory (shared libraries, deduplicated pages,
forked/COW pages).  This module provides that sharing:

* :class:`PhysicalMemory` — a bump allocator of physical pages plus
  content-hash based deduplication;
* :class:`Segment` — a named run of physical pages (e.g. the text of
  ``libgcrypt``), mappable into many address spaces;
* :class:`AddressSpace` — a page-granular virtual→physical mapping with
  copy-on-write support.

Caches are physically indexed/tagged in :mod:`repro.memsys`, so two
processes touching the same segment touch the same cache lines — the
precondition of every attack in the paper.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.common.errors import SimulationError


class Segment:
    """A named, page-aligned run of physical memory."""

    def __init__(
        self, name: str, phys_base: int, size: int, page_bytes: int
    ) -> None:
        self.name = name
        self.phys_base = phys_base
        self.size = size
        self.page_bytes = page_bytes

    @property
    def num_pages(self) -> int:
        return (self.size + self.page_bytes - 1) // self.page_bytes

    def phys_page(self, index: int) -> int:
        """Physical page number of the segment's ``index``-th page."""
        if not 0 <= index < self.num_pages:
            raise SimulationError(
                f"segment {self.name}: page index {index} out of range"
            )
        return self.phys_base // self.page_bytes + index

    def __repr__(self) -> str:  # pragma: no cover
        return f"Segment({self.name!r}, base={self.phys_base:#x}, size={self.size})"


class PhysicalMemory:
    """Bump allocator of physical pages with content-based deduplication.

    ``allocate_segment`` may be given a ``content_key``; two segments
    allocated with the same key share the same physical pages — the model
    of kernel samepage merging / container image dedup that the paper's
    introduction motivates (and that TimeCache makes safe to deploy).
    """

    def __init__(self, page_bytes: int = 4096) -> None:
        if page_bytes <= 0 or page_bytes & (page_bytes - 1):
            raise SimulationError("page size must be a positive power of two")
        self.page_bytes = page_bytes
        self._next_page = 1  # leave physical page 0 unused (null guard)
        self._segments: Dict[str, Segment] = {}
        self._by_content: Dict[str, Segment] = {}
        self.dedup_hits = 0

    def allocate_segment(
        self, name: str, size: int, content_key: Optional[str] = None
    ) -> Segment:
        if size <= 0:
            raise SimulationError(f"segment {name}: size must be positive")
        if name in self._segments:
            raise SimulationError(f"segment {name} already allocated")
        if content_key is not None and content_key in self._by_content:
            existing = self._by_content[content_key]
            segment = Segment(
                name, existing.phys_base, size, self.page_bytes
            )
            if segment.num_pages > existing.num_pages:
                raise SimulationError(
                    f"dedup target {name} larger than existing content"
                )
            self.dedup_hits += 1
        else:
            pages = (size + self.page_bytes - 1) // self.page_bytes
            base = self._next_page * self.page_bytes
            self._next_page += pages
            segment = Segment(name, base, size, self.page_bytes)
            if content_key is not None:
                self._by_content[content_key] = segment
        self._segments[name] = segment
        return segment

    def allocate_private_page(self) -> int:
        """One fresh physical page (COW break target); returns page number."""
        page = self._next_page
        self._next_page += 1
        return page

    def segment(self, name: str) -> Segment:
        try:
            return self._segments[name]
        except KeyError:
            raise SimulationError(f"unknown segment {name!r}") from None

    @property
    def allocated_bytes(self) -> int:
        return (self._next_page - 1) * self.page_bytes


class AddressSpace:
    """Page-granular virtual→physical mapping for one process."""

    def __init__(self, name: str, phys: PhysicalMemory) -> None:
        self.name = name
        self.phys = phys
        self.page_bytes = phys.page_bytes
        self._page_shift = phys.page_bytes.bit_length() - 1
        self._vpage_to_ppage: Dict[int, int] = {}
        self._cow_pages: Dict[int, bool] = {}  # vpage -> is COW-protected
        self._segments: Dict[str, int] = {}  # segment name -> vaddr base

    # ------------------------------------------------------------------
    def map_segment(self, segment: Segment, vaddr: int) -> None:
        """Map a segment at ``vaddr`` (page aligned)."""
        if vaddr % self.page_bytes != 0:
            raise SimulationError(
                f"{self.name}: segment base {vaddr:#x} not page aligned"
            )
        base_vpage = vaddr >> self._page_shift
        for i in range(segment.num_pages):
            vpage = base_vpage + i
            if vpage in self._vpage_to_ppage:
                raise SimulationError(
                    f"{self.name}: vpage {vpage:#x} already mapped"
                )
            self._vpage_to_ppage[vpage] = segment.phys_page(i)
        self._segments[segment.name] = vaddr

    def map_segment_cow(self, segment: Segment, vaddr: int) -> None:
        """Map a segment copy-on-write (fork-style sharing)."""
        self.map_segment(segment, vaddr)
        base_vpage = vaddr >> self._page_shift
        for i in range(segment.num_pages):
            self._cow_pages[base_vpage + i] = True

    def segment_base(self, name: str) -> int:
        try:
            return self._segments[name]
        except KeyError:
            raise SimulationError(
                f"{self.name}: segment {name!r} not mapped"
            ) from None

    # ------------------------------------------------------------------
    def translate(self, vaddr: int) -> int:
        """Virtual byte address → physical byte address."""
        vpage = vaddr >> self._page_shift
        try:
            ppage = self._vpage_to_ppage[vpage]
        except KeyError:
            raise SimulationError(
                f"{self.name}: page fault at {vaddr:#x} (unmapped)"
            ) from None
        return (ppage << self._page_shift) | (vaddr & (self.page_bytes - 1))

    def write_fault(self, vaddr: int) -> bool:
        """Handle a store to a COW page: break sharing with a fresh page.

        Returns True if a COW break happened (the caller can charge a
        fault cost).  After the break the page is private, so subsequent
        stores hit distinct physical lines from the original sharer's.
        """
        vpage = vaddr >> self._page_shift
        if not self._cow_pages.get(vpage, False):
            return False
        self._vpage_to_ppage[vpage] = self.phys.allocate_private_page()
        self._cow_pages[vpage] = False
        return True

    def is_mapped(self, vaddr: int) -> bool:
        return (vaddr >> self._page_shift) in self._vpage_to_ppage

    def shares_page_with(self, other: "AddressSpace", vaddr: int) -> bool:
        """True when both spaces map ``vaddr`` to the same physical page."""
        vpage = vaddr >> self._page_shift
        mine = self._vpage_to_ppage.get(vpage)
        theirs = other._vpage_to_ppage.get(vpage)
        return mine is not None and mine == theirs
