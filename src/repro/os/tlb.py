"""A per-hardware-context TLB.

The VM substrate translates virtual to physical addresses on every
memory operation; a real core caches those translations in a TLB and
pays a page-table walk on a miss.  The TLB is flushed on a CR3 write —
i.e. whenever the kernel switches the context to a different process —
which adds a (small) per-switch warm-up cost on top of TimeCache's own
bookkeeping.

Off by default (``SimConfig.tlb_entries == 0``): the paper's evaluation
does not model TLBs, and the calibrated experiment numbers are produced
without one.  Enabling it exercises the same code paths with translation
costs included (see ``tests/os/test_tlb.py``).

Security note: the TLB is flushed across protection-domain switches, so
it does not itself carry a cross-process reuse channel in this model;
TLB side channels (e.g. TLBleed) are outside the paper's scope.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Tuple

from repro.common.stats import StatGroup


class Tlb:
    """Fully-associative, LRU translation cache for one hardware context."""

    def __init__(
        self,
        entries: int,
        walk_cycles: int = 30,
        page_bytes: int = 4096,
    ) -> None:
        if entries <= 0:
            raise ValueError(f"TLB needs >= 1 entry, got {entries}")
        if walk_cycles < 0:
            raise ValueError("walk cost cannot be negative")
        self.entries = entries
        self.walk_cycles = walk_cycles
        self._page_shift = page_bytes.bit_length() - 1
        self._page_mask = page_bytes - 1
        self._map: "OrderedDict[int, int]" = OrderedDict()
        self.stats = StatGroup("tlb")

    def translate(
        self, vaddr: int, walker: Callable[[int], int]
    ) -> Tuple[int, int]:
        """Translate ``vaddr``; returns (paddr, extra cycles).

        ``walker`` is the page-table walk — the address space's
        ``translate`` — consulted only on a miss.
        """
        vpage = vaddr >> self._page_shift
        offset = vaddr & self._page_mask
        ppage = self._map.get(vpage)
        if ppage is not None:
            self._map.move_to_end(vpage)
            self.stats.counter("hits").add()
            return (ppage << self._page_shift) | offset, 0
        self.stats.counter("misses").add()
        paddr = walker(vaddr)
        ppage = paddr >> self._page_shift
        self._map[vpage] = ppage
        if len(self._map) > self.entries:
            self._map.popitem(last=False)
        return paddr, self.walk_cycles

    def flush(self) -> None:
        """CR3 write: drop every cached translation."""
        self._map.clear()
        self.stats.counter("flushes").add()

    @property
    def occupancy(self) -> int:
        return len(self._map)


def tlb_wrapped_translator(
    tlb: Tlb, walker: Callable[[int], int], charge: Callable[[int], None]
) -> Callable[[int], int]:
    """Adapt a TLB to the CPU's plain ``vaddr -> paddr`` interface.

    ``charge`` receives the walk cycles to add to the core's local time
    (the kernel passes a closure over the hardware context).
    """

    def translate(vaddr: int) -> int:
        paddr, extra = tlb.translate(vaddr, walker)
        if extra:
            charge(extra)
        return paddr

    return translate
