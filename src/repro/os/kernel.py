"""The simulation driver: dispatch, quanta, context switches, stepping.

:class:`Kernel` owns a :class:`~repro.core.timecache.TimeCacheSystem`, one
:class:`~repro.cpu.cpu.HardwareContext` per logical CPU, and a round-robin
scheduler.  It advances the machine by always stepping the busy hardware
context with the *lowest* core-local time (exact event ordering across
cores, the way a conservative discrete-event simulator would), enforcing
the quantum, and performing context switches.

A context switch is where the paper's software support runs: the kernel
calls :meth:`TimeCacheSystem.context_switch`, which saves the outgoing
task's s-bits, restores the incoming task's, and runs the timestamp
comparator; the returned bookkeeping cost plus the fixed switch cost is
charged to the incoming task's core-local time — mirroring how the paper
adds the measured 1.08 us DMA latency to each switch in gem5.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.common.config import SimConfig
from repro.common.errors import SchedulerError, SimulationTimeout
from repro.core.timecache import TimeCacheSystem
from repro.cpu.cpu import HardwareContext, StepEvent
from repro.os.process import Process, Task, TaskStatus
from repro.os.scheduler import RoundRobinScheduler
from repro.os.tlb import Tlb, tlb_wrapped_translator
from repro.os.vm import PhysicalMemory


@dataclass
class RunSummary:
    """What a :meth:`Kernel.run` call produced."""

    steps: int
    context_switches: int
    per_task_instructions: Dict[str, int] = field(default_factory=dict)
    per_task_cycles: Dict[str, int] = field(default_factory=dict)
    per_ctx_local_time: Dict[int, int] = field(default_factory=dict)

    @property
    def total_instructions(self) -> int:
        return sum(self.per_task_instructions.values())

    @property
    def makespan(self) -> int:
        """Largest core-local completion time across contexts."""
        return max(self.per_ctx_local_time.values(), default=0)


class Kernel:
    """Simulated OS kernel driving the whole machine."""

    def __init__(self, config: SimConfig) -> None:
        config.validate()
        self.config = config
        self.system = TimeCacheSystem(config)
        self.phys = PhysicalMemory()
        n_ctx = config.hierarchy.num_hw_contexts
        self.contexts: List[HardwareContext] = [
            HardwareContext(i, self.system) for i in range(n_ctx)
        ]
        self.scheduler = RoundRobinScheduler(n_ctx, config.quantum_cycles)
        self._current: Dict[int, Optional[Task]] = {i: None for i in range(n_ctx)}
        #: task whose s-bits are live on each hw context (CR3 analogue)
        self._resident: Dict[int, Optional[int]] = {i: None for i in range(n_ctx)}
        self._slice_start: Dict[int, int] = {i: 0 for i in range(n_ctx)}
        self._tlbs: Dict[int, Optional[Tlb]] = {
            i: (
                Tlb(config.tlb_entries, config.tlb_walk_cycles)
                if config.tlb_entries
                else None
            )
            for i in range(n_ctx)
        }
        self._dispatch_instr: Dict[int, int] = {i: 0 for i in range(n_ctx)}
        self._dispatch_time: Dict[int, int] = {i: 0 for i in range(n_ctx)}
        self.context_switches = 0
        self.tasks: List[Task] = []

    # ------------------------------------------------------------------
    # Setup API
    # ------------------------------------------------------------------
    def create_process(self, name: str) -> Process:
        from repro.os.vm import AddressSpace

        return Process(name, AddressSpace(name, self.phys))

    def fork_process(self, parent: Process, name: Optional[str] = None) -> Process:
        """Unix-style fork: the child shares every parent page copy-on-
        write.  Until a write breaks sharing, parent and child touch the
        same physical lines — exactly the sharing the paper's intro says
        TimeCache makes safe to exploit for memory savings.
        """
        from repro.os.vm import AddressSpace

        child_name = name if name is not None else f"{parent.name}.child"
        child = Process(child_name, AddressSpace(child_name, self.phys))
        parent_space = parent.address_space
        child_space = child.address_space
        # Mirror the parent's mappings page by page, COW-protected on
        # both sides for data; the model marks only the child COW and
        # leaves the parent in place (single-writer approximation).
        for vpage, ppage in parent_space._vpage_to_ppage.items():
            child_space._vpage_to_ppage[vpage] = ppage
            child_space._cow_pages[vpage] = True
        child_space._segments.update(parent_space._segments)
        return child

    def submit(self, task: Task) -> None:
        """Admit a task to its (affinity) run queue."""
        ctx = self.scheduler.admit(task)
        task.affinity = ctx  # pin where it landed; no migration by default
        self.tasks.append(task)

    # ------------------------------------------------------------------
    # Dispatch / switch
    # ------------------------------------------------------------------
    def _dispatch(self, ctx_id: int) -> Optional[Task]:
        hw = self.contexts[ctx_id]
        task = self.scheduler.next_task(ctx_id, hw.local_time)
        if task is None:
            return None
        if self._resident[ctx_id] != task.tid:
            cost = self.system.context_switch(
                self._resident[ctx_id], task.tid, ctx_id, now=hw.local_time
            )
            hw.local_time += self.config.context_switch_cycles + cost.total
            self._resident[ctx_id] = task.tid
            self.context_switches += 1
            tlb = self._tlbs[ctx_id]
            if tlb is not None:
                tlb.flush()  # CR3 write
        translator = task.translator()
        tlb = self._tlbs[ctx_id]
        if tlb is not None:
            def charge(cycles: int, hw=hw) -> None:
                hw.local_time += cycles

            translator = tlb_wrapped_translator(tlb, translator, charge)
        hw.install(task.generator(), translator)
        self._current[ctx_id] = task
        self._slice_start[ctx_id] = hw.local_time
        self._dispatch_instr[ctx_id] = hw.instructions
        self._dispatch_time[ctx_id] = hw.local_time
        return task

    def _undispatch(self, ctx_id: int) -> Task:
        hw = self.contexts[ctx_id]
        task = self._current[ctx_id]
        if task is None:
            raise SchedulerError(f"ctx{ctx_id}: nothing to undispatch")
        task.instructions += hw.instructions - self._dispatch_instr[ctx_id]
        task.cycles += hw.local_time - self._dispatch_time[ctx_id]
        hw.uninstall()
        self._current[ctx_id] = None
        return task

    # ------------------------------------------------------------------
    # The stepping loop
    # ------------------------------------------------------------------
    def _ctx_has_work(self, ctx_id: int) -> bool:
        return self._current[ctx_id] is not None or self.scheduler.pending(ctx_id) > 0

    def _pick_context(self) -> Optional[int]:
        """The busy context with the lowest core-local time."""
        best: Optional[int] = None
        best_time = None
        for ctx_id, hw in enumerate(self.contexts):
            if not self._ctx_has_work(ctx_id):
                continue
            if best_time is None or hw.local_time < best_time:
                best = ctx_id
                best_time = hw.local_time
        return best

    def instructions_executed(self) -> int:
        """Instructions retired so far, including the running slices."""
        total = sum(t.instructions for t in self.tasks)
        for ctx_id, task in self._current.items():
            if task is not None:
                hw = self.contexts[ctx_id]
                total += hw.instructions - self._dispatch_instr[ctx_id]
        return total

    def run(
        self,
        max_steps: int = 50_000_000,
        stop_when: Optional[Callable[["Kernel"], bool]] = None,
        stop_check_interval: int = 256,
        wall_clock_budget_s: Optional[float] = None,
        instruction_budget: Optional[int] = None,
    ) -> RunSummary:
        """Run until every task exits, ``stop_when`` fires, or ``max_steps``.

        ``stop_when`` is evaluated every ``stop_check_interval`` steps so
        open-ended programs (a looping attacker) can be stopped once the
        interesting task (the victim) finishes.

        ``wall_clock_budget_s`` / ``instruction_budget`` arm the watchdog:
        unlike ``max_steps`` (which truncates silently), exceeding either
        budget raises :class:`SimulationTimeout` so a sweep runner can
        record the failure and move on (checked every
        ``stop_check_interval`` steps, like ``stop_when``).
        """
        deadline = (
            time.monotonic() + wall_clock_budget_s
            if wall_clock_budget_s is not None
            else None
        )
        if deadline is None:
            return self._run_loop(
                max_steps, stop_when, stop_check_interval,
                deadline, wall_clock_budget_s, instruction_budget,
            )
        # Arm the cooperative seam: a single kernel step may execute a
        # whole batched AccessRun, so the hierarchy re-checks the same
        # deadline between its internal windows.
        hierarchy = self.system.hierarchy
        hierarchy.batch_deadline = deadline
        try:
            return self._run_loop(
                max_steps, stop_when, stop_check_interval,
                deadline, wall_clock_budget_s, instruction_budget,
            )
        finally:
            hierarchy.batch_deadline = None

    def _run_loop(
        self,
        max_steps: int,
        stop_when: Optional[Callable[["Kernel"], bool]],
        stop_check_interval: int,
        deadline: Optional[float],
        wall_clock_budget_s: Optional[float],
        instruction_budget: Optional[int],
    ) -> RunSummary:
        steps = 0
        while steps < max_steps:
            if steps % stop_check_interval == 0:
                if stop_when is not None and stop_when(self):
                    break
                if deadline is not None and time.monotonic() > deadline:
                    raise SimulationTimeout(
                        f"wall-clock budget {wall_clock_budget_s}s exceeded "
                        f"after {steps} steps"
                    )
                if (
                    instruction_budget is not None
                    and self.instructions_executed() > instruction_budget
                ):
                    raise SimulationTimeout(
                        f"instruction budget {instruction_budget} exceeded "
                        f"after {steps} steps"
                    )
            ctx_id = self._pick_context()
            if ctx_id is None:
                break  # machine fully idle: all tasks exited
            hw = self.contexts[ctx_id]
            task = self._current[ctx_id]
            if task is None:
                task = self._dispatch(ctx_id)
                if task is None:
                    # Only sleepers remain on this queue: skid the core's
                    # clock forward to the earliest wake time.
                    wake = self.scheduler.earliest_wake(ctx_id)
                    if wake is None:
                        raise SchedulerError(
                            f"ctx{ctx_id} claims work but has none"
                        )
                    hw.local_time = max(hw.local_time, wake)
                    continue
            outcome = hw.step()
            steps += 1
            event = outcome.event
            if event is StepEvent.RUNNING:
                if (
                    hw.local_time - self._slice_start[ctx_id]
                    >= self.scheduler.quantum_cycles
                    and self.scheduler.pending(ctx_id) > 0
                ):
                    preempted = self._undispatch(ctx_id)
                    self.scheduler.requeue(preempted, ctx_id)
                continue
            if event is StepEvent.YIELDED:
                yielded = self._undispatch(ctx_id)
                self.scheduler.requeue(yielded, ctx_id)
                continue
            if event is StepEvent.SLEEPING:
                sleeper = self._undispatch(ctx_id)
                assert outcome.wake_at is not None
                self.scheduler.put_to_sleep(sleeper, ctx_id, outcome.wake_at)
                continue
            if event is StepEvent.EXITED:
                finished = self._undispatch(ctx_id)
                finished.exit()
                continue
            raise SchedulerError(f"unhandled step event {event}")
        return self._summary(steps)

    def _summary(self, steps: int) -> RunSummary:
        summary = RunSummary(steps=steps, context_switches=self.context_switches)
        for task in self.tasks:
            summary.per_task_instructions[task.name] = task.instructions
            summary.per_task_cycles[task.name] = task.cycles
        for ctx_id, hw in enumerate(self.contexts):
            summary.per_ctx_local_time[ctx_id] = hw.local_time
        return summary

    # ------------------------------------------------------------------
    def task_done(self, task: Task) -> bool:
        return task.status is TaskStatus.EXITED

    def all_done(self) -> bool:
        return all(t.status is TaskStatus.EXITED for t in self.tasks)
