"""Simulated OS layer: processes, virtual memory, scheduling.

The paper's defense is hardware/software co-designed: trusted software
(the OS) saves and restores per-process s-bits at every context switch.
This package provides exactly the substrate the paper assumes:

* :mod:`repro.os.vm` — physical memory, page-granular address spaces,
  shared segments (shared libraries, kernel text, memory-mapped files)
  and deduplication/COW-style page sharing;
* :mod:`repro.os.process` — processes and tasks (threads) carrying their
  address space and TimeCache caching state;
* :mod:`repro.os.scheduler` — per-hardware-context round-robin run queues
  with a cycle quantum;
* :mod:`repro.os.kernel` — the simulation driver: steps the hardware
  context with the lowest local time (interleaving cores), enforces
  quanta, performs context switches (triggering the s-bit protocol), and
  collects per-task statistics.
"""

from repro.os.kernel import Kernel, RunSummary
from repro.os.process import Process, Task, TaskStatus
from repro.os.scheduler import RoundRobinScheduler
from repro.os.vm import AddressSpace, PhysicalMemory, Segment

__all__ = [
    "AddressSpace",
    "Kernel",
    "PhysicalMemory",
    "Process",
    "RoundRobinScheduler",
    "RunSummary",
    "Segment",
    "Task",
    "TaskStatus",
]
