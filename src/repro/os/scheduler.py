"""Per-hardware-context round-robin run queues.

The paper's single-core experiments time-slice two processes on one core;
the scheduler reproduces that with a cycle quantum per task.  Each
hardware context has its own queue (tasks are pinned by affinity, like
``taskset`` in the paper's methodology); the kernel asks the scheduler
who runs next whenever a quantum expires, a task yields, sleeps, or
exits.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from repro.common.errors import SchedulerError
from repro.os.process import Task, TaskStatus


class RoundRobinScheduler:
    """FIFO run queues, one per hardware context, with sleep handling."""

    def __init__(self, num_contexts: int, quantum_cycles: int) -> None:
        if num_contexts <= 0:
            raise SchedulerError("need at least one hardware context")
        if quantum_cycles <= 0:
            raise SchedulerError("quantum must be positive")
        self.num_contexts = num_contexts
        self.quantum_cycles = quantum_cycles
        self._queues: Dict[int, Deque[Task]] = {
            ctx: deque() for ctx in range(num_contexts)
        }
        self._sleeping: Dict[int, List[Task]] = {
            ctx: [] for ctx in range(num_contexts)
        }
        #: observability hook (repro.obs): called after each queue
        #: transition as ``(event, tid, ctx, local_time)`` with event one
        #: of "admit", "dispatch", "requeue", "sleep", "wake"; the time is
        #: -1 where the scheduler has no clock (admit/requeue).
        self.event_hook: Optional[Callable[[str, int, int, int], None]] = None

    # ------------------------------------------------------------------
    def admit(self, task: Task, ctx: Optional[int] = None) -> int:
        """Enqueue a task; returns the context it was placed on."""
        task.assert_runnable()
        target = task.affinity if task.affinity is not None else ctx
        if target is None:
            # place on the least-loaded queue
            target = min(self._queues, key=lambda c: len(self._queues[c]))
        if not 0 <= target < self.num_contexts:
            raise SchedulerError(f"context {target} out of range")
        task.status = TaskStatus.READY
        self._queues[target].append(task)
        if self.event_hook is not None:
            self.event_hook("admit", task.tid, target, -1)
        return target

    def next_task(self, ctx: int, local_time: int) -> Optional[Task]:
        """Pop the next runnable task for ``ctx`` (waking sleepers first)."""
        self._wake_sleepers(ctx, local_time)
        queue = self._queues[ctx]
        while queue:
            task = queue.popleft()
            if task.status is TaskStatus.EXITED:
                continue
            task.status = TaskStatus.RUNNING
            if self.event_hook is not None:
                self.event_hook("dispatch", task.tid, ctx, local_time)
            return task
        return None

    def requeue(self, task: Task, ctx: int) -> None:
        """Put a preempted/yielding task at the back of its queue."""
        if task.status is TaskStatus.EXITED:
            return
        task.status = TaskStatus.READY
        self._queues[ctx].append(task)
        if self.event_hook is not None:
            self.event_hook("requeue", task.tid, ctx, -1)

    def put_to_sleep(self, task: Task, ctx: int, wake_at: int) -> None:
        task.status = TaskStatus.SLEEPING
        task.wake_at = wake_at
        self._sleeping[ctx].append(task)
        if self.event_hook is not None:
            self.event_hook("sleep", task.tid, ctx, wake_at)

    def _wake_sleepers(self, ctx: int, local_time: int) -> None:
        still_asleep: List[Task] = []
        for task in self._sleeping[ctx]:
            if task.wake_at is not None and task.wake_at <= local_time:
                task.status = TaskStatus.READY
                task.wake_at = None
                self._queues[ctx].append(task)
                if self.event_hook is not None:
                    self.event_hook("wake", task.tid, ctx, local_time)
            else:
                still_asleep.append(task)
        self._sleeping[ctx] = still_asleep

    # ------------------------------------------------------------------
    def pending(self, ctx: int) -> int:
        """Runnable + sleeping tasks still owned by the context."""
        return len(self._queues[ctx]) + len(self._sleeping[ctx])

    def earliest_wake(self, ctx: int) -> Optional[int]:
        sleepers = self._sleeping[ctx]
        if not sleepers:
            return None
        return min(t.wake_at for t in sleepers if t.wake_at is not None)

    def has_work(self) -> bool:
        return any(
            self._queues[c] or self._sleeping[c] for c in range(self.num_contexts)
        )
