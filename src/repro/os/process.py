"""Processes and tasks (threads).

A :class:`Process` owns an address space; its :class:`Task` objects are
the schedulable entities.  Two tasks of one process share the address
space (the PARSEC configuration: 2 threads on 2 cores) while two separate
processes can still share *physical* pages through shared segments (the
SPEC configuration: 2 processes time-sliced on 1 core sharing libc and
kernel text).

Each task carries its own :class:`~repro.core.sbits.TaskCachingState`:
s-bits are per *hardware context*, so each thread of a process has its own
saved caching context — exactly why the paper's PARSEC runs see
first-access misses at the shared LLC but not at the private L1s.
"""

from __future__ import annotations

import enum
from typing import Callable, List, Optional

from repro.common.errors import SchedulerError
from repro.cpu.program import Program, ProgramGen
from repro.os.vm import AddressSpace


class TaskStatus(enum.Enum):
    READY = "ready"
    RUNNING = "running"
    SLEEPING = "sleeping"
    EXITED = "exited"


class Process:
    """A protection domain: one address space, one or more tasks."""

    _next_pid = 1

    def __init__(self, name: str, address_space: AddressSpace) -> None:
        self.pid = Process._next_pid
        Process._next_pid += 1
        self.name = name
        self.address_space = address_space
        self.tasks: List["Task"] = []

    def spawn(
        self, program: Program, affinity: Optional[int] = None
    ) -> "Task":
        """Create a task running ``program``, optionally pinned to a
        hardware context."""
        task = Task(self, program, affinity)
        self.tasks.append(task)
        return task

    def __repr__(self) -> str:  # pragma: no cover
        return f"Process(pid={self.pid}, name={self.name!r})"


class Task:
    """A schedulable thread of a process."""

    _next_tid = 1

    def __init__(
        self, process: Process, program: Program, affinity: Optional[int]
    ) -> None:
        self.tid = Task._next_tid
        Task._next_tid += 1
        self.process = process
        self.program = program
        #: hardware context the task is pinned to (None = any)
        self.affinity = affinity
        self.status = TaskStatus.READY
        #: core-local wake time when SLEEPING
        self.wake_at: Optional[int] = None
        self._gen: Optional[ProgramGen] = None
        #: instructions retired by this task (accumulated by the kernel)
        self.instructions = 0
        #: cycles this task has been charged (run time + switch costs)
        self.cycles = 0

    @property
    def name(self) -> str:
        return f"{self.process.name}/{self.program.name}#{self.tid}"

    def generator(self) -> ProgramGen:
        """The task's live generator, created on first schedule."""
        if self._gen is None:
            self._gen = self.program.start()
        return self._gen

    def translate(self, vaddr: int) -> int:
        return self.process.address_space.translate(vaddr)

    def translator(self) -> Callable[[int], int]:
        return self.process.address_space.translate

    def exit(self) -> None:
        self.status = TaskStatus.EXITED
        self._gen = None

    def assert_runnable(self) -> None:
        if self.status is TaskStatus.EXITED:
            raise SchedulerError(f"task {self.name} has exited")

    def __repr__(self) -> str:  # pragma: no cover
        return f"Task({self.name}, {self.status.value})"
