"""Turn a :class:`BenchmarkProfile` into a runnable process.

:class:`WorkloadBuilder` lays out a process's address space (private
data, private or shared benchmark text, shared libc, shared kernel text)
on a :class:`~repro.os.kernel.Kernel` and produces a lazy generator
program that emits the profile's instruction/memory mix until a target
instruction count is reached.

Everything is deterministic given the seed, so a baseline run and a
TimeCache run of the same experiment execute the *identical* operation
stream — the normalized-execution-time comparisons of Figures 7/9/10
compare cycles over fixed work.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.common.rng import DeterministicRng
from repro.cpu.isa import Compute, Exit, Ifetch, Load, Store
from repro.cpu.program import Program, ProgramGen
from repro.os.kernel import Kernel
from repro.workloads.profiles import BenchmarkProfile

#: virtual layout, common to every synthetic process
CODE_BASE = 0x0400000
LIB_BASE = 0x2000000
KERNEL_BASE = 0x3000000
DATA_BASE = 0x8000000

#: shared kernel text size, in lines (mapped into every process)
KERNEL_LINES = 96


class WorkloadBuilder:
    """Builds synthetic benchmark processes on a kernel."""

    def __init__(self, kernel: Kernel, seed: int = 0xBEEF) -> None:
        self.kernel = kernel
        self.rng = DeterministicRng(seed)
        self.line_bytes = kernel.config.hierarchy.line_bytes
        # One shared kernel text for the whole machine, one shared libc.
        self._kernel_seg = kernel.phys.allocate_segment(
            "kernel.text", KERNEL_LINES * self.line_bytes, content_key="kernel"
        )
        self._lib_segments: dict = {}

    # ------------------------------------------------------------------
    def _lib_segment(self, lines: int):
        """The shared libc segment, grown to the largest request seen.

        All processes map the same physical libc; a benchmark's
        ``shared_lib_lines`` selects how much of it the benchmark uses.
        """
        if "libc" not in self._lib_segments:
            self._lib_segments["libc"] = self.kernel.phys.allocate_segment(
                "libc.text", 512 * self.line_bytes, content_key="libc-2.31"
            )
        return self._lib_segments["libc"]

    def build_process(
        self,
        profile: BenchmarkProfile,
        instance: int,
        instructions: int,
        affinity: int = 0,
    ):
        """Create one process + task running ``profile``.

        Benchmark text is allocated with a content key, so two instances
        of the same benchmark automatically share their binary's physical
        pages (the ``2Xfoo`` configuration: same content, deduplicated by
        the loader), while different benchmarks get distinct pages.
        """
        profile.validate()
        name = f"{profile.name}.{instance}"
        process = self.kernel.create_process(name)
        aspace = process.address_space
        line_bytes = self.line_bytes

        code_seg = self.kernel.phys.allocate_segment(
            f"{name}.text",
            profile.code_lines * line_bytes,
            content_key=f"bin-{profile.name}",
        )
        aspace.map_segment(code_seg, CODE_BASE)
        aspace.map_segment(self._lib_segment(profile.shared_lib_lines), LIB_BASE)
        aspace.map_segment(self._kernel_seg, KERNEL_BASE)
        data_seg = self.kernel.phys.allocate_segment(
            f"{name}.data", profile.data_lines * line_bytes
        )
        aspace.map_segment(data_seg, DATA_BASE)

        program = self._make_program(profile, instructions, seed_tag=name)
        task = process.spawn(program, affinity=affinity)
        return process, task

    # ------------------------------------------------------------------
    def _make_program(
        self, profile: BenchmarkProfile, instructions: int, seed_tag: str
    ) -> Program:
        """The lazy op stream implementing the profile's behavior."""
        rng = self.rng.fork(seed_tag)
        line_bytes = self.line_bytes

        def factory() -> ProgramGen:
            yield from _profile_ops(profile, instructions, rng, line_bytes)
            yield Exit()

        return Program(profile.name, factory)


def _profile_ops(
    profile: BenchmarkProfile,
    instructions: int,
    rng: DeterministicRng,
    line_bytes: int,
) -> ProgramGen:
    """The profile's operation mix (without the trailing ``Exit``).

    Shared by the process programs and the reference-stream producers so
    both draw the identical deterministic stream for a given rng state.
    """
    hot_lines = max(1, int(profile.data_lines * profile.hot_set_fraction))
    ws_lines = profile.data_lines
    lib_lines = profile.shared_lib_lines
    code_lines = profile.code_lines
    retired = 0
    stream_pos = rng.randint(0, ws_lines - 1)
    stream_in_line = 0
    code_pos = 0
    since_ifetch = 0
    since_syscall = 0
    while retired < instructions:
        # Instruction fetch stream: walk the code footprint, with
        # a slice of fetches landing in the shared library.
        since_ifetch += 1
        if since_ifetch >= profile.ifetch_every:
            since_ifetch = 0
            if rng.random() < 0.15 and lib_lines > 0:
                addr = LIB_BASE + rng.randint(0, lib_lines - 1) * line_bytes
            else:
                code_pos = (code_pos + 1) % code_lines
                if rng.random() < 0.1:  # branch: jump somewhere
                    code_pos = rng.randint(0, code_lines - 1)
                addr = CODE_BASE + code_pos * line_bytes
            yield Ifetch(addr)
            retired += 1
            continue

        # Occasional syscall: a burst through shared kernel text.
        since_syscall += 1
        if since_syscall >= profile.syscall_every:
            since_syscall = 0
            start = rng.randint(0, KERNEL_LINES - 5)
            for k in range(4):
                yield Ifetch(KERNEL_BASE + (start + k) * line_bytes)
            retired += 4
            continue

        if rng.random() < profile.mem_ratio:
            # Data access: streaming, hot, or cold.
            r = rng.random()
            if r < profile.stream_fraction:
                stream_in_line += 1
                if stream_in_line >= profile.stream_accesses_per_line:
                    stream_in_line = 0
                    stream_pos = (stream_pos + 1) % ws_lines
                index = stream_pos
            elif rng.random() < profile.hot_fraction:
                index = rng.randint(0, hot_lines - 1)
            else:
                index = rng.randint(0, ws_lines - 1)
            addr = DATA_BASE + index * line_bytes
            if rng.random() < profile.write_ratio:
                yield Store(addr)
            else:
                yield Load(addr)
            retired += 1
        else:
            # A run of ALU work between memory operations.
            burst = rng.randint(1, 4)
            yield Compute(burst)
            retired += burst


def profile_reference_stream(
    profile: BenchmarkProfile,
    accesses: int,
    seed: int = 0xBEEF,
    line_bytes: int = 64,
) -> Tuple[List[int], str]:
    """A profile's bare memory-reference stream as ``(vaddrs, kinds)``.

    Strips the compute bursts out of the operation mix, leaving the
    load/store/ifetch sequence with the profile's address distributions
    intact — the shape the batched access drivers consume directly
    (``kinds`` is a code string, one ``L``/``S``/``I`` per address).
    No kernel is needed; virtual addresses use the standard layout
    bases, so the stream can be replayed raw against a hierarchy or
    wrapped into :class:`~repro.cpu.isa.AccessRun` chunks.
    """
    profile.validate()
    rng = DeterministicRng(seed).fork(f"stream-{profile.name}")
    vaddrs: List[int] = []
    kinds: List[str] = []
    # Memory ops are ~mem_ratio of retired instructions; oversize the
    # instruction budget and stop at the access target.
    budget = max(64, int(accesses * 4))
    while len(vaddrs) < accesses:
        for op in _profile_ops(profile, budget, rng, line_bytes):
            if isinstance(op, Load):
                vaddrs.append(op.vaddr)
                kinds.append("L")
            elif isinstance(op, Store):
                vaddrs.append(op.vaddr)
                kinds.append("S")
            elif isinstance(op, Ifetch):
                vaddrs.append(op.vaddr)
                kinds.append("I")
            if len(vaddrs) >= accesses:
                break
    return vaddrs, "".join(kinds)
