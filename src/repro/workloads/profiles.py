"""Per-benchmark behavioral profiles.

Each :class:`BenchmarkProfile` parameterizes the synthetic generator so
the resulting process exhibits, at the scaled cache sizes, the memory
behavior that drives the paper's results:

* ``data_lines`` + ``stream_fraction`` + ``hot_fraction`` set the
  baseline LLC miss rate (streaming over a working set larger than the
  LLC produces high MPKI — the lbm/leslie3d/sjeng/milc group; a tiny hot
  set produces near-zero MPKI — specrand/swaptions);
* ``code_lines`` and ``shared_lib_lines`` set the instruction footprint
  and how much of it is shared software, which controls first-access
  misses after context switches (wrf and perlbench get large shared
  instruction footprints, as the paper calls out for Figure 8);
* ``syscall_every`` injects accesses to shared kernel text, modeling the
  kernel-space sharing the paper notes all process pairs have.

The absolute numbers are calibrated for the scaled experiment
configuration (default 128 KiB LLC = 2048 lines); what the reproduction
preserves is the *ordering* and grouping of Table II, not gem5's absolute
MPKI values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.common.errors import ConfigError


@dataclass(frozen=True)
class BenchmarkProfile:
    """Generator parameters for one synthetic benchmark."""

    name: str
    #: private data working-set size, in cache lines
    data_lines: int
    #: benchmark-private code footprint, in cache lines
    code_lines: int
    #: shared-library code footprint the benchmark actually uses, in lines
    shared_lib_lines: int
    #: fraction of data accesses that stream sequentially through the
    #: working set (high for lbm/leslie3d/milc/libquantum)
    stream_fraction: float
    #: fraction of non-streaming accesses that go to the hot subset
    hot_fraction: float = 0.85
    #: hot subset size as a fraction of the working set
    hot_set_fraction: float = 0.05
    #: fraction of instructions that are memory operations
    mem_ratio: float = 0.35
    #: fraction of memory operations that are stores
    write_ratio: float = 0.25
    #: one kernel-text access burst every N instructions (syscalls)
    syscall_every: int = 4000
    #: instruction-fetch block span: a new code line is fetched every N
    #: instructions (small = large active instruction footprint)
    ifetch_every: int = 12
    #: consecutive streaming accesses that land in one line before the
    #: stream advances (64-byte lines / 8-byte elements -> 8)
    stream_accesses_per_line: int = 8

    def validate(self) -> None:
        if self.data_lines <= 0 or self.code_lines <= 0:
            raise ConfigError(f"{self.name}: footprints must be positive")
        if not 0.0 <= self.stream_fraction <= 1.0:
            raise ConfigError(f"{self.name}: stream_fraction out of [0,1]")
        if not 0.0 <= self.hot_fraction <= 1.0:
            raise ConfigError(f"{self.name}: hot_fraction out of [0,1]")
        if not 0.0 < self.mem_ratio < 1.0:
            raise ConfigError(f"{self.name}: mem_ratio out of (0,1)")
        if not 0.0 <= self.write_ratio <= 1.0:
            raise ConfigError(f"{self.name}: write_ratio out of [0,1]")
        if self.syscall_every <= 0 or self.ifetch_every <= 0:
            raise ConfigError(f"{self.name}: rates must be positive")
        if self.stream_accesses_per_line <= 0:
            raise ConfigError(
                f"{self.name}: stream_accesses_per_line must be positive"
            )


# ----------------------------------------------------------------------
# SPEC2006 profiles (scaled to the 128 KiB / 2048-line experiment LLC).
# Groups, mirroring Table II's baseline MPKI ordering:
#   very high MPKI: leslie3d, lbm, sjeng, milc (streaming/huge WS)
#   high:           zeusmp, libquantum, cactus, wrf
#   medium:         gobmk, perlbench, astar, h264ref
#   low:            calculix, sphinx3, gromacs, namd, specrand
# ----------------------------------------------------------------------
SPEC_PROFILES: Dict[str, BenchmarkProfile] = {
    p.name: p
    for p in [
        BenchmarkProfile(
            "specrand", data_lines=96, code_lines=12, shared_lib_lines=24,
            stream_fraction=0.0, hot_fraction=0.95, mem_ratio=0.25,
        ),
        BenchmarkProfile(
            "lbm", data_lines=2560, code_lines=16, shared_lib_lines=16,
            stream_fraction=0.25, hot_fraction=0.98, mem_ratio=0.45,
            write_ratio=0.45,
        ),
        BenchmarkProfile(
            "leslie3d", data_lines=2560, code_lines=32, shared_lib_lines=24,
            stream_fraction=0.33, hot_fraction=0.98, mem_ratio=0.5,
            write_ratio=0.35,
        ),
        BenchmarkProfile(
            "gobmk", data_lines=8192, code_lines=96, shared_lib_lines=48,
            stream_fraction=0.02, hot_fraction=0.984, mem_ratio=0.3,
        ),
        BenchmarkProfile(
            "libquantum", data_lines=1024, code_lines=12, shared_lib_lines=16,
            stream_fraction=0.16, hot_fraction=0.98, mem_ratio=0.3,
        ),
        BenchmarkProfile(
            "wrf", data_lines=1280, code_lines=192, shared_lib_lines=96,
            stream_fraction=0.09, hot_fraction=0.95, mem_ratio=0.4,
            ifetch_every=6,
        ),
        BenchmarkProfile(
            "calculix", data_lines=512, code_lines=64, shared_lib_lines=48,
            stream_fraction=0.01, hot_fraction=0.995, mem_ratio=0.35,
        ),
        BenchmarkProfile(
            "sjeng", data_lines=8192, code_lines=48, shared_lib_lines=24,
            stream_fraction=0.0, hot_fraction=0.94, mem_ratio=0.4,
        ),
        BenchmarkProfile(
            "perlbench", data_lines=1536, code_lines=256, shared_lib_lines=128,
            stream_fraction=0.02, hot_fraction=0.985, mem_ratio=0.35,
            ifetch_every=5, syscall_every=1500,
        ),
        BenchmarkProfile(
            "astar", data_lines=1024, code_lines=32, shared_lib_lines=32,
            stream_fraction=0.05, hot_fraction=0.99, mem_ratio=0.35,
        ),
        BenchmarkProfile(
            "h264ref", data_lines=768, code_lines=96, shared_lib_lines=64,
            stream_fraction=0.05, hot_fraction=0.99, mem_ratio=0.35,
            syscall_every=2000,
        ),
        BenchmarkProfile(
            "milc", data_lines=2560, code_lines=32, shared_lib_lines=24,
            stream_fraction=0.29, hot_fraction=0.98, mem_ratio=0.45,
        ),
        BenchmarkProfile(
            "sphinx3", data_lines=640, code_lines=64, shared_lib_lines=48,
            stream_fraction=0.02, hot_fraction=0.995, mem_ratio=0.35,
        ),
        BenchmarkProfile(
            "namd", data_lines=384, code_lines=48, shared_lib_lines=32,
            stream_fraction=0.01, hot_fraction=0.995, mem_ratio=0.35,
        ),
        BenchmarkProfile(
            "gromacs", data_lines=512, code_lines=48, shared_lib_lines=32,
            stream_fraction=0.02, hot_fraction=0.995, mem_ratio=0.35,
        ),
        BenchmarkProfile(
            "zeusmp", data_lines=2560, code_lines=48, shared_lib_lines=24,
            stream_fraction=0.25, hot_fraction=0.98, mem_ratio=0.4,
        ),
        BenchmarkProfile(
            "cactus", data_lines=2560, code_lines=48, shared_lib_lines=24,
            stream_fraction=0.37, hot_fraction=0.98, mem_ratio=0.45,
        ),
    ]
}


# ----------------------------------------------------------------------
# PARSEC profiles: 2-thread runs on 2 cores.  Table II's PARSEC rows have
# far lower LLC MPKI than SPEC; threads share the address space, so the
# "shared" footprint is the whole program.
# ----------------------------------------------------------------------
PARSEC_PROFILES: Dict[str, BenchmarkProfile] = {
    p.name: p
    for p in [
        BenchmarkProfile(
            "fluidanimate", data_lines=1536, code_lines=64, shared_lib_lines=48,
            stream_fraction=0.01, hot_fraction=0.99, mem_ratio=0.35,
        ),
        BenchmarkProfile(
            "raytrace", data_lines=2048, code_lines=96, shared_lib_lines=64,
            stream_fraction=0.01, hot_fraction=0.985, mem_ratio=0.35,
        ),
        BenchmarkProfile(
            "blackscholes", data_lines=512, code_lines=24, shared_lib_lines=24,
            stream_fraction=0.01, hot_fraction=0.995, mem_ratio=0.3,
        ),
        BenchmarkProfile(
            "x264", data_lines=3072, code_lines=128, shared_lib_lines=64,
            stream_fraction=0.02, hot_fraction=0.98, mem_ratio=0.35,
            syscall_every=2500,
        ),
        BenchmarkProfile(
            "swaptions", data_lines=128, code_lines=32, shared_lib_lines=24,
            stream_fraction=0.0, hot_fraction=0.99, mem_ratio=0.3,
        ),
        BenchmarkProfile(
            "facesim", data_lines=1536, code_lines=96, shared_lib_lines=48,
            stream_fraction=0.1, hot_fraction=0.97, mem_ratio=0.4,
        ),
    ]
}


def spec_profile(name: str) -> BenchmarkProfile:
    try:
        return SPEC_PROFILES[name]
    except KeyError:
        raise ConfigError(f"unknown SPEC profile {name!r}") from None


def parsec_profile(name: str) -> BenchmarkProfile:
    try:
        return PARSEC_PROFILES[name]
    except KeyError:
        raise ConfigError(f"unknown PARSEC profile {name!r}") from None
