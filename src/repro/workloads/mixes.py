"""The exact workload mixes of Table II.

Fifteen same-benchmark SPEC pairs (``2Xfoo``), nine mixed SPEC pairs, and
six 2-thread PARSEC benchmarks — the rows the benchmark harness
regenerates for Table II, Figure 7, Figure 8, and Figure 9.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

#: Table II rows "2Xfoo": two instances of the same benchmark on one core
SPEC_SAME_PAIRS: List[Tuple[str, str]] = [
    ("specrand", "specrand"),
    ("lbm", "lbm"),
    ("leslie3d", "leslie3d"),
    ("gobmk", "gobmk"),
    ("libquantum", "libquantum"),
    ("wrf", "wrf"),
    ("calculix", "calculix"),
    ("sjeng", "sjeng"),
    ("perlbench", "perlbench"),
    ("astar", "astar"),
    ("h264ref", "h264ref"),
    ("milc", "milc"),
    ("sphinx3", "sphinx3"),
    ("namd", "namd"),
    ("gromacs", "gromacs"),
]

#: Table II mixed rows: two different benchmarks on one core
SPEC_MIXED_PAIRS: List[Tuple[str, str]] = [
    ("leslie3d", "gobmk"),
    ("namd", "lbm"),
    ("milc", "zeusmp"),
    ("lbm", "wrf"),
    ("h264ref", "sjeng"),
    ("perlbench", "wrf"),
    ("cactus", "leslie3d"),
    ("gobmk", "astar"),
    ("zeusmp", "gromacs"),
]

#: Table II PARSEC rows: 2 threads on 2 cores
PARSEC_BENCHMARKS: List[str] = [
    "fluidanimate",
    "raytrace",
    "blackscholes",
    "x264",
    "swaptions",
    "facesim",
]


def pair_label(a: str, b: str) -> str:
    """Row label in the paper's style: ``2Xfoo`` or ``foo+bar``."""
    if a == b:
        return f"2X{a}"
    return f"{a}+{b}"


#: Table II's published numbers (normalized exec time, baseline MPKI,
#: TimeCache MPKI) for paper-vs-measured comparison in EXPERIMENTS.md.
PAPER_TABLE2_SPEC: Dict[str, Tuple[float, float, float]] = {
    "2Xspecrand": (0.9908, 0.0035, 0.0238),
    "2Xlbm": (1.0039, 14.0349, 14.138),
    "2Xleslie3d": (1.0751, 20.6163, 24.3556),
    "2Xgobmk": (0.9961, 3.2832, 3.3361),
    "2Xlibquantum": (1.0001, 5.8532, 5.8831),
    "2Xwrf": (1.0135, 4.7286, 4.8964),
    "2Xcalculix": (1.0548, 0.2099, 0.2672),
    "2Xsjeng": (0.999, 16.7773, 16.8382),
    "2Xperlbench": (1.0134, 1.021, 1.1582),
    "2Xastar": (1.0107, 0.5654, 0.6144),
    "2Xh264ref": (1.014, 0.555, 0.5953),
    "2Xmilc": (1.0026, 16.4722, 16.5295),
    "2Xsphinx3": (0.9982, 0.2648, 0.3118),
    "2Xnamd": (1.0108, 0.1623, 0.2181),
    "2Xgromacs": (0.9992, 0.292, 0.3703),
    "leslie3d+gobmk": (0.9996, 22.3133, 22.3669),
    "namd+lbm": (1.0579, 6.3764, 7.1136),
    "milc+zeusmp": (1.0024, 12.5757, 12.6121),
    "lbm+wrf": (1.0007, 9.7181, 9.7898),
    "h264ref+sjeng": (1.0108, 9.0769, 9.1915),
    "perlbench+wrf": (1.0143, 1.3984, 1.4626),
    "cactus+leslie3d": (1.0034, 21.2749, 21.3736),
    "gobmk+astar": (0.9994, 1.1053, 1.1469),
    "zeusmp+gromacs": (1.0035, 5.6352, 5.5924),
}

PAPER_TABLE2_PARSEC: Dict[str, Tuple[float, float, float]] = {
    "fluidanimate": (1.029, 0.1317, 0.1583),
    "raytrace": (1.0015, 0.2833, 0.2836),
    "blackscholes": (1.0013, 0.0466, 0.0511),
    "x264": (1.0052, 0.8264, 0.8634),
    "swaptions": (1.0025, 0.0051, 0.0053),
    "facesim": (1.0086, 3.3585, 3.3589),
}

#: headline aggregates from the paper's abstract/evaluation
PAPER_SPEC_MEAN_OVERHEAD = 0.0113
PAPER_PARSEC_MEAN_OVERHEAD = 0.008
PAPER_LLC_SENSITIVITY = {"2MB": 0.0113, "4MB": 0.004, "8MB": 0.001}
