"""Synthetic SPEC2006/PARSEC-like workloads.

The paper measures TimeCache's overhead by running pairs of SPEC2006
benchmarks time-sliced on one core and 2-thread PARSEC benchmarks on two
cores.  Real benchmark binaries cannot run on a behavioral Python model,
so this package generates synthetic processes whose *memory behavior*
carries the properties the overhead depends on:

* a private data working set with tunable size, locality, and streaming
  fraction (controls the baseline LLC MPKI — calibrated so the MPKI
  *ordering* matches Table II);
* a code footprint split between benchmark-private text, a shared libc
  segment, and shared kernel text (controls how many *first accesses*
  occur after each context switch — the source of TimeCache's overhead);
* same-benchmark pairs additionally share their binary text (the paper's
  ``2Xfoo`` rows, which see more sharing than mixed pairs).

See :mod:`repro.workloads.profiles` for the per-benchmark parameters and
:mod:`repro.workloads.mixes` for the exact Table II pair list.
"""

from repro.workloads.generator import (
    WorkloadBuilder,
    profile_reference_stream,
)
from repro.workloads.mixes import (
    PARSEC_BENCHMARKS,
    SPEC_MIXED_PAIRS,
    SPEC_SAME_PAIRS,
)
from repro.workloads.parsec import build_parsec_workload
from repro.workloads.profiles import (
    PARSEC_PROFILES,
    SPEC_PROFILES,
    BenchmarkProfile,
)
from repro.workloads.spec import build_spec_pair

__all__ = [
    "BenchmarkProfile",
    "PARSEC_BENCHMARKS",
    "PARSEC_PROFILES",
    "SPEC_MIXED_PAIRS",
    "SPEC_PROFILES",
    "SPEC_SAME_PAIRS",
    "WorkloadBuilder",
    "build_parsec_workload",
    "build_spec_pair",
    "profile_reference_stream",
]
