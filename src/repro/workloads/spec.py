"""SPEC-style experiment construction: two processes on one core.

Reproduces the paper's single-core methodology: two benchmark processes
are time-sliced on one core by the round-robin scheduler; the shared
software between them is libc, kernel text, and — for same-benchmark
pairs — the benchmark binary itself.
"""

from __future__ import annotations

from typing import Tuple

from repro.os.kernel import Kernel
from repro.os.process import Task
from repro.workloads.generator import WorkloadBuilder
from repro.workloads.profiles import spec_profile


def build_spec_pair(
    kernel: Kernel,
    bench_a: str,
    bench_b: str,
    instructions: int,
    seed: int = 0xBEEF,
) -> Tuple[Task, Task]:
    """Create the two processes of one Table II row on core 0.

    Both tasks execute ``instructions`` instructions; the run completes
    when both exit, and normalized execution time is taken over the
    makespan (fixed work, variable time).
    """
    builder = WorkloadBuilder(kernel, seed=seed)
    _, task_a = builder.build_process(
        spec_profile(bench_a), instance=0, instructions=instructions, affinity=0
    )
    _, task_b = builder.build_process(
        spec_profile(bench_b), instance=1, instructions=instructions, affinity=0
    )
    kernel.submit(task_a)
    kernel.submit(task_b)
    return task_a, task_b
