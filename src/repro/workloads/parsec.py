"""PARSEC-style experiment construction: 2 threads on 2 cores.

Reproduces the paper's multithreaded methodology (system-emulation mode
with the clone syscall placing the second thread on another core): one
process, one address space, two tasks pinned to different cores.  The
threads partition the data working set (each owns half) but share the
program text, the shared libraries, a shared read-mostly region, and the
kernel — so first accesses occur only at the shared LLC, never in the
private L1s (Figure 9b's key observation).
"""

from __future__ import annotations

from typing import Tuple

from repro.common.errors import ConfigError
from repro.common.rng import DeterministicRng
from repro.cpu.isa import Compute, Exit, Ifetch, Load, Store
from repro.cpu.program import Program, ProgramGen
from repro.os.kernel import Kernel
from repro.os.process import Task
from repro.workloads.generator import (
    CODE_BASE,
    DATA_BASE,
    KERNEL_BASE,
    KERNEL_LINES,
    LIB_BASE,
    WorkloadBuilder,
)
from repro.workloads.profiles import BenchmarkProfile, parsec_profile

#: region of the data segment both threads read (shared input data)
SHARED_DATA_FRACTION = 0.125


def _thread_program(
    profile: BenchmarkProfile,
    thread_id: int,
    instructions: int,
    line_bytes: int,
    rng: DeterministicRng,
) -> Program:
    """One PARSEC thread: private partition + shared read-mostly region."""
    ws = profile.data_lines
    shared_lines = max(1, int(ws * SHARED_DATA_FRACTION))
    private_lines = max(1, (ws - shared_lines) // 2)
    private_base_line = shared_lines + thread_id * private_lines
    hot_lines = max(1, int(private_lines * profile.hot_set_fraction))

    def factory() -> ProgramGen:
        retired = 0
        stream_pos = 0
        stream_in_line = 0
        code_pos = thread_id  # threads start in different code regions
        since_ifetch = 0
        while retired < instructions:
            since_ifetch += 1
            if since_ifetch >= profile.ifetch_every:
                since_ifetch = 0
                r = rng.random()
                if r < 0.1 and profile.shared_lib_lines > 0:
                    line = rng.randint(0, profile.shared_lib_lines - 1)
                    yield Ifetch(LIB_BASE + line * line_bytes)
                elif r < 0.13:
                    line = rng.randint(0, KERNEL_LINES - 1)
                    yield Ifetch(KERNEL_BASE + line * line_bytes)
                else:
                    code_pos = (code_pos + 1) % profile.code_lines
                    yield Ifetch(CODE_BASE + code_pos * line_bytes)
                retired += 1
                continue
            if rng.random() < profile.mem_ratio:
                r = rng.random()
                if r < 0.08:
                    # read the shared input region (cross-thread sharing)
                    index = rng.randint(0, shared_lines - 1)
                    yield Load(DATA_BASE + index * line_bytes)
                else:
                    if rng.random() < profile.stream_fraction:
                        stream_in_line += 1
                        if stream_in_line >= profile.stream_accesses_per_line:
                            stream_in_line = 0
                            stream_pos = (stream_pos + 1) % private_lines
                        index = private_base_line + stream_pos
                    elif rng.random() < profile.hot_fraction:
                        index = private_base_line + rng.randint(0, hot_lines - 1)
                    else:
                        index = private_base_line + rng.randint(
                            0, private_lines - 1
                        )
                    addr = DATA_BASE + index * line_bytes
                    if rng.random() < profile.write_ratio:
                        yield Store(addr)
                    else:
                        yield Load(addr)
                retired += 1
            else:
                burst = rng.randint(1, 4)
                yield Compute(burst)
                retired += burst
        yield Exit()

    return Program(f"{profile.name}.t{thread_id}", factory)


def build_parsec_workload(
    kernel: Kernel,
    bench: str,
    instructions_per_thread: int,
    seed: int = 0xFACE,
) -> Tuple[Task, Task]:
    """One PARSEC process with two threads pinned to cores 0 and 1."""
    if kernel.config.hierarchy.num_hw_contexts < 2:
        raise ConfigError("PARSEC workloads need two hardware contexts")
    profile = parsec_profile(bench)
    profile.validate()
    builder = WorkloadBuilder(kernel, seed=seed)
    line_bytes = builder.line_bytes

    process = kernel.create_process(profile.name)
    aspace = process.address_space
    code_seg = kernel.phys.allocate_segment(
        f"{profile.name}.text", profile.code_lines * line_bytes
    )
    aspace.map_segment(code_seg, CODE_BASE)
    aspace.map_segment(builder._lib_segment(profile.shared_lib_lines), LIB_BASE)
    aspace.map_segment(kernel.phys.segment("kernel.text"), KERNEL_BASE)
    data_seg = kernel.phys.allocate_segment(
        f"{profile.name}.data", profile.data_lines * line_bytes
    )
    aspace.map_segment(data_seg, DATA_BASE)

    rng = DeterministicRng(seed)
    t0 = process.spawn(
        _thread_program(
            profile, 0, instructions_per_thread, line_bytes, rng.fork("t0")
        ),
        affinity=0,
    )
    t1 = process.spawn(
        _thread_program(
            profile, 1, instructions_per_thread, line_bytes, rng.fork("t1")
        ),
        affinity=1,
    )
    kernel.submit(t0)
    kernel.submit(t1)
    return t0, t1
