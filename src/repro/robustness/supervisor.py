"""Supervised sweep execution: hang detection, kill/reschedule, quarantine.

:class:`~repro.analysis.parallel.ParallelSweepExecutor` retries a job
whose *code* raises, but a worker that stops making progress — an
accidental infinite loop, a deadlocked import, a runaway simulation — or
one that dies without a word (OOM kill, segfault, a chaos injection)
holds the whole ``ProcessPoolExecutor`` hostage.  This module supervises
the workers themselves:

* **process-per-job slots** — up to ``jobs`` concurrent
  ``multiprocessing.Process`` workers, each owning one job attempt and
  one result pipe.  A worker can therefore be killed surgically without
  poisoning a shared pool;
* **heartbeat-based hang detection** — each slot carries a shared
  heartbeat cell the worker stamps when the attempt starts (the job
  function may stamp it again to extend its lease); the supervisor's
  poll loop, which also emits PR 4's ``sweep.heartbeat`` trace events,
  kills any worker silent past ``deadline_s`` and reschedules the job;
* **poison-job quarantine** — kills and crashes count as attempts; a
  job failing ``retries + 1`` attempts becomes an enriched
  :class:`~repro.robustness.resilience.FailureRecord` (seed, engine,
  config hash, batch window, manifest id, traceback) written as a
  standalone record under ``quarantine_dir``, and the sweep *continues*;
* the parent remains the only checkpoint writer, and results come back
  in submission order — the PR 2 contract is unchanged, so every sweep
  driver can swap executors without caring.

The executor inherits the ``jobs == 1`` serial delegation, tracer
events, and ordered reassembly from ``ParallelSweepExecutor`` and only
replaces the pool body.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.analysis.parallel import (
    ParallelSweepExecutor,
    SweepJob,
    _Attempt,
    _attempt_failure,
    derive_job_seed,
)
from repro.robustness import safeio
from repro.robustness.resilience import (
    Checkpoint,
    FailureRecord,
    SweepOutcome,
    format_exception,
)

FAILURE_RECORD_SCHEMA = 1

#: worker-side sabotage spec injected by the chaos layer:
#: ("kill", exit_code) | ("hang", seconds) | ("raise", message)
Sabotage = Optional[tuple]


def quarantine_record_path(
    quarantine_dir: Union[str, Path], label: str
) -> Path:
    """Where one label's quarantine record lives (label made file-safe)."""
    safe = "".join(c if c.isalnum() or c in "._-" else "_" for c in label)
    return Path(quarantine_dir) / f"{safe}.failure.json"


def write_quarantine_record(
    record: FailureRecord, quarantine_dir: Union[str, Path]
) -> Path:
    """Persist one quarantined job's full provenance as a standalone,
    crash-safe JSON document; stamps ``record.record_path``."""
    path = quarantine_record_path(quarantine_dir, record.label)
    record.record_path = str(path)
    payload = {
        "schema": FAILURE_RECORD_SCHEMA,
        "kind": "failure_record",
        **record.to_dict(),
    }
    safeio.write_json_atomic(payload, path)
    return path


def load_quarantine_record(path: Union[str, Path]) -> FailureRecord:
    payload = safeio.read_json_verified(
        path, expected_kind="failure_record",
        expected_schema=FAILURE_RECORD_SCHEMA,
    )
    return FailureRecord.from_dict(payload)


def _write_shard_quiet(session, obs_dir, attempt: int, ok: bool) -> None:
    """Persist a worker's obs shard; observability must never fail a
    job that itself succeeded, so errors are swallowed."""
    try:
        from repro.obs.shards import write_shard

        write_shard(session, obs_dir, attempt=attempt, ok=ok)
    except Exception:  # pragma: no cover - defensive
        pass


def _supervised_worker(
    job: SweepJob,
    child_seed: int,
    conn,
    beat,
    sabotage: Sabotage,
    attempt: int = 1,
    obs_dir=None,
) -> None:
    """Worker-process body: one job attempt, result down the pipe.

    No retry loop here — the *supervisor* owns attempts, because a hung
    attempt can only be retried by killing this process.  The heartbeat
    cell is stamped when work starts; a cooperative job may keep
    stamping it via ``repro_heartbeat`` in its kwargs, but the default
    contract is simply "finish within the deadline".

    With ``obs_dir`` set, the attempt runs under an installed
    :class:`~repro.obs.spans.ObsSession`: systems the job constructs
    report kernel phases into it, the attempt runs inside a
    ``job:<label>`` span, and the session lands as a crash-safe shard
    (:mod:`repro.obs.shards`) whether the job succeeds or raises — a
    killed/hung worker simply leaves no shard, which the merge treats
    as "nothing recorded", not an error.
    """
    import random

    random.seed(child_seed)
    try:
        import numpy as _np

        _np.random.seed(child_seed & 0xFFFFFFFF)
    except ImportError:  # pragma: no cover - numpy is a hard dep today
        pass
    beat.value = time.monotonic()
    started = time.perf_counter()
    if sabotage is not None:
        kind, param = sabotage
        if kind == "hang":
            # A stuck worker: alive but silent.  time.sleep models any
            # non-progressing state the supervisor cannot distinguish.
            time.sleep(float(param))
        elif kind == "kill":
            # Die without a word, mid-protocol: no result ever crosses
            # the pipe (models OOM-kill / segfault / power loss).
            conn.close()
            os._exit(int(param))
    session = None
    if obs_dir is not None:
        from repro.obs.spans import ObsSession, install_session

        session = ObsSession(label=job.label)
        session.meta["attempt"] = attempt
        session.meta["provenance"] = dict(job.provenance)
        install_session(session)
    try:
        if sabotage is not None and sabotage[0] == "raise":
            from repro.common.errors import FaultInjectionError

            raise FaultInjectionError(str(sabotage[1]))
        if session is not None:
            with session.span(f"job:{job.label}", "sweep"):
                result = job.run()
        else:
            result = job.run()
    except BaseException as exc:  # noqa: BLE001 - flattened for the pipe
        if session is not None:
            _write_shard_quiet(session, obs_dir, attempt, ok=False)
        conn.send(
            _Attempt(
                label=job.label,
                ok=False,
                attempts=1,
                error_type=type(exc).__name__,
                message=str(exc),
                duration_s=time.perf_counter() - started,
                traceback=format_exception(exc),
            )
        )
        conn.close()
        return
    if session is not None:
        _write_shard_quiet(session, obs_dir, attempt, ok=True)
    conn.send(
        _Attempt(
            label=job.label,
            ok=True,
            result=result,
            attempts=1,
            duration_s=time.perf_counter() - started,
        )
    )
    conn.close()


@dataclass
class _Slot:
    """One running worker: its process, pipe, heartbeat, and bookkeeping."""

    job: SweepJob
    attempt: int
    process: mp.Process
    conn: object
    beat: object
    started: float
    received: Optional[_Attempt] = None


@dataclass
class SupervisionReport:
    """What the supervisor did beyond plain execution (for scorecards)."""

    hangs_killed: int = 0
    crashes_detected: int = 0
    reschedules: int = 0
    quarantined: List[str] = field(default_factory=list)
    record_paths: Dict[str, str] = field(default_factory=dict)


class SupervisedSweepExecutor(ParallelSweepExecutor):
    """A :class:`ParallelSweepExecutor` whose workers are supervised.

    Extra knobs over the base executor:

    * ``deadline_s`` — per-attempt wall-clock lease.  A worker whose
      heartbeat is older than this is killed and the job rescheduled
      (counting as one attempt).  ``None`` disables hang detection
      (crash detection stays on);
    * ``poll_s`` — supervisor loop cadence (also the heartbeat event
      cadence while jobs are in flight);
    * ``quarantine_dir`` — where exhausted jobs' failure records are
      written; ``None`` keeps records only in the outcome/checkpoint;
    * ``manifest_id`` — the sweep's run-manifest fingerprint, stamped
      onto every failure record for cross-subsystem traceability;
    * ``sabotage_for`` — chaos seam: maps ``(label, attempt)`` to a
      worker sabotage spec; never set in production.

    After :meth:`run`, :attr:`report` describes the supervision actions
    (kills, crashes, reschedules, quarantined labels).
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        *,
        retries: int = 2,
        backoff_s: float = 0.5,
        deadline_s: Optional[float] = None,
        poll_s: float = 0.02,
        checkpoint: Optional[Checkpoint] = None,
        on_event: Optional[Callable[[str, str], None]] = None,
        base_seed: int = 0,
        tracer=None,
        quarantine_dir: Optional[Union[str, Path]] = None,
        manifest_id: str = "",
        sabotage_for: Optional[Callable[[str, int], Sabotage]] = None,
        obs_dir: Optional[Union[str, Path]] = None,
    ) -> None:
        super().__init__(
            jobs,
            retries=retries,
            backoff_s=backoff_s,
            checkpoint=checkpoint,
            on_event=on_event,
            base_seed=base_seed,
            tracer=tracer,
        )
        self.deadline_s = deadline_s
        self.poll_s = poll_s
        self.quarantine_dir = (
            Path(quarantine_dir) if quarantine_dir is not None else None
        )
        self.manifest_id = manifest_id
        self.sabotage_for = sabotage_for
        #: telemetry directory (repro.obs.shards): workers write span/
        #: counter shards here, the poll loop drops heartbeats for
        #: ``repro obs top``, and the merged Perfetto trace + aggregate
        #: counters are written when the sweep finishes.  ``None`` (the
        #: default) records nothing.
        self.obs_dir = Path(obs_dir) if obs_dir is not None else None
        self.report = SupervisionReport()

    # ------------------------------------------------------------------
    # pool body (replaces ProcessPoolExecutor wholesale)
    # ------------------------------------------------------------------
    def _run_pool(self, sweep_jobs: Sequence[SweepJob]) -> SweepOutcome:
        self.report = SupervisionReport()
        checkpoint = self.checkpoint
        resumed: Dict[str, object] = {}
        if checkpoint is not None:
            checkpoint.load()
            for job in sweep_jobs:
                prior = checkpoint.result_for(job.label)
                if prior is not None:
                    resumed[job.label] = prior
        ctx = mp.get_context()
        pending = deque(
            (job, 1) for job in sweep_jobs if job.label not in resumed
        )
        slots: List[_Slot] = []
        finished: Dict[str, _Attempt] = {}
        failed_attempts: Dict[str, _Attempt] = {}
        backoff_until: Dict[str, float] = {}
        # Supervisor-side trace slices (wall-clock ns): one per attempt
        # window, merged as the pid-1 track of the combined trace.
        sup_spans: List[Dict] = []
        launch_wall: Dict[str, int] = {}
        hb_next = 0.0

        def write_heartbeat(status: str) -> None:
            if self.obs_dir is None:
                return
            from repro.obs import shards as obs_shards

            now_mono = time.monotonic()
            obs_shards.write_heartbeat(
                self.obs_dir,
                status=status,
                done=self._completed,
                total=self._total,
                failed=self._failed,
                in_flight=[
                    {
                        "label": slot.job.label,
                        "attempt": slot.attempt,
                        "age_s": round(now_mono - slot.started, 3),
                        "pid": slot.process.pid,
                    }
                    for slot in slots
                ],
                quarantined=self.report.quarantined,
            )

        def launch(job: SweepJob, attempt: int) -> None:
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            beat = ctx.Value("d", time.monotonic())
            sabotage = (
                self.sabotage_for(job.label, attempt)
                if self.sabotage_for is not None
                else None
            )
            launch_wall[job.label] = time.time_ns()
            proc = ctx.Process(
                target=_supervised_worker,
                args=(
                    job,
                    derive_job_seed(self.base_seed, job.label),
                    child_conn,
                    beat,
                    sabotage,
                    attempt,
                    str(self.obs_dir) if self.obs_dir is not None else None,
                ),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            slots.append(
                _Slot(
                    job=job,
                    attempt=attempt,
                    process=proc,
                    conn=parent_conn,
                    beat=beat,
                    started=time.monotonic(),
                )
            )

        def settle(slot: _Slot, attempt: _Attempt) -> None:
            """A slot produced a terminal attempt outcome."""
            label = slot.job.label
            if self.obs_dir is not None:
                start_ns = launch_wall.get(label, time.time_ns())
                sup_spans.append(
                    {
                        "name": f"job:{label}",
                        "cat": "sweep",
                        "ts": start_ns,
                        "dur_ns": time.time_ns() - start_ns,
                        "args": {
                            "attempt": slot.attempt,
                            "status": "ok"
                            if attempt.ok
                            else attempt.error_type or "failed",
                        },
                    }
                )
            if attempt.ok:
                finished[label] = attempt
                if checkpoint is not None:
                    checkpoint.record_success(label, attempt.result)
                self._job_event(
                    label,
                    "ok",
                    attempts=attempt.attempts,
                    duration_s=round(attempt.duration_s, 6),
                )
                return
            if slot.attempt <= self.retries:
                # Reschedule (crash, hang, or raise) with backoff.
                self.report.reschedules += 1
                backoff_until[label] = (
                    time.monotonic()
                    + self.backoff_s * 2 ** (slot.attempt - 1)
                )
                pending.append((slot.job, slot.attempt + 1))
                self._notify(label, "retry")
                return
            attempt.attempts = slot.attempt
            failed_attempts[label] = attempt
            record = _attempt_failure(attempt, slot.job)
            record.manifest_id = record.manifest_id or self.manifest_id
            self.report.quarantined.append(label)
            if self.quarantine_dir is not None:
                path = write_quarantine_record(record, self.quarantine_dir)
                self.report.record_paths[label] = str(path)
            if checkpoint is not None:
                checkpoint.record_failure(record)
            self._job_event(
                label,
                "failed",
                attempts=attempt.attempts,
                error_type=attempt.error_type,
                duration_s=round(attempt.duration_s, 6),
            )

        def reap(slot: _Slot) -> Optional[_Attempt]:
            """Poll one slot; a terminal outcome or None if still running."""
            if slot.conn.poll():
                try:
                    received = slot.conn.recv()
                except (EOFError, OSError):
                    received = None
                if received is not None:
                    slot.process.join()
                    slot.conn.close()
                    received.attempts = slot.attempt
                    return received
            if not slot.process.is_alive():
                slot.process.join()
                # Drain once more: the result may have been flushed into
                # the pipe between the poll above and the death check.
                if slot.conn.poll():
                    try:
                        received = slot.conn.recv()
                    except (EOFError, OSError):
                        received = None
                    if received is not None:
                        slot.conn.close()
                        received.attempts = slot.attempt
                        return received
                # Died without delivering: crash (chaos kill, OOM, ...).
                slot.conn.close()
                self.report.crashes_detected += 1
                return _Attempt(
                    label=slot.job.label,
                    ok=False,
                    attempts=slot.attempt,
                    error_type="WorkerCrashError",
                    message=(
                        f"worker exited with code "
                        f"{slot.process.exitcode} before delivering a "
                        f"result"
                    ),
                    duration_s=time.monotonic() - slot.started,
                )
            last_beat = max(slot.beat.value, slot.started)
            if (
                self.deadline_s is not None
                and time.monotonic() - last_beat > self.deadline_s
            ):
                # Hung: alive but past its lease.  Kill and account.
                slot.process.kill()
                slot.process.join()
                slot.conn.close()
                self.report.hangs_killed += 1
                return _Attempt(
                    label=slot.job.label,
                    ok=False,
                    attempts=slot.attempt,
                    error_type="WorkerHungError",
                    message=(
                        f"no heartbeat for {self.deadline_s}s; worker "
                        f"killed by supervisor"
                    ),
                    duration_s=time.monotonic() - slot.started,
                )
            return None

        try:
            write_heartbeat("running")
            while pending or slots:
                now = time.monotonic()
                if self.obs_dir is not None and now >= hb_next:
                    # Throttled: the heartbeat file is for human-cadence
                    # consumers (repro obs top), not the poll loop.
                    write_heartbeat("running")
                    hb_next = now + max(self.poll_s, 0.5)
                while pending and len(slots) < self.jobs:
                    job, attempt = pending[0]
                    wait = backoff_until.get(job.label, 0.0)
                    if wait > now and not slots:
                        # Nothing running and the head job is backing
                        # off: sleep it out rather than spin.
                        time.sleep(min(self.poll_s, wait - now))
                        now = time.monotonic()
                    if backoff_until.get(job.label, 0.0) > now:
                        break
                    pending.popleft()
                    launch(job, attempt)
                progressed = False
                for slot in list(slots):
                    outcome = reap(slot)
                    if outcome is not None:
                        slots.remove(slot)
                        settle(slot, outcome)
                        progressed = True
                if slots and not progressed:
                    self._emit(
                        "sweep.heartbeat",
                        done=self._completed,
                        total=self._total,
                        failed=self._failed,
                        in_flight=len(slots),
                    )
                    time.sleep(self.poll_s)
        finally:
            for slot in slots:  # pragma: no cover - only on raise/interrupt
                slot.process.kill()
                slot.process.join()

        if self.obs_dir is not None:
            write_heartbeat("done")
            try:
                from repro.obs.shards import write_merged

                write_merged(self.obs_dir, sup_spans)
            except Exception:  # pragma: no cover - obs must not fail a sweep
                pass

        # Ordered reassembly: submission order, like the base executor.
        outcome = SweepOutcome()
        for job in sweep_jobs:
            if job.label in resumed:
                outcome.results[job.label] = resumed[job.label]
                outcome.resumed.append(job.label)
                self._job_event(job.label, "resumed")
                continue
            if job.label in finished:
                outcome.results[job.label] = finished[job.label].result
            else:
                attempt = failed_attempts[job.label]
                record = _attempt_failure(attempt, job)
                record.manifest_id = record.manifest_id or self.manifest_id
                record.record_path = self.report.record_paths.get(
                    job.label, ""
                )
                outcome.failures.append(record)
        return outcome
