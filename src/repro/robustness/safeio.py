"""Crash-safe JSON persistence for every artifact the repo writes.

A sweep checkpoint is only useful if a kill at *any* instant leaves the
on-disk state loadable; a silently corrupt checkpoint is worse than no
checkpoint because ``--resume`` would trust it.  This module is the
single write/read path for durable JSON (sweep checkpoints, exported
results, bench baselines, run manifests, quarantine records) and makes
three guarantees:

* **atomicity** — payloads are serialized to a temp file in the target
  directory, flushed and ``fsync``'d, then ``os.replace``'d over the
  destination.  A kill mid-write leaves either the old file or the new
  file, never a torn one (the leftover ``.tmp`` is ignored and
  overwritten by the next write);
* **integrity** — every document carries an ``integrity`` field: the
  sha256 of its canonical JSON form (sorted keys, compact separators)
  computed *without* that field.  Truncation, bit flips, or a partial
  write are detected on read instead of being parsed into garbage;
* **recovery** — before each overwrite the current file is rotated to a
  ``.bak`` sibling, so one generation of last-known-good state always
  survives.  :func:`read_json_recovering` transparently falls back to
  the backup when the primary is corrupt and reports that it did.

Chaos seam
----------
:func:`install_io_hook` installs a process-wide hook observing every
(stage, path, data) triple.  The deterministic chaos injector
(:mod:`repro.robustness.chaos`) uses it to corrupt bytes in flight or to
raise transient ``OSError``; production code never installs a hook.
Stages: ``"serialize"`` (may transform the bytes about to be written —
byte corruption), ``"write"`` (may raise — transient IO error, retried
``io_retries`` times), ``"rename"`` (may raise — a kill between temp
write and publish).
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Tuple, Union

from repro.common.errors import CheckpointCorruptionError

INTEGRITY_KEY = "integrity"
BACKUP_SUFFIX = ".bak"
TMP_SUFFIX = ".tmp"

#: chaos/test seam: hook(stage, path, data) -> data (see module docstring)
IoHook = Callable[[str, Path, bytes], bytes]
_io_hook: Optional[IoHook] = None


def install_io_hook(hook: Optional[IoHook]) -> None:
    """Install (or with ``None`` clear) the process-wide IO hook."""
    global _io_hook
    _io_hook = hook


def _apply_hook(stage: str, path: Path, data: bytes) -> bytes:
    if _io_hook is None:
        return data
    return _io_hook(stage, path, data)


def canonical_digest(payload: Mapping) -> str:
    """sha256 over the canonical JSON form, ignoring the integrity field."""
    stripped = {k: v for k, v in payload.items() if k != INTEGRITY_KEY}
    canonical = json.dumps(
        stripped, sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


def seal(payload: Mapping) -> Dict:
    """A copy of ``payload`` with its ``integrity`` field (re)computed."""
    sealed = {k: v for k, v in payload.items() if k != INTEGRITY_KEY}
    sealed[INTEGRITY_KEY] = {
        "algo": "sha256",
        "digest": canonical_digest(sealed),
    }
    return sealed


def backup_path(path: Union[str, Path]) -> Path:
    path = Path(path)
    return path.with_suffix(path.suffix + BACKUP_SUFFIX)


def write_json_atomic(
    payload: Mapping,
    path: Union[str, Path],
    *,
    backup: bool = True,
    fsync: bool = True,
    io_retries: int = 2,
) -> Path:
    """Atomically publish ``payload`` (sealed with a checksum) at ``path``.

    Write order: temp file (+flush+fsync) → rotate the current file to
    ``.bak`` → ``os.replace`` temp over the destination → fsync the
    directory.  Transient ``OSError`` from the filesystem (or the chaos
    hook) is retried up to ``io_retries`` times before propagating.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    sealed = seal(payload)
    data = json.dumps(sealed, indent=2, sort_keys=True).encode() + b"\n"
    data = _apply_hook("serialize", target, data)
    tmp = target.with_suffix(target.suffix + TMP_SUFFIX)
    error: Optional[OSError] = None
    for _ in range(io_retries + 1):
        try:
            _apply_hook("write", target, data)
            with open(tmp, "wb") as handle:
                handle.write(data)
                handle.flush()
                if fsync:
                    os.fsync(handle.fileno())
            if backup and target.exists():
                _rotate_backup(target)
            _apply_hook("rename", target, data)
            os.replace(tmp, target)
            if fsync:
                _fsync_dir(target.parent)
            return target
        except OSError as exc:
            error = exc
            continue
    assert error is not None
    raise error


def _rotate_backup(target: Path) -> None:
    """Copy the current file to ``.bak`` (copy, not rename: the primary
    must never be missing, even between rotate and publish)."""
    bak = backup_path(target)
    tmp_bak = bak.with_suffix(bak.suffix + TMP_SUFFIX)
    tmp_bak.write_bytes(target.read_bytes())
    os.replace(tmp_bak, bak)


def _fsync_dir(directory: Path) -> None:
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def validate_payload(
    payload: Mapping,
    *,
    expected_kind: Optional[str] = None,
    expected_schema: Optional[int] = None,
) -> Optional[str]:
    """``None`` if the document is acceptable, else the rejection reason.

    Documents without an ``integrity`` field are accepted as *legacy*
    (pre-checksum artifacts must stay resumable); when the field is
    present the digest must match.
    """
    integrity = payload.get(INTEGRITY_KEY)
    if integrity is not None:
        if not isinstance(integrity, Mapping):
            return "malformed integrity field"
        if integrity.get("digest") != canonical_digest(payload):
            return "content checksum mismatch"
    if expected_kind is not None and payload.get("kind") != expected_kind:
        return (
            f"kind {payload.get('kind')!r} (expected {expected_kind!r})"
        )
    if (
        expected_schema is not None
        and payload.get("schema") != expected_schema
    ):
        return (
            f"schema {payload.get('schema')!r} "
            f"(expected {expected_schema!r})"
        )
    return None


def read_json_verified(
    path: Union[str, Path],
    *,
    expected_kind: Optional[str] = None,
    expected_schema: Optional[int] = None,
) -> Dict:
    """Load one file, raising :class:`CheckpointCorruptionError` on any
    parse or validation failure (no backup fallback — see
    :func:`read_json_recovering`)."""
    path = Path(path)
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        raise CheckpointCorruptionError(path, reasons=[str(exc)]) from exc
    if not isinstance(payload, dict):
        raise CheckpointCorruptionError(
            path, reasons=["not a JSON object"]
        )
    reason = validate_payload(
        payload,
        expected_kind=expected_kind,
        expected_schema=expected_schema,
    )
    if reason is not None:
        raise CheckpointCorruptionError(path, reasons=[reason])
    return payload


def read_json_recovering(
    path: Union[str, Path],
    *,
    expected_kind: Optional[str] = None,
    expected_schema: Optional[int] = None,
) -> Tuple[Optional[Dict], bool]:
    """Load ``path``, falling back to its rotated backup.

    Returns ``(payload, recovered)`` — ``recovered`` is True when the
    primary was corrupt (or missing) and the ``.bak`` stood in.  A
    missing primary with no backup is a fresh start: ``(None, False)``.
    Both present but corrupt raises :class:`CheckpointCorruptionError`
    listing what was wrong with each candidate.
    """
    path = Path(path)
    bak = backup_path(path)
    reasons: List[str] = []
    primary_missing = not path.exists()
    if not primary_missing:
        try:
            return (
                read_json_verified(
                    path,
                    expected_kind=expected_kind,
                    expected_schema=expected_schema,
                ),
                False,
            )
        except CheckpointCorruptionError as exc:
            reasons.extend(f"{path.name}: {r}" for r in exc.reasons)
    if bak.exists():
        try:
            return (
                read_json_verified(
                    bak,
                    expected_kind=expected_kind,
                    expected_schema=expected_schema,
                ),
                True,
            )
        except CheckpointCorruptionError as exc:
            reasons.extend(f"{bak.name}: {r}" for r in exc.reasons)
    elif primary_missing:
        return None, False
    raise CheckpointCorruptionError(path, reasons=reasons)
