"""Runtime invariant checking for the TimeCache defense.

TimeCache's security argument rests on a small amount of trusted state —
per-context s-bits, per-line fill timestamps ``Tc``, and the ``Tc > Ts``
comparator run at every context switch.  :class:`InvariantChecker`
verifies, while a simulation runs, that the state keeps the paper's
invariants:

**Security invariant (Section IV).**  A context's first access to a line
filled by another context must observe full lower-level latency.  The
checker maintains a *shadow entitlement model*: per cache slot, the set of
tasks that legitimately earned visibility of the current occupant (the
filler, plus every task that later paid a first access to it).  Two rules
follow:

* *subset*: the hardware s-bit state must always be a subset of the
  shadow entitlement — a set s-bit whose resident task never earned
  visibility is a latent leak;
* *no fast hit without visibility*: an access that found a tag hit with
  the s-bit clear must report ``first_access`` and be serviced below the
  hit level.

**Structural invariants.**  An s-bit may only be set on a valid (tag
present) slot; a slot's Tc must be representable in the timestamp domain
and equal to the value stamped at fill time; evictions and invalidations
must leave the slot's s-bits all-clear.

The checker observes the simulator through the narrow hook points the
core layers expose (``Cache.event_listener``, the hierarchy's access
listeners, ``TimeCacheSystem.switch_listeners``) — no monkeypatching —
and raises :class:`~repro.common.errors.InvariantViolation` with full
diagnostic context on the first breach.  Against the fault models in
:mod:`repro.robustness.faults`, every injected fault is therefore either
*detected* here or *provably benign* (it can only cost extra first-access
misses, never grant visibility).

Scope: the checker targets the TimeCache configuration proper.  The FTM
and way-partitioning comparison baselines track visibility by core or
domain, not by task, and are rejected at attach time.

Known modeling edge: on a multi-core system a slot refilled by another
task in the *same cycle* as the victim's preemption keeps the victim's
s-bit (the comparator tests ``Tc > Ts`` strictly), which the checker
would flag.  Single-core campaigns cannot hit it; see the fault-campaign
driver.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.common.errors import ConfigError, InvariantViolation
from repro.core.timecache import TimeCacheSystem
from repro.memsys.cache import Cache
from repro.memsys.hierarchy import AccessKind, AccessResult

Slot = Tuple[int, int]


class InvariantChecker:
    """Validates TimeCache invariants per access and per context switch."""

    def __init__(
        self,
        system: TimeCacheSystem,
        *,
        check_on_access: bool = True,
        scan_on_switch: bool = True,
    ) -> None:
        if not system.timecache_enabled:
            raise ConfigError(
                "the invariant checker validates the TimeCache protocol; "
                "attach it to a system with timecache.enabled"
            )
        self.system = system
        self.hierarchy = system.hierarchy
        self.domain = system.context_engine.domain
        self.check_on_access = check_on_access
        self.scan_on_switch = scan_on_switch
        #: resident task per hardware context (a pseudo task -(ctx+1)
        #: stands in until the first context switch names one)
        self._resident: Dict[int, int] = {}
        #: per cache: slot -> task ids entitled to the current occupant
        self._rightful: Dict[str, Dict[Slot, Set[int]]] = {}
        #: per cache: slot -> the Tc stamped at fill time
        self._expected_tc: Dict[str, Dict[Slot, int]] = {}
        self._pre: Optional[dict] = None
        self.scans = 0
        self.checked_accesses = 0
        self._attached = False

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self) -> "InvariantChecker":
        """Register on every hook point and bootstrap the shadow model
        from the current cache state.  Returns self for chaining."""
        if self._attached:
            return self
        for cache in self.hierarchy.all_caches():
            self._rightful[cache.name] = {}
            self._expected_tc[cache.name] = {}
            self._bootstrap(cache)
            cache.event_listener = self._listener_for(cache)
        if self.check_on_access:
            self.hierarchy.pre_access_listeners.append(self._pre_access)
            self.hierarchy.post_access_listeners.append(self._post_access)
        self.system.switch_listeners.append(self._on_switch)
        self._attached = True
        return self

    def detach(self) -> None:
        if not self._attached:
            return
        for cache in self.hierarchy.all_caches():
            cache.event_listener = None
        if self.check_on_access:
            self.hierarchy.pre_access_listeners.remove(self._pre_access)
            self.hierarchy.post_access_listeners.remove(self._post_access)
        self.system.switch_listeners.remove(self._on_switch)
        self._attached = False

    def _bootstrap(self, cache: Cache) -> None:
        """Adopt pre-attach state as legitimate: whoever holds a bit now
        is entitled to it (the checker judges transitions, not history)."""
        rightful = self._rightful[cache.name]
        expected = self._expected_tc[cache.name]
        for s in range(cache.num_sets):
            for w in range(cache.ways):
                if not cache.valid[s, w]:
                    continue
                expected[(s, w)] = int(cache.tc[s, w])
                bits = int(cache.sbits[s, w])
                entitled = {
                    self.resident(gctx)
                    for gctx in cache.contexts
                    if bits & cache.ctx_bit(gctx)
                }
                rightful[(s, w)] = entitled

    def resident(self, ctx: int) -> int:
        """The task occupying hardware context ``ctx`` (pseudo task id
        ``-(ctx+1)`` before any context switch named one)."""
        return self._resident.get(ctx, -(ctx + 1))

    # ------------------------------------------------------------------
    # Event mirroring (the shadow entitlement model)
    # ------------------------------------------------------------------
    def _listener_for(self, cache: Cache):
        def on_event(event: str, set_idx: int, way: int, ctx: int) -> None:
            self._on_cache_event(cache, event, set_idx, way, ctx)

        return on_event

    def _on_cache_event(
        self, cache: Cache, event: str, set_idx: int, way: int, ctx: int
    ) -> None:
        key = (set_idx, way)
        rightful = self._rightful[cache.name]
        if event == "fill":
            # The paper's fill rule: the filler alone gains visibility.
            rightful[key] = {self.resident(ctx)}
            self._expected_tc[cache.name][key] = int(cache.tc[set_idx, way])
        elif event == "sbit_set":
            # A paid first access extends entitlement to the accessor.
            rightful.setdefault(key, set()).add(self.resident(ctx))
        elif event in ("evict", "invalidate"):
            rightful.pop(key, None)
            self._expected_tc[cache.name].pop(key, None)
            if int(cache.sbits[set_idx, way]) != 0:
                raise InvariantViolation(
                    "s-bits must be all-clear after the slot is vacated",
                    invariant="sbits-cleared-on-eviction",
                    cache=cache.name,
                    set_idx=set_idx,
                    way=way,
                )

    def _on_switch(
        self, outgoing: Optional[int], incoming: int, ctx: int, now: int
    ) -> None:
        self._resident[ctx] = incoming
        if self.scan_on_switch:
            self.scan_all(now=now)

    # ------------------------------------------------------------------
    # Per-access checking
    # ------------------------------------------------------------------
    def _pre_access(self, ctx: int, line: int, kind: AccessKind, now: int) -> None:
        core = self.hierarchy.core_of_ctx(ctx)
        l1 = (
            self.hierarchy.l1i[core]
            if kind is AccessKind.IFETCH
            else self.hierarchy.l1d[core]
        )
        task = self.resident(ctx)
        self._pre = {
            "ctx": ctx,
            "line": line,
            "task": task,
            "l1": self._slot_view(l1, line, ctx, task),
            "llc": self._slot_view(self.hierarchy.llc, line, ctx, task),
        }

    def _slot_view(
        self, cache: Cache, line: int, ctx: int, task: int
    ) -> Optional[dict]:
        pos = cache.lookup(line)
        if pos is None:
            return None
        set_idx, way = pos
        return {
            "cache": cache.name,
            "set": set_idx,
            "way": way,
            "sbit": cache.sbit_is_set(set_idx, way, ctx),
            "entitled": task
            in self._rightful[cache.name].get((set_idx, way), set()),
        }

    def _post_access(
        self, ctx: int, line: int, kind: AccessKind, now: int, result: AccessResult
    ) -> None:
        pre = self._pre
        self._pre = None
        if pre is None or pre["ctx"] != ctx or pre["line"] != line:
            return  # nested/reentrant access; only the outermost is checked
        self.checked_accesses += 1
        task = pre["task"]
        view = pre["l1"] if pre["l1"] is not None else pre["llc"]
        if view is None:
            return  # plain miss everywhere: DRAM fill, nothing to validate
        if view["sbit"] and not view["entitled"]:
            raise InvariantViolation(
                f"task was serviced through an s-bit it never earned "
                f"(line {line:#x}, served at {result.level} in "
                f"{result.latency} cycles)",
                invariant="stale-visibility-exploited",
                cache=view["cache"],
                set_idx=view["set"],
                way=view["way"],
                ctx=ctx,
                task=task,
            )
        if not view["sbit"]:
            hit_level = "L1" if pre["l1"] is not None else "LLC"
            if not result.first_access or result.level == hit_level:
                raise InvariantViolation(
                    f"tag hit with a clear s-bit must pay a first access "
                    f"below {hit_level}, got level={result.level} "
                    f"first_access={result.first_access} (line {line:#x})",
                    invariant="first-access-discipline",
                    cache=view["cache"],
                    set_idx=view["set"],
                    way=view["way"],
                    ctx=ctx,
                    task=task,
                )

    # ------------------------------------------------------------------
    # Whole-array scans
    # ------------------------------------------------------------------
    def scan(self, cache: Cache, now: Optional[int] = None) -> None:
        """Validate every slot of one cache against the shadow model."""
        self.scans += 1
        rightful = self._rightful[cache.name]
        expected = self._expected_tc[cache.name]
        for s in range(cache.num_sets):
            for w in range(cache.ways):
                bits = int(cache.sbits[s, w])
                valid = bool(cache.valid[s, w])
                tc = int(cache.tc[s, w])
                if bits and not valid:
                    raise InvariantViolation(
                        f"s-bit mask {bits:#x} set on an invalid slot",
                        invariant="sbit-implies-valid-line",
                        cache=cache.name,
                        set_idx=s,
                        way=w,
                    )
                if valid:
                    if not self.domain.contains(tc):
                        raise InvariantViolation(
                            f"Tc {tc} outside the {self.domain.bits}-bit "
                            f"timestamp domain",
                            invariant="tc-in-domain",
                            cache=cache.name,
                            set_idx=s,
                            way=w,
                        )
                    stamped = expected.get((s, w))
                    if stamped is not None and stamped != tc:
                        raise InvariantViolation(
                            f"Tc {tc} differs from the value {stamped} "
                            f"stamped at fill time",
                            invariant="tc-matches-fill-time",
                            cache=cache.name,
                            set_idx=s,
                            way=w,
                        )
                if not bits:
                    continue
                entitled = rightful.get((s, w), set())
                for gctx in cache.contexts:
                    if not bits & cache.ctx_bit(gctx):
                        continue
                    task = self.resident(gctx)
                    if task not in entitled:
                        raise InvariantViolation(
                            f"task holds visibility of a line it never "
                            f"accessed (entitled: {sorted(entitled)}, "
                            f"now={now})",
                            invariant="sbit-subset-of-entitlement",
                            cache=cache.name,
                            set_idx=s,
                            way=w,
                            ctx=gctx,
                            task=task,
                        )

    def scan_all(self, now: Optional[int] = None) -> None:
        """Validate every cache (called automatically per switch)."""
        for cache in self.hierarchy.all_caches():
            self.scan(cache, now=now)

    # ------------------------------------------------------------------
    def counters(self) -> Dict[str, int]:
        return {"scans": self.scans, "checked_accesses": self.checked_accesses}
