"""Deterministic fault injection targeting TimeCache's trusted state.

The defense trusts four pieces of state/machinery: the per-context s-bit
arrays, the bit-serial comparator's clears, the per-line truncated fill
timestamps ``Tc``, and the per-task save/restore of s-bit snapshots at
context switches.  Each :class:`FaultModel` corrupts exactly one of them,
through the narrow seams the core layers expose for the purpose
(``Cache`` metadata arrays, ``BitSerialComparator.reset_mask_filter``,
``ContextSwitchEngine.save_filter``/``restore_filter``) — never by
monkeypatching.

Injection is deterministic: a :class:`FaultInjector` is driven by a
forked :class:`~repro.common.rng.DeterministicRng` and triggers at a
chosen context-switch ordinal, so a campaign seed fully reproduces every
fault (model, sub-mode, target slot, trigger time).

Every model documents its expected observability.  Faults that can only
*remove* visibility (a dropped save, a cleared s-bit, a forced rollover
reset) are *benign by construction* — TimeCache degrades to extra
first-access misses, never to a leak — while faults that *grant* stale
visibility (a spuriously set s-bit, a dropped comparator clear, a forged
preemption time, corrupted Tc) must be caught by the
:class:`~repro.robustness.invariants.InvariantChecker`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.common.errors import FaultInjectionError
from repro.common.rng import DeterministicRng
from repro.core.timecache import TimeCacheSystem
from repro.memsys.cache import Cache


@dataclass
class FaultEvent:
    """One injected fault, fully described for the campaign report."""

    model: str
    mode: str
    switch_no: int
    description: str
    cache: str = ""
    set_idx: int = -1
    way: int = -1
    ctx: int = -1
    #: whether this fault can grant stale visibility (and therefore must
    #: be detected) or can only cost performance (benign by construction)
    can_leak: bool = True


class FaultModel:
    """Base class: one way of corrupting TimeCache's trusted state."""

    name = "abstract"

    def inject(self, injector: "FaultInjector") -> FaultEvent:
        raise NotImplementedError

    # -- shared helpers -------------------------------------------------
    @staticmethod
    def _pick_cache(injector: "FaultInjector") -> Cache:
        return injector.rng.choice(injector.system.hierarchy.all_caches())

    @staticmethod
    def _pick_valid_slot(
        injector: "FaultInjector",
    ) -> Optional[tuple]:
        """A random occupied (cache, set, way), or None if all caches are
        empty (possible only before any warmup access)."""
        caches = list(injector.system.hierarchy.all_caches())
        injector.rng.shuffle(caches)
        for cache in caches:
            occupied = np.argwhere(cache.valid)
            if len(occupied):
                s, w = occupied[injector.rng.randint(0, len(occupied) - 1)]
                return cache, int(s), int(w)
        return None


class SBitCorruption(FaultModel):
    """Bit flips / stuck-at-1 in the s-bit SRAM (``core/sbits`` state).

    * ``flip``: XOR one context's s-bit on a random slot.  Setting a bit
      the resident task never earned is a leak the checker must flag
      (subset invariant, or the structural bits-on-invalid-slot scan);
      clearing a set bit is benign (an extra first access).
    * ``stuck_at_1``: force the bit set regardless of its current value —
      the classic stuck-at fault on the storage cell.
    """

    name = "sbit-corruption"

    def inject(self, injector: "FaultInjector") -> FaultEvent:
        cache = self._pick_cache(injector)
        s = injector.rng.randint(0, cache.num_sets - 1)
        w = injector.rng.randint(0, cache.ways - 1)
        ctx = injector.rng.choice(cache.contexts)
        bit = cache.ctx_bit(ctx)
        mode = injector.rng.choice(["flip", "stuck_at_1"])
        before = int(cache.sbits[s, w])
        if mode == "flip":
            cache.sbits[s, w] = before ^ bit
        else:
            cache.sbits[s, w] = before | bit
        after = int(cache.sbits[s, w])
        return FaultEvent(
            model=self.name,
            mode=mode,
            switch_no=injector.switches,
            description=(
                f"s-bit mask {before:#x} -> {after:#x} for ctx {ctx}"
            ),
            cache=cache.name,
            set_idx=s,
            way=w,
            ctx=ctx,
            # Only a 1->0 flip is guaranteed leak-free.
            can_leak=after & bit != 0,
        )


class DroppedComparatorClear(FaultModel):
    """The comparator silently drops its clears (``core/comparator``).

    Arms ``reset_mask_filter`` to return an all-false mask for the next
    context switch's comparisons (one per cache the context shares — L1I,
    L1D, LLC).  Restored s-bits on slots refilled while their owner was
    preempted then survive, which is precisely the stale visibility the
    ``Tc > Ts`` scan exists to prevent; the checker's post-switch subset
    scan must catch any such slot.
    """

    name = "dropped-comparator-clear"

    def inject(self, injector: "FaultInjector") -> FaultEvent:
        comparator = injector.system.context_engine.comparator
        if comparator.reset_mask_filter is not None:
            raise FaultInjectionError(
                "comparator reset_mask_filter already armed"
            )
        # One comparison per cache of the switching context's core.
        budget = len(injector.system.hierarchy.caches_for_ctx(0))
        remaining = [budget]

        def drop_all(mask: np.ndarray) -> np.ndarray:
            if remaining[0] <= 0:
                return mask
            remaining[0] -= 1
            if remaining[0] == 0:
                comparator.reset_mask_filter = None
            return np.zeros_like(mask)

        comparator.reset_mask_filter = drop_all
        return FaultEvent(
            model=self.name,
            mode="drop-next-switch",
            switch_no=injector.switches,
            description=(
                f"next {budget} comparator results forced all-false"
            ),
            can_leak=True,
        )


class TcCorruption(FaultModel):
    """Corrupted or rollover-stressed fill timestamps (``core/timestamp``).

    * ``corrupt_in_domain``: overwrite an occupied slot's Tc with a
      different in-domain value — the checker's fill-time shadow copy
      must flag the mismatch (a wrong Tc can defeat the ``Tc > Ts``
      staleness repair).
    * ``corrupt_out_of_domain``: write a value above the timestamp mask —
      structurally impossible for the hardware SRAM, flagged by the
      domain-membership scan.
    * ``forced_rollover``: restamp the next restored snapshot's ``Ts``
      one epoch back, forcing the Section VI-C conservative full-reset
      path.  Benign by construction: the reset only removes visibility.
    """

    name = "tc-corruption"

    def inject(self, injector: "FaultInjector") -> FaultEvent:
        mode = injector.rng.choice(
            ["corrupt_in_domain", "corrupt_out_of_domain", "forced_rollover"]
        )
        if mode == "forced_rollover":
            return self._force_rollover(injector)
        target = self._pick_valid_slot(injector)
        if target is None:
            raise FaultInjectionError("no occupied slot to corrupt Tc in")
        cache, s, w = target
        domain = injector.system.context_engine.domain
        old = int(cache.tc[s, w])
        if mode == "corrupt_in_domain":
            new = (old + injector.rng.randint(1, domain.mask)) & domain.mask
        else:
            new = domain.mask + 1 + injector.rng.randint(0, domain.mask)
        cache.tc[s, w] = new
        return FaultEvent(
            model=self.name,
            mode=mode,
            switch_no=injector.switches,
            description=f"Tc {old} -> {new}",
            cache=cache.name,
            set_idx=s,
            way=w,
            can_leak=True,
        )

    @staticmethod
    def _force_rollover(injector: "FaultInjector") -> FaultEvent:
        engine = injector.system.context_engine
        if engine.restore_filter is not None:
            raise FaultInjectionError("restore_filter already armed")
        epoch = engine.domain.modulus

        def one_shot(task, ctx, saved, now_full):
            engine.restore_filter = None
            if saved is None or saved.ts_full < epoch:
                return saved  # nothing to stress; fault is a no-op
            return saved.clone(ts_full=saved.ts_full - epoch)

        engine.restore_filter = one_shot
        return FaultEvent(
            model=TcCorruption.name,
            mode="forced_rollover",
            switch_no=injector.switches,
            description="next restore sees Ts one epoch in the past",
            can_leak=False,
        )


class SwitchStateLoss(FaultModel):
    """Lost or forged s-bit state at context switches (``core/timecache``
    + the OS switch path).

    * ``dropped_save``: the next save silently vanishes (the task keeps
      its previous, older snapshot).  Benign: the older Ts makes the
      comparator clear *more*, and the older bits only describe lines the
      task had genuinely earned at that earlier time.
    * ``forged_ts``: the next restore replays the saved bits stamped with
      the *current* time, so the comparator finds nothing stale and every
      bit — including those on slots refilled while the task was away —
      survives.  Must be detected whenever any such slot exists.
    """

    name = "switch-state-loss"

    def inject(self, injector: "FaultInjector") -> FaultEvent:
        engine = injector.system.context_engine
        mode = injector.rng.choice(["dropped_save", "forged_ts"])
        if mode == "dropped_save":
            if engine.save_filter is not None:
                raise FaultInjectionError("save_filter already armed")

            def drop_once(task, ctx, context):
                engine.save_filter = None
                return None

            engine.save_filter = drop_once
            return FaultEvent(
                model=self.name,
                mode=mode,
                switch_no=injector.switches,
                description="next s-bit save dropped",
                can_leak=False,
            )
        if engine.restore_filter is not None:
            raise FaultInjectionError("restore_filter already armed")

        def forge_once(task, ctx, saved, now_full):
            engine.restore_filter = None
            if saved is None:
                return None
            return saved.clone(ts_full=now_full)

        engine.restore_filter = forge_once
        return FaultEvent(
            model=self.name,
            mode=mode,
            switch_no=injector.switches,
            description="next restore replays s-bits with Ts = now",
            can_leak=True,
        )


ALL_FAULT_MODELS = (
    SBitCorruption,
    DroppedComparatorClear,
    TcCorruption,
    SwitchStateLoss,
)


class FaultInjector:
    """Fires one fault model at a chosen context-switch ordinal.

    Registered as a switch listener *before* the invariant checker, so a
    fault injected at switch *k* is already in place when the checker's
    post-switch scan of switch *k* runs; filter-based faults armed at *k*
    take effect during switch *k+1* and are judged by its scan.
    """

    def __init__(
        self,
        system: TimeCacheSystem,
        model: FaultModel,
        rng: DeterministicRng,
        at_switch: int,
    ) -> None:
        if at_switch < 1:
            raise FaultInjectionError(
                f"at_switch must be >= 1, got {at_switch}"
            )
        self.system = system
        self.model = model
        self.rng = rng
        self.at_switch = at_switch
        self.switches = 0
        self.events: List[FaultEvent] = []
        self._attached = False

    def attach(self) -> "FaultInjector":
        if not self._attached:
            self.system.switch_listeners.append(self._on_switch)
            self._attached = True
        return self

    def detach(self) -> None:
        if self._attached:
            self.system.switch_listeners.remove(self._on_switch)
            self._attached = False

    def _on_switch(
        self, outgoing: Optional[int], incoming: int, ctx: int, now: int
    ) -> None:
        self.switches += 1
        if self.switches == self.at_switch:
            self.events.append(self.model.inject(self))

    @property
    def fired(self) -> bool:
        return bool(self.events)
