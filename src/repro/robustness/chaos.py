"""Deterministic orchestration-level chaos: prove the sweep layer survives.

PR 1's fault injector corrupts *simulator* state (s-bits, comparator,
Tc) and asks whether the defense's invariants catch it.  This module
lifts the same discipline one level up, to the process/IO layer the
sweeps run on: workers are killed mid-job, workers hang past their
deadline, checkpoint bytes are truncated or flipped on disk, and the
filesystem throws transient errors — all driven by a seeded plan, so a
failing campaign replays exactly.

Four chaos models (``CHAOS_MODELS``):

* ``kill``   — a worker process exits mid-protocol without delivering
  its result (models OOM-kill, segfault, power loss);
* ``hang``   — a worker stops making progress but stays alive (models
  deadlock, runaway loops); the supervisor must kill it at the deadline;
* ``corrupt`` — bytes of a published checkpoint are damaged after the
  fact (variants: ``truncate``, ``bitflip``, ``stale_schema``,
  ``torn_rename``); the next load must detect it and heal from the
  rotated backup;
* ``io_error`` — the filesystem raises transient (or persistent)
  ``OSError`` during checkpoint writes via the
  :mod:`~repro.robustness.safeio` hook seam.

Every injection is classified as **recovered** (the sweep produced
reference-identical results / the load healed to a known-good
generation), **quarantined** (the failure was *recorded* — a
FailureRecord with provenance, or a typed corruption error), or
**silent** (wrong data with no error anywhere — the one count that must
be zero).  ``repro chaos`` renders the matrix as a resilience scorecard
and exits nonzero if anything was silent.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.common.errors import CheckpointCorruptionError, FaultInjectionError
from repro.common.rng import DeterministicRng
from repro.robustness import safeio
from repro.robustness.resilience import CHECKPOINT_SCHEMA, Checkpoint

CHAOS_MODELS = ("kill", "hang", "corrupt", "io_error")
CORRUPT_VARIANTS = ("truncate", "bitflip", "stale_schema", "torn_rename")
SCORECARD_SCHEMA = 1

#: mini-sweep shape for process-level (kill/hang) injections
_SWEEP_JOBS = 3
_PROBE_ACCESSES = 300


def chaos_probe_job(seed: int) -> Dict[str, object]:
    """One tiny, fully deterministic simulation cell (a few ms).

    A real :class:`~repro.core.timecache.TimeCacheSystem` replay — not a
    stub — so a chaos campaign exercises the exact serialization and
    execution paths a paper sweep does, just at toy scale.  Module-level
    and picklable, so supervised workers can run it.
    """
    from repro.analysis.runner import batched_replay_run

    return batched_replay_run(accesses=_PROBE_ACCESSES, seed=seed)


@dataclass(frozen=True)
class ChaosEvent:
    """One planned injection.

    ``target`` is a job label for process models and unused for IO
    models; ``attempt`` is which attempt gets sabotaged (``0`` = every
    attempt, forcing quarantine); ``variant`` picks the corruption /
    error shape; ``param`` is a variant-specific knob (truncation point,
    flipped byte, number of consecutive write errors).
    """

    index: int
    model: str
    target: str = ""
    attempt: int = 1
    variant: str = ""
    param: int = 0


@dataclass(frozen=True)
class ChaosPlan:
    """A seeded, reproducible list of injections."""

    seed: int
    events: Tuple[ChaosEvent, ...]

    @classmethod
    def generate(
        cls, seed: int, counts: Optional[Dict[str, int]] = None
    ) -> "ChaosPlan":
        """Derive a plan from ``seed``: ``counts`` maps model -> number
        of injections (defaults to the quick-campaign mix)."""
        counts = dict(counts or DEFAULT_QUICK_COUNTS)
        unknown = set(counts) - set(CHAOS_MODELS)
        if unknown:
            raise FaultInjectionError(
                f"unknown chaos models: {sorted(unknown)}"
            )
        rng = DeterministicRng(seed).fork("chaos-plan")
        events: List[ChaosEvent] = []
        index = 0
        for model in CHAOS_MODELS:
            for _ in range(counts.get(model, 0)):
                if model in ("kill", "hang"):
                    target = f"probe{rng.randint(0, _SWEEP_JOBS - 1)}"
                    # 1 in 4 injections sabotages *every* attempt: the
                    # poison-job path (quarantine) instead of the
                    # retry-recovery path.
                    attempt = 0 if rng.randint(0, 3) == 0 else 1
                    events.append(
                        ChaosEvent(
                            index=index,
                            model=model,
                            target=target,
                            attempt=attempt,
                            param=rng.randint(60, 120),
                        )
                    )
                elif model == "corrupt":
                    variant = CORRUPT_VARIANTS[
                        rng.randint(0, len(CORRUPT_VARIANTS) - 1)
                    ]
                    events.append(
                        ChaosEvent(
                            index=index,
                            model=model,
                            variant=variant,
                            param=rng.randint(1, 10_000),
                        )
                    )
                else:  # io_error
                    # param = consecutive failing writes; 3 exceeds the
                    # writer's retry budget and must fail *loudly*.
                    events.append(
                        ChaosEvent(
                            index=index,
                            model="io_error",
                            variant="write",
                            param=1 + rng.randint(0, 2),
                        )
                    )
                index += 1
        return cls(seed=seed, events=tuple(events))


#: ≥ 50 injections spanning all four models — the CI smoke mix
DEFAULT_QUICK_COUNTS = {"kill": 10, "hang": 6, "corrupt": 24, "io_error": 10}


@dataclass
class ResilienceScorecard:
    """Injections × outcomes, per chaos model."""

    seed: int
    injections: Dict[str, int] = field(default_factory=dict)
    recovered: Dict[str, int] = field(default_factory=dict)
    quarantined: Dict[str, int] = field(default_factory=dict)
    silent: Dict[str, int] = field(default_factory=dict)
    details: List[Dict] = field(default_factory=list)

    def record(self, event: ChaosEvent, outcome: str, note: str = "") -> None:
        if outcome not in ("recovered", "quarantined", "silent"):
            raise FaultInjectionError(f"unknown outcome {outcome!r}")
        model = event.model
        self.injections[model] = self.injections.get(model, 0) + 1
        bucket = getattr(self, outcome)
        bucket[model] = bucket.get(model, 0) + 1
        self.details.append(
            {
                "index": event.index,
                "model": model,
                "variant": event.variant,
                "target": event.target,
                "attempt": event.attempt,
                "outcome": outcome,
                "note": note,
            }
        )

    @property
    def total(self) -> int:
        return sum(self.injections.values())

    @property
    def silent_total(self) -> int:
        return sum(self.silent.values())

    def render(self) -> str:
        header = (
            f"{'model':<10} {'injected':>9} {'recovered':>10} "
            f"{'quarantined':>12} {'silent':>7}"
        )
        lines = [header, "-" * len(header)]
        for model in CHAOS_MODELS:
            if self.injections.get(model, 0) == 0:
                continue
            lines.append(
                f"{model:<10} {self.injections.get(model, 0):>9} "
                f"{self.recovered.get(model, 0):>10} "
                f"{self.quarantined.get(model, 0):>12} "
                f"{self.silent.get(model, 0):>7}"
            )
        lines.append("-" * len(header))
        lines.append(
            f"{'total':<10} {self.total:>9} "
            f"{sum(self.recovered.values()):>10} "
            f"{sum(self.quarantined.values()):>12} "
            f"{self.silent_total:>7}"
        )
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        return {
            "schema": SCORECARD_SCHEMA,
            "kind": "resilience_scorecard",
            "seed": self.seed,
            "injections": dict(self.injections),
            "recovered": dict(self.recovered),
            "quarantined": dict(self.quarantined),
            "silent": dict(self.silent),
            "total": self.total,
            "silent_total": self.silent_total,
            "details": list(self.details),
        }


class ChaosIoHook:
    """A :mod:`safeio` hook sabotaging writes per one :class:`ChaosEvent`.

    * ``io_error`` — raises ``OSError`` on the first ``param`` write
      attempts, then lets writes through (transient fault);
    * ``corrupt``/``truncate`` — drops the tail of the serialized bytes
      once (the published file is torn);
    * ``corrupt``/``bitflip`` — flips one byte inside the JSON body
      once (checksum must catch it).

    ``stale_schema`` and ``torn_rename`` are injected after the fact by
    the campaign (they are states of the *file*, not of a write).
    """

    def __init__(self, event: ChaosEvent) -> None:
        self.event = event
        self.write_attempts = 0
        self.corrupted = False

    def __call__(self, stage: str, path: Path, data: bytes) -> bytes:
        event = self.event
        if event.model == "io_error" and stage == "write":
            self.write_attempts += 1
            if self.write_attempts <= event.param:
                raise OSError(
                    f"chaos[{event.index}]: injected transient IO error "
                    f"({self.write_attempts}/{event.param})"
                )
            return data
        if event.model == "corrupt" and stage == "serialize":
            if self.corrupted:
                return data
            self.corrupted = True
            if event.variant == "truncate":
                cut = 1 + event.param % max(1, len(data) - 2)
                return data[:cut]
            if event.variant == "bitflip":
                pos = event.param % len(data)
                flipped = bytes([data[pos] ^ 0x20])
                return data[:pos] + flipped + data[pos + 1 :]
        return data


def _reference_results(seeds: Sequence[int]) -> Dict[str, Dict]:
    """The uninterrupted ground truth for the process-model mini-sweep."""
    return {
        f"probe{i}": chaos_probe_job(seed) for i, seed in enumerate(seeds)
    }


def _probe_sweep_jobs(seeds: Sequence[int]):
    from repro.analysis.parallel import SweepJob

    return [
        SweepJob(
            label=f"probe{i}",
            fn=chaos_probe_job,
            args=(seed,),
            provenance={"seed": seed, "engine": "fast"},
        )
        for i, seed in enumerate(seeds)
    ]


def _run_process_injection(
    event: ChaosEvent,
    reference: Dict[str, Dict],
    seeds: Sequence[int],
    workdir: Path,
    scorecard: ResilienceScorecard,
    jobs: int,
) -> None:
    """One kill/hang injection: a supervised mini-sweep with sabotage."""
    from repro.analysis.export import result_to_dict  # noqa: F401 (doc)
    from repro.robustness.supervisor import SupervisedSweepExecutor

    def sabotage_for(label: str, attempt: int):
        if label != event.target:
            return None
        if event.attempt not in (0, attempt):
            return None
        if event.model == "hang":
            return ("hang", 60.0)
        return ("kill", 86 + event.index % 40)

    checkpoint_path = workdir / f"inj{event.index}.ckpt.json"
    checkpoint = Checkpoint(
        checkpoint_path,
        serialize=lambda r: dict(r),  # probe results are plain dicts
        deserialize=lambda p: dict(p),
    )
    quarantine_dir = workdir / f"inj{event.index}.quarantine"
    executor = SupervisedSweepExecutor(
        jobs,
        retries=2,
        backoff_s=0.01,
        deadline_s=0.5,
        poll_s=0.01,
        checkpoint=checkpoint,
        quarantine_dir=quarantine_dir,
        sabotage_for=sabotage_for,
    )
    outcome = executor.run(_probe_sweep_jobs(seeds))
    failed = {f.label: f for f in outcome.failures}
    silent_notes: List[str] = []
    for label, expected in reference.items():
        got = outcome.results.get(label)
        if got is not None:
            if json.dumps(got, sort_keys=True, default=str) != json.dumps(
                expected, sort_keys=True, default=str
            ):
                silent_notes.append(f"{label}: wrong result")
        elif label not in failed:
            silent_notes.append(f"{label}: missing with no failure record")
        else:
            record = failed[label]
            if not record.error_type or not record.record_path:
                silent_notes.append(
                    f"{label}: failure record missing provenance"
                )
    if silent_notes:
        scorecard.record(event, "silent", "; ".join(silent_notes))
    elif failed:
        scorecard.record(
            event,
            "quarantined",
            ", ".join(
                f"{f.label}:{f.error_type}" for f in outcome.failures
            ),
        )
    else:
        scorecard.record(
            event,
            "recovered",
            f"reschedules={executor.report.reschedules}",
        )


def _checkpoint_generations(
    path: Path,
) -> Tuple[Checkpoint, List[Dict]]:
    """A checkpoint with two recorded generations (g1 in ``.bak``)."""
    checkpoint = Checkpoint(
        path, serialize=lambda r: dict(r), deserialize=lambda p: dict(p)
    )
    checkpoint.record_success("j0", {"v": 10})
    gen1 = json.loads(path.read_text())
    checkpoint.record_success("j1", {"v": 11})
    gen2 = json.loads(path.read_text())
    return checkpoint, [gen1, gen2]


def _run_corrupt_injection(
    event: ChaosEvent, workdir: Path, scorecard: ResilienceScorecard
) -> None:
    """One corrupt injection: damage a published checkpoint, reload."""
    path = workdir / f"inj{event.index}.ckpt.json"
    if event.variant in ("truncate", "bitflip"):
        # Publish gen1 cleanly, then write gen2 through the corrupting
        # hook: the primary lands damaged, the backup still holds gen1.
        checkpoint = Checkpoint(
            path, serialize=lambda r: dict(r), deserialize=lambda p: dict(p)
        )
        checkpoint.record_success("j0", {"v": 10})
        good = [json.loads(path.read_text())]
        hook = ChaosIoHook(event)
        safeio.install_io_hook(hook)
        try:
            checkpoint.record_success("j1", {"v": 11})
        finally:
            safeio.install_io_hook(None)
        # The damage may land outside the verified content — e.g. a
        # bitflip inside the integrity stanza's "algo" label, which the
        # checksum deliberately excludes.  The intended gen2 *content*
        # is then still a good generation: serving it is correct, not a
        # silent corruption.
        good.append({"completed": {"j0": {"v": 10}, "j1": {"v": 11}}})
    elif event.variant == "stale_schema":
        _, good = _checkpoint_generations(path)
        stale = dict(good[1])
        stale["schema"] = CHECKPOINT_SCHEMA + 999
        path.write_text(json.dumps(safeio.seal(stale), indent=2))
    elif event.variant == "torn_rename":
        # A kill between temp write and publish on a filesystem that
        # lost the primary: only the ``.tmp`` and the backup survive.
        _, good = _checkpoint_generations(path)
        tmp = path.with_suffix(path.suffix + safeio.TMP_SUFFIX)
        tmp.write_bytes(path.read_bytes()[: max(1, event.param % 64)])
        path.unlink()
    else:  # pragma: no cover - plan generator never emits others
        raise FaultInjectionError(f"unknown corrupt variant {event.variant!r}")

    fresh = Checkpoint(
        path, serialize=lambda r: dict(r), deserialize=lambda p: dict(p)
    )
    try:
        fresh.load()
    except CheckpointCorruptionError as exc:
        scorecard.record(event, "quarantined", f"load refused: {exc}")
        return
    loaded = {
        "completed": fresh.completed,
        "failures": [f.to_dict() for f in fresh.failures],
    }
    for generation in good:
        if loaded["completed"] == generation.get("completed"):
            note = (
                "healed from backup"
                if fresh.recovered_from_backup
                else "primary intact"
            )
            # Detection matters: damaged primary accepted verbatim would
            # never equal a good generation, so equality here means the
            # loader served a *verified* generation.
            scorecard.record(event, "recovered", note)
            return
    scorecard.record(
        event,
        "silent",
        f"loaded state matches no good generation: {loaded['completed']}",
    )


def _run_io_error_injection(
    event: ChaosEvent, workdir: Path, scorecard: ResilienceScorecard
) -> None:
    """One io_error injection: transient write failures mid-checkpoint."""
    path = workdir / f"inj{event.index}.ckpt.json"
    checkpoint = Checkpoint(
        path, serialize=lambda r: dict(r), deserialize=lambda p: dict(p)
    )
    checkpoint.record_success("j0", {"v": 10})
    hook = ChaosIoHook(event)
    safeio.install_io_hook(hook)
    raised: Optional[OSError] = None
    try:
        checkpoint.record_success("j1", {"v": 11})
    except OSError as exc:
        raised = exc
    finally:
        safeio.install_io_hook(None)
    fresh = Checkpoint(
        path, serialize=lambda r: dict(r), deserialize=lambda p: dict(p)
    )
    try:
        fresh.load()
    except CheckpointCorruptionError as exc:
        scorecard.record(event, "silent", f"post-io state unreadable: {exc}")
        return
    if raised is None:
        if fresh.completed == checkpoint.completed:
            scorecard.record(
                event, "recovered", f"retried past {event.param} error(s)"
            )
        else:
            scorecard.record(event, "silent", "write 'succeeded' but lost data")
    else:
        # The writer gave up loudly; on-disk state must still be a good
        # generation (j0 alone) — never torn.
        if fresh.completed == {"j0": {"v": 10}}:
            scorecard.record(event, "quarantined", f"loud failure: {raised}")
        else:
            scorecard.record(
                event, "silent", "failed write corrupted prior state"
            )


def run_chaos_campaign(
    seed: int = 0,
    counts: Optional[Dict[str, int]] = None,
    jobs: int = 2,
    workdir: Optional[Union[str, Path]] = None,
) -> ResilienceScorecard:
    """Execute a full seeded chaos plan and return the scorecard.

    ``counts`` maps chaos model -> injections (default: the ≥50-injection
    quick mix).  All artifacts (checkpoints, quarantine records) are
    written under ``workdir`` (a temp dir by default, removed after).
    """
    plan = ChaosPlan.generate(seed, counts)
    scorecard = ResilienceScorecard(seed=seed)
    seeds = [seed * 1_000 + i for i in range(_SWEEP_JOBS)]
    needs_reference = any(
        e.model in ("kill", "hang") for e in plan.events
    )
    reference = _reference_results(seeds) if needs_reference else {}
    cleanup = None
    if workdir is None:
        cleanup = tempfile.TemporaryDirectory(prefix="repro-chaos-")
        workdir = cleanup.name
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    try:
        for event in plan.events:
            if event.model in ("kill", "hang"):
                _run_process_injection(
                    event, reference, seeds, workdir, scorecard, jobs
                )
            elif event.model == "corrupt":
                _run_corrupt_injection(event, workdir, scorecard)
            else:
                _run_io_error_injection(event, workdir, scorecard)
    finally:
        if cleanup is not None:
            cleanup.cleanup()
    return scorecard
