"""Seeded fault-injection campaigns with detection accounting.

A campaign runs many short, deterministic TimeCache simulations; each run
injects exactly one fault from one :class:`~repro.robustness.faults`
model at a randomly chosen context switch, with the
:class:`~repro.robustness.invariants.InvariantChecker` watching every
access and every switch.  Each injection is classified:

* **detected** — the checker raised
  :class:`~repro.common.errors.InvariantViolation`, during the run or in
  the final audit;
* **benign** — the run completed and the final whole-array audit is
  clean: the fault either removed visibility (always safe under
  TimeCache's fail-toward-misses design) or hit state that no later
  access depended on;
* **silent** — anything else.  A robust defense/checker pair has zero
  silent outcomes, and the ``repro faults`` CLI exits non-zero otherwise.

The driver deliberately runs a *single-core* machine with *16-bit*
timestamps.  Single-core because on a multi-core machine a slot refilled
in the same cycle as a preemption legitimately keeps its s-bit (the
comparator predicate ``Tc > Ts`` is strict), which the checker's shadow
model would miscount.  16-bit because the width must be wide enough that
most save/restore gaps stay within one epoch (narrower widths make every
switch take the Section VI-C conservative-reset path, so the comparator —
the target of the dropped-clear model — never runs), yet narrow enough
that a run still crosses epoch boundaries occasionally, exercising the
rollover path too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Type

from repro.common.config import (
    CacheConfig,
    HierarchyConfig,
    SimConfig,
    TimeCacheConfig,
)
from repro.common.errors import InvariantViolation
from repro.common.rng import DeterministicRng
from repro.common.units import KIB
from repro.core.timecache import TimeCacheSystem
from repro.memsys.hierarchy import AccessKind
from repro.robustness.faults import (
    ALL_FAULT_MODELS,
    FaultEvent,
    FaultInjector,
    FaultModel,
)
from repro.robustness.invariants import InvariantChecker

#: context-switch rounds per injection run; the fault lands somewhere in
#: the middle so both pre-fault warmup and post-fault switches exist
ROUNDS = 8
#: accesses each task performs per scheduling round
ACCESSES_PER_ROUND = 40


def campaign_config(seed: int = 0) -> SimConfig:
    """The tiny single-core machine every injection run simulates."""
    cfg = SimConfig(
        hierarchy=HierarchyConfig(
            num_cores=1,
            threads_per_core=1,
            l1i=CacheConfig("L1I", 1 * KIB, ways=4),
            l1d=CacheConfig("L1D", 1 * KIB, ways=4),
            llc=CacheConfig("LLC", 16 * KIB, ways=8),
        ),
        timecache=TimeCacheConfig(
            enabled=True,
            timestamp_bits=16,  # epochs short enough to roll over in-run
            sbit_dma_cycles=20,
        ),
        seed=seed,
    )
    cfg.validate()
    return cfg


@dataclass
class InjectionOutcome:
    """One run of the campaign: the fault and how it was resolved."""

    model: str
    seed: int
    outcome: str  # "detected" | "benign" | "silent"
    event: Optional[FaultEvent] = None
    violation: str = ""


@dataclass
class DetectionMatrix:
    """Per-model detection accounting for a whole campaign."""

    counts: Dict[str, Dict[str, int]] = field(default_factory=dict)
    outcomes: List[InjectionOutcome] = field(default_factory=list)

    def record(self, outcome: InjectionOutcome) -> None:
        row = self.counts.setdefault(
            outcome.model, {"detected": 0, "benign": 0, "silent": 0}
        )
        row[outcome.outcome] += 1
        self.outcomes.append(outcome)

    @property
    def total(self) -> int:
        return len(self.outcomes)

    @property
    def silent_total(self) -> int:
        return sum(row["silent"] for row in self.counts.values())

    def render(self) -> str:
        """ASCII detection matrix, one row per fault model."""
        header = f"{'fault model':<28} {'detected':>9} {'benign':>7} {'silent':>7}"
        lines = [header, "-" * len(header)]
        for model in sorted(self.counts):
            row = self.counts[model]
            lines.append(
                f"{model:<28} {row['detected']:>9} {row['benign']:>7} "
                f"{row['silent']:>7}"
            )
        lines.append("-" * len(header))
        lines.append(
            f"{'total':<28} "
            f"{sum(r['detected'] for r in self.counts.values()):>9} "
            f"{sum(r['benign'] for r in self.counts.values()):>7} "
            f"{self.silent_total:>7}"
        )
        return "\n".join(lines)


def _drive(
    system: TimeCacheSystem,
    rng: DeterministicRng,
    rounds: int = ROUNDS,
    accesses_per_round: int = ACCESSES_PER_ROUND,
) -> None:
    """A deterministic two-task ping-pong on hardware context 0.

    Tasks 1 and 2 alternate via real ``context_switch`` calls (so the
    save/comparator/restore protocol runs) and touch a mix of private and
    shared lines with occasional flushes.  The pools exceed the L1s so
    refill pressure exists — the precondition for comparator clears, and
    therefore for dropped-clear and forged-Ts faults to matter.
    """
    line_bytes = system.config.hierarchy.line_bytes
    shared = [0x40000 + i * line_bytes for i in range(24)]
    private = {
        1: [0x10000 + i * line_bytes for i in range(48)],
        2: [0x20000 + i * line_bytes for i in range(48)],
    }
    now = 0
    tasks = (1, 2)
    for round_no in range(rounds):
        incoming = tasks[round_no % 2]
        outgoing: Optional[int] = tasks[(round_no + 1) % 2] if round_no else None
        cost = system.context_switch(outgoing, incoming, ctx=0, now=now)
        now += 50 + cost.total
        for _ in range(accesses_per_round):
            pool = shared if rng.random() < 0.3 else private[incoming]
            addr = rng.choice(pool)
            roll = rng.random()
            if roll < 0.05:
                result = system.flush(0, addr, now=now)
            elif roll < 0.15:
                result = system.store(0, addr, now=now)
            else:
                kind = AccessKind.IFETCH if rng.random() < 0.2 else AccessKind.LOAD
                result = system.access(0, addr, kind, now=now)
            now += max(1, result.latency)


def run_single_injection(
    model_cls: Type[FaultModel], seed: int
) -> InjectionOutcome:
    """One simulation, one fault, one verdict."""
    rng = DeterministicRng(seed)
    system = TimeCacheSystem(campaign_config(seed=seed))
    injector = FaultInjector(
        system,
        model_cls(),
        rng.fork("fault"),
        # Middle of the run: warm caches before, switches + audit after.
        at_switch=rng.fork("trigger").randint(2, ROUNDS - 2),
    ).attach()
    checker = InvariantChecker(system).attach()
    try:
        _drive(system, rng.fork("drive"))
        checker.scan_all()  # final audit
    except InvariantViolation as violation:
        return InjectionOutcome(
            model=model_cls.name,
            seed=seed,
            outcome="detected",
            event=injector.events[0] if injector.events else None,
            violation=str(violation),
        )
    if not injector.fired:
        # The trigger switch never happened — a campaign bug, not a
        # checker verdict; surface it as silent so it cannot hide.
        return InjectionOutcome(model=model_cls.name, seed=seed, outcome="silent")
    return InjectionOutcome(
        model=model_cls.name,
        seed=seed,
        outcome="benign",
        event=injector.events[0],
    )


def run_injection_uncaught(model_name: str, seed: int) -> str:
    """One injection run that lets :class:`InvariantViolation` escape.

    Picklable, module-level, and deliberately *not* wrapped in the
    detected/benign classification: the parallel-executor tests ship it
    into a pool worker to prove a violation raised in a child process
    comes back as a recorded failure rather than being swallowed.
    Returns ``"clean"`` when the drive and final audit pass.
    """
    by_name = {cls.name: cls for cls in ALL_FAULT_MODELS}
    try:
        model_cls = by_name[model_name]
    except KeyError:
        raise ValueError(
            f"unknown fault model {model_name!r}; known: {sorted(by_name)}"
        ) from None
    rng = DeterministicRng(seed)
    system = TimeCacheSystem(campaign_config(seed=seed))
    FaultInjector(
        system,
        model_cls(),
        rng.fork("fault"),
        at_switch=rng.fork("trigger").randint(2, ROUNDS - 2),
    ).attach()
    checker = InvariantChecker(system).attach()
    _drive(system, rng.fork("drive"))
    checker.scan_all()
    return "clean"


def run_fault_campaign(
    per_model: int = 30, seed: int = 0xFA017
) -> DetectionMatrix:
    """``per_model`` seeded injections for every fault model.

    The default (30 x 4 models = 120 injections) satisfies the
    acceptance bar of >= 100; ``repro faults --quick`` drops to 3 per
    model for CI smoke runs.
    """
    matrix = DetectionMatrix()
    base = DeterministicRng(seed)
    for model_cls in ALL_FAULT_MODELS:
        stream = base.fork(model_cls.name)
        for i in range(per_model):
            run_seed = stream.randint(0, 2**31 - 1) ^ i
            matrix.record(run_single_injection(model_cls, run_seed))
    return matrix
