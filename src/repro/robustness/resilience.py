"""Resilient execution of long experiment sweeps.

A paper-scale sweep is hours of simulation; one diverging workload or
wall-clock overrun should cost one retry, not the whole run.  This module
provides the generic machinery — the analysis layer
(:mod:`repro.analysis.runner`) wraps its sweeps around it:

* **retry with exponential backoff** for transient failures;
* **graceful degradation**: a job that keeps failing becomes a
  :class:`FailureRecord` while every other job's result is still
  returned;
* **checkpoint/resume**: after every finished job the completed results
  are written to a JSON checkpoint; a rerun pointed at the same file
  skips completed jobs (previously *failed* jobs are retried — a resume
  is exactly a second chance for them).

Deliberately not caught: :class:`KeyboardInterrupt` (the operator wins;
the checkpoint preserves progress) and :class:`BaseException` generally.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

CHECKPOINT_SCHEMA = 1

#: a sweep job: a stable label and a thunk producing the result
Job = Tuple[str, Callable[[], object]]


@dataclass
class FailureRecord:
    """A job that exhausted its retries."""

    label: str
    attempts: int
    error_type: str
    message: str

    def to_dict(self) -> Dict:
        return {
            "label": self.label,
            "attempts": self.attempts,
            "error_type": self.error_type,
            "message": self.message,
        }

    @staticmethod
    def from_dict(payload: Dict) -> "FailureRecord":
        return FailureRecord(
            label=payload["label"],
            attempts=int(payload["attempts"]),
            error_type=payload["error_type"],
            message=payload["message"],
        )


@dataclass
class SweepOutcome:
    """What a resilient sweep produced: results keyed by job label, plus
    the failures, in job order."""

    results: Dict[str, object] = field(default_factory=dict)
    failures: List[FailureRecord] = field(default_factory=list)
    #: labels that were loaded from a checkpoint rather than re-run
    resumed: List[str] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return not self.failures

    def ordered_results(self, labels: Sequence[str]) -> List[object]:
        """Results in the given label order, skipping failed jobs."""
        return [self.results[lab] for lab in labels if lab in self.results]


class Checkpoint:
    """JSON persistence for a sweep in progress.

    The file stores serialized results (via the caller's ``serialize``)
    keyed by job label, plus the failure records::

        {"schema": 1, "kind": "sweep_checkpoint",
         "completed": {label: <payload>}, "failures": [<record>, ...]}
    """

    def __init__(
        self,
        path: Union[str, Path],
        serialize: Callable[[object], Dict],
        deserialize: Callable[[Dict], object],
    ) -> None:
        self.path = Path(path)
        self.serialize = serialize
        self.deserialize = deserialize
        self.completed: Dict[str, Dict] = {}
        self.failures: List[FailureRecord] = []

    def load(self) -> None:
        """Read a prior run's progress; a missing file is a fresh start."""
        if not self.path.exists():
            return
        import json

        with open(self.path) as handle:
            payload = json.load(handle)
        if payload.get("schema") != CHECKPOINT_SCHEMA or payload.get(
            "kind"
        ) != "sweep_checkpoint":
            raise ValueError(f"{self.path}: not a sweep checkpoint")
        self.completed = dict(payload.get("completed", {}))
        self.failures = [
            FailureRecord.from_dict(f) for f in payload.get("failures", [])
        ]

    def result_for(self, label: str) -> Optional[object]:
        payload = self.completed.get(label)
        return None if payload is None else self.deserialize(payload)

    def record_success(self, label: str, result: object) -> None:
        self.completed[label] = self.serialize(result)
        # A success supersedes any failure recorded for the label by an
        # earlier (resumed) run.
        self.failures = [f for f in self.failures if f.label != label]
        self._write()

    def record_failure(self, record: FailureRecord) -> None:
        self.failures = [f for f in self.failures if f.label != record.label]
        self.failures.append(record)
        self._write()

    def _write(self) -> None:
        import json

        payload = {
            "schema": CHECKPOINT_SCHEMA,
            "kind": "sweep_checkpoint",
            "completed": self.completed,
            "failures": [f.to_dict() for f in self.failures],
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        with open(tmp, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        tmp.replace(self.path)


def run_resilient_jobs(
    jobs: Sequence[Job],
    *,
    retries: int = 2,
    backoff_s: float = 0.5,
    checkpoint: Optional[Checkpoint] = None,
    sleep: Callable[[float], None] = time.sleep,
    on_event: Optional[Callable[[str, str], None]] = None,
) -> SweepOutcome:
    """Run every job, retrying failures and checkpointing progress.

    ``retries`` is the number of *re*-tries after the first attempt, so a
    job runs at most ``retries + 1`` times; the n-th retry waits
    ``backoff_s * 2**(n-1)`` seconds first (``sleep`` is injectable for
    tests).  ``on_event(label, event)`` observes progress with events
    ``"resumed" | "ok" | "retry" | "failed"``.
    """
    if checkpoint is not None:
        checkpoint.load()
    outcome = SweepOutcome()

    def notify(label: str, event: str) -> None:
        if on_event is not None:
            on_event(label, event)

    for label, thunk in jobs:
        if checkpoint is not None:
            prior = checkpoint.result_for(label)
            if prior is not None:
                outcome.results[label] = prior
                outcome.resumed.append(label)
                notify(label, "resumed")
                continue
        error: Optional[BaseException] = None
        attempts = 0
        for attempt in range(retries + 1):
            attempts = attempt + 1
            if attempt:
                sleep(backoff_s * 2 ** (attempt - 1))
                notify(label, "retry")
            try:
                result = thunk()
            except Exception as exc:  # noqa: BLE001 - the whole point
                error = exc
                continue
            outcome.results[label] = result
            if checkpoint is not None:
                checkpoint.record_success(label, result)
            notify(label, "ok")
            error = None
            break
        if error is not None:
            record = FailureRecord(
                label=label,
                attempts=attempts,
                error_type=type(error).__name__,
                message=str(error),
            )
            outcome.failures.append(record)
            if checkpoint is not None:
                checkpoint.record_failure(record)
            notify(label, "failed")
    return outcome
