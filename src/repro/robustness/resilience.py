"""Resilient execution of long experiment sweeps.

A paper-scale sweep is hours of simulation; one diverging workload or
wall-clock overrun should cost one retry, not the whole run.  This module
provides the generic machinery — the analysis layer
(:mod:`repro.analysis.runner`) wraps its sweeps around it:

* **retry with exponential backoff** for transient failures;
* **graceful degradation**: a job that keeps failing becomes a
  :class:`FailureRecord` while every other job's result is still
  returned;
* **checkpoint/resume**: after every finished job the completed results
  are written to a JSON checkpoint; a rerun pointed at the same file
  skips completed jobs (previously *failed* jobs are retried — a resume
  is exactly a second chance for them).  Checkpoint files are written
  crash-safely via :mod:`repro.robustness.safeio` (atomic rename,
  content checksum, rotated ``.bak``), so a kill mid-write can never
  poison a later ``--resume`` — a corrupt primary falls back to the
  last-good backup automatically.

Deliberately not caught: :class:`KeyboardInterrupt` (the operator wins;
the checkpoint preserves progress) and :class:`BaseException` generally.
"""

from __future__ import annotations

import time
import traceback as _traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import repro.robustness.safeio as safeio

CHECKPOINT_SCHEMA = 1

#: a sweep job: a stable label and a thunk producing the result
Job = Tuple[str, Callable[[], object]]


@dataclass
class FailureRecord:
    """A job that exhausted its retries, with enough provenance to
    reproduce it in isolation.

    The first four fields are the PR 1 core; the rest traces the
    quarantined job across subsystems: the simulation ``seed``, the
    ``engine`` it ran under (PR 3), the fast engine's maximum
    ``batch_window`` (PR 5 — bounds the vectorized stretch that was in
    flight), the sha256 of the full config, the obs run-manifest
    fingerprint of the sweep that quarantined it (PR 4), the worker-side
    ``traceback``, and — once quarantined to disk — the path of the
    standalone record file.
    """

    label: str
    attempts: int
    error_type: str
    message: str
    seed: Optional[int] = None
    engine: str = ""
    config_sha256: str = ""
    batch_window: Optional[int] = None
    manifest_id: str = ""
    traceback: str = ""
    record_path: str = ""

    def to_dict(self) -> Dict:
        return {
            "label": self.label,
            "attempts": self.attempts,
            "error_type": self.error_type,
            "message": self.message,
            "seed": self.seed,
            "engine": self.engine,
            "config_sha256": self.config_sha256,
            "batch_window": self.batch_window,
            "manifest_id": self.manifest_id,
            "traceback": self.traceback,
            "record_path": self.record_path,
        }

    @staticmethod
    def from_dict(payload: Dict) -> "FailureRecord":
        seed = payload.get("seed")
        window = payload.get("batch_window")
        return FailureRecord(
            label=payload["label"],
            attempts=int(payload["attempts"]),
            error_type=payload["error_type"],
            message=payload["message"],
            seed=None if seed is None else int(seed),
            engine=payload.get("engine", ""),
            config_sha256=payload.get("config_sha256", ""),
            batch_window=None if window is None else int(window),
            manifest_id=payload.get("manifest_id", ""),
            traceback=payload.get("traceback", ""),
            record_path=payload.get("record_path", ""),
        )

    def apply_provenance(self, provenance: Dict) -> "FailureRecord":
        """Fill the provenance fields from a job's provenance dict
        (unknown keys are ignored; existing non-default values win)."""
        if not provenance:
            return self
        if self.seed is None and provenance.get("seed") is not None:
            self.seed = int(provenance["seed"])
        if not self.engine:
            self.engine = str(provenance.get("engine", ""))
        if not self.config_sha256:
            self.config_sha256 = str(provenance.get("config_sha256", ""))
        if self.batch_window is None and provenance.get("batch_window"):
            self.batch_window = int(provenance["batch_window"])
        if not self.manifest_id:
            self.manifest_id = str(provenance.get("manifest_id", ""))
        return self


def format_exception(error: BaseException) -> str:
    """The traceback a failure record carries (worker- or serial-side)."""
    return "".join(
        _traceback.format_exception(type(error), error, error.__traceback__)
    )


@dataclass
class SweepOutcome:
    """What a resilient sweep produced: results keyed by job label, plus
    the failures, in job order."""

    results: Dict[str, object] = field(default_factory=dict)
    failures: List[FailureRecord] = field(default_factory=list)
    #: labels that were loaded from a checkpoint rather than re-run
    resumed: List[str] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return not self.failures

    def ordered_results(self, labels: Sequence[str]) -> List[object]:
        """Results in the given label order, skipping failed jobs."""
        return [self.results[lab] for lab in labels if lab in self.results]


class Checkpoint:
    """JSON persistence for a sweep in progress.

    The file stores serialized results (via the caller's ``serialize``)
    keyed by job label, plus the failure records::

        {"schema": 1, "kind": "sweep_checkpoint",
         "completed": {label: <payload>}, "failures": [<record>, ...]}
    """

    def __init__(
        self,
        path: Union[str, Path],
        serialize: Callable[[object], Dict],
        deserialize: Callable[[Dict], object],
    ) -> None:
        self.path = Path(path)
        self.serialize = serialize
        self.deserialize = deserialize
        self.completed: Dict[str, Dict] = {}
        self.failures: List[FailureRecord] = []
        #: True when the last load had to fall back to the ``.bak``
        #: (i.e. the primary file was corrupt or missing mid-publish)
        self.recovered_from_backup = False

    def load(self) -> None:
        """Read a prior run's progress; a missing file is a fresh start.

        Corruption (truncation, checksum mismatch, a stale schema
        version) is detected and silently healed from the rotated
        last-good backup; only both-copies-corrupt raises
        :class:`~repro.common.errors.CheckpointCorruptionError`.
        """
        payload, self.recovered_from_backup = safeio.read_json_recovering(
            self.path,
            expected_kind="sweep_checkpoint",
            expected_schema=CHECKPOINT_SCHEMA,
        )
        if payload is None:
            return
        self.completed = dict(payload.get("completed", {}))
        self.failures = [
            FailureRecord.from_dict(f) for f in payload.get("failures", [])
        ]

    def result_for(self, label: str) -> Optional[object]:
        payload = self.completed.get(label)
        return None if payload is None else self.deserialize(payload)

    def record_success(self, label: str, result: object) -> None:
        self.completed[label] = self.serialize(result)
        # A success supersedes any failure recorded for the label by an
        # earlier (resumed) run.
        self.failures = [f for f in self.failures if f.label != label]
        self._write()

    def record_failure(self, record: FailureRecord) -> None:
        self.failures = [f for f in self.failures if f.label != record.label]
        self.failures.append(record)
        self._write()

    def _write(self) -> None:
        payload = {
            "schema": CHECKPOINT_SCHEMA,
            "kind": "sweep_checkpoint",
            "completed": self.completed,
            "failures": [f.to_dict() for f in self.failures],
        }
        safeio.write_json_atomic(payload, self.path)


def run_resilient_jobs(
    jobs: Sequence[Job],
    *,
    retries: int = 2,
    backoff_s: float = 0.5,
    checkpoint: Optional[Checkpoint] = None,
    sleep: Callable[[float], None] = time.sleep,
    on_event: Optional[Callable[[str, str], None]] = None,
) -> SweepOutcome:
    """Run every job, retrying failures and checkpointing progress.

    ``retries`` is the number of *re*-tries after the first attempt, so a
    job runs at most ``retries + 1`` times; the n-th retry waits
    ``backoff_s * 2**(n-1)`` seconds first (``sleep`` is injectable for
    tests).  ``on_event(label, event)`` observes progress with events
    ``"resumed" | "ok" | "retry" | "failed"``.
    """
    if checkpoint is not None:
        checkpoint.load()
    outcome = SweepOutcome()

    def notify(label: str, event: str) -> None:
        if on_event is not None:
            on_event(label, event)

    for label, thunk in jobs:
        if checkpoint is not None:
            prior = checkpoint.result_for(label)
            if prior is not None:
                outcome.results[label] = prior
                outcome.resumed.append(label)
                notify(label, "resumed")
                continue
        error: Optional[BaseException] = None
        attempts = 0
        for attempt in range(retries + 1):
            attempts = attempt + 1
            if attempt:
                sleep(backoff_s * 2 ** (attempt - 1))
                notify(label, "retry")
            try:
                result = thunk()
            except Exception as exc:  # noqa: BLE001 - the whole point
                error = exc
                continue
            outcome.results[label] = result
            if checkpoint is not None:
                checkpoint.record_success(label, result)
            notify(label, "ok")
            error = None
            break
        if error is not None:
            record = FailureRecord(
                label=label,
                attempts=attempts,
                error_type=type(error).__name__,
                message=str(error),
                traceback=format_exception(error),
            )
            outcome.failures.append(record)
            if checkpoint is not None:
                checkpoint.record_failure(record)
            notify(label, "failed")
    return outcome
