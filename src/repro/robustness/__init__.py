"""Robustness layer: fault injection, invariant checking, resilient sweeps.

Three independent pieces, usable separately:

* :mod:`repro.robustness.invariants` — an :class:`InvariantChecker` that
  watches a running :class:`~repro.core.timecache.TimeCacheSystem` and
  raises on any breach of the paper's security or structural invariants;
* :mod:`repro.robustness.faults` — deterministic fault models corrupting
  the defense's trusted state (s-bits, comparator, Tc, switch
  save/restore), plus the campaign driver in
  :mod:`repro.robustness.campaign` producing a detection matrix
  (``repro faults`` on the command line);
* :mod:`repro.robustness.resilience` — retry/backoff, graceful
  degradation, and checkpoint/resume for long sweeps (used by
  :mod:`repro.analysis.runner`);
* :mod:`repro.robustness.safeio` — crash-safe JSON persistence (atomic
  rename, content checksums, rotated last-good backups) used by every
  durable artifact writer in the repo;
* :mod:`repro.robustness.supervisor` — heartbeat-supervised sweep
  execution: hung workers are killed and rescheduled, poison jobs are
  quarantined with full provenance (``SupervisedSweepExecutor``);
* :mod:`repro.robustness.chaos` — deterministic orchestration-level
  chaos (kill/hang/corrupt/io_error) and the ``repro chaos`` resilience
  scorecard campaign.

``supervisor`` and ``chaos`` are re-exported lazily (PEP 562): they
import the analysis layer, which imports this package, so eager imports
here would cycle.
"""

from repro.robustness.campaign import (
    DetectionMatrix,
    InjectionOutcome,
    campaign_config,
    run_fault_campaign,
    run_single_injection,
)
from repro.robustness.faults import (
    ALL_FAULT_MODELS,
    DroppedComparatorClear,
    FaultEvent,
    FaultInjector,
    FaultModel,
    SBitCorruption,
    SwitchStateLoss,
    TcCorruption,
)
from repro.robustness.invariants import InvariantChecker
from repro.robustness.resilience import (
    Checkpoint,
    FailureRecord,
    SweepOutcome,
    run_resilient_jobs,
)

#: lazily-resolved exports (module -> names); see the module docstring
_LAZY = {
    "repro.robustness.supervisor": (
        "SupervisedSweepExecutor",
        "SupervisionReport",
        "load_quarantine_record",
        "write_quarantine_record",
    ),
    "repro.robustness.chaos": (
        "CHAOS_MODELS",
        "ChaosEvent",
        "ChaosPlan",
        "ResilienceScorecard",
        "run_chaos_campaign",
    ),
}


def __getattr__(name: str):
    import importlib

    for module, names in _LAZY.items():
        if name in names:
            return getattr(importlib.import_module(module), name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )


__all__ = [
    "ALL_FAULT_MODELS",
    "CHAOS_MODELS",
    "ChaosEvent",
    "ChaosPlan",
    "Checkpoint",
    "DetectionMatrix",
    "DroppedComparatorClear",
    "FailureRecord",
    "FaultEvent",
    "FaultInjector",
    "FaultModel",
    "InjectionOutcome",
    "InvariantChecker",
    "ResilienceScorecard",
    "SBitCorruption",
    "SupervisedSweepExecutor",
    "SupervisionReport",
    "SweepOutcome",
    "SwitchStateLoss",
    "TcCorruption",
    "campaign_config",
    "load_quarantine_record",
    "run_chaos_campaign",
    "run_fault_campaign",
    "run_resilient_jobs",
    "run_single_injection",
    "write_quarantine_record",
]
