"""Robustness layer: fault injection, invariant checking, resilient sweeps.

Three independent pieces, usable separately:

* :mod:`repro.robustness.invariants` — an :class:`InvariantChecker` that
  watches a running :class:`~repro.core.timecache.TimeCacheSystem` and
  raises on any breach of the paper's security or structural invariants;
* :mod:`repro.robustness.faults` — deterministic fault models corrupting
  the defense's trusted state (s-bits, comparator, Tc, switch
  save/restore), plus the campaign driver in
  :mod:`repro.robustness.campaign` producing a detection matrix
  (``repro faults`` on the command line);
* :mod:`repro.robustness.resilience` — retry/backoff, graceful
  degradation, and checkpoint/resume for long sweeps (used by
  :mod:`repro.analysis.runner`).
"""

from repro.robustness.campaign import (
    DetectionMatrix,
    InjectionOutcome,
    campaign_config,
    run_fault_campaign,
    run_single_injection,
)
from repro.robustness.faults import (
    ALL_FAULT_MODELS,
    DroppedComparatorClear,
    FaultEvent,
    FaultInjector,
    FaultModel,
    SBitCorruption,
    SwitchStateLoss,
    TcCorruption,
)
from repro.robustness.invariants import InvariantChecker
from repro.robustness.resilience import (
    Checkpoint,
    FailureRecord,
    SweepOutcome,
    run_resilient_jobs,
)

__all__ = [
    "ALL_FAULT_MODELS",
    "Checkpoint",
    "DetectionMatrix",
    "DroppedComparatorClear",
    "FailureRecord",
    "FaultEvent",
    "FaultInjector",
    "FaultModel",
    "InjectionOutcome",
    "InvariantChecker",
    "SBitCorruption",
    "SweepOutcome",
    "SwitchStateLoss",
    "TcCorruption",
    "campaign_config",
    "run_fault_campaign",
    "run_resilient_jobs",
    "run_single_injection",
]
