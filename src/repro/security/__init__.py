"""Statistical security evaluation: leakage scoring for the tournament.

The tournament harness (:mod:`repro.analysis.tournament`) runs each
attack with the victim active and inactive; this package turns the two
probe-latency populations into distinguishability scores and verdicts.
"""

from repro.security.stats import (
    LEAK_AUC_CUTOFF,
    BootstrapCI,
    auc_separation,
    bootstrap_auc,
    mutual_information_bits,
    roc_auc,
    roc_curve,
    score_populations,
)

__all__ = [
    "LEAK_AUC_CUTOFF",
    "BootstrapCI",
    "auc_separation",
    "bootstrap_auc",
    "mutual_information_bits",
    "roc_auc",
    "roc_curve",
    "score_populations",
]
